"""Tests pinning the paper-exact synthetic inventory (slide 6 / slide 21)."""

import pytest

from repro.testbed import CLUSTER_SPECS, SITE_NAMES, build_grid5000
from repro.testbed.generator import ClusterSpec


def test_paper_inventory_sites(testbed):
    assert testbed.site_count == 8


def test_paper_inventory_clusters(testbed):
    assert testbed.cluster_count == 32


def test_paper_inventory_nodes(testbed):
    assert testbed.node_count == 894


def test_paper_inventory_cores(testbed):
    assert testbed.total_cores == 8490


def test_backbone_is_10gbps(testbed):
    assert testbed.backbone_gbps == 10.0


def test_dell_cluster_count_matches_coverage_table(testbed):
    assert sum(1 for c in testbed.iter_clusters() if c.is_dell) == 18


def test_infiniband_cluster_count_matches_coverage_table(testbed):
    assert sum(1 for c in testbed.iter_clusters() if c.has_infiniband) == 12


def test_disk_testable_cluster_count_matches_coverage_table(testbed):
    assert sum(1 for c in testbed.iter_clusters() if c.disk_testable) == 9


def test_all_site_names_present(testbed):
    assert tuple(s.uid for s in testbed.sites) == SITE_NAMES


def test_every_site_has_clusters(testbed):
    for site in testbed.sites:
        assert site.clusters, f"site {site.uid} is empty"


def test_node_uids_unique(testbed):
    uids = [n.uid for n in testbed.iter_nodes()]
    assert len(uids) == len(set(uids))


def test_node_uid_format(testbed):
    for node in testbed.iter_nodes():
        cluster, _, num = node.uid.rpartition("-")
        assert cluster == node.cluster
        assert num.isdigit() and int(num) >= 1


def test_macs_unique_across_testbed(testbed):
    macs = [nic.mac for n in testbed.iter_nodes() for nic in n.nics]
    assert len(macs) == len(set(macs))


def test_serials_unique(testbed):
    serials = [n.serial for n in testbed.iter_nodes()]
    assert len(serials) == len(set(serials))


def test_cluster_nodes_homogeneous(testbed):
    for cluster in testbed.iter_clusters():
        first = cluster.nodes[0]
        for node in cluster.nodes:
            assert node.cpu == first.cpu
            assert node.ram_gb == first.ram_gb
            assert len(node.disks) == len(first.disks)
            assert [d.model for d in node.disks] == [d.model for d in first.disks]


def test_total_cores_consistent_with_cpu_spec(testbed):
    for node in testbed.iter_nodes():
        assert node.total_cores == node.cpu_count * node.cpu.cores


def test_pdu_ports_within_range_and_unique_per_pdu(testbed):
    seen = set()
    for node in testbed.iter_nodes():
        key = (node.pdu.pdu_uid, node.pdu.port)
        assert key not in seen, f"PDU port reused: {key}"
        seen.add(key)
        assert 1 <= node.pdu.port <= 24


def test_gpu_clusters_have_gpu_spec(testbed):
    gpu_clusters = [c for c in testbed.iter_clusters() if c.has_gpu]
    assert {c.uid for c in gpu_clusters} == {"adonis", "orion", "grele"}
    for c in gpu_clusters:
        for n in c.nodes:
            assert n.gpu is not None and n.gpu.count >= 1


def test_ib_nodes_have_guid(testbed):
    for cluster in testbed.iter_clusters():
        if cluster.has_infiniband:
            guids = {n.infiniband.guid for n in cluster.nodes}
            assert len(guids) == cluster.node_count


def test_build_deterministic():
    a = build_grid5000()
    b = build_grid5000()
    assert a.to_doc() == b.to_doc()


def test_lookup_node(testbed):
    node = testbed.node("graphene-12")
    assert node.cluster == "graphene"
    assert node.site == "nancy"


def test_lookup_unknown_node_raises(testbed):
    with pytest.raises(KeyError):
        testbed.node("nonexistent-1")
    with pytest.raises(KeyError):
        testbed.node("graphene-9999")


def test_lookup_unknown_cluster_and_site(testbed):
    with pytest.raises(KeyError):
        testbed.cluster("nope")
    with pytest.raises(KeyError):
        testbed.site("nope")


def test_custom_spec_subset_builds():
    spec = [s for s in CLUSTER_SPECS if s.site == "nancy"]
    t = build_grid5000(spec)
    assert t.cluster_count == 6
    assert t.node_count == sum(s.nodes for s in spec)


def test_single_custom_cluster():
    spec = ClusterSpec(
        "nancy", "toy", 3, "Intel Xeon E5-2620", 2, 32, "dell", "Dell R630", 2016,
        ("Intel X710 10-Gigabit",), ("MG03ACA100",),
    )
    t = build_grid5000([spec])
    assert t.node_count == 3
    assert t.total_cores == 3 * 12
    assert t.cluster("toy").is_dell


def test_boot_times_positive(testbed):
    for c in testbed.iter_clusters():
        assert c.boot_time_s > 0
