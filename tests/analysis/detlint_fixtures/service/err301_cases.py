"""ERR301 fixture: broad-except positives and negatives (service scope)."""


def pump(conn):
    try:
        conn.step()
    except Exception:  # EXPECT(ERR301)
        pass
    try:
        conn.step()
    except BaseException:  # EXPECT(ERR301)
        return None
    try:
        conn.step()
    except:  # EXPECT(ERR301)  # noqa: E722
        pass
    try:
        conn.step()
    except (OSError, Exception):  # EXPECT(ERR301) — Exception in the tuple
        pass


def negatives(conn, log):
    try:
        conn.step()
    except Exception:  # negative: the handler re-raises
        log.warn("failed")
        raise
    try:
        conn.step()
    except Exception as exc:  # negative: re-raised as a narrower error
        raise RuntimeError("wrapped") from exc
    try:
        conn.step()
    except (OSError, ValueError):  # negative: narrow tuple
        pass
    try:
        conn.step()
    except OSError:  # negative: narrow
        pass
