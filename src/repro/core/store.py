"""Persistent campaign result store: one JSONL record per matrix cell.

A seed × scenario sweep is only trustworthy if it can be *interrupted*: a
laptop sleeps, a worker segfaults, a cluster job hits its walltime.  The
:class:`CampaignStore` archives every finished cell of
:func:`~repro.core.batch.run_campaigns` as one appended JSON line, so a
re-run with ``resume=True`` pays only for the cells that are missing (or
previously crashed) — the same cell-level checkpointing idea malleable-job
schedulers use to survive shrinking allocations.

Cells are keyed by ``(spec content hash, seed, months)``:

* the **spec hash** covers every declarative knob of the *effective*
  scenario (after any ``months=`` override) except the seed — changing
  any knob, including the name, moves the cell to a fresh slot, so two
  different worlds can never collide on one archived result;
* **seed** and the effective **months** horizon complete the key.

Records carry the full spec document next to the report, so ``repro-campaign
report``/``compare`` can audit exactly what ran without the original preset
code.  Appends are flushed + fsynced; a torn line from a killed process is
sealed by the next append and loses only itself on load.

Integrity: every record written since the checksum era carries a ``sum``
field — the content hash of the rest of the document.  A record whose
checksum no longer matches (bit rot, a partial overwrite, a hand edit)
is skipped and counted on load (:attr:`CampaignStore.corrupt_records`),
never trusted; records from before the checksum era have no ``sum`` and
are grandfathered in.  :func:`fsck_store` audits an archive offline and
``--repair`` rewrites it atomically keeping only verifiable records
(re-encoding them, which retrofits checksums onto legacy lines).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Union

from ..scenarios.spec import ScenarioSpec
from ..util.serialization import (
    append_jsonl,
    canonical_json,
    content_hash,
    iter_jsonl,
)
from .campaign import CampaignReport

__all__ = ["CampaignStore", "StoredCell", "StoreFormatError",
           "StoreChecksumError", "StoreBackend", "JsonlBackend",
           "MemoryBackend", "FsckReport", "fsck_store", "cell_hash",
           "cell_key", "format_cell_key"]

#: Record-format version, bumped on incompatible layout changes.
_FORMAT = 1


class StoreFormatError(ValueError):
    """A record written by an incompatible (newer) store format.

    Distinct from generic record damage: damaged records lose only
    themselves on load, a format mismatch must abort loudly rather than
    silently dropping a whole archive's worth of cells.
    """


class StoreChecksumError(ValueError):
    """A record whose ``sum`` field does not match its content.

    The bytes parsed as JSON but are provably not what was written —
    corruption, not version drift.  Skipped and counted on load."""


def cell_hash(spec: ScenarioSpec, months: Optional[float] = None) -> str:
    """Seed-independent content hash of the effective scenario.

    ``months`` (the matrix-wide horizon override) is folded in before
    hashing, so a preset with ``months=5`` run at ``months=0.5`` and a
    preset natively declaring ``months=0.5`` share cells.
    """
    doc = spec.to_dict()
    if months is not None:
        doc["months"] = float(months)
    doc.pop("seed", None)
    return content_hash(doc)


def format_cell_key(spec_hash: str, seed: int, months: float) -> str:
    """Canonical ``<spec-hash>:<seed>:<months>`` key of one matrix cell
    (for callers that already hold the spec hash — the batch engine hashes
    each spec once and reuses it across the whole seed row)."""
    return f"{spec_hash}:{seed}:{float(months):g}"


def cell_key(spec: ScenarioSpec, seed: int, months: Optional[float] = None) -> str:
    """Canonical key of one matrix cell, hashed from the spec."""
    effective = float(months) if months is not None else float(spec.months)
    return format_cell_key(cell_hash(spec, months), seed, effective)


@dataclass(frozen=True)
class StoredCell:
    """One archived matrix cell (a success or a recorded failure).

    ``quarantined`` marks a poison cell: it failed every supervised
    attempt (or hung past its watchdog), so ``resume`` must *not* retry
    it — unlike an ordinary recorded failure, which resume heals.
    """

    key: str
    spec_hash: str
    scenario: str
    seed: int
    months: float
    spec: dict
    report: Optional[CampaignReport] = None
    error: Optional[str] = None
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.report is not None

    def to_doc(self) -> dict:
        doc = {
            "v": _FORMAT,
            "key": self.key,
            "spec_hash": self.spec_hash,
            "scenario": self.scenario,
            "seed": self.seed,
            "months": self.months,
            "spec": self.spec,
            "status": "ok" if self.ok else "error",
            "report": self.report.to_dict() if self.report is not None else None,
            "error": self.error,
            "quarantined": self.quarantined,
        }
        # Written last, over everything above: the record carries the
        # proof of its own integrity.
        doc["sum"] = content_hash(doc)
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "StoredCell":
        if doc.get("v") != _FORMAT:
            raise StoreFormatError(
                f"unsupported store record version {doc.get('v')!r}")
        checksum = doc.get("sum")
        if checksum is not None:
            body = {k: v for k, v in doc.items() if k != "sum"}
            actual = content_hash(body)
            if actual != checksum:
                raise StoreChecksumError(
                    f"record checksum mismatch for key "
                    f"{doc.get('key')!r}: stored {checksum}, "
                    f"content hashes to {actual}")
        # else: pre-checksum record, grandfathered.
        report_doc = doc.get("report")
        return cls(
            key=doc["key"],
            spec_hash=doc["spec_hash"],
            scenario=doc["scenario"],
            seed=int(doc["seed"]),
            months=float(doc["months"]),
            spec=doc["spec"],
            report=(CampaignReport.from_dict(report_doc)
                    if report_doc is not None else None),
            error=doc.get("error"),
            quarantined=bool(doc.get("quarantined", False)),
        )


class StoreBackend:
    """Durable document transport behind :class:`CampaignStore`.

    The store owns the indexing, keying and record semantics; a backend
    only persists raw cell documents — replayed once at open, appended one
    at a time.  The JSONL file is the default; a sqlite or redis backend
    slots in here without touching any store caller.
    """

    #: Human-readable location (shown by the CLI and the service).
    location = "<backend>"

    def load(self) -> Iterator[dict]:
        """Yield every previously persisted document, oldest first."""
        raise NotImplementedError

    def append(self, doc: dict) -> None:
        """Durably persist one document before returning."""
        raise NotImplementedError


class JsonlBackend(StoreBackend):
    """The historical append-only JSONL file (flush + fsync per record)."""

    def __init__(self, path: Union[str, "os.PathLike[str]"]):
        self.path = os.fspath(path)
        self.location = self.path
        #: Unparseable (torn/garbled) lines seen by the last load.
        self.skipped_lines = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def load(self) -> Iterator[dict]:
        self.skipped_lines = 0

        def count(lineno: int, reason: str) -> None:
            self.skipped_lines += 1

        if os.path.exists(self.path):
            yield from iter_jsonl(self.path, on_skip=count)

    def append(self, doc: dict) -> None:
        append_jsonl(self.path, doc)


class MemoryBackend(StoreBackend):
    """Volatile in-process backend (tests, storeless service sessions)."""

    location = "<memory>"

    def __init__(self):
        self.docs: list[dict] = []

    def load(self) -> Iterator[dict]:
        return iter(list(self.docs))

    def append(self, doc: dict) -> None:
        self.docs.append(doc)


class CampaignStore:
    """Append-only archive of campaign cells, indexed in memory.

    Opening a store replays its backend into a ``key -> StoredCell`` index
    (last record wins, so re-running a cell simply supersedes it).  Every
    :meth:`record` append is durable before it returns — a crashed driver
    loses at most the cell it was executing, never a finished one.

    Constructed from a path (JSONL file, the historical behaviour) or any
    :class:`StoreBackend`.
    """

    def __init__(self, path_or_backend: Union[str, "os.PathLike[str]",
                                              StoreBackend]):
        if isinstance(path_or_backend, StoreBackend):
            self.backend = path_or_backend
        else:
            self.backend = JsonlBackend(path_or_backend)
        #: Back-compat: the JSONL path, or the backend's display location.
        self.path = getattr(self.backend, "path", self.backend.location)
        self._cells: dict[str, StoredCell] = {}
        #: Records skipped on load because their checksum failed.
        self.corrupt_records = 0
        #: Records skipped on load for any other damage (torn lines,
        #: missing/mistyped fields, non-record JSON).
        self.damaged_records = 0
        for doc in self.backend.load():
            if not isinstance(doc, dict):
                self.damaged_records += 1
                continue  # damaged record: JSON, but not one of ours
            try:
                cell = StoredCell.from_doc(doc)
            except StoreFormatError:
                raise  # a future format must not become silent data loss
            except StoreChecksumError:
                self.corrupt_records += 1
                continue  # provably-rotten record loses only itself
            except (KeyError, TypeError, ValueError):
                self.damaged_records += 1
                continue  # field-damaged record loses only itself
            self._cells[cell.key] = cell
        # Torn lines never reach the document loop; the backend counts
        # what it had to skip at the byte level.
        self.damaged_records += getattr(self.backend, "skipped_lines", 0)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def get(self, key: str) -> Optional[StoredCell]:
        return self._cells.get(key)

    def cells(self) -> Iterator[StoredCell]:
        """All indexed cells (deduplicated, file order of last write)."""
        return iter(self._cells.values())

    def successes(self) -> list[StoredCell]:
        return [c for c in self._cells.values() if c.ok]

    def failures(self) -> list[StoredCell]:
        return [c for c in self._cells.values() if not c.ok]

    def scenarios(self) -> list[str]:
        """Distinct scenario names, sorted."""
        return sorted({c.scenario for c in self._cells.values()})

    # -- writes ----------------------------------------------------------------

    def record(self, cell: StoredCell) -> StoredCell:
        """Durably append one finished cell and index it."""
        self.backend.append(cell.to_doc())
        self._cells[cell.key] = cell
        return cell

    def record_success(self, spec: ScenarioSpec, seed: int,
                       report: CampaignReport,
                       months: Optional[float] = None,
                       spec_hash: Optional[str] = None) -> StoredCell:
        return self.record(self._make_cell(spec, seed, months, spec_hash,
                                           report=report))

    def record_failure(self, spec: ScenarioSpec, seed: int, error: str,
                       months: Optional[float] = None,
                       spec_hash: Optional[str] = None,
                       quarantined: bool = False) -> StoredCell:
        return self.record(self._make_cell(spec, seed, months, spec_hash,
                                           error=error,
                                           quarantined=quarantined))

    def _make_cell(self, spec: ScenarioSpec, seed: int,
                   months: Optional[float],
                   spec_hash: Optional[str] = None,
                   report: Optional[CampaignReport] = None,
                   error: Optional[str] = None,
                   quarantined: bool = False) -> StoredCell:
        effective = float(months) if months is not None else float(spec.months)
        if spec_hash is None:
            spec_hash = cell_hash(spec, months)
        # the archived spec must describe exactly what ran: fold in the
        # horizon override and the cell's seed (not the preset's default)
        doc = spec.to_dict()
        doc["months"] = effective
        doc["seed"] = seed
        return StoredCell(
            key=format_cell_key(spec_hash, seed, effective),
            spec_hash=spec_hash,
            scenario=spec.name,
            seed=seed,
            months=effective,
            spec=doc,
            report=report,
            error=error,
            quarantined=quarantined,
        )

    # -- interop ---------------------------------------------------------------

    def runs(self, scenarios: Optional[list[str]] = None,
             disambiguate: bool = True) -> "list[Any]":
        """Stored cells as :class:`~repro.core.batch.CampaignRun` values
        (sorted scenario-major, seed-minor — the matrix order
        ``run_campaigns`` returns), optionally filtered by scenario name.

        A store legitimately holds one scenario name at several variants
        (most commonly different ``--months`` horizons — distinct cells by
        design).  With ``disambiguate=True`` those get display names
        (``name@0.5mo``, or ``name#<hash>`` when the horizons coincide) so
        that ``aggregate_runs`` groups each variant separately instead of
        refusing the whole archive.  Pass ``disambiguate=False`` for
        machine consumers that join on the original name — display labels
        would retroactively change when new variants are appended, the
        stored names and ``spec_hash`` never do.
        """
        from .batch import CampaignRun  # local import avoids a cycle
        cells = [c for c in self._cells.values()
                 if scenarios is None or c.scenario in scenarios]
        variants: dict[str, dict[str, float]] = {}
        for c in cells:
            variants.setdefault(c.scenario, {})[c.spec_hash] = c.months

        def label(c: StoredCell) -> str:
            v = variants[c.scenario]
            if not disambiguate or len(v) == 1:
                return c.scenario
            if len(set(v.values())) == len(v):  # horizons tell them apart
                return f"{c.scenario}@{c.months:g}mo"
            return f"{c.scenario}#{c.spec_hash[:6]}"

        cells.sort(key=lambda c: (c.scenario, c.months, c.seed))
        return [CampaignRun(scenario=label(c), seed=c.seed, report=c.report,
                            spec_hash=c.spec_hash, error=c.error,
                            quarantined=c.quarantined)
                for c in cells]


# -- offline integrity audit ---------------------------------------------------


@dataclass
class FsckReport:
    """What :func:`fsck_store` found (and possibly fixed)."""

    total_lines: int = 0       # non-blank lines examined
    valid: int = 0             # verifiable records (checksum OK or legacy)
    legacy: int = 0            # of the valid: pre-checksum records
    torn: int = 0              # unparseable lines (torn tails, bit rot)
    checksum_failed: int = 0   # parsed, but the checksum disagrees
    malformed: int = 0         # parsed JSON that is not a store record
    version_skew: int = 0      # records from a newer store format
    repaired: bool = False

    @property
    def clean(self) -> bool:
        """No damage (version-skew records are foreign, not damaged)."""
        return (self.torn == 0 and self.checksum_failed == 0
                and self.malformed == 0)

    def to_doc(self) -> dict:
        return {
            "total_lines": self.total_lines,
            "valid": self.valid,
            "legacy": self.legacy,
            "torn": self.torn,
            "checksum_failed": self.checksum_failed,
            "malformed": self.malformed,
            "version_skew": self.version_skew,
            "clean": self.clean,
            "repaired": self.repaired,
        }

    def __str__(self) -> str:
        verdict = "clean" if self.clean else "DAMAGED"
        parts = [f"{self.total_lines} lines: {self.valid} valid "
                 f"({self.legacy} legacy, now checksummed on repair)"]
        for label, n in (("torn", self.torn),
                         ("checksum-failed", self.checksum_failed),
                         ("malformed", self.malformed),
                         ("version-skew", self.version_skew)):
            if n:
                parts.append(f"{n} {label}")
        suffix = " [repaired]" if self.repaired else ""
        return f"{verdict}: " + ", ".join(parts) + suffix


def fsck_store(path: Union[str, "os.PathLike[str]"],
               repair: bool = False) -> FsckReport:
    """Audit a JSONL campaign store; optionally rewrite it clean.

    Every non-blank line is classified (see :class:`FsckReport`).  With
    ``repair=True`` and anything to fix — damage, or legacy records that
    would gain checksums — the file is atomically rewritten (tmp file +
    ``os.replace``) keeping verifiable records re-encoded in order;
    version-skew records are preserved verbatim (a newer tool owns them),
    damaged ones are dropped.  Without damage and without legacy records
    the file is left untouched.
    """
    path = os.fspath(path)
    report = FsckReport()
    keep: list[str] = []
    # errors="replace": classify bit-rotten lines instead of crashing.
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped:
                continue
            report.total_lines += 1
            try:
                doc = json.loads(stripped)
            except json.JSONDecodeError:
                report.torn += 1
                continue
            if not isinstance(doc, dict):
                report.malformed += 1
                continue
            try:
                cell = StoredCell.from_doc(doc)
            except StoreChecksumError:
                report.checksum_failed += 1
                continue
            except StoreFormatError:
                report.version_skew += 1
                keep.append(stripped)  # foreign, preserved verbatim
                continue
            except (KeyError, TypeError, ValueError):
                report.malformed += 1
                continue
            report.valid += 1
            if doc.get("sum") is None:
                report.legacy += 1
            keep.append(canonical_json(cell.to_doc()))
    if repair and (not report.clean or report.legacy):
        tmp = path + ".fsck-tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for line in keep:
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        report.repaired = True
    return report
