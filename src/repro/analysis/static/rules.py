"""The detlint rule catalogue.

Each rule encodes one determinism / kernel-protocol invariant this codebase
depends on (see the README "Static analysis" section for the rationale of
each).  Rules are AST visitors: they get a parsed module plus a
:class:`RuleContext` and yield :class:`Finding`\\ s.  Register new rules
with :func:`register`; the CLI and baseline machinery pick them up from
:data:`RULES` automatically.

Scoping: a rule only runs on files whose (posix) path contains one of its
``scope`` substrings and none of its ``exclude`` substrings.  Paths are
matched as substrings so the same rule applies to ``src/repro/oar/...`` in
the repo and ``fixtures/oar/...`` in the test suite.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = ["Rule", "RuleContext", "RULES", "register"]


class RuleContext:
    """Per-file context handed to every rule."""

    def __init__(self, path: str, lines: Sequence[str]) -> None:
        self.path = path
        self.lines = lines

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(path=self.path, line=line, col=col,
                       rule=rule.id, message=message, line_text=text)


class Rule:
    """Base class: one invariant, one id, one AST check."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: Path substrings the rule is limited to ("" scope = every file).
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(part in path for part in self.exclude):
            return False
        return not self.scope or any(part in path for part in self.scope)

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError


RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the fully-qualified thing they import.

    ``import time as t``          -> {"t": "time"}
    ``from datetime import date`` -> {"date": "datetime.date"}
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _resolve_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted path of a call target, alias-expanded."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in aliases:
        dotted = aliases[head] + ("." + rest if rest else "")
    return dotted


def _function_bodies(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope in document order, not descending into nested defs."""
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
            yield from _walk_same_function(child)


# --------------------------------------------------------------------------
# DET001 — unordered iteration
# --------------------------------------------------------------------------

_SET_BUILTINS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference",
                "copy"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "AbstractSet",
                    "MutableSet", "KeysView"}


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name = _dotted_name(node)
    return bool(name) and name.split(".")[-1] in _SET_ANNOTATIONS


class _SetEnv:
    """Names known (per scope / per module) to hold sets.

    ``names`` are scope locals, ``attrs`` attribute names seen annotated or
    assigned as sets anywhere in the module (matched on any object, not
    just ``self`` — set-typed dataclass fields travel between modules),
    and ``set_funcs`` local function/method names whose return annotation
    is a set.
    """

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.attrs: Set[str] = set()
        self.set_funcs: Set[str] = set()

    def holds_set(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs
        return False


def _is_set_expr(node: ast.AST, env: _SetEnv) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _SET_BUILTINS:
            return True
        if isinstance(node.func, ast.Name) and \
                node.func.id in env.set_funcs:
            return True
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "keys":
                return True
            if node.func.attr in env.set_funcs:
                return True
            if node.func.attr in _SET_METHODS and \
                    _is_set_expr(node.func.value, env):
                return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(node.left, env) or _is_set_expr(node.right, env)
    return env.holds_set(node)


def _collect_module_env(tree: ast.Module) -> _SetEnv:
    """Module-wide facts: set-typed attribute names and set-returning
    functions (matched by name — a per-module heuristic, deliberately
    simple; detlint is a tripwire, not a type checker)."""
    env = _SetEnv()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _annotation_is_set(node.returns):
                env.set_funcs.add(node.name)
        elif isinstance(node, ast.AnnAssign) and \
                _annotation_is_set(node.annotation) and \
                isinstance(node.target, ast.Attribute):
            env.attrs.add(node.target.attr)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Attribute) and \
                _is_set_expr(node.value, env):
            env.attrs.add(node.targets[0].attr)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name) and \
                        _annotation_is_set(stmt.annotation):
                    env.attrs.add(stmt.target.id)
    return env


def _collect_set_env(scope: ast.AST, env: _SetEnv) -> None:
    """Record names assigned/annotated as sets anywhere in ``scope``."""
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_set(arg.annotation):
                env.names.add(arg.arg)
    for node in _walk_same_function(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, is_set = node.targets[0], _is_set_expr(node.value, env)
            if isinstance(target, ast.Name):
                (env.names.add if is_set else env.names.discard)(target.id)
        elif isinstance(node, ast.AnnAssign):
            is_set = _annotation_is_set(node.annotation) or (
                node.value is not None and _is_set_expr(node.value, env))
            target = node.target
            if is_set and isinstance(target, ast.Name):
                env.names.add(target.id)
            elif is_set and isinstance(target, ast.Attribute):
                env.attrs.add(target.attr)


@register
class UnorderedIteration(Rule):
    id = "DET001"
    title = "unordered set iteration"
    rationale = ("Iterating a set (or dict.keys() of one) in scheduling, "
                 "kernel or service code makes event order depend on hash "
                 "seeds; wrap the iterable in sorted() to pin it.")
    scope = ("scheduling/", "oar/", "service/", "util/", "monitoring/",
             "faults/", "core/")

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        # Module-wide facts (set-typed attributes, set-returning functions)
        # are shared; each scope (module body, then every function) then
        # layers its own locals on top.  _walk_same_function keeps scope
        # walks disjoint, so every site is checked exactly once.
        module_env = _collect_module_env(tree)
        scopes: List[ast.AST] = [tree, *_function_bodies(tree)]
        for scope in scopes:
            env = _SetEnv()
            env.attrs = module_env.attrs
            env.set_funcs = module_env.set_funcs
            _collect_set_env(scope, env)
            for node in _walk_same_function(scope):
                yield from self._check_node(node, env, ctx)

    def _check_node(self, node: ast.AST, env: _SetEnv,
                    ctx: RuleContext) -> Iterator[Finding]:
        sites: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            sites.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            # SetComp / GeneratorExp sinks are order-insensitive (a set
            # again, or an aggregator like sorted()/sum()/any()).
            sites.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple", "enumerate") and node.args:
            sites.append(node.args[0])
        for site in sites:
            if _is_set_expr(site, env):
                yield ctx.finding(
                    self, site,
                    "iteration over an unordered set — wrap it in sorted() "
                    "to pin event order")


# --------------------------------------------------------------------------
# DET002 — wall-clock time
# --------------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClock(Rule):
    id = "DET002"
    title = "wall-clock time in simulation code"
    rationale = ("Simulated code must read sim.now; a wall clock makes "
                 "reports depend on host speed and run date.")
    exclude = ("benchmarks/",)

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_call(node, aliases)
            if dotted in _WALL_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"wall-clock call {dotted}() — simulation code must use "
                    "sim.now (host-side infra may suppress with a comment)")


# --------------------------------------------------------------------------
# DET003 — stray randomness
# --------------------------------------------------------------------------

_NP_RANDOM_OK = {"numpy.random.SeedSequence", "numpy.random.Generator",
                 "numpy.random.BitGenerator", "numpy.random.PCG64"}


@register
class StrayRandomness(Rule):
    id = "DET003"
    title = "randomness outside the named-stream factory"
    rationale = ("All randomness flows through util/rng.py RngStreams so "
                 "subsystems stay draw-order independent; stdlib random and "
                 "ad-hoc numpy generators bypass the campaign seed.")
    exclude = ("util/rng.py",)

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_call(node, aliases)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                yield ctx.finding(
                    self, node,
                    f"stdlib {dotted}() bypasses the campaign seed — draw "
                    "from RngStreams (util/rng.py) instead")
            elif dotted.startswith("numpy.random.") \
                    and dotted not in _NP_RANDOM_OK:
                yield ctx.finding(
                    self, node,
                    f"{dotted}() outside util/rng.py — all streams come "
                    "from the RngStreams named-stream factory")


# --------------------------------------------------------------------------
# KRN101 — kernel yield protocol
# --------------------------------------------------------------------------

_KERNEL_FACTORIES = {"timeout", "event", "process", "any_of", "all_of",
                     "request"}
_LITERALS = (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set,
             ast.JoinedStr)


@register
class KernelYieldProtocol(Rule):
    id = "KRN101"
    title = "sim process yielding a non-event"
    rationale = ("The event kernel resumes a process with the yielded "
                 "Event's value; a bare yield or literal yield kills the "
                 "process with SimulationError at runtime.")

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        for fn in _function_bodies(tree):
            yields = [n for n in _walk_same_function(fn)
                      if isinstance(n, ast.Yield)]
            if not yields:
                continue
            if not any(self._is_kernel_wait(y.value) for y in yields):
                continue  # a data generator, not a sim process
            for y in yields:
                if y.value is None:
                    yield ctx.finding(
                        self, y,
                        "bare yield in a sim process — the kernel needs an "
                        "Event (use yield sim.timeout(0) to cede the turn)")
                elif isinstance(y.value, _LITERALS):
                    yield ctx.finding(
                        self, y,
                        "sim process yields a literal, not an Event — the "
                        "kernel will kill the process with SimulationError")

    @staticmethod
    def _is_kernel_wait(value: Optional[ast.AST]) -> bool:
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _KERNEL_FACTORIES)


# --------------------------------------------------------------------------
# SER201 — mutable dataclass defaults
# --------------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict",
                  "Counter", "OrderedDict"}
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


def _is_dataclass_decorator(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    name = _dotted_name(node)
    return bool(name) and name.split(".")[-1] == "dataclass"


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return bool(name) and name.split(".")[-1] in _MUTABLE_CALLS
    return False


@register
class MutableDataclassDefault(Rule):
    id = "SER201"
    title = "mutable dataclass default"
    rationale = ("A mutable default is shared by every instance (the "
                 "CampaignConfig bug PR 1 fixed); use "
                 "field(default_factory=...).")

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not any(_is_dataclass_decorator(d) for d in cls.decorator_list):
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                    continue
                value = stmt.value
                if isinstance(value, ast.Call):
                    name = _dotted_name(value.func)
                    if name and name.split(".")[-1] == "field":
                        for kw in value.keywords:
                            if kw.arg == "default" and \
                                    _is_mutable_default(kw.value):
                                yield ctx.finding(
                                    self, value,
                                    "field(default=<mutable>) is shared "
                                    "across instances — use default_factory")
                        continue
                if _is_mutable_default(value):
                    yield ctx.finding(
                        self, value,
                        "mutable dataclass default is shared across "
                        "instances — use field(default_factory=...)")


# --------------------------------------------------------------------------
# PRF401 — per-node park scans on the scheduler tick path
# --------------------------------------------------------------------------

#: Functions that run on every scheduler/elastic tick (or inside every
#: placement).  The PR-9 profile refactor moved their availability
#: questions onto Gantt's ResourceProfile; the ``_linear_*`` oracles are
#: deliberately NOT listed — they exist to keep the old scans testable.
_TICK_PATH_FUNCS = {
    "_schedule_pass", "_replan_future_jobs", "_find_assignment",
    "_assert_plans_tight", "on_tick", "elastic_tick", "_expand",
    "_reclaim", "_negotiate", "grow_candidates", "_free_alive",
    "resources_available", "availability", "earliest_start",
}
#: Attributes holding the whole park (node lists, timeline maps).
_PARK_ATTRS = {"nodes", "machines", "_timelines", "timelines"}
#: Methods returning the whole park.
_PARK_CALLS = {"node_uids", "alive_nodes", "iter_nodes"}
_PARK_WRAPPERS = {"sorted", "list", "tuple", "reversed", "enumerate"}


def _is_park_iterable(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _PARK_ATTRS
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _PARK_CALLS:
                return True
            if func.attr in ("keys", "values", "items"):
                return _is_park_iterable(func.value)
        if isinstance(func, ast.Name) and func.id in _PARK_WRAPPERS \
                and node.args:
            return _is_park_iterable(node.args[0])
    return False


@register
class TickPathParkScan(Rule):
    id = "PRF401"
    title = "per-node park scan on the scheduler tick path"
    rationale = ("Tick-path code answers availability questions through "
                 "the maintained ResourceProfile (one O(log n) query); a "
                 "loop over the park's node/timeline collections here "
                 "reintroduces the O(nodes)-per-tick rescans the profile "
                 "refactor removed.")
    scope = ("scheduling/", "oar/")

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        for fn in _function_bodies(tree):
            if fn.name not in _TICK_PATH_FUNCS:
                continue
            for node in _walk_same_function(fn):
                sites: List[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    sites.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    sites.extend(gen.iter for gen in node.generators)
                for site in sites:
                    if _is_park_iterable(site):
                        yield ctx.finding(
                            self, site,
                            f"O(park) iteration inside {fn.name}() — ask "
                            "the availability profile (Gantt.profile_* / "
                            "free_uids) instead of rescanning the park")


# --------------------------------------------------------------------------
# ERR301 — exception swallowing in session/kernel plumbing
# --------------------------------------------------------------------------

_BROAD_EXC = {"Exception", "BaseException"}


@register
class BroadExcept(Rule):
    id = "ERR301"
    title = "broad except in session/kernel plumbing"
    rationale = ("A bare/broad except here can swallow SessionClosed or "
                 "kernel control-flow exceptions (Interrupt, StopIteration "
                 "wrappers), leaving a session half-dead; catch the narrow "
                 "type or re-raise.")
    scope = ("service/", "util/events.py")

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if any(isinstance(n, ast.Raise)
                   for stmt in node.body
                   for n in [stmt, *_walk_same_function(stmt)]):
                continue  # handler re-raises: nothing is swallowed
            what = "bare except" if node.type is None else \
                f"except {_dotted_name(node.type) or 'Exception'}"
            yield ctx.finding(
                self, node,
                f"{what} can swallow SessionClosed / kernel control-flow "
                "exceptions — catch the narrow type or re-raise")

    @staticmethod
    def _is_broad(type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(BroadExcept._is_broad(e) for e in type_node.elts)
        name = _dotted_name(type_node)
        return bool(name) and name.split(".")[-1] in _BROAD_EXC


# --------------------------------------------------------------------------
# ERR302 — unbounded sleep/retry loops in resilience plumbing
# --------------------------------------------------------------------------


@register
class UnboundedRetrySleep(Rule):
    id = "ERR302"
    title = "sleep inside an unbounded loop"
    rationale = ("Retry/poll loops in the service layer and the campaign "
                 "supervisor must bound every wait — a deadline, an attempt "
                 "cap, or a work-remaining check.  A time.sleep() inside a "
                 "while-loop whose condition compares nothing spins forever "
                 "once the peer (or worker) is gone.")
    scope = ("service/", "core/batch.py")

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(tree)
        seen: Set[int] = set()
        for loop in ast.walk(tree):
            if not isinstance(loop, ast.While):
                continue
            if any(isinstance(n, ast.Compare) for n in ast.walk(loop.test)):
                continue  # the condition measures progress against a bound
            # _walk_same_function keeps nested defs out: a closure defined
            # inside the loop does not sleep on every iteration.
            for node in _walk_same_function(loop):
                if (isinstance(node, ast.Call)
                        and _resolve_call(node, aliases) == "time.sleep"
                        and id(node) not in seen):
                    seen.add(id(node))
                    yield ctx.finding(
                        self, node,
                        "time.sleep() in a loop with no bounding comparison "
                        "— gate the loop on a deadline or attempt cap so a "
                        "dead peer cannot spin this wait forever")
