"""E1 — slide 6 inventory: 8 sites, 32 clusters, 894 nodes, 8490 cores.

Regenerates the testbed description and reprints the inventory table; the
benchmark measures full description generation + topology derivation.
"""

from repro.testbed import build_grid5000, build_topology

from conftest import paper_row, print_table


def bench_e1_inventory(benchmark):
    testbed = benchmark(build_grid5000)
    topology = build_topology(testbed)
    rows = [
        paper_row("sites", 8, testbed.site_count),
        paper_row("clusters", 32, testbed.cluster_count),
        paper_row("nodes", 894, testbed.node_count),
        paper_row("cores", 8490, testbed.total_cores),
        paper_row("backbone (Gbps)", 10, testbed.backbone_gbps),
        paper_row("Dell clusters (dellbios cells)", 18,
                  sum(1 for c in testbed.iter_clusters() if c.is_dell)),
        paper_row("Infiniband clusters (mpigraph cells)", 12,
                  sum(1 for c in testbed.iter_clusters() if c.has_infiniband)),
        paper_row("network: ToR switches", "-", topology.switch_count),
        paper_row("network: site routers", 8, topology.router_count),
    ]
    print_table("E1: testbed inventory (slide 6)", rows)
    assert testbed.site_count == 8
    assert testbed.cluster_count == 32
    assert testbed.node_count == 894
    assert testbed.total_cores == 8490
    assert topology.router_count == 8
