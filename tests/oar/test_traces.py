"""Trace model, SWF/JSONL parsing, recording, and replay."""

import json

import pytest

from repro import run_scenario, scenarios
from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import (
    JobState,
    OarDatabase,
    OarServer,
    TraceRecord,
    TraceRecorder,
    TraceReplayConfig,
    TraceReplayGenerator,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadTrace,
    load_trace,
    parse_swf,
    save_trace,
)
from repro.oar.traces import builtin_trace_names, record_from_job, trace_to_swf
from repro.testbed import CLUSTER_SPECS, ReferenceApi, build_grid5000
from repro.util import DAY, HOUR, ParseError, RngStreams, Simulator


def make_world(seed=6, clusters=("grisou", "grimoire")):
    specs = [s for s in CLUSTER_SPECS if s.name in clusters]
    testbed = build_grid5000(specs)
    sim = Simulator()
    rngs = RngStreams(seed=seed)
    park = MachinePark.from_testbed(sim, testbed, rngs)
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()), park)
    return sim, oar, testbed, rngs


def simple_trace():
    return WorkloadTrace((
        TraceRecord(submit_s=100.0, nodes=2, walltime_s=3600.0, run_s=1800.0,
                    cluster="grisou", user="alice", job_id=1),
        TraceRecord(submit_s=40.0, nodes=1, walltime_s=1800.0, run_s=900.0,
                    cluster="grimoire", user="bob", job_id=2),
        TraceRecord(submit_s=250.0, nodes=4, walltime_s=7200.0, run_s=7200.0,
                    user="carol", job_id=3),
    ), name="simple")


# -- model ---------------------------------------------------------------------


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(submit_s=0.0, nodes=0, walltime_s=60.0, run_s=30.0)
    with pytest.raises(ValueError):
        TraceRecord(submit_s=0.0, nodes=1, walltime_s=0.0, run_s=30.0)


def test_trace_sorted_and_rebased():
    trace = simple_trace().sorted()
    assert [r.job_id for r in trace] == [2, 1, 3]
    rebased = trace.rebased()
    assert [r.submit_s for r in rebased] == [0.0, 60.0, 210.0]
    assert rebased.span_s == trace.span_s == 210.0


def test_time_scale_compresses_timestamps_not_durations():
    scaled = simple_trace().sorted().scaled(time_scale=0.5)
    assert [r.submit_s for r in scaled] == [20.0, 50.0, 125.0]
    assert [r.walltime_s for r in scaled] == [1800.0, 3600.0, 7200.0]


def test_load_scale_duplicates_and_thins_deterministically():
    trace = simple_trace().sorted()
    doubled = trace.scaled(load_scale=2.0)
    assert len(doubled) == 6
    assert [r.job_id for r in doubled] == [2, None, 1, None, 3, None]
    halved = trace.scaled(load_scale=0.5)
    assert len(halved) == 1  # every other record survives
    again = trace.scaled(load_scale=0.5)
    assert halved.records == again.records  # no RNG involved
    with pytest.raises(ValueError):
        trace.scaled(load_scale=0.0)


def test_stats_shape():
    stats = simple_trace().stats()
    assert stats["jobs"] == 3
    assert stats["nodes_max"] == 4
    assert stats["clusters"] == ["grimoire", "grisou"]
    assert stats["users"] == 3
    assert WorkloadTrace(()).stats() == {"jobs": 0, "span_s": 0.0}


# -- SWF parsing ---------------------------------------------------------------

_SWF_SAMPLE = """\
; UnixStartTime: 0
; MaxNodes: 128
1  0  10  3600  4 -1 -1  4  7200 -1 1 7 -1 -1 -1 -1 -1 -1
2 60  -1  1800  8 -1 -1 -1  3600 -1 1 9 -1 -1 -1 -1 -1 -1
3 90   5   600 -1 -1 -1 -1    -1 -1 0 3 -1 -1 -1 -1 -1 -1
4 120  0   900  2 -1 -1  2    -1 -1 1 4 -1 -1 -1 -1 -1 -1
"""


def test_parse_swf_maps_and_falls_back():
    trace = parse_swf(_SWF_SAMPLE, name="sample")
    # job 3 has no usable size (-1 requested and allocated): skipped
    assert [r.job_id for r in trace] == [1, 2, 4]
    first, second, third = trace.records
    assert (first.submit_s, first.nodes, first.walltime_s, first.run_s) == \
        (0.0, 4, 7200.0, 3600.0)
    assert second.nodes == 8          # requested -1 -> allocated
    assert third.walltime_s == 900.0  # requested time -1 -> run time
    assert first.user == "user7"


def test_parse_swf_rejects_malformed_lines():
    with pytest.raises(ParseError):
        parse_swf("1 2 3")
    with pytest.raises(ParseError):
        parse_swf("a b c d e f g h i j k l m n o p q r")


def test_swf_round_trip():
    trace = simple_trace().sorted().rebased()
    back = parse_swf(trace_to_swf(trace))
    assert len(back) == len(trace)
    # SWF has whole-second resolution and no cluster column
    assert [r.nodes for r in back] == [r.nodes for r in trace]
    assert [r.submit_s for r in back] == [0.0, 60.0, 210.0]


# -- JSONL persistence ---------------------------------------------------------


def test_jsonl_round_trip_is_exact(tmp_path):
    trace = simple_trace()
    path = tmp_path / "t.jsonl"
    save_trace(trace, path)
    back = load_trace(path)
    assert back.records == trace.records
    assert back.name == "simple"  # header carries the name


def test_jsonl_tolerates_torn_tail(tmp_path):
    trace = simple_trace()
    path = tmp_path / "t.jsonl"
    save_trace(trace, path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"submit_s": 1, "nodes":')  # killed mid-append
    back = load_trace(path)
    assert len(back) == 3


def test_load_trace_rejects_incomplete_record_cleanly(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"nodes": 1, "walltime_s": 5}\n', encoding="utf-8")
    with pytest.raises(ValueError, match="submit_s"):
        load_trace(path)


def test_load_trace_builtin_and_unknown():
    assert "tiny-g5k" in builtin_trace_names()
    trace = load_trace("tiny-g5k")
    assert len(trace) > 100
    assert trace.name == "tiny-g5k"
    with pytest.raises(FileNotFoundError):
        load_trace("no-such-trace")


# -- recording -----------------------------------------------------------------


def test_recorder_captures_generator_submissions():
    sim, oar, testbed, rngs = make_world()
    gen = WorkloadGenerator(sim, oar, testbed, rngs,
                            WorkloadConfig(target_utilization=0.4))
    recorder = TraceRecorder(gen, name="captured")
    gen.start()
    sim.run(until=12 * HOUR)
    assert len(recorder) == gen.submitted > 0
    trace = recorder.trace()
    for record, job in zip(trace, (oar.jobs[i] for i in sorted(oar.jobs))):
        assert record.submit_s == job.submitted_at
        assert record.walltime_s == job.walltime_s
        assert record.user == job.user
        assert record.cluster in ("grisou", "grimoire")


def test_record_from_job_resolves_all_nodes_requests():
    sim, oar, testbed, _ = make_world()
    job = oar.submit("cluster='grimoire'/nodes=ALL,walltime=1",
                     auto_duration=600.0)
    sim.run(until=1.0)
    record = record_from_job(job)
    assert record.nodes == testbed.cluster("grimoire").node_count
    # an unassigned ALL request has no concrete size: not recordable
    blocked = oar.submit("cluster='absent'/nodes=ALL,walltime=1")
    assert blocked.state == JobState.WAITING
    assert record_from_job(blocked) is None


# -- replay --------------------------------------------------------------------


def test_replay_submits_at_recorded_timestamps():
    sim, oar, testbed, _ = make_world()
    replay = TraceReplayGenerator(sim, oar, simple_trace(), testbed=testbed)
    replay.start()
    sim.run(until=DAY)
    assert replay.submitted == 3
    jobs = [oar.jobs[i] for i in sorted(oar.jobs)]
    # sorted + rebased: submissions at 0, 60, 210
    assert [j.submitted_at for j in jobs] == [0.0, 60.0, 210.0]
    assert [j.user for j in jobs] == ["bob", "alice", "carol"]
    assert [len(j.assigned_nodes) for j in jobs] == [1, 2, 4]
    assert all(j.state == JobState.TERMINATED for j in jobs)


def test_replay_clamps_unknown_cluster_and_oversize():
    sim, oar, testbed, _ = make_world(clusters=("grimoire",))  # 8 nodes
    trace = WorkloadTrace((
        TraceRecord(submit_s=0.0, nodes=4, walltime_s=3600.0, run_s=60.0,
                    cluster="paravance"),   # not in this world
        TraceRecord(submit_s=10.0, nodes=500, walltime_s=3600.0, run_s=60.0,
                    cluster="grimoire"),    # wider than the cluster
    ))
    replay = TraceReplayGenerator(sim, oar, trace, testbed=testbed)
    replay.start()
    sim.run(until=3 * HOUR)
    jobs = [oar.jobs[i] for i in sorted(oar.jobs)]
    assert jobs[0].request.parts[0].expr is None  # cluster pin dropped
    assert jobs[0].state == JobState.TERMINATED
    assert jobs[1].request.parts[0].count == 8    # clamped to cluster size
    assert jobs[1].state == JobState.TERMINATED


def test_replay_stop_is_prompt():
    sim, oar, testbed, _ = make_world()
    records = tuple(
        TraceRecord(submit_s=600.0 * i, nodes=1, walltime_s=1800.0, run_s=60.0,
                    cluster="grisou")
        for i in range(50))
    replay = TraceReplayGenerator(sim, oar, WorkloadTrace(records),
                                  testbed=testbed)
    replay.start()
    sim.run(until=3000.0)
    count = replay.submitted
    replay.stop()
    sim.run()
    assert replay.submitted == count


def test_replay_scales_apply():
    sim, oar, testbed, _ = make_world()
    replay = TraceReplayGenerator(sim, oar, simple_trace(), testbed=testbed,
                                  time_scale=0.5, load_scale=2.0)
    replay.start()
    sim.run(until=DAY)
    assert replay.submitted == 6
    times = sorted(j.submitted_at for j in oar.jobs.values())
    assert times == [0.0, 0.0, 30.0, 30.0, 105.0, 105.0]


# -- end to end through the scenario layer -------------------------------------


def test_trace_replay_config_spec_round_trip():
    spec = scenarios.get("trace-replay")
    assert isinstance(spec.workload, TraceReplayConfig)
    back = scenarios.ScenarioSpec.from_json(spec.to_json())
    assert back == spec
    assert back.content_hash() == spec.content_hash()


def test_recorded_run_replays_with_identical_job_count(tmp_path):
    """record -> save -> load -> replay: the replayed world sees exactly
    the recorded workload, and the replay is byte-deterministic."""
    from repro.oar.traces import record_scenario

    base = scenarios.get("tiny-smoke")
    trace = record_scenario(base, seed=2, months=0.05)
    path = tmp_path / "rec.jsonl"
    save_trace(trace, path)

    replay_spec = base.derive(
        name="tiny-replayed",
        workload=TraceReplayConfig(path=str(path)))
    fw1, report1 = run_scenario(replay_spec, seed=2, months=0.05)
    assert fw1.workload.submitted == len(trace)

    fw2, report2 = run_scenario(replay_spec, seed=2, months=0.05)
    assert json.dumps(report1.to_dict(), sort_keys=True) == \
        json.dumps(report2.to_dict(), sort_keys=True)


# -- allocated vs requested processors (SWF fields 5 and 8) --------------------


def test_parse_swf_carries_allocated_alongside_requested():
    trace = parse_swf(_SWF_SAMPLE, name="sample")
    first, second, third = trace.records
    assert (first.nodes, first.alloc_nodes) == (4, 4)
    assert (second.nodes, second.alloc_nodes) == (8, 8)  # req -1 -> alloc
    assert (third.nodes, third.alloc_nodes) == (2, 2)


def test_parse_swf_missing_alloc_is_none():
    line = "1 0 10 3600 -1 -1 -1 4 7200 -1 1 7 -1 -1 -1 -1 -1 -1"
    (rec,) = parse_swf(line).records
    assert rec.nodes == 4 and rec.alloc_nodes is None


def test_swf_round_trip_preserves_both_processor_fields():
    trace = WorkloadTrace((
        TraceRecord(submit_s=0.0, nodes=4, walltime_s=3600.0, run_s=600.0,
                    job_id=1, alloc_nodes=3),
        TraceRecord(submit_s=60.0, nodes=2, walltime_s=1800.0, run_s=300.0,
                    job_id=2),  # no allocation recorded
    ))
    text = trace_to_swf(trace)
    row1, row2 = [l.split() for l in text.splitlines()
                  if not l.startswith(";")]
    # field 5 (index 4) = allocated (falls back to requested), field 8
    # (index 7) = requested
    assert (row1[4], row1[7]) == ("3", "4")
    assert (row2[4], row2[7]) == ("2", "2")
    back = parse_swf(text)
    assert [(r.nodes, r.alloc_nodes) for r in back] == [(4, 3), (2, 2)]


def test_jsonl_round_trip_preserves_alloc_nodes(tmp_path):
    trace = WorkloadTrace((
        TraceRecord(submit_s=0.0, nodes=4, walltime_s=3600.0, run_s=600.0,
                    alloc_nodes=3),
        TraceRecord(submit_s=60.0, nodes=2, walltime_s=1800.0, run_s=300.0),
    ), name="alloc")
    path = tmp_path / "alloc.jsonl"
    save_trace(trace, path)
    back = load_trace(path)
    assert [(r.nodes, r.alloc_nodes) for r in back] == [(4, 3), (2, None)]
    # Records without an allocation serialize without the key at all, so
    # pre-existing JSONL traces remain byte-identical.
    docs = [json.loads(l) for l in path.read_text().splitlines()[1:]]
    assert "alloc_nodes" in docs[0] and "alloc_nodes" not in docs[1]


def test_scaling_preserves_alloc_nodes():
    trace = WorkloadTrace((
        TraceRecord(submit_s=10.0, nodes=4, walltime_s=3600.0, run_s=600.0,
                    alloc_nodes=3),
    ))
    scaled = trace.rebased().scaled(time_scale=0.5, load_scale=2.0)
    assert [r.alloc_nodes for r in scaled.records] == [3, 3]


# -- elastic replay ------------------------------------------------------------


def test_elastic_replay_widens_requests_into_ranges():
    sim, oar, testbed, _ = make_world()
    replay = TraceReplayGenerator(sim, oar, simple_trace(), testbed=testbed,
                                  elastic_min_scale=0.5,
                                  elastic_max_scale=2.0)
    replay.start()
    sim.run(until=DAY)
    jobs = [oar.jobs[i] for i in sorted(oar.jobs)]
    parts = [j.request.parts[0] for j in jobs]  # bob(1), alice(2), carol(4)
    assert [(p.min_nodes, p.count, p.max_nodes) for p in parts] == \
        [(1, 1, 2), (1, 2, 4), (2, 4, 8)]
    assert all(p.malleable for p in parts)
    # Placement stays at the preferred width.
    assert [len(j.assigned_nodes) for j in jobs] == [1, 2, 4]


def test_elastic_replay_clamps_range_to_cluster_size():
    sim, oar, testbed, _ = make_world(clusters=("grimoire",))  # 8 nodes
    trace = WorkloadTrace((
        TraceRecord(submit_s=0.0, nodes=6, walltime_s=3600.0, run_s=60.0,
                    cluster="grimoire"),
    ))
    replay = TraceReplayGenerator(sim, oar, trace, testbed=testbed,
                                  elastic_min_scale=0.5,
                                  elastic_max_scale=2.0)
    replay.start()
    sim.run(until=HOUR)
    (job,) = oar.jobs.values()
    part = job.request.parts[0]
    assert (part.min_nodes, part.count, part.max_nodes) == (3, 6, 8)


def test_default_scales_replay_rigid_requests():
    sim, oar, testbed, _ = make_world()
    replay = TraceReplayGenerator(sim, oar, simple_trace(), testbed=testbed)
    replay.start()
    sim.run(until=DAY)
    assert not any(j.request.parts[0].malleable for j in oar.jobs.values())


def test_trace_replay_config_validates_elastic_scales():
    with pytest.raises(ValueError, match="elastic_min_scale"):
        TraceReplayConfig(elastic_min_scale=1.5)
    with pytest.raises(ValueError, match="elastic_min_scale"):
        TraceReplayConfig(elastic_min_scale=0.0)
    with pytest.raises(ValueError, match="elastic_max_scale"):
        TraceReplayConfig(elastic_max_scale=0.5)


def test_elastic_burst_preset_round_trips():
    spec = scenarios.get("elastic-burst")
    assert spec.workload.elastic_min_scale == 0.5
    assert spec.workload.elastic_max_scale == 2.0
    back = scenarios.ScenarioSpec.from_json(spec.to_json())
    assert back == spec
