"""Tests for the grow/shrink protocol on malleable jobs.

Covers the mechanism layer (``OarServer.grow``/``shrink``/
``evict_dead_nodes``/``grow_candidates``): width bounds, the mass model
moving finish timers, generation guards against racing walltime kills,
node death inside a grown allocation, and Gantt truncation on early
release.
"""

import pytest

from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import JobState, OarDatabase, OarServer
from repro.oar.server import SchedulingError
from repro.testbed import CLUSTER_SPECS, ReferenceApi, build_grid5000
from repro.util import HOUR, RngStreams, Simulator


@pytest.fixture()
def world():
    """Small three-cluster testbed (nancy subset: 72 nodes) for speed."""
    specs = [s for s in CLUSTER_SPECS
             if s.name in ("grisou", "grimoire", "graoully")]
    testbed = build_grid5000(specs)
    sim = Simulator()
    park = MachinePark.from_testbed(sim, testbed, RngStreams(seed=5))
    db = OarDatabase(ReferenceApi(testbed), ServiceHealth())
    oar = OarServer(sim, db, park)
    return sim, oar, park, testbed


def _start_malleable(sim, oar, lo=2, pref=2, hi=6, walltime="4",
                     auto_duration=2 * HOUR):
    job = oar.submit(f"cluster='grisou'/nodes={lo}..{pref}..{hi},"
                     f"walltime={walltime}", auto_duration=auto_duration)
    sim.run(until=1.0)
    assert job.state == JobState.RUNNING
    return job


def test_malleable_job_places_at_preferred_width(world):
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=1, pref=3, hi=8)
    assert job.width == 3
    assert job.min_nodes == 1 and job.max_nodes == 8
    assert job.malleable


def test_grow_pulls_finish_in_under_linear_speedup(world):
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=2, pref=2, hi=6,
                           auto_duration=2 * HOUR)
    # At t=1h, half the work (2h * 2 nodes = 4 node-hours) is done.
    sim.run(until=HOUR)
    grown = oar.grow_candidates(job)[:2]
    oar.grow(job, grown)
    assert job.width == 4
    assert job.grow_count == 1
    sim.run()
    # Remaining 2 node-hours over 4 nodes: finish at 1h + 0.5h.
    assert job.state == JobState.TERMINATED
    assert not job.killed_by_walltime
    assert job.finished_at == pytest.approx(1.5 * HOUR)


def test_shrink_pushes_finish_out_and_frees_nodes(world):
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=1, pref=4, hi=4, walltime="8",
                           auto_duration=2 * HOUR)
    sim.run(until=HOUR)
    freed = oar.shrink(job, 2)
    assert len(freed) == 2 and job.width == 2
    assert job.shrink_count == 1
    sim.run()
    # 4 remaining node-hours over 2 nodes: finish at 1h + 2h.
    assert job.state == JobState.TERMINATED
    assert job.finished_at == pytest.approx(3 * HOUR)


def test_shrink_below_min_nodes_is_rejected(world):
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=2, pref=3, hi=6)
    with pytest.raises(SchedulingError, match="min_nodes"):
        oar.shrink(job, 2)  # 3 - 2 = 1 < min_nodes=2
    assert job.width == 3  # untouched


def test_grow_beyond_max_nodes_is_rejected(world):
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=2, pref=2, hi=3)
    candidates = oar.grow_candidates(job)
    with pytest.raises(SchedulingError, match="max_nodes"):
        oar.grow(job, candidates[:2])
    assert job.width == 2


def test_rigid_job_refuses_resize(world):
    sim, oar, _, _ = world
    job = oar.submit("cluster='grisou'/nodes=2,walltime=2",
                     auto_duration=HOUR)
    sim.run(until=1.0)
    assert not job.malleable
    with pytest.raises(SchedulingError, match="min_nodes"):
        oar.shrink(job, 1)  # min_nodes == width for rigid jobs


def test_grow_races_pending_walltime_kill(world):
    """A grow must invalidate the already-queued end-of-walltime event:
    the generation bump makes the stale timer a no-op, and the widened
    job finishes inside the walltime it was headed to bust."""
    sim, oar, _, _ = world
    # walltime 2h, work 2.5h * 2 nodes: on its own, killed at 2h with
    # 1 node-hour outstanding.
    job = _start_malleable(sim, oar, lo=2, pref=2, hi=6, walltime="2",
                           auto_duration=2.5 * HOUR)
    kill_generation = job.generation
    # At 1h, double the width: remaining 3 node-hours over 4 nodes ->
    # done at 1.75h, before the 2h deadline the old timer targets.
    sim.run(until=HOUR)
    oar.grow(job, oar.grow_candidates(job)[:2])
    assert job.generation > kill_generation
    sim.run()
    assert job.state == JobState.TERMINATED
    assert not job.killed_by_walltime
    assert job.finished_at == pytest.approx(1.75 * HOUR)


def test_shrink_outlives_stale_finish_timer(world):
    """After a shrink pushes the finish *out*, the original finish timer
    (still queued at the earlier time) must be a generation-guarded
    no-op — firing it would end the job with work outstanding."""
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=1, pref=4, hi=4, walltime="8",
                           auto_duration=HOUR)  # original finish at 1h
    sim.run(until=0.5 * HOUR)
    oar.shrink(job, 3)  # 2 node-hours left on 1 node: finish at 2.5h
    sim.run(until=HOUR + 60.0)  # past the stale timer
    assert job.state == JobState.RUNNING
    sim.run()
    assert job.state == JobState.TERMINATED
    assert not job.killed_by_walltime
    assert job.finished_at == pytest.approx(2.5 * HOUR)


def test_walltime_kill_still_fires_when_mass_outstanding(world):
    sim, oar, _, _ = world
    # Way too much work even after growing: must still be killed at 2h.
    job = _start_malleable(sim, oar, lo=2, pref=2, hi=4, walltime="2",
                           auto_duration=40 * HOUR)
    sim.run(until=HOUR)
    oar.grow(job, oar.grow_candidates(job)[:2])
    sim.run()
    assert job.killed_by_walltime
    assert job.finished_at == pytest.approx(2 * HOUR)


def test_node_death_in_grown_allocation_shrinks_past_it(world):
    sim, oar, park, _ = world
    job = _start_malleable(sim, oar, lo=2, pref=2, hi=6,
                           auto_duration=2 * HOUR)
    sim.run(until=HOUR)
    grown = oar.grow_candidates(job)[:2]
    oar.grow(job, grown)
    park[grown[0]].crash()
    assert oar.evict_dead_nodes(job)
    assert job.state == JobState.RUNNING
    assert grown[0] not in job.assigned_nodes
    assert job.width == 3
    sim.run()
    assert job.state == JobState.TERMINATED
    assert not job.killed_by_walltime


def test_node_death_below_min_requeues_at_fcfs_rank(world):
    """When deaths push a malleable job below min_nodes it is torn down
    and re-queued at its job-id rank, ahead of later-submitted waiters."""
    sim, oar, park, testbed = world
    n = testbed.cluster("graoully").node_count
    # One node down up front: whole-graoully waiters can never be placed.
    park[f"graoully-{n}"].crash()
    victim = oar.submit(
        f"cluster='graoully'/nodes=4..{n - 1}..{n - 1},walltime=8",
        auto_duration=6 * HOUR)                                         # id 1
    sim.run(until=1.0)
    assert victim.state == JobState.RUNNING and victim.malleable
    waiter_a = oar.submit(f"cluster='graoully'/nodes={n},walltime=1")   # id 2
    waiter_b = oar.submit(f"cluster='graoully'/nodes={n},walltime=1")   # id 3
    sim.run(until=HOUR)
    assert [j.job_id for j in oar._waiting] == [2, 3]
    # Kill the victim's whole allocation: below min_nodes=4, torn down.
    for uid in list(victim.assigned_nodes):
        park[uid].crash()
    assert oar.evict_dead_nodes(victim)
    assert victim.state == JobState.WAITING
    assert victim.started_at is None and victim.assignment == ()
    # Slotted *ahead* of the later-submitted waiters, not appended.
    assert [j.job_id for j in oar._waiting] == [1, 2, 3]
    assert waiter_a.state == JobState.WAITING
    assert waiter_b.state == JobState.WAITING


def test_shrink_truncates_reservation_so_node_is_reusable_now(world):
    """Early release must truncate the freed node's Gantt entry at now —
    the node is immediately placeable for another job, while the kept
    nodes stay reserved through the original deadline."""
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=1, pref=3, hi=3, walltime="4",
                           auto_duration=3 * HOUR)
    deadline = job.started_at + job.walltime_s
    sim.run(until=HOUR)
    now = sim.now
    (freed,) = oar.shrink(job, 1)
    assert oar.gantt.is_free(freed, now, deadline)
    for kept in job.assigned_nodes:
        assert not oar.gantt.is_free(kept, now, now + 1.0)
    # A new rigid job lands on the freed node right away.
    filler = oar.submit("cluster='grisou'/nodes=1,walltime=1",
                        auto_duration=600.0)
    sim.run(until=now + 1.0)
    assert filler.state == JobState.RUNNING
    assert filler.started_at == pytest.approx(now)


def test_grow_candidates_exclude_future_reservations(world):
    """Nodes idle right now but reserved before the grower's deadline are
    not candidates: growing must never displace a reservation."""
    sim, oar, _, testbed = world
    n = testbed.cluster("grisou").node_count
    job = _start_malleable(sim, oar, lo=2, pref=2, hi=n, walltime="4",
                           auto_duration=3 * HOUR)
    # Fill all but two grisou nodes for an hour...
    oar.submit(f"cluster='grisou'/nodes={n - 4},walltime=1",
               auto_duration=HOUR)
    # ...so this wide job reserves [1h, 2h] on n-2 nodes — including the
    # two currently-idle ones, which sit free until 1h.
    wide = oar.submit(f"cluster='grisou'/nodes={n - 2},walltime=1",
                      auto_duration=HOUR)
    sim.run(until=10.0)
    assert wide.state == JobState.SCHEDULED
    assert wide.scheduled_start == pytest.approx(HOUR, abs=2.0)
    # The two idle nodes are reserved at ~1h < the 4h deadline: excluded.
    assert oar.grow_candidates(job) == []


def test_resize_accounting_matches_alloc_integral(world):
    sim, oar, _, _ = world
    job = _start_malleable(sim, oar, lo=1, pref=2, hi=4,
                           auto_duration=2 * HOUR)
    sim.run(until=HOUR)
    oar.grow(job, oar.grow_candidates(job)[:2])  # 2 -> 4 nodes
    sim.run(until=1.25 * HOUR)
    oar.shrink(job, 3)  # 4 -> 1 node
    sim.run(until=1.5 * HOUR)
    # 2 nodes * 1h + 4 nodes * 0.25h + 1 node * 0.25h
    want = 2 * HOUR + 4 * 0.25 * HOUR + 1 * 0.25 * HOUR
    assert oar.allocated_node_seconds() == pytest.approx(want)
