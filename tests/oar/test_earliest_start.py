"""Property tests for the interval-sweep earliest-start search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oar import Gantt, Reservation
from repro.util import SchedulingError

_NODES = ["n1", "n2", "n3", "n4"]

_reservations = st.lists(
    st.tuples(
        st.sampled_from(_NODES),
        st.floats(0, 500, allow_nan=False),
        st.floats(1, 60, allow_nan=False),
    ),
    max_size=25,
)


def _build(raw):
    g = Gantt(_NODES)
    job = 0
    for uid, start, length in raw:
        job += 1
        try:
            g.timeline(uid).add(Reservation(start, start + length, job))
        except SchedulingError:
            pass
    return g


@given(_reservations, st.floats(0, 200, allow_nan=False),
       st.floats(1, 100, allow_nan=False), st.integers(1, 4))
@settings(max_examples=150)
def test_earliest_start_is_feasible(raw, after, duration, k):
    """At the returned time, >= k nodes really are free for the duration."""
    g = _build(raw)
    start = g.earliest_start(_NODES, after, duration, k)
    assert start is not None  # k <= len(nodes), all free eventually
    assert start >= after
    free = [u for u in _NODES if g.is_free(u, start, start + duration)]
    assert len(free) >= k


@given(_reservations, st.floats(0, 200, allow_nan=False),
       st.floats(1, 100, allow_nan=False), st.integers(1, 4))
@settings(max_examples=150)
def test_earliest_start_is_minimal_among_candidates(raw, after, duration, k):
    """No release point (or `after`) earlier than the answer also works."""
    g = _build(raw)
    start = g.earliest_start(_NODES, after, duration, k)
    for candidate in g.candidate_starts(_NODES, after):
        if candidate >= start:
            break
        free = [u for u in _NODES if g.is_free(u, candidate, candidate + duration)]
        assert len(free) < k, (
            f"sweep said {start} but {candidate} already fits {k} nodes")


def test_earliest_start_empty_gantt_is_now():
    g = Gantt(_NODES)
    assert g.earliest_start(_NODES, 5.0, 10.0, 4) == 5.0


def test_earliest_start_k_too_large():
    g = Gantt(_NODES)
    assert g.earliest_start(_NODES, 0.0, 10.0, 5) is None
    assert g.earliest_start(_NODES, 0.0, 10.0, 0) is None


def test_earliest_start_waits_for_release():
    g = Gantt(_NODES)
    for uid in _NODES:
        g.timeline(uid).add(Reservation(0.0, 100.0, 1))
    assert g.earliest_start(_NODES, 0.0, 10.0, 4) == 100.0


def test_earliest_start_uses_gap_between_reservations():
    g = Gantt(_NODES)
    g.timeline("n1").add(Reservation(0.0, 10.0, 1))
    g.timeline("n1").add(Reservation(50.0, 60.0, 2))
    # a 40s job fits the [10, 50) gap on n1
    assert g.earliest_start(["n1"], 0.0, 40.0, 1) == 10.0
    # a 41s job does not: next chance is after the second reservation
    assert g.earliest_start(["n1"], 0.0, 41.0, 1) == 60.0


def test_earliest_start_rejects_bad_duration():
    g = Gantt(_NODES)
    with pytest.raises(SchedulingError):
        g.earliest_start(_NODES, 0.0, 0.0, 1)


def test_earliest_start_exact_fit_window_tie():
    """A window exactly as long as the duration hosts exactly one start:
    the +1 and -1 sweep events share a coordinate, and the +1 must be
    counted first (kind 0 sorts before kind 1) or the only feasible start
    is missed."""
    g = Gantt(["n1"])
    g.timeline("n1").add(Reservation(10.0, 20.0, 1))
    # free window [0, 10) fits a 10s job only if it starts exactly at 0
    assert g.earliest_start(["n1"], 0.0, 10.0, 1) == 0.0


def test_earliest_start_equal_coordinate_handover_tie():
    """One node's last feasible start coincides with another node's first:
    at that shared coordinate both must count simultaneously."""
    g = Gantt(["n1", "n2"])
    g.timeline("n1").add(Reservation(10.0, 20.0, 1))   # n1 hosts in [0, 5]
    g.timeline("n2").add(Reservation(0.0, 5.0, 2))     # n2 hosts from 5 on
    # duration 5, k=2: only t=5 sees both nodes free over [5, 10)
    assert g.earliest_start(["n1", "n2"], 0.0, 5.0, 2) == 5.0
    assert g.is_free("n1", 5.0, 10.0) and g.is_free("n2", 5.0, 10.0)


@given(_reservations, st.floats(0, 200, allow_nan=False),
       st.floats(1, 100, allow_nan=False), st.integers(1, 4))
@settings(max_examples=150)
def test_earliest_start_cache_is_transparent(raw, after, duration, k):
    """A shared intervals cache never changes the answer — across many
    searches at one instant and with whatever walltimes."""
    g = _build(raw)
    cache = {}
    for dur in (duration, duration * 2.0, 1.0):
        want = g.earliest_start(_NODES, after, dur, k)
        got = g.earliest_start(_NODES, after, dur, k, intervals_cache=cache)
        assert got == want


@given(_reservations, st.floats(0, 200, allow_nan=False),
       st.floats(1, 100, allow_nan=False))
@settings(max_examples=150)
def test_whole_cluster_fixpoint_matches_sweep(raw, after, duration):
    """k == n takes the next_fit fixpoint path; a (k == n - 1) + one-free-
    node cross-check pins it against the generic sweep."""
    g = _build(raw)
    start = g.earliest_start(_NODES, after, duration, len(_NODES))
    assert start is not None and start >= after
    assert all(g.is_free(u, start, start + duration) for u in _NODES)
    # minimality against every earlier candidate boundary
    for candidate in g.candidate_starts(_NODES, after):
        if candidate >= start:
            break
        assert not all(g.is_free(u, candidate, candidate + duration)
                       for u in _NODES)
