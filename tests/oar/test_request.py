"""Tests for the oarsub -l request parser (unit + property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oar import (
    ALL_NODES,
    BoolOp,
    Comparison,
    NotOp,
    parse_expression,
    parse_request,
)
from repro.util import HOUR, MINUTE, ParseError


# -- unit: expressions ------------------------------------------------------


def test_simple_comparison():
    expr = parse_expression("cluster='grisou'")
    assert expr == Comparison("cluster", "=", "grisou")


def test_numeric_comparison():
    expr = parse_expression("memnode>=65536")
    assert expr.evaluate({"memnode": 131072})
    assert not expr.evaluate({"memnode": 1024})


def test_float_value():
    assert parse_expression("freq=2.4").evaluate({"freq": 2.4})


def test_and_or_precedence():
    expr = parse_expression("a='1' or b='2' and c='3'")
    # and binds tighter: a='1' or (b='2' and c='3')
    assert isinstance(expr, BoolOp) and expr.op == "or"
    assert isinstance(expr.right, BoolOp) and expr.right.op == "and"


def test_parentheses_override_precedence():
    expr = parse_expression("(a='1' or b='2') and c='3'")
    assert isinstance(expr, BoolOp) and expr.op == "and"


def test_not_operator():
    expr = parse_expression("not gpu='YES'")
    assert isinstance(expr, NotOp)
    assert expr.evaluate({"gpu": "NO"})
    assert not expr.evaluate({"gpu": "YES"})


def test_missing_property_is_false():
    expr = parse_expression("gpu='YES'")
    assert not expr.evaluate({})


def test_type_mismatch_is_false_not_error():
    expr = parse_expression("memnode>=64")
    assert not expr.evaluate({"memnode": "lots"})


def test_all_comparison_operators():
    props = {"x": 5}
    assert parse_expression("x=5").evaluate(props)
    assert parse_expression("x!=4").evaluate(props)
    assert parse_expression("x<6").evaluate(props)
    assert parse_expression("x<=5").evaluate(props)
    assert parse_expression("x>4").evaluate(props)
    assert parse_expression("x>=5").evaluate(props)


def test_garbage_raises_parse_error():
    for bad in ("", "cluster=", "= 'x'", "cluster='a' and", "a='1' ; b='2'",
                "(a='1'", "a='1')"):
        with pytest.raises(ParseError):
            parse_expression(bad)


def test_parse_error_reports_position():
    with pytest.raises(ParseError) as err:
        parse_expression("cluster='a' @@ b='2'")
    assert err.value.position >= 0


# -- unit: full requests ------------------------------------------------------


def test_paper_example_request():
    """The exact oarsub line from slide 7."""
    req = parse_request(
        "cluster='a' and gpu='YES'/nodes=1"
        "+cluster='b' and eth10g='Y'/nodes=2,walltime=2"
    )
    assert len(req.parts) == 2
    assert req.parts[0].count == 1
    assert req.parts[1].count == 2
    assert req.walltime_s == 2 * HOUR
    assert req.parts[0].expr.evaluate({"cluster": "a", "gpu": "YES"})
    assert not req.parts[0].expr.evaluate({"cluster": "a", "gpu": "NO"})


def test_bare_nodes_request():
    req = parse_request("nodes=4")
    assert req.parts[0].expr is None
    assert req.parts[0].count == 4
    assert req.walltime_s == HOUR  # default


def test_nodes_all():
    req = parse_request("cluster='grisou'/nodes=ALL,walltime=1:30")
    assert req.parts[0].count == ALL_NODES
    assert req.walltime_s == HOUR + 30 * MINUTE


def test_walltime_hms():
    assert parse_request("nodes=1,walltime=2:30:15").walltime_s == \
        2 * HOUR + 30 * MINUTE + 15


def test_walltime_fractional_hours():
    assert parse_request("nodes=1,walltime=1.5").walltime_s == 1.5 * HOUR


def test_zero_node_count_rejected():
    with pytest.raises(ParseError):
        parse_request("nodes=0")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_request("nodes=1 nodes=2")


def test_request_round_trip_paper_example():
    text = ("cluster='a' and gpu='YES'/nodes=1"
            "+cluster='b' and eth10g='Y'/nodes=2,walltime=2")
    req = parse_request(text)
    assert parse_request(str(req)) == req


# -- property-based: render/parse round-trip ------------------------------------

_names = st.sampled_from(["cluster", "site", "gpu", "eth10g", "memnode", "ib", "disktype"])
_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_values = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.text(alphabet="abcdefghij0123456789_", min_size=1, max_size=8),
)


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return Comparison(draw(_names), draw(_ops), draw(_values))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return NotOp(draw(expressions(depth + 1)))
    return BoolOp(kind, draw(expressions(depth + 1)), draw(expressions(depth + 1)))


@given(expressions())
def test_expression_str_round_trips(expr):
    assert parse_expression(str(expr)) == expr


@given(expressions(), st.dictionaries(_names, _values, max_size=5))
def test_evaluation_matches_after_round_trip(expr, props):
    reparsed = parse_expression(str(expr))
    assert reparsed.evaluate(props) == expr.evaluate(props)


@given(
    st.lists(
        st.tuples(expressions(), st.one_of(st.integers(1, 500), st.just(ALL_NODES))),
        min_size=1, max_size=4,
    ),
    st.integers(min_value=60, max_value=48 * 3600),
)
def test_request_str_round_trips(parts, walltime):
    from repro.oar import JobRequest, RequestPart

    req = JobRequest(
        tuple(RequestPart(e, c) for e, c in parts), float(walltime)
    )
    assert parse_request(str(req)) == req


# -- unit: elastic width ranges ------------------------------------------------


def test_elastic_range_two_values():
    """``lo..hi`` anchors the preferred width at the minimum."""
    req = parse_request("nodes=2..8")
    part = req.parts[0]
    assert (part.min_nodes, part.count, part.max_nodes) == (2, 2, 8)
    assert part.malleable


def test_elastic_range_three_values():
    req = parse_request("cluster='grisou'/nodes=2..4..8,walltime=2")
    part = req.parts[0]
    assert (part.min_nodes, part.count, part.max_nodes) == (2, 4, 8)
    assert part.malleable


def test_rigid_part_degenerate_bounds():
    part = parse_request("nodes=4").parts[0]
    assert (part.min_nodes, part.count, part.max_nodes) == (4, 4, 4)
    assert not part.malleable


def test_degenerate_range_normalizes_to_rigid():
    """``nodes=3..3`` is a point range: identical to ``nodes=3``."""
    assert parse_request("nodes=3..3") == parse_request("nodes=3")
    assert parse_request("nodes=3..3..3") == parse_request("nodes=3")


def test_elastic_range_round_trips():
    for text in ("nodes=2..8", "nodes=2..4..8",
                 "cluster='a'/nodes=1..2..3,walltime=1:30"):
        req = parse_request(text)
        assert parse_request(str(req)) == req


def test_elastic_range_bad_ordering_rejected():
    for bad in ("nodes=8..2", "nodes=4..2..8", "nodes=2..9..8",
                "nodes=0..4", "nodes=2..4..8..16"):
        with pytest.raises(ParseError):
            parse_request(bad)


def test_all_cannot_appear_in_a_range():
    for bad in ("nodes=ALL..8", "nodes=2..ALL", "nodes=2..4..ALL"):
        with pytest.raises(ParseError):
            parse_request(bad)


def test_request_part_validates_bounds():
    from repro.oar import RequestPart

    with pytest.raises(ValueError):
        RequestPart(None, 4, min_count=5, max_count=8)  # count < min
    with pytest.raises(ValueError):
        RequestPart(None, 4, min_count=2, max_count=3)  # count > max
    with pytest.raises(ValueError):
        RequestPart(None, ALL_NODES, min_count=1, max_count=2)  # ALL range


@given(
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
)
def test_elastic_range_str_round_trips(pref, below, above):
    lo, hi = max(1, pref - below), pref + above
    req = parse_request(f"nodes={lo}..{pref}..{hi}")
    part = req.parts[0]
    assert (part.min_nodes, part.count, part.max_nodes) == (lo, pref, hi)
    assert parse_request(str(req)) == req
