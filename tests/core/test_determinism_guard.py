"""Determinism guard: seeded campaigns must be byte-for-byte reproducible.

The golden hashes below were recorded with the *pre-fast-path* event
kernel (PR 4 state) and re-verified unchanged after the kernel overhaul:
the timeout fast path, the lazy-cancelled heap entries, the instant-queue
split, the scheduler's batched ``earliest_start`` and the monitoring
series handles all preserve the exact (time, seq) execution order.

If this test fails, a change altered simulation *behaviour*, not just
performance.  That can be a legitimate semantic change — in which case
regenerate the goldens (see the command in ``_regenerate``) and say so in
the PR — but it must never happen as a side effect of an optimization.
"""

import hashlib
import json

from repro import run_scenario, scenarios

#: (preset, seed, months) -> sha256 of the canonical report JSON.
GOLDEN_REPORT_HASHES = {
    ("tiny-smoke", 0, 0.35):
        "0845dea4fcfd13da451d159a406686625679acc97e3dd9a2baa016140f1db965",
    ("tiny-smoke", 7, 0.35):
        "b1eb3bb3d3a095308bf5f43695117c717f6e1ffc1055e363ab1d42db7b8f354c",
    ("trace-replay", 0, 0.12):
        "91ea40873affcb7ea1a1bccbd3fb63c0e0ced3d48a3ae5d0bb16d1eac959059c",
    ("bursty-replay", 0, 0.12):
        "05c54040f0f1391786d8fc188b94afb7f806b63862ee72a58204ae907c99461a",
}


def report_hash(report) -> str:
    """Canonical content hash of a campaign report (sorted keys, no
    whitespace) — any behavioural drift anywhere in the stack lands in
    some report field and changes this."""
    doc = json.dumps(report.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def _regenerate():  # pragma: no cover - manual tool
    """python -c "import sys; sys.path[:0] = ['src', 'tests/core']; \
from test_determinism_guard import _regenerate; _regenerate()"
    """
    for (name, seed, months) in GOLDEN_REPORT_HASHES:
        _, rep = run_scenario(scenarios.get(name), seed=seed, months=months)
        print(f'    ("{name}", {seed}, {months}):\n'
              f'        "{report_hash(rep)}",')


def test_reports_match_pre_fast_path_goldens():
    for (name, seed, months), want in GOLDEN_REPORT_HASHES.items():
        _, report = run_scenario(scenarios.get(name), seed=seed, months=months)
        got = report_hash(report)
        assert got == want, (
            f"{name} @ seed {seed} ({months} months) drifted from the "
            f"golden report: {got} != {want} — simulation behaviour "
            f"changed, not just speed")


def test_repeated_run_is_byte_identical():
    spec = scenarios.get("tiny-smoke")
    _, first = run_scenario(spec, seed=3, months=0.1)
    _, second = run_scenario(spec, seed=3, months=0.1)
    assert report_hash(first) == report_hash(second)
