"""Monitoring services: Ganglia system probes and kwapi power probes.

* :class:`Ganglia` samples per-node system metrics (CPU load, memory) —
  slide 9's "system-level probes".
* :class:`Kwapi` measures power per **PDU outlet** and maps outlets back to
  nodes using the *documented* wiring from the Reference API.  When a
  cabling fault swapped two power cables, kwapi faithfully reports the
  *wrong node's* consumption — the exact slide-13 bug ("cabling issue ⇒
  wrong measurements by testbed monitoring service").  A site under
  ``KWAPI_DOWN`` returns no measurements at all.
"""

from __future__ import annotations

from typing import Optional

from ..faults.services import ServiceHealth
from ..nodes.machine import MachinePark
from ..testbed.description import TestbedDescription
from ..util.events import Simulator
from .metrics import MetricStore

__all__ = ["Ganglia", "Kwapi"]


class Ganglia:
    """System-level metric collection."""

    def __init__(self, sim: Simulator, machines: MachinePark,
                 store: Optional[MetricStore] = None, period_s: float = 60.0):
        self.sim = sim
        self.machines = machines
        self.store = store if store is not None else MetricStore()
        self.period_s = period_s
        self._running = False

    def sample_node(self, uid: str) -> dict[str, float]:
        """One on-demand sample of a node's system metrics."""
        machine = self.machines[uid]
        metrics = {
            "cpu_load": machine.cpu_load,
            "mem_total_gb": float(machine.actual.ram_gb),
            "up": 1.0 if machine.available else 0.0,
        }
        for name, value in metrics.items():
            self.store.record(f"{uid}.{name}", self.sim.now, value)
        return metrics

    def start(self, node_uids: Optional[list[str]] = None) -> None:
        """Start periodic sampling (all nodes by default)."""
        if self._running:
            return
        self._running = True
        uids = node_uids if node_uids is not None else sorted(self.machines.machines)
        self.sim.process(self._run(uids), name="ganglia")

    def stop(self) -> None:
        self._running = False

    def _run(self, uids: list[str]):
        while self._running:
            for uid in uids:
                self.sample_node(uid)
            yield self.sim.timeout(self.period_s)


class Kwapi:
    """Power monitoring through PDU outlets."""

    def __init__(self, sim: Simulator, machines: MachinePark,
                 testbed: TestbedDescription, services: ServiceHealth,
                 store: Optional[MetricStore] = None):
        self.sim = sim
        self.machines = machines
        self.services = services
        self.store = store if store is not None else MetricStore()
        #: documented wiring: (pdu uid, port) -> node uid
        self._documented: dict[tuple[str, int], str] = {}
        self._site_of: dict[str, str] = {}
        for node in testbed.iter_nodes():
            self._documented[(node.pdu.pdu_uid, node.pdu.port)] = node.uid
            self._site_of[node.uid] = node.site

    def outlet_watts(self, pdu_uid: str, port: int) -> Optional[float]:
        """Raw measurement of one outlet: the draw of whatever machine is
        *actually* cabled there."""
        for machine in self.machines.machines.values():
            if (machine.actual.pdu_uid, machine.actual.pdu_port) == (pdu_uid, port):
                return machine.power_draw_watts()
        return None  # outlet not wired

    def node_power_watts(self, node_uid: str) -> Optional[float]:
        """What the monitoring service *reports* for a node.

        Looks up the node's documented outlet and measures it; if cables
        were swapped this returns the neighbour's consumption.  Returns
        None when the site's kwapi is down or the outlet reads nothing.
        """
        if self._site_of.get(node_uid) in self.services.kwapi_down:
            return None
        desc_outlet = None
        for (pdu, port), uid in self._documented.items():
            if uid == node_uid:
                desc_outlet = (pdu, port)
                break
        if desc_outlet is None:
            return None
        value = self.outlet_watts(*desc_outlet)
        if value is not None:
            self.store.record(f"{node_uid}.power_w", self.sim.now, value)
        return value

    def true_power_watts(self, node_uid: str) -> float:
        """Ground truth (not available to the real service; used by tests
        to quantify the reporting error a cable swap introduces)."""
        return self.machines[node_uid].power_draw_watts()
