"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class ParseError(ReproError):
    """A resource-expression (``oarsub -l``) string could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if position >= 0:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class SchedulingError(ReproError):
    """A job request cannot be satisfied by the resource manager."""


class DeploymentError(ReproError):
    """A Kadeploy deployment failed in a non-recoverable way."""


class VlanError(ReproError):
    """Invalid VLAN allocation or reconfiguration request."""


class ReferenceApiError(ReproError):
    """Lookup or version error in the Reference API store."""


class MonitoringError(ReproError):
    """Invalid probe registration or metric query."""


class CiError(ReproError):
    """Invalid Jenkins-server operation (unknown job, bad state, ...)."""


class CheckError(ReproError):
    """A check script was invoked with an invalid context."""


class FaultError(ReproError):
    """Invalid fault-injection request (unknown kind, bad target, ...)."""
