"""Deterministic chaos: a fault-injecting wrapper for any ``Transport``.

:class:`ChaosTransport` sits between a :class:`~repro.service.session.Session`
(or a client) and its real transport and, driven by a seeded RNG schedule,
perturbs the line stream the way a degrading network would:

* ``conn-drop``   — close the inner transport mid-exchange (on the send
  side the victim line goes out torn: a prefix with no newline, then EOF);
* ``line-garbage`` — deliver a non-protocol line *before* the real one;
* ``line-split``  — deliver the real line in two halves (two reads);
* ``line-dup``    — deliver the real line twice;
* ``line-delay``  — sleep before delivering, to exercise heartbeats.

The schedule lives in a :class:`ChaosPlan`: one seeded stream, one fault
budget, one event log — *shared across reconnects*, so a convergence test
wraps every successive connection of a resilient client in the same plan
and knows chaos eventually stops (the budget drains) and the run completes.
Every draw is recorded in :attr:`ChaosPlan.events`, which doubles as the
chaos log artifact CI uploads.

Fault kinds and weights come from
:data:`~repro.faults.catalog.TRANSPORT_FAULT_SPECS`, so the service-layer
fault vocabulary is catalogued next to the in-world one.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..faults.catalog import TRANSPORT_FAULT_SPECS, FaultKind
from ..util.rng import RngStreams
from .protocol import MAX_LINE_BYTES
from .session import SessionClosed, Transport

__all__ = ["ChaosConfig", "ChaosPlan", "ChaosTransport"]

#: Kinds eligible per direction.  Receive-side chaos can corrupt content
#: (the peer's session answers ERR and resynchronizes); send-side chaos is
#: limited to timing and death — content corruption of our *own* outgoing
#: lines would make the victim's recovery depend on how the peer parses
#: trash, which is the peer's convergence problem, not this side's.
_RECV_KINDS = (FaultKind.CONN_DROP, FaultKind.LINE_GARBAGE,
               FaultKind.LINE_SPLIT, FaultKind.LINE_DUP,
               FaultKind.LINE_DELAY)
_SEND_KINDS = (FaultKind.CONN_DROP, FaultKind.LINE_DELAY)

#: Garbage menu: ill-formed, ill-timed, empty, and oversized — one line
#: per ERR path a session can take (verb / proto / state / toobig).
_GARBAGE = (
    "%% chaos noise: not a protocol line %%",
    "BOGUS 1 2 3",
    "REDY",
    "",
    "X" * (MAX_LINE_BYTES + 16),
)


@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible chaos schedule.

    ``fault_rate`` is the per-line probability of injecting a fault while
    the ``max_faults`` budget lasts; once the budget is spent the
    transport turns transparent, which is what lets convergence tests
    terminate.  ``delay_s`` bounds the ``line-delay`` sleep.
    """

    seed: int = 0
    fault_rate: float = 0.1
    max_faults: int = 10
    delay_s: float = 0.02


@dataclass
class _ChaosEvent:
    """One injected fault, for the chaos log artifact."""

    op: int
    direction: str
    kind: str
    detail: str = ""

    def to_doc(self) -> dict:
        return {"op": self.op, "direction": self.direction,
                "kind": self.kind, "detail": self.detail}


class ChaosPlan:
    """Seeded fault schedule shared across a client's reconnects.

    Thread-safe: the server handler and the test's client thread may both
    consult the plan.  Draws come from a dedicated
    :class:`~repro.util.rng.RngStreams` stream (detlint DET003-clean).
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._lock = threading.Lock()
        self._rng = RngStreams(config.seed).stream("chaos-transport")
        self.ops = 0
        self.injected = 0
        self.events: list[_ChaosEvent] = []
        self._menus = {}
        for direction, kinds in (("recv", _RECV_KINDS), ("send", _SEND_KINDS)):
            weights = [TRANSPORT_FAULT_SPECS[k].weight for k in kinds]
            total = sum(weights)
            self._menus[direction] = (kinds, [w / total for w in weights])

    def draw(self, direction: str) -> FaultKind | None:
        """Decide whether (and how) to perturb the next line."""
        with self._lock:
            self.ops += 1
            if self.injected >= self.config.max_faults:
                return None
            if float(self._rng.random()) >= self.config.fault_rate:
                return None
            kinds, probs = self._menus[direction]
            kind = kinds[int(self._rng.choice(len(kinds), p=probs))]
            self.injected += 1
            self.events.append(
                _ChaosEvent(op=self.ops, direction=direction,
                            kind=kind.value))
            return kind

    def pick(self, n: int) -> int:
        """Deterministic index draw (garbage menu, split point, ...)."""
        with self._lock:
            return int(self._rng.integers(n))

    def annotate(self, detail: str) -> None:
        """Attach human-readable detail to the most recent event."""
        with self._lock:
            if self.events:
                self.events[-1].detail = detail

    def log_docs(self) -> list[dict]:
        """The event log as JSON-ready documents (the CI artifact body)."""
        with self._lock:
            return [event.to_doc() for event in self.events]


class ChaosTransport(Transport):
    """Wrap ``inner`` and perturb its line stream per the plan.

    Wrap the *client's* transport to attack both directions of one
    conversation: recv-side faults corrupt what the client hears, and
    send-side faults tear what it says.  One instance per connection;
    the plan persists across reconnects.
    """

    def __init__(self, inner: Transport, plan: ChaosPlan):
        self.inner = inner
        self.plan = plan
        #: Lines already materialized by split/garbage/dup faults.
        self._pending: deque[str] = deque()

    def recv_line(self) -> str:
        if self._pending:
            return self._pending.popleft()
        line = self.inner.recv_line()
        kind = self.plan.draw("recv")
        if kind is None:
            return line
        if kind is FaultKind.CONN_DROP:
            self.plan.annotate("closed while a line was in flight")
            self.inner.close()
            raise SessionClosed("chaos: connection dropped")
        if kind is FaultKind.LINE_GARBAGE:
            garbage = _GARBAGE[self.plan.pick(len(_GARBAGE))]
            self.plan.annotate(f"{len(garbage)}B of noise before the line")
            self._pending.append(line)
            return garbage
        if kind is FaultKind.LINE_SPLIT:
            cut = max(1, len(line) // 2)
            self.plan.annotate(f"line split at byte {cut}")
            self._pending.append(line[cut:])
            return line[:cut]
        if kind is FaultKind.LINE_DUP:
            self.plan.annotate("line delivered twice")
            self._pending.append(line)
            return line
        self.plan.annotate(f"delivery delayed {self.plan.config.delay_s}s")
        time.sleep(self.plan.config.delay_s)
        return line

    def send_line(self, line: str) -> None:
        kind = self.plan.draw("send")
        if kind is FaultKind.CONN_DROP:
            # Torn write: a prefix with no newline, then the connection
            # dies.  The peer's framing buffer discards the tail at EOF.
            cut = max(1, len(line) // 2)
            self.plan.annotate(f"torn after byte {cut} of {len(line)}")
            try:
                self.inner.send_raw(line[:cut])
            except (SessionClosed, AttributeError):
                pass  # already dead, or a transport with no raw seam
            self.inner.close()
            raise SessionClosed("chaos: connection dropped mid-send")
        if kind is FaultKind.LINE_DELAY:
            self.plan.annotate(f"send delayed {self.plan.config.delay_s}s")
            time.sleep(self.plan.config.delay_s)
        self.inner.send_line(line)

    def close(self) -> None:
        self.inner.close()
