"""Tests for the status page rendering and rollups."""

import pytest

from repro.analysis import BuildHistory, StatusPage
from repro.analysis.history import BuildRecord
from repro.testbed import CLUSTER_SPECS, build_grid5000
from repro.util import DAY


def rec(t, family, cluster=None, site="nancy", status="SUCCESS", key=None):
    return BuildRecord(finished_at=t, family=family, site=site, cluster=cluster,
                       config_key=key or (f"cluster={cluster}" if cluster
                                          else f"site={site}"),
                       status=status, duration_s=60.0)


@pytest.fixture()
def page():
    specs = [s for s in CLUSTER_SPECS if s.name in ("grisou", "grimoire")]
    testbed = build_grid5000(specs)
    history = BuildHistory()
    history.records.extend([
        rec(1 * DAY, "refapi", cluster="grisou"),
        rec(2 * DAY, "refapi", cluster="grimoire", status="FAILURE"),
        rec(1 * DAY, "oarstate", site="nancy"),
        rec(2 * DAY, "environments", cluster="grisou",
            key="cluster=grisou|image=debian8-min"),
        rec(2 * DAY, "environments", cluster="grisou", status="FAILURE",
            key="cluster=grisou|image=centos7-min"),
    ])
    return StatusPage(history, testbed)


def test_grid_latest_status(page):
    grid = page.grid()
    assert grid["refapi"]["grisou"].status == "SUCCESS"
    assert grid["refapi"]["grimoire"].status == "FAILURE"
    assert grid["oarstate"]["nancy"].status == "SUCCESS"


def test_grid_rolls_up_pessimistically(page):
    # environments has one SUCCESS and one FAILURE cell on grisou
    assert page.grid()["environments"]["grisou"].status == "FAILURE"


def test_per_family_view(page):
    view = page.per_family_status("refapi")
    assert view == {"grisou": "SUCCESS", "grimoire": "FAILURE"}


def test_per_cluster_view_includes_site_scoped_families(page):
    view = page.per_cluster_status("grisou")
    assert view["refapi"] == "SUCCESS"
    assert view["oarstate"] == "SUCCESS"  # site-level row applies
    assert view["environments"] == "FAILURE"


def test_render_ascii(page):
    text = page.render(now=3 * DAY)
    assert "refapi" in text
    assert "grisou" in text
    assert "X" in text and "O" in text
    assert "legend" in text


def test_render_trend(page):
    text = page.render_trend(until=3 * DAY)
    assert "weekly success rate" in text
    assert "%" in text


def test_grid_respects_since(page):
    recent = page.grid(since=1.5 * DAY)
    assert "oarstate" not in recent  # only ran on day 1
    assert recent["refapi"]["grimoire"].status == "FAILURE"
