"""Unit tests for canonical JSON and deep diffing."""

from repro.util import (
    canonical_json,
    content_hash,
    decode_dataclass,
    deep_diff,
    deep_get,
    encode_dataclass,
)


def test_canonical_json_sorts_keys():
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


def test_content_hash_stable_under_key_order():
    assert content_hash({"x": 1, "y": [1, 2]}) == content_hash({"y": [1, 2], "x": 1})


def test_content_hash_changes_with_content():
    assert content_hash({"x": 1}) != content_hash({"x": 2})


def test_diff_identical_is_empty():
    doc = {"a": {"b": [1, 2, {"c": 3}]}}
    assert deep_diff(doc, doc) == []


def test_diff_changed_scalar():
    (entry,) = deep_diff({"a": 1}, {"a": 2})
    assert (entry.path, entry.kind, entry.old, entry.new) == ("a", "changed", 1, 2)


def test_diff_added_and_removed_keys():
    entries = deep_diff({"a": 1}, {"b": 2})
    kinds = {e.path: e.kind for e in entries}
    assert kinds == {"a": "removed", "b": "added"}


def test_diff_nested_path():
    (entry,) = deep_diff({"cpu": {"freq": 2.2}}, {"cpu": {"freq": 2.4}})
    assert entry.path == "cpu.freq"


def test_diff_list_element():
    (entry,) = deep_diff({"disks": [{"fw": "A1"}]}, {"disks": [{"fw": "B2"}]})
    assert entry.path == "disks[0].fw"


def test_diff_list_length_change():
    entries = deep_diff({"d": [1]}, {"d": [1, 2]})
    assert [(e.path, e.kind) for e in entries] == [("d[1]", "added")]


def test_diff_type_change_is_changed():
    (entry,) = deep_diff({"v": 1}, {"v": "1"})
    assert entry.kind == "changed"


def test_diff_str_rendering():
    entries = deep_diff({"a": 1, "b": 2}, {"a": 3, "c": 4})
    rendered = sorted(str(e)[0] for e in entries)
    assert rendered == ["+", "-", "~"]


def test_deep_get_simple():
    assert deep_get({"a": {"b": 5}}, "a.b") == 5


def test_deep_get_list_index():
    assert deep_get({"a": {"b": [10, 20]}}, "a.b[1]") == 20


def test_deep_get_nested_lists():
    assert deep_get({"m": [[1, 2], [3, 4]]}, "m[1][0]") == 3


def test_deep_get_missing_returns_default():
    assert deep_get({"a": 1}, "a.b.c", default="missing") == "missing"
    assert deep_get({"a": [1]}, "a[5]", default=None) is None


def test_deep_get_path_from_diff_round_trip():
    old = {"node": {"disks": [{"firmware": "GA07"}], "ram_gb": 64}}
    new = {"node": {"disks": [{"firmware": "GA09"}], "ram_gb": 64}}
    (entry,) = deep_diff(old, new)
    assert deep_get(old, entry.path) == "GA07"
    assert deep_get(new, entry.path) == "GA09"


# -- dataclass codec -----------------------------------------------------------


def test_encode_decode_nested_dataclass():
    from dataclasses import dataclass, field
    from typing import Optional

    from repro.util import decode_dataclass, encode_dataclass

    @dataclass(frozen=True)
    class Inner:
        rate: float = 1.0
        on: bool = True

    @dataclass(frozen=True)
    class Outer:
        name: str = "x"
        tags: Optional[tuple[str, ...]] = None
        inner: Inner = field(default_factory=Inner)

    outer = Outer(name="y", tags=("a", "b"), inner=Inner(rate=2.5, on=False))
    doc = encode_dataclass(outer)
    assert doc == {"name": "y", "tags": ["a", "b"],
                   "inner": {"rate": 2.5, "on": False}}
    again = decode_dataclass(Outer, doc)
    assert again == outer
    assert isinstance(again.tags, tuple)
    assert isinstance(again.inner, Inner)


def test_decode_promotes_int_to_float():
    from dataclasses import dataclass

    from repro.util import decode_dataclass

    @dataclass(frozen=True)
    class Cfg:
        ratio: float = 0.5

    cfg = decode_dataclass(Cfg, {"ratio": 2})
    assert cfg.ratio == 2.0 and isinstance(cfg.ratio, float)


def test_decode_rejects_unknown_and_mistyped():
    from dataclasses import dataclass

    import pytest

    from repro.util import decode_dataclass

    @dataclass(frozen=True)
    class Cfg:
        count: int = 1

    with pytest.raises(ValueError, match="bogus"):
        decode_dataclass(Cfg, {"bogus": 3})
    with pytest.raises(ValueError, match="expected int"):
        decode_dataclass(Cfg, {"count": "three"})
    with pytest.raises(ValueError, match="expected int"):
        decode_dataclass(Cfg, {"count": True})  # bool is not an int here


def test_dict_keys_round_trip_by_annotation():
    from dataclasses import dataclass, field

    from repro.util import decode_dataclass, encode_dataclass

    @dataclass(frozen=True)
    class Weights:
        by_rank: dict[int, float] = field(default_factory=dict)

    w = Weights(by_rank={1: 2.0, 7: 0.5})
    doc = encode_dataclass(w)
    assert doc == {"by_rank": {"1": 2.0, "7": 0.5}}  # JSON keys are strings
    assert decode_dataclass(Weights, doc) == w


def test_encode_normalizes_int_valued_float_fields():
    # months=1 and months=1.0 must produce identical documents (and so
    # identical content hashes / campaign-store cells)
    import dataclasses as dc

    @dc.dataclass
    class Cfg:
        months: float = 5.0
        count: int = 3

    a, b = Cfg(months=1), Cfg(months=1.0)
    assert encode_dataclass(a) == encode_dataclass(b)
    assert canonical_json(encode_dataclass(a)) == \
        canonical_json(encode_dataclass(b))
    assert isinstance(encode_dataclass(a)["months"], float)
    assert isinstance(encode_dataclass(a)["count"], int)  # ints untouched


def test_nan_encodes_as_null_and_decodes_back():
    import dataclasses as dc
    import json
    import math

    @dc.dataclass
    class Metrics:
        latency: float = 0.0

    doc = encode_dataclass(Metrics(latency=float("nan")))
    assert doc["latency"] is None
    # strict parsers accept the document
    json.loads(json.dumps(doc, allow_nan=False))
    back = decode_dataclass(Metrics, doc)
    assert math.isnan(back.latency)


def test_append_jsonl_seals_torn_tail(tmp_path):
    from repro.util import append_jsonl, iter_jsonl

    path = tmp_path / "log.jsonl"
    append_jsonl(path, {"n": 1})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"torn')  # killed mid-append, no newline
    append_jsonl(path, {"n": 2})
    assert [d for d in iter_jsonl(path)] == [{"n": 1}, {"n": 2}]
