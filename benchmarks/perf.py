"""Shared perf-regression helpers for the benchmark suite.

Every ``bench_*`` writes its measurements to
``benchmarks/results/BENCH_<id>.json``; those files are committed and act
as the perf baseline.  This module is the one place that knows how to

* load/write those result files (:func:`load_results`, :func:`write_results`);
* compare a fresh run against the committed baseline with a throughput
  tolerance (:func:`compare`), and
* do the same from the command line (the CI perf-smoke job)::

      python benchmarks/perf.py compare fresh/BENCH_k1_kernel.json \\
          --baseline benchmarks/results/BENCH_k1_kernel.json \\
          --metric timeout_events_per_s --metric callback_events_per_s \\
          --min-ratio 0.7

  Exit status 1 means at least one metric regressed below
  ``min_ratio * baseline`` (30 % tolerance by default — wide enough for
  runner-to-runner hardware noise, tight enough to catch a hot path
  regressing to a slower complexity class).

Updating a baseline is deliberate and manual: re-run the bench on a quiet
machine and commit the refreshed ``benchmarks/results/BENCH_<id>.json``
(see README "Performance").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

__all__ = ["results_path", "load_results", "write_results",
           "MetricComparison", "compare", "format_comparison"]

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "results")

#: Default tolerated throughput ratio (current / baseline) before a
#: higher-is-better metric counts as regressed.
DEFAULT_MIN_RATIO = 0.7


def results_path(bench_id: str) -> str:
    """Canonical committed location of one bench's result file."""
    return os.path.join(_RESULTS_DIR, f"BENCH_{bench_id}.json")


def load_results(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_results(bench_id: str, metrics: Mapping[str, object],
                  outcome: str = "passed",
                  path: Optional[str] = None) -> str:
    """Write one bench's result JSON (stable key order, trailing newline)."""
    path = path if path is not None else results_path(bench_id)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"id": bench_id, "metrics": dict(metrics),
                   "outcome": outcome}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


@dataclass(frozen=True)
class MetricComparison:
    metric: str
    current: float
    baseline: float
    ratio: float

    def ok(self, min_ratio: float = DEFAULT_MIN_RATIO) -> bool:
        return self.ratio >= min_ratio


def compare(current: Mapping, baseline: Mapping,
            metrics: Sequence[str]) -> list[MetricComparison]:
    """Compare higher-is-better throughput metrics of two result docs.

    ``current``/``baseline`` are result documents (``{"metrics": {...}}``)
    or bare metric mappings.  A metric missing on either side raises
    ``KeyError`` — a silently skipped gate is worse than a loud one.
    """
    cur = current.get("metrics", current)
    base = baseline.get("metrics", baseline)
    out = []
    for name in metrics:
        c = float(cur[name])
        b = float(base[name])
        ratio = c / b if b > 0 else float("inf")
        out.append(MetricComparison(name, c, b, ratio))
    return out


def format_comparison(rows: Sequence[MetricComparison],
                      min_ratio: float = DEFAULT_MIN_RATIO) -> str:
    lines = []
    for row in rows:
        verdict = "ok" if row.ok(min_ratio) else "REGRESSED"
        lines.append(
            f"  {row.metric:<28} {row.current:>12.1f} vs baseline "
            f"{row.baseline:>12.1f}  ({row.ratio:5.2f}x, floor "
            f"{min_ratio:.2f}x) {verdict}")
    return "\n".join(lines)


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a fresh bench result against a committed "
                    "perf baseline.")
    sub = parser.add_subparsers(dest="command", required=True)
    cmp_p = sub.add_parser("compare", help="fail on throughput regression")
    cmp_p.add_argument("current", help="fresh BENCH_*.json")
    cmp_p.add_argument("--baseline", required=True,
                       help="committed BENCH_*.json to compare against")
    cmp_p.add_argument("--metric", action="append", required=True,
                       dest="metrics",
                       help="higher-is-better metric name (repeatable)")
    cmp_p.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
                       help="minimum tolerated current/baseline ratio "
                            "(default %(default)s)")
    args = parser.parse_args(argv)

    rows = compare(load_results(args.current), load_results(args.baseline),
                   args.metrics)
    print(format_comparison(rows, args.min_ratio))
    if all(row.ok(args.min_ratio) for row in rows):
        print("perf gate: ok")
        return 0
    print("perf gate: REGRESSION (see rows above)")
    return 1


if __name__ == "__main__":
    sys.exit(_main())
