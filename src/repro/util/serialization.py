"""Canonical JSON helpers and structural diffing.

The Reference API stores node/cluster/site descriptions as plain JSON
documents (the paper stresses the "machine-parsable format").  This module
provides the canonical encoding used for hashing/archiving, plus a deep
structural diff used both by the Reference API version history and by
g5k-checks when comparing acquired facts against the reference.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import types
import typing
from dataclasses import dataclass
from typing import Any, Iterator, Type, TypeVar, Union

__all__ = [
    "canonical_json",
    "content_hash",
    "DiffEntry",
    "deep_diff",
    "deep_get",
    "encode_dataclass",
    "decode_dataclass",
    "append_jsonl",
    "iter_jsonl",
]


def canonical_json(doc: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def content_hash(doc: Any) -> str:
    """Short stable content hash of a JSON document."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:16]


# -- dataclass <-> JSON document codec ----------------------------------------
#
# Declarative configuration (ScenarioSpec and its nested policy/workload
# dataclasses) must survive a JSON round-trip *exactly* — tuples come back
# as tuples, nested dataclasses as the right type — so that
# ``decode_dataclass(cls, encode_dataclass(x)) == x`` holds and scenario
# files can be hashed with :func:`content_hash`.
#
# Two normalizations keep the documents canonical and strictly JSON:
#
# * int values in float-typed fields encode as floats, so
#   ``ScenarioSpec(months=1)`` and ``ScenarioSpec(months=1.0)`` produce the
#   same document — and therefore the same content hash / store cell;
# * float NaN encodes as ``null`` (bare ``NaN`` tokens are not RFC-8259
#   JSON and break jq/JS parsers); ``null`` in a plain ``float`` field
#   decodes back to NaN.  Caveat: in an ``Optional[float]`` field ``null``
#   is ambiguous and decodes to None — NaN does not survive a round-trip
#   there, so keep NaN-able metrics typed as plain ``float``.

_T = TypeVar("_T")

#: Per-class cache of which field names are float-typed (incl. Optional).
_FLOAT_FIELDS: dict[type, frozenset] = {}


def _float_fields(cls: type) -> frozenset:
    cached = _FLOAT_FIELDS.get(cls)
    if cached is None:
        hints = typing.get_type_hints(cls)
        names = set()
        for f in dataclasses.fields(cls):
            hint = hints.get(f.name)
            if hint is float:
                names.add(f.name)
            else:
                origin = typing.get_origin(hint)
                if (origin is Union
                        or isinstance(hint, getattr(types, "UnionType", ()))):
                    if float in typing.get_args(hint):
                        names.add(f.name)
        cached = _FLOAT_FIELDS[cls] = frozenset(names)
    return cached


def encode_dataclass(obj: Any) -> Any:
    """Recursively convert a dataclass instance to a JSON-able document."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        floats = _float_fields(type(obj))
        doc = {}
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if (f.name in floats and isinstance(value, int)
                    and not isinstance(value, bool)):
                value = float(value)
            doc[f.name] = encode_dataclass(value)
        return doc
    if isinstance(obj, (list, tuple)):
        return [encode_dataclass(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): encode_dataclass(v) for k, v in obj.items()}
    if isinstance(obj, float) and obj != obj:  # NaN -> null
        return None
    return obj


def _decode_key(hint: Any, key: str) -> Any:
    """Undo encode_dataclass's str() coercion of dict keys."""
    if hint is Any or hint is str:
        return key
    if hint is int:
        return int(key)
    if hint is float:
        return float(key)
    raise ValueError(f"unsupported dict key type {hint!r} (JSON keys are "
                     "strings; only str/int/float keys round-trip)")


def _decode_value(hint: Any, value: Any) -> Any:
    origin = typing.get_origin(hint)
    # types.UnionType (PEP 604 `X | Y`) only exists on Python >= 3.10
    if origin is Union or isinstance(hint, getattr(types, "UnionType", ())):
        arms = [a for a in typing.get_args(hint) if a is not type(None)]
        if value is None:
            return None
        for arm in arms:
            try:
                return _decode_value(arm, value)
            except (TypeError, ValueError):
                continue
        raise ValueError(f"cannot decode {value!r} as {hint}")
    if dataclasses.is_dataclass(hint):
        return decode_dataclass(hint, value)
    if origin is tuple:
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode_value(args[0], v) for v in value)
        return tuple(_decode_value(a, v) for a, v in zip(args, value))
    if origin is list:
        (arm,) = typing.get_args(hint) or (Any,)
        return [_decode_value(arm, v) for v in value]
    if origin is dict:
        args = typing.get_args(hint)
        key_arm = args[0] if len(args) == 2 else Any
        val_arm = args[1] if len(args) == 2 else Any
        return {_decode_key(key_arm, k): _decode_value(val_arm, v)
                for k, v in value.items()}
    if hint is float and value is None:
        return float("nan")  # NaN encodes as null (strict JSON has no NaN)
    if hint is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if hint is int and isinstance(value, bool):
        raise ValueError(f"expected int, got {value!r}")
    if isinstance(hint, type) and not isinstance(value, hint):
        raise ValueError(f"expected {hint.__name__}, got {value!r}")
    return value


def decode_dataclass(cls: Type[_T], data: Any) -> _T:
    """Rebuild a (possibly nested) dataclass from :func:`encode_dataclass`
    output, honouring the class's type annotations.

    Unknown keys raise ``ValueError`` — a typo in a scenario file should be
    a loud error, not a silently-ignored knob.
    """
    if not isinstance(data, dict):
        raise ValueError(f"expected a mapping for {cls.__name__}, got {data!r}")
    hints = typing.get_type_hints(cls)
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {', '.join(sorted(unknown))}")
    kwargs = {
        name: _decode_value(hints[name], value) for name, value in data.items()
    }
    return cls(**kwargs)


# -- JSON-lines persistence ----------------------------------------------------
#
# The campaign result store appends one record per finished cell; JSONL keeps
# every append an O(1) crash-safe operation (a torn final line from a killed
# process is skipped on read instead of corrupting the whole archive).


def append_jsonl(path: Union[str, "os.PathLike[str]"], doc: Any) -> None:
    """Append one JSON document as a single line, flushed + fsynced.

    If the file's last byte is not a newline (a writer was killed
    mid-append), the torn line is sealed with a newline first so the new
    record cannot be glued onto the partial one.
    """
    # allow_nan=False keeps the archive strict RFC-8259 JSON (jq-safe);
    # NaN metrics must be mapped to null upstream (encode_dataclass does).
    line = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
    with open(path, "a+b") as fh:
        fh.seek(0, os.SEEK_END)
        if fh.tell() > 0:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                fh.write(b"\n")
        fh.write(line.encode("utf-8") + b"\n")
        fh.flush()
        os.fsync(fh.fileno())


def iter_jsonl(path: Union[str, "os.PathLike[str]"],
               on_skip: Any = None) -> Iterator[Any]:
    """Yield documents from a JSONL file, skipping blank or damaged lines.

    Torn lines from killed writers are expected artifacts: usually the
    final line, but a later append seals a torn tail with a newline, so a
    partial record can also sit mid-file.  Unparseable lines lose only
    themselves, never the archive.  ``on_skip(line_number, reason)``, when
    given, is invoked for every damaged (non-blank, unparseable) line so
    callers can count data loss instead of silently absorbing it.
    """
    # errors="replace": a line of flipped bytes must damage that line
    # (it fails JSON parsing), not crash the read of the whole archive.
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                if on_skip is not None:
                    on_skip(lineno, str(exc))
                continue


@dataclass(frozen=True)
class DiffEntry:
    """One structural difference between two JSON documents.

    ``kind`` is ``'added'`` (key only in the new document), ``'removed'``
    (only in the old one) or ``'changed'`` (present in both, different
    values).  ``path`` is a dotted path; list indices appear as ``[i]``.
    """

    path: str
    kind: str
    old: Any = None
    new: Any = None

    def __str__(self) -> str:
        if self.kind == "added":
            return f"+ {self.path} = {self.new!r}"
        if self.kind == "removed":
            return f"- {self.path} = {self.old!r}"
        return f"~ {self.path}: {self.old!r} -> {self.new!r}"


def _walk(old: Any, new: Any, path: str) -> Iterator[DiffEntry]:
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in new:
                yield DiffEntry(sub, "removed", old=old[key])
            elif key not in old:
                yield DiffEntry(sub, "added", new=new[key])
            else:
                yield from _walk(old[key], new[key], sub)
    elif isinstance(old, list) and isinstance(new, list):
        for i in range(max(len(old), len(new))):
            sub = f"{path}[{i}]"
            if i >= len(new):
                yield DiffEntry(sub, "removed", old=old[i])
            elif i >= len(old):
                yield DiffEntry(sub, "added", new=new[i])
            else:
                yield from _walk(old[i], new[i], sub)
    elif old != new:
        yield DiffEntry(path, "changed", old=old, new=new)


def deep_diff(old: Any, new: Any) -> list[DiffEntry]:
    """Structural diff between two JSON-like documents.

    >>> deep_diff({"a": 1}, {"a": 2})[0].kind
    'changed'
    """
    return list(_walk(old, new, ""))


def deep_get(doc: Any, path: str, default: Any = None) -> Any:
    """Fetch a dotted/indexed path (as produced by :func:`deep_diff`).

    >>> deep_get({"a": {"b": [10, 20]}}, "a.b[1]")
    20
    """
    cur = doc
    for part in path.split("."):
        while part:
            if "[" in part:
                key, _, rest = part.partition("[")
                idx_text, _, part = rest.partition("]")
                if key:
                    if not isinstance(cur, dict) or key not in cur:
                        return default
                    cur = cur[key]
                idx = int(idx_text)
                if not isinstance(cur, list) or idx >= len(cur):
                    return default
                cur = cur[idx]
                part = part.lstrip(".") if part else part
            else:
                if not isinstance(cur, dict) or part not in cur:
                    return default
                cur = cur[part]
                part = ""
    return cur
