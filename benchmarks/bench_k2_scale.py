"""K2 — scheduling-core throughput at production scale.

ROADMAP item 4's blocker: after the PR-5 constant-factor wins, the
remaining wall-clock at scale was algorithmic — ``Gantt.earliest_start``
linearly scanned per-node skylines and every completion re-planned the
whole queue.  The PR-9 availability profile turned both into indexed
queries; this bench is the proof layer.  It generates one deterministic
contended trace on a big synthetic park and replays it three ways:

* **profile** — the default scheduler (``use_profile=True``, node-filter
  incremental replanning), at full scale;
* **incremental** — same, plus the opt-in dirty-*window* replan filter
  (``replan_filter="windows"``), at full scale;
* **linear** — the pre-refactor data path (``use_profile=False``: verbatim
  PR-5 skyline sweeps + per-pass interval caches), on a prefix of the same
  trace (the old complexity class cannot absorb the full trace in CI).

The profile scheduler must place the linear prefix *byte-identically*
(same placement sha256 — the same protocol as
``tests/core/test_determinism_guard.py``) while beating it on jobs/s.

Scale is env-tunable; CI runs the smoke size, the full paper-scale claim
(10^6 jobs on a 10k-node park, >= 5x vs linear) reruns with::

    REPRO_K2_JOBS=1000000 REPRO_K2_NODES=10000 \\
        python -m pytest benchmarks/bench_k2_scale.py -q -s

Numbers land in ``benchmarks/results/BENCH_k2_scale.json``; the CI
perf-smoke job compares a fresh run against the committed baseline via
``benchmarks/perf.py`` (30 % tolerance).
"""

import hashlib
import os
import time

from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import OarDatabase, OarServer
from repro.testbed import SITE_NAMES, ClusterSpec, ReferenceApi, build_grid5000
from repro.util import RngStreams, Simulator

from conftest import paper_row, print_table
from perf import write_results

#: Smoke-size defaults (a few seconds per variant on a laptop); the
#: acceptance-scale run sets REPRO_K2_JOBS=1000000 REPRO_K2_NODES=10000.
_JOBS = int(os.environ.get("REPRO_K2_JOBS", "20000"))
_NODES = int(os.environ.get("REPRO_K2_NODES", "2000"))
#: Trace prefix replayed through the pre-refactor linear scheduler.
_LINEAR_JOBS = int(os.environ.get("REPRO_K2_LINEAR_JOBS",
                                  str(min(2000, _JOBS))))

_CLUSTER_NODES = 250  # park is built from uniform 250-node clusters


def _big_park(nodes: int):
    """A synthetic park of ``nodes`` machines: uniform 250-node clusters
    round-robined over the eight paper-era sites (catalog-valid hardware,
    so the ordinary description/actual machinery applies unchanged)."""
    specs = []
    remaining = nodes
    i = 0
    while remaining > 0:
        specs.append(ClusterSpec(
            site=SITE_NAMES[i % len(SITE_NAMES)],
            name=f"k2c{i}",
            nodes=min(_CLUSTER_NODES, remaining),
            cpu_model="Intel Xeon E5-2630 v3",
            cpu_count=2, ram_gb=128, vendor="dell", chassis="Dell R630",
            vintage=2016, nic_models=("Intel X710 10-Gigabit",),
            disk_models=("PERC H330 600GB SAS",), boot_time_s=150.0,
        ))
        remaining -= _CLUSTER_NODES
        i += 1
    return build_grid5000(specs), i


def _make_trace(jobs: int, nodes: int, clusters: int):
    """One deterministic contended trace: (arrival dt, request, duration).

    70 % narrow cluster-scoped jobs, 30 % wide park-spanning jobs (the
    shape that made the linear sweep hurt: park-wide matching sets).  The
    arrival rate targets ~95 % of park capacity: contended enough that a
    queue forms and every completion exercises the replan path, bounded
    enough that throughput does not decay with trace length.
    """
    rng = RngStreams(seed=1702).stream("k2-trace")
    kind = rng.random(jobs)
    cluster = rng.integers(0, clusters, jobs)
    narrow = rng.integers(1, 9, jobs)
    wide = rng.integers(8, 65, jobs)
    duration = rng.uniform(600.0, 7200.0, jobs)
    mean_width = 0.7 * 4.5 + 0.3 * 36.0
    mean_gap = mean_width * 3900.0 / (0.95 * nodes)
    gaps = rng.exponential(mean_gap, jobs)
    trace = []
    for j in range(jobs):
        dur = float(duration[j])
        wall_h = max(1, int(dur * 1.3 / 3600.0) + 1)
        if kind[j] < 0.7:
            req = f"cluster='k2c{cluster[j]}'/nodes={narrow[j]},walltime={wall_h}"
        else:
            req = f"nodes={wide[j]},walltime={wall_h}"
        trace.append((float(gaps[j]), req, dur))
    return trace


def _replay(testbed, trace, use_profile: bool, replan_filter: str):
    """Replay the trace through a fresh world; returns (wall_s, oar)."""
    sim = Simulator()
    park = MachinePark.from_testbed(sim, testbed, RngStreams(seed=9))
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()),
                    park)
    oar.gantt.use_profile = use_profile
    oar.replan_filter = replan_filter

    def submitter():
        for gap, req, dur in trace:
            if gap > 0.0:
                yield sim.timeout(gap)
            oar.submit(req, auto_duration=dur)

    sim.process(submitter(), name="k2-submitter")
    t0 = time.perf_counter()
    sim.run()  # drains: every job has an auto_duration
    return time.perf_counter() - t0, oar


def _placement_hash(oar) -> str:
    """sha256 over every job's final placement — the determinism pin."""
    h = hashlib.sha256()
    for job_id in sorted(oar.jobs):
        job = oar.jobs[job_id]
        h.update(f"{job_id}|{job.state.value}|{job.started_at!r}|"
                 f"{job.finished_at!r}|{','.join(job.assigned_nodes)}\n"
                 .encode())
    return h.hexdigest()


def bench_k2_scale(benchmark):
    testbed, clusters = _big_park(_NODES)
    assert testbed.node_count == _NODES
    trace = _make_trace(_JOBS, _NODES, clusters)
    prefix = trace[:_LINEAR_JOBS]

    def full_runs():
        profile_wall, _ = _replay(testbed, trace, True, "nodes")
        incremental_wall, _ = _replay(testbed, trace, True, "windows")
        return profile_wall, incremental_wall

    profile_wall, incremental_wall = benchmark.pedantic(
        full_runs, rounds=1, iterations=1)
    linear_wall, linear_oar = _replay(testbed, prefix, False, "nodes")
    slice_wall, slice_oar = _replay(testbed, prefix, True, "nodes")

    # Behaviour preservation: the profile scheduler must place the shared
    # prefix byte-identically to the retired linear data path.
    assert _placement_hash(slice_oar) == _placement_hash(linear_oar)

    profile_jps = _JOBS / profile_wall
    incremental_jps = _JOBS / incremental_wall
    linear_jps = _LINEAR_JOBS / linear_wall
    slice_jps = _LINEAR_JOBS / slice_wall
    speedup = slice_jps / linear_jps

    rows = [
        paper_row("park size / trace length", "-",
                  f"{_NODES} nodes / {_JOBS} jobs"),
        paper_row("profile scheduler", "-", f"{profile_jps:,.0f} jobs/s"),
        paper_row("incremental (window) replan", "-",
                  f"{incremental_jps:,.0f} jobs/s"),
        paper_row("linear scheduler (prefix)", "-",
                  f"{linear_jps:,.0f} jobs/s"),
        paper_row("profile vs linear (same prefix)", ">= 5x at 10^6/10k",
                  f"{speedup:.1f}x"),
        paper_row("placement hash (prefix)", "identical", "identical"),
    ]
    print_table("K2: scheduling core at scale (ROADMAP item 4)", rows)

    write_results("k2_scale", {
        "jobs": _JOBS,
        "nodes": _NODES,
        "linear_prefix_jobs": _LINEAR_JOBS,
        "profile_jobs_per_s": round(profile_jps, 1),
        "incremental_jobs_per_s": round(incremental_jps, 1),
        "linear_jobs_per_s": round(linear_jps, 1),
        "speedup_vs_linear": round(speedup, 2),
    })

    # Absolute floors far below any real machine — the committed-baseline
    # comparison in CI (perf.py, 30 % tolerance) is the actual regression
    # gate; these only catch a complexity-class slip.
    assert profile_jps > 200
    assert incremental_jps > 200
    # The refactor's point: the indexed profile must beat the linear scan
    # on the same trace even at smoke scale (>= 5x at acceptance scale).
    assert speedup > 2.0
