"""Tests for the hardware catalog."""

import pytest

from repro.testbed import (
    CPU_MODELS,
    DISK_MODELS,
    IB_MODELS,
    NIC_MODELS,
    cpu_for,
    disk_model,
    nic_model,
)


def test_cpu_lookup():
    cpu = cpu_for("Intel Xeon E5-2630 v3")
    assert cpu.cores == 8
    assert cpu.ht_capable and cpu.turbo_capable


def test_cpu_lookup_unknown():
    with pytest.raises(KeyError):
        cpu_for("Intel Imaginary 9999")


def test_old_cpus_lack_turbo():
    assert not cpu_for("AMD Opteron 250").turbo_capable
    assert not cpu_for("Intel Xeon L5420").ht_capable


def test_disk_models_have_multiple_firmwares():
    """Firmware skew bugs need at least two versions to exist."""
    for dm in DISK_MODELS:
        assert len(dm.firmware_versions) >= 2


def test_disk_reference_firmware_is_newest():
    for dm in DISK_MODELS:
        assert dm.reference_firmware == dm.firmware_versions[-1]


def test_disk_lookup():
    dm = disk_model("MG03ACA100")
    assert dm.vendor == "Toshiba"
    assert dm.storage_type == "HDD"


def test_disk_lookup_unknown():
    with pytest.raises(KeyError):
        disk_model("FLOPPY-5.25")


def test_nic_rates_sane():
    for nm in NIC_MODELS.values():
        assert nm.rate_gbps in (1.0, 10.0)


def test_nic_lookup_unknown():
    with pytest.raises(KeyError):
        nic_model("Token Ring 4Mbps")


def test_ib_models_keyed_by_rate():
    for rate, model in IB_MODELS.items():
        assert model.rate_gbps == rate


def test_catalog_names_unique():
    assert len(CPU_MODELS) == len({m.name for m in CPU_MODELS.values()})
    assert len({d.model for d in DISK_MODELS}) == len(DISK_MODELS)
