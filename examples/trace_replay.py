#!/usr/bin/env python
"""Trace-driven workloads: record a run, replay it, stress it.

The Poisson generator draws a fresh workload every seed; a *trace* pins
the user workload down so two campaigns differ only where you want them
to.  This example:

1. records the workload of a tiny-smoke campaign to a trace file,
2. replays it under the same scenario (identical contention, new seed),
3. replays a bursty variant (2x arrival rate, 2x job volume) and compares
   how the scheduler copes.

Run:  python examples/trace_replay.py
"""

from pathlib import Path

from repro import run_scenario, scenarios
from repro.oar import TraceReplayConfig, load_trace, record_scenario, save_trace

TRACE = Path("recorded_workload.jsonl")
MONTHS = 0.12


def main() -> None:
    base = scenarios.get("tiny-smoke")

    print("recording a tiny-smoke campaign's workload...")
    trace = record_scenario(base, seed=0, months=MONTHS, name="example")
    save_trace(trace, TRACE)
    stats = trace.stats()
    print(f"  {stats['jobs']} jobs over {stats['span_s'] / 86400:.1f} days "
          f"-> {TRACE}")

    replay = base.derive(name="replayed",
                         workload=TraceReplayConfig(path=str(TRACE)))
    bursty = base.derive(name="replayed-bursty",
                         workload=TraceReplayConfig(path=str(TRACE),
                                                    time_scale=0.5,
                                                    load_scale=2.0))

    for spec in (replay, bursty):
        fw, report = run_scenario(spec, seed=7, months=MONTHS)
        print(f"\n{spec.name}: replayed {fw.workload.submitted} jobs "
              f"(trace has {len(load_trace(TRACE))})")
        print(report.summary())


if __name__ == "__main__":
    main()
