"""Specific-hardware families: mpigraph (Infiniband) and disk.

Slide 21: "Specific hardware: Infiniband, hard disk drives (mpigraph,
disk)".  The slide-22 OFED snippet is precisely what the mpigraph family
trips over: applications failing to start over Infiniband.
"""

from __future__ import annotations

from typing import Any

from ..faults.catalog import FaultKind
from ..nodes.acquisition import hdparm, smartctl
from ..nodes.machine import _DISK_BASE_MBPS
from .base import CheckContext, CheckFamily, Finding

__all__ = ["MpigraphCheck", "DiskCheck"]


class MpigraphCheck(CheckFamily):
    """Run an MPI bandwidth mesh over Infiniband on two reserved nodes."""

    name = "mpigraph"
    kind = "software"
    walltime_s = 1800.0
    nodes_needed = 2

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()
                if c.has_infiniband]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = config["cluster"]
        job = yield from self.reserve(
            ctx, f"cluster='{cluster}'/nodes=2,walltime=0:30")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            yield ctx.sim.timeout(60.0)  # MPI setup
            usable = []
            for uid in job.assigned_nodes:
                ib = ctx.machines[uid].actual.infiniband
                if ib is None or not ib.stack_ok:
                    outcome.findings.append(Finding(
                        FaultKind.IB_OFED_FAILURE, uid,
                        "OFED stack down: MPI fails to start over Infiniband"))
                else:
                    usable.append(uid)
            if len(usable) == 2:
                yield ctx.sim.timeout(300.0)  # the bandwidth mesh itself
                rate = min(ctx.machines[u].actual.infiniband.rate_gbps
                           for u in usable)
                documented = ctx.refapi.node(usable[0]).infiniband.rate_gbps
                if rate < documented:
                    outcome.findings.append(Finding(
                        FaultKind.IB_OFED_FAILURE, usable[0],
                        f"IB bandwidth {rate} Gbps below documented {documented}"))
        finally:
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome


class DiskCheck(CheckFamily):
    """Measure sequential bandwidth of every drive of a reserved node and
    compare with what the description implies; classify the cause through
    hdparm/smartctl (cache setting, firmware version, dead drive)."""

    name = "disk"
    kind = "software"
    walltime_s = 3600.0
    nodes_needed = 1
    #: Written volume per drive for the bandwidth measurement, MB.
    volume_mb = 4096.0
    tolerance = 0.85

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()
                if c.disk_testable]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = config["cluster"]
        job = yield from self.reserve(
            ctx, f"cluster='{cluster}'/nodes=1,walltime=1")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            uid = job.assigned_nodes[0]
            machine = ctx.machines[uid]
            desc = ctx.refapi.node(uid)
            for disk_desc in desc.disks:
                expected = self._expected_mbps(disk_desc)
                measured = machine.disk_bandwidth_mbps(disk_desc.device)
                yield ctx.sim.timeout(
                    self.volume_mb / max(measured, 20.0) + 10.0)
                findings = self._classify(machine, uid, cluster, disk_desc,
                                          measured, expected)
                # The per-drive performance measurement is a safety net for
                # causes the configuration comparison cannot explain.
                if not findings and measured < expected * self.tolerance:
                    findings.append(Finding(
                        None, uid,
                        f"{disk_desc.device}: {measured:.0f} MB/s below "
                        f"expected {expected:.0f} MB/s, cause unknown"))
                outcome.findings.extend(findings)
        finally:
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome

    @staticmethod
    def _expected_mbps(disk_desc) -> float:
        expected = _DISK_BASE_MBPS[disk_desc.storage_type]
        if not disk_desc.write_cache:
            expected *= 0.45
        if not disk_desc.read_ahead:
            expected *= 0.85
        return expected

    @staticmethod
    def _classify(machine, uid: str, cluster: str, disk_desc,
                  measured: float, expected: float) -> list[Finding]:
        """Compare the drive's configuration with its description (the real
        bug classes: cache settings, firmware skew, dead drive)."""
        device = disk_desc.device
        health = smartctl(machine, device)
        if health["smart_status"] != "PASSED" or measured == 0.0:
            return [Finding(FaultKind.DISK_DEAD, uid,
                            f"{device}: drive failed (SMART "
                            f"{health['smart_status']}, {measured:.0f} MB/s)")]
        drive = hdparm(machine, device)
        findings = []
        if disk_desc.write_cache and drive["write_cache"] == "disabled":
            findings.append(Finding(
                FaultKind.DISK_WRITE_CACHE, uid,
                f"{device}: write cache disabled "
                f"({measured:.0f} MB/s, expected {expected:.0f})"))
        if disk_desc.read_ahead and drive["read_ahead"] == "off":
            findings.append(Finding(
                FaultKind.DISK_READ_AHEAD, uid,
                f"{device}: read-ahead disabled"))
        if drive["firmware"] != disk_desc.firmware:
            findings.append(Finding(
                FaultKind.DISK_FIRMWARE_SKEW, cluster,
                f"{uid} {device}: firmware {drive['firmware']} differs from "
                f"documented {disk_desc.firmware} "
                f"({measured:.0f} MB/s, expected {expected:.0f})"))
        return findings
