"""repro: a full reproduction of *"Towards Trustworthy Testbeds thanks to
Throughout Testing"* (Lucas Nussbaum, REPPAR @ IPDPS 2017).

The package simulates the Grid'5000 testbed (8 sites / 32 clusters /
894 nodes / 8490 cores) and the complete testing framework the paper
describes: g5k-checks, OAR, Kadeploy, KaVLAN, monitoring, a Jenkins-shaped
CI server, the external availability-aware test scheduler, 16 test-script
families (751 configurations) and the closed bug-filing/fixing loop.

Worlds are described declaratively by a :class:`~repro.scenarios.ScenarioSpec`
(frozen, JSON-serializable) and come either from the preset library or from
``derive()``-ing one.

Quickstart::

    from repro import run_scenario, scenarios

    spec = scenarios.get("tiny-smoke")        # or "paper-baseline", ...
    fw, report = run_scenario(spec, seed=1)
    print(report.summary())

Sweep a seed × scenario matrix across worker processes::

    from repro import run_campaigns, summarize_runs

    runs = run_campaigns(["tiny-smoke", "flaky-services"],
                         seeds=range(4), workers=4)
    print(summarize_runs(runs))

For finer control, assemble the world yourself (and swap subsystem
backends via the registry)::

    from repro import FrameworkBuilder, scenarios

    fw = FrameworkBuilder(scenarios.get("pernode")).with_seed(7).build()
    fw.start()
    fw.run_until(7 * 86400)                   # one simulated week
    print(fw.tracker.filed_count, "bugs filed")

``build_framework()`` / ``run_campaign()`` remain as thin back-compat
shims over the builder.  The ``repro-campaign`` console script runs any
named preset from the shell.
"""

from . import scenarios
from .core import (
    CampaignConfig,
    CampaignReport,
    CampaignRun,
    CampaignStore,
    FrameworkBuilder,
    MetricSummary,
    SubsystemRegistry,
    TestingFramework,
    aggregate_runs,
    build_framework,
    register_subsystem,
    run_campaign,
    run_campaigns,
    run_scenario,
    summarize_runs,
)
from .scenarios import ScenarioSpec

__version__ = "1.1.0"

__all__ = [
    "scenarios",
    "ScenarioSpec",
    "FrameworkBuilder",
    "SubsystemRegistry",
    "register_subsystem",
    "TestingFramework",
    "build_framework",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRun",
    "CampaignStore",
    "MetricSummary",
    "run_campaign",
    "run_scenario",
    "run_campaigns",
    "aggregate_runs",
    "summarize_runs",
    "__version__",
]
