#!/usr/bin/env python
"""Quickstart: verify a node against the Reference API with g5k-checks.

Builds the paper-exact synthetic Grid'5000 (8 sites / 32 clusters /
894 nodes / 8490 cores), silently flips a BIOS option on one node — the
classic slide-13 bug — and shows how g5k-checks pinpoints the divergence.

Run:  python examples/quickstart.py
"""

from repro.checks import run_g5k_checks
from repro.faults import FaultContext, FaultInjector, FaultKind, ServiceHealth
from repro.nodes import MachinePark
from repro.testbed import ReferenceApi, build_grid5000
from repro.util import RngStreams, Simulator


def main() -> None:
    sim = Simulator()
    rngs = RngStreams(seed=42)
    testbed = build_grid5000()
    print(f"testbed: {testbed.site_count} sites, {testbed.cluster_count} clusters, "
          f"{testbed.node_count} nodes, {testbed.total_cores} cores")

    refapi = ReferenceApi(testbed)
    machines = MachinePark.from_testbed(sim, testbed, rngs)

    # A pristine node passes.
    report = run_g5k_checks(machines["graphene-42"], refapi)
    print(f"\ngraphene-42 before any fault: {report.summary()}")

    # A maintenance operation silently re-enables C-states somewhere...
    ctx = FaultContext.build(machines, ServiceHealth(), ("debian8-std",))
    injector = FaultInjector(sim, ctx, rngs)
    fault = injector.inject(FaultKind.CPU_CSTATES)
    print(f"\ninjected fault: {fault.kind.value} on {fault.target}")

    # ... and g5k-checks catches it at the next boot.
    report = run_g5k_checks(machines[fault.target], refapi)
    print(f"\n{report.summary()}")

    # The operator fixes it; the node verifies clean again.
    injector.fix(fault)
    report = run_g5k_checks(machines[fault.target], refapi)
    print(f"\nafter the fix: {report.summary()}")


if __name__ == "__main__":
    main()
