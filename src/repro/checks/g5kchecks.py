"""g5k-checks: verify a node's acquired facts against the Reference API.

Slide 7: *"Our solution: g5k-checks — runs at node boot (or manually by
users); acquires info using OHAI, ethtool, etc.; compares with Reference
API."*

The comparison works in three steps:

1. :func:`expected_facts` renders the node's *description* into the same
   tool-shaped document that :func:`repro.nodes.acquisition.acquire_all`
   produces from the *actual* hardware;
2. a deep structural diff pinpoints every divergence;
3. each divergence is classified into a root-cause hint
   (:class:`~repro.faults.catalog.FaultKind`) so reports are actionable —
   the paper stresses that tests must "provide sufficient information to
   testbed operators to understand and fix the issue".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..faults.catalog import FaultKind
from ..nodes.acquisition import acquire_all
from ..nodes.machine import SimulatedNode
from ..testbed.description import NodeDescription
from ..testbed.refapi import ReferenceApi
from ..util.serialization import deep_diff

__all__ = ["Mismatch", "NodeCheckReport", "expected_facts", "run_g5k_checks"]


@dataclass(frozen=True)
class Mismatch:
    """One divergence between description and acquired facts."""

    path: str
    expected: Any
    actual: Any
    #: Root-cause classification (None when the path is not recognized).
    kind_hint: Optional[FaultKind]

    def __str__(self) -> str:
        hint = f" [{self.kind_hint.value}]" if self.kind_hint else ""
        return f"{self.path}: expected {self.expected!r}, got {self.actual!r}{hint}"


@dataclass
class NodeCheckReport:
    """Result of one g5k-checks run on one node."""

    node_uid: str
    timestamp: float
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def hints(self) -> set[FaultKind]:
        return {m.kind_hint for m in self.mismatches if m.kind_hint is not None}

    def summary(self) -> str:
        if self.ok:
            return f"{self.node_uid}: OK"
        lines = [f"{self.node_uid}: {len(self.mismatches)} mismatch(es)"]
        lines.extend(f"  - {m}" for m in self.mismatches)
        return "\n".join(lines)


def expected_facts(desc: NodeDescription) -> dict[str, Any]:
    """What acquisition *should* return if the hardware matches its
    description exactly (the g5k-checks 'golden' document)."""
    threads = desc.cpu.threads_per_core if desc.bios.hyperthreading else 1
    facts: dict[str, Any] = {
        "ohai": {
            "hostname": desc.uid,
            "cpu": {
                "model_name": desc.cpu.model,
                "real": desc.cpu_count,
                "cores": desc.cpu_count * desc.cpu.cores,
                "total": desc.cpu_count * desc.cpu.cores * threads,
                "mhz": round(desc.cpu.clock_ghz * 1000),
            },
            "memory": {"total_kb": desc.ram_gb * 1024 * 1024},
            "block_device": {
                d.device: {
                    "vendor": d.vendor,
                    "model": d.model,
                    "size_gb": d.size_gb,
                    "rotational": d.storage_type == "HDD",
                }
                for d in desc.disks
            },
        },
        "cpupower": {
            "c_states": "enabled" if desc.bios.c_states else "disabled",
            "turbo_boost": "active" if desc.bios.turbo_boost else "inactive",
            "governor": {"performance": "performance", "balanced": "ondemand",
                         "powersave": "powersave"}[desc.bios.power_profile],
            "smt_active": 1 if desc.bios.hyperthreading else 0,
        },
        "dmidecode": {
            "bios": {"version": desc.bios.version},
            "system": {"serial_number": desc.serial, "product_name": desc.cluster},
            "processor_count": desc.cpu_count,
        },
        "ethtool": {
            n.device: {
                "interface": n.device,
                "speed": f"{int(n.rate_gbps * 1000)}Mb/s",
                "duplex": "Full",
                "link_detected": "yes",
                "driver": n.driver,
                "mac": n.mac,
            }
            for n in desc.nics
        },
        "hdparm": {
            d.device: {
                "device": d.device,
                "model": d.model,
                "firmware": d.firmware,
                "write_cache": "enabled" if d.write_cache else "disabled",
                "read_ahead": "on" if d.read_ahead else "off",
            }
            for d in desc.disks
        },
        "smartctl": {
            d.device: {
                "device": d.device,
                "model_family": d.vendor,
                "device_model": d.model,
                "firmware_version": d.firmware,
                "smart_status": "PASSED",
                "user_capacity_gb": d.size_gb,
            }
            for d in desc.disks
        },
    }
    if desc.infiniband is not None:
        facts["ibstat"] = {
            "ca_name": "mlx4_0",
            "model": desc.infiniband.model,
            "node_guid": desc.infiniband.guid,
            "rate_gbps": desc.infiniband.rate_gbps,
            "state": "Active",
            "physical_state": "LinkUp",
        }
    return facts


#: Ordered (prefix/suffix pattern, fault-kind) classification rules.  The
#: first match wins; paths are the dotted paths of the structural diff.
_CLASSIFICATION: tuple[tuple[str, FaultKind], ...] = (
    ("cpupower.c_states", FaultKind.CPU_CSTATES),
    ("cpupower.turbo_boost", FaultKind.CPU_TURBO),
    ("cpupower.governor", FaultKind.CPU_POWER_PROFILE),
    ("cpupower.smt_active", FaultKind.CPU_HYPERTHREADING),
    ("ohai.cpu.total", FaultKind.CPU_HYPERTHREADING),
    ("ohai.memory.total_kb", FaultKind.RAM_DIMM_FAILED),
    ("ohai.block_device", FaultKind.DISK_DEAD),
    ("dmidecode.bios.version", FaultKind.BIOS_VERSION_SKEW),
    ("ethtool", FaultKind.NIC_DOWNGRADE),
    ("hdparm", None),  # refined below by suffix
    ("smartctl", None),
    ("ibstat", FaultKind.IB_OFED_FAILURE),
)


def _classify(path: str) -> Optional[FaultKind]:
    if path.startswith("hdparm"):
        if path.endswith("write_cache"):
            return FaultKind.DISK_WRITE_CACHE
        if path.endswith("read_ahead"):
            return FaultKind.DISK_READ_AHEAD
        if path.endswith("firmware"):
            return FaultKind.DISK_FIRMWARE_SKEW
        return FaultKind.DISK_DEAD  # whole-device add/remove
    if path.startswith("smartctl"):
        if path.endswith("firmware_version"):
            return FaultKind.DISK_FIRMWARE_SKEW
        return FaultKind.DISK_DEAD
    for prefix, kind in _CLASSIFICATION:
        if path.startswith(prefix) and kind is not None:
            return kind
    return None


def run_g5k_checks(node: SimulatedNode, refapi: ReferenceApi,
                   now: float = 0.0) -> NodeCheckReport:
    """Acquire facts from ``node`` and compare with its reference description.

    Returns a report listing every mismatch with a root-cause hint; an
    empty mismatch list means the node conforms to its description.
    """
    desc = refapi.node(node.uid)
    expected = expected_facts(desc)
    acquired = acquire_all(node)
    report = NodeCheckReport(node_uid=node.uid, timestamp=now)
    for entry in deep_diff(expected, acquired):
        report.mismatches.append(
            Mismatch(
                path=entry.path,
                expected=entry.old,
                actual=entry.new,
                kind_hint=_classify(entry.path),
            )
        )
    return report
