"""Synthetic user workload: keeps the testbed realistically busy.

Slide 16's scheduling problem only exists because "resources are heavily
used": test jobs compete with ~550 users.  The generator reproduces that
contention with a non-homogeneous Poisson arrival process (diurnal +
weekday modulation), a long-tailed job-size mix and lognormal walltimes.

Calibration: ``target_utilization`` sets the mean requested load as a
fraction of total node capacity; the default 0.7 makes single-node jobs
start immediately most of the time while whole-cluster requests wait for
a long time — the regime the paper describes.

:class:`WorkloadSource` is the interface every workload backend satisfies
(this Poisson generator, the trace replay in :mod:`repro.oar.traces`):
``start()``/``stop()`` manage the submission process, ``submitted`` counts
jobs, and ``on_submit`` callbacks observe every submitted job (that is how
the trace recorder exports a run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..testbed.description import TestbedDescription
from ..util.events import Process, Simulator
from ..util.rng import RngStreams
from ..util.simclock import HOUR, is_peak_hours, is_weekend
from .jobs import Job
from .server import OarServer

__all__ = ["WorkloadConfig", "WorkloadSource", "WorkloadGenerator"]

#: (node count, probability) — long tail of small jobs, occasional wide ones.
_SIZE_MIX: tuple[tuple[int, float], ...] = (
    (1, 0.50),
    (2, 0.15),
    (4, 0.12),
    (8, 0.10),
    (16, 0.08),
    (32, 0.05),
)


@dataclass(frozen=True)
class WorkloadConfig:
    target_utilization: float = 0.7
    mean_walltime_s: float = 3.0 * HOUR
    #: Arrival-rate multipliers by calendar regime.
    peak_factor: float = 1.7
    offpeak_factor: float = 0.6
    weekend_factor: float = 0.35


class WorkloadSource:
    """Base class for processes feeding user jobs to an :class:`OarServer`.

    Subclasses implement :meth:`_run` (a generator submitting jobs on its
    own schedule) and call :meth:`_notify_submitted` for every job.
    """

    process_name = "workload"

    def __init__(self, sim: Simulator, oar: OarServer):
        self.sim = sim
        self.oar = oar
        self.submitted = 0
        #: Observers fired with every submitted :class:`Job` (trace recorder).
        self.on_submit: list[Callable[[Job], None]] = []
        self._running = False
        self._proc: Optional[Process] = None

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._proc = self.sim.process(self._run(), name=self.process_name)

    def stop(self) -> None:
        """Stop promptly: interrupt the pending inter-arrival sleep instead
        of leaving the process asleep until its next timeout fires (which
        could be a full inter-arrival draw after campaign end)."""
        self._running = False
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("stopped")
        self._proc = None

    def _run(self):
        raise NotImplementedError

    def _notify_submitted(self, job: Job) -> None:
        for callback in self.on_submit:
            callback(job)


class WorkloadGenerator(WorkloadSource):
    """Poisson job-arrival process feeding an :class:`OarServer`."""

    def __init__(
        self,
        sim: Simulator,
        oar: OarServer,
        testbed: TestbedDescription,
        rng_streams: RngStreams,
        config: WorkloadConfig = WorkloadConfig(),
    ):
        super().__init__(sim, oar)
        self.config = config
        self._rng = rng_streams.stream("workload")
        self._clusters = [c.uid for c in testbed.iter_clusters()]
        self._cluster_sizes = np.array(
            [c.node_count for c in testbed.iter_clusters()], dtype=float
        )
        self._cluster_weights = self._cluster_sizes / self._cluster_sizes.sum()
        self._total_nodes = int(self._cluster_sizes.sum())
        self._sizes = np.array([s for s, _ in _SIZE_MIX])
        self._size_probs = np.array([p for _, p in _SIZE_MIX])
        self._mean_interarrival_s = self._calibrate()

    def _calibrate(self) -> float:
        """Mean inter-arrival so that requested node-time matches target."""
        mean_nodes = float((self._sizes * self._size_probs).sum())
        # Actual run time averages ~0.65 x walltime (jobs finish early).
        mean_busy_s = 0.65 * self.config.mean_walltime_s
        node_seconds_per_job = mean_nodes * mean_busy_s
        capacity_per_s = self._total_nodes * self.config.target_utilization
        return node_seconds_per_job / capacity_per_s

    # -- arrival process ---------------------------------------------------------

    def rate_factor(self, t: float) -> float:
        if is_weekend(t):
            return self.config.weekend_factor
        return self.config.peak_factor if is_peak_hours(t) else self.config.offpeak_factor

    def _run(self):
        # Thinning-free approximation: scale the exponential inter-arrival
        # by the regime factor at the draw time (regimes last hours, draws
        # are minutes apart, so the bias is negligible).
        while self._running:
            factor = max(self.rate_factor(self.sim.now), 1e-6)
            delay = float(self._rng.exponential(self._mean_interarrival_s / factor))
            yield self.sim.timeout(delay)
            if not self._running:
                return
            self.submit_one()

    # -- job synthesis --------------------------------------------------------------

    def submit_one(self):
        """Draw and submit one synthetic user job."""
        cluster_idx = int(self._rng.choice(len(self._clusters), p=self._cluster_weights))
        cluster = self._clusters[cluster_idx]
        size = int(self._rng.choice(self._sizes, p=self._size_probs))
        size = min(size, int(self._cluster_sizes[cluster_idx]))
        walltime = float(np.clip(
            self._rng.lognormal(mean=np.log(self.config.mean_walltime_s), sigma=0.6),
            0.25 * HOUR, 24 * HOUR,
        ))
        duration = walltime * float(self._rng.uniform(0.3, 1.0))
        request = f"cluster='{cluster}'/nodes={size},walltime={_fmt(walltime)}"
        self.submitted += 1
        job = self.oar.submit(request, user=f"user{self.submitted % 550}",
                              auto_duration=duration)
        self._notify_submitted(job)
        return job


def _fmt(seconds: float) -> str:
    total = int(seconds)
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"
