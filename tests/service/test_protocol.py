"""Codec tests: round-trip every verb + the malformed-input table."""

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Message,
    ProtocolError,
    decode,
    encode,
    format_time_arg,
    parse_time_arg,
)

#: One representative, arity-valid message per verb in the vocabulary.
EVERY_VERB = [
    ("HELO", (PROTOCOL_VERSION, "refclient")),
    ("HELO", (PROTOCOL_VERSION,)),
    ("RUN", ("tiny-smoke", "0", "0.35")),
    ("RESM", ("run-7",)),
    ("GETS", ("servers",)),
    ("SCHD", ("17",)),
    ("DEFR", ("4",)),
    ("REDY", ()),
    ("SUBM", ('{"scenarios": ["tiny-smoke"], "seeds": [0, 1]}',)),
    ("RPRT", ()),
    ("RPRT", ("store",)),
    ("CMPR", ("paper-baseline",)),
    ("QUIT", ()),
    ("OK", ("tick", "complete")),
    ("OK", ()),
    ("ERR", ("arg", "unknown", "scenario")),
    ("PING", ()),
    ("PING", ("432000.0",)),
    ("TICK", ("432000.0", "2", "5")),
    ("JCPL", ("431700.5", "3", "SUCCESS")),
    ("JOBN", ("3", "hardware", "nancy", "graphene", "ALL",
              "0", "39", "12", "2", "1")),
    ("DATA", ("3",)),
    ("CELL", ("tiny-smoke", "0", "cached", "1", "4")),
    ("DONE", ("run", "tiny-smoke", "seed=0")),
    ("DONE", ()),
    (".", ()),
]


@pytest.mark.parametrize("verb,args", EVERY_VERB,
                         ids=[f"{v}/{len(a)}" for v, a in EVERY_VERB])
def test_every_verb_round_trips(verb, args):
    line = encode(verb, *args)
    msg = decode(line)
    assert msg == Message(verb, tuple(args))
    # idempotent: re-encoding the decoded message is byte-stable
    assert encode(msg.verb, *msg.args) == line


def test_rawtail_verb_preserves_spaces():
    payload = '{"scenarios": ["a", "b"], "seeds": [0, 1, 2]}'
    msg = decode(encode("SUBM", payload))
    assert msg.args == (payload,)


def test_timestamps_round_trip_exactly():
    for t in (0.0, 300.0, 1234567.890123456, 0.1 + 0.2):
        assert parse_time_arg(format_time_arg(t)) == t


MALFORMED = [
    ("", "proto"),                       # empty line
    ("   ", "proto"),                    # whitespace only
    ("BOGUS 1 2", "verb"),               # unknown verb
    ("helo repro-sim-1", "verb"),        # verbs are case-sensitive
    ("SCHD", "arity"),                   # truncated: missing the cell id
    ("SCHD 1 2", "arity"),               # too many args
    ("RUN tiny-smoke 0", "arity"),       # truncated RUN
    ("REDY now", "arity"),               # REDY takes nothing
    ("TICK 1.0 2", "arity"),             # truncated TICK
    ("JOBN 1 hardware nancy", "arity"),  # truncated JOBN
    ("SUBM", "arity"),                   # rawtail verb with empty tail
    (". done", "arity"),                 # terminator takes nothing
    ("ERR", "arity"),                    # ERR needs at least a code
    ("RESM", "arity"),                   # RESM needs its run token
    ("SUBM " + "x" * MAX_LINE_BYTES, "toobig"),  # oversized line
]


@pytest.mark.parametrize("line,code", MALFORMED, ids=[m[0][:24] or "<empty>"
                                                      for m in MALFORMED])
def test_malformed_lines_raise_typed_errors(line, code):
    with pytest.raises(ProtocolError) as exc_info:
        decode(line)
    assert exc_info.value.code == code


def test_oversized_line_rejected_both_ways():
    huge = "x" * (MAX_LINE_BYTES + 1)
    with pytest.raises(ProtocolError) as exc_info:
        decode("SUBM " + huge)
    assert exc_info.value.code == "toobig"
    with pytest.raises(ProtocolError) as exc_info:
        encode("SUBM", huge)
    assert exc_info.value.code == "toobig"


def test_encode_rejects_newlines_and_unknown_verbs():
    with pytest.raises(ProtocolError):
        encode("OK", "two\nlines")
    with pytest.raises(ProtocolError):
        encode("NOPE")
    with pytest.raises(ProtocolError):
        encode("SCHD", "has space")  # non-tail args must be atoms


def test_bad_timestamp_is_an_arg_error():
    with pytest.raises(ProtocolError) as exc_info:
        parse_time_arg("not-a-float")
    assert exc_info.value.code == "arg"
