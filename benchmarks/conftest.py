"""Shared helpers for the experiment benches.

Every bench regenerates one table/figure of the paper and prints the rows
next to the paper's numbers (``-s`` shows them; they are also asserted on
*shape*, not absolute values).  E5/E6 share one five-month campaign via a
session fixture so the expensive closed-loop simulation runs once.

``REPRO_CAMPAIGN_MONTHS`` (default 5) shrinks the shared campaign when a
quick pass is needed.
"""

import os

import pytest


def paper_row(label: str, paper, measured) -> str:
    return f"  {label:<44} paper: {paper!s:>12}   measured: {measured!s:>12}"


def print_table(title: str, rows: list[str]) -> None:
    print()
    print(f"== {title} ==")
    for row in rows:
        print(row)


@pytest.fixture(scope="session")
def campaign_months() -> float:
    return float(os.environ.get("REPRO_CAMPAIGN_MONTHS", "5"))


@pytest.fixture(scope="session")
def five_month_campaign(campaign_months):
    """One full-scale closed-loop campaign, shared by E5 and E6."""
    from repro import run_scenario, scenarios

    fw, report = run_scenario(scenarios.get("paper-baseline"),
                              seed=1, months=campaign_months)
    return fw, report
