"""E5 — slide 22: "118 bugs filed (inc. 84 already fixed)".

Runs the shared five-month closed-loop campaign and reports bugs filed /
fixed, the ground-truth detection statistics, and the bug-class breakdown.
Shape to hold: on the order of a hundred bugs, the majority already fixed,
and the bug classes matching the paper's anecdotes (disk configuration,
CPU settings, cabling, random reboots, boot races, OFED...).
"""

from conftest import paper_row, print_table


def bench_e5_bugs(benchmark, five_month_campaign, campaign_months):
    fw, report = five_month_campaign
    # the campaign itself runs once (session fixture); benchmark the
    # report-regeneration path that consumes its raw history
    from repro.core.campaign import _build_report

    benchmark(
        _build_report, fw, campaign_months, report.weekly_active_faults,
    )
    scale = campaign_months / 5.0
    rows = [
        paper_row("bugs filed", round(118 * scale), report.bugs_filed),
        paper_row("bugs already fixed", round(84 * scale), report.bugs_fixed),
        paper_row("fixed fraction", "71%",
                  f"{report.bugs_fixed / max(report.bugs_filed, 1):.0%}"),
        paper_row("ground-truth faults injected", "-", report.faults_injected),
        paper_row("faults detected", "-", report.faults_detected),
        paper_row("median detection latency (days)", "-",
                  f"{report.detection_latency_days_median:.1f}"),
        paper_row("unexplained reports", "-", report.bugs_unexplained),
    ]
    print_table("E5: bugs filed and fixed (slide 22)", rows)
    print("  bug-class breakdown (by reporting family):")
    for family, count in sorted(report.bugs_by_family.items(),
                                key=lambda kv: -kv[1]):
        print(f"    {family:<16} {count}")
    # shape assertions (scaled when REPRO_CAMPAIGN_MONTHS shrinks the run)
    assert report.bugs_filed >= 40 * scale
    assert report.bugs_fixed >= 0.5 * report.bugs_filed
    assert report.bugs_fixed < report.bugs_filed  # some still open, as in paper
