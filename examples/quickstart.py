#!/usr/bin/env python
"""Quickstart: declarative scenarios, presets, and one small campaign.

A simulated world is described by a frozen, JSON-serializable
``ScenarioSpec``.  The preset library ships the paper's own regime
(``paper-baseline``), its ablations, and stress variants; ``derive()``
makes new scenarios out of old ones without touching any constructor.

Run:  python examples/quickstart.py
"""

from repro import run_scenario, scenarios
from repro.scenarios import ScenarioSpec


def main() -> None:
    print("scenario presets:")
    for spec in scenarios.all_presets():
        print(f"  {spec.name:<18} {spec.description}")

    # Scenarios are data: they serialize, hash, and round-trip exactly.
    smoke = scenarios.get("tiny-smoke")
    assert ScenarioSpec.from_json(smoke.to_json()) == smoke
    print(f"\n'{smoke.name}' as JSON:\n{smoke.to_json(indent=2)}")

    # Run it (a ~1.5-simulated-week closed loop on five clusters).
    fw, report = run_scenario(smoke, seed=1)
    print()
    print(report.summary())

    # Variants are one derive() away — no kwargs plumbing.
    stormy = smoke.derive(name="smoke-storm",
                          fault_mean_interarrival_s=0.3 * 86_400.0)
    _, stormy_report = run_scenario(stormy, seed=1)
    print()
    print(stormy_report.summary())
    print("\nsame world, three-times the fault rate: "
          f"{report.bugs_filed} -> {stormy_report.bugs_filed} bugs filed")


if __name__ == "__main__":
    main()
