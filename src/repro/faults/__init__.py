"""Fault injection: the bug classes of slides 13/22 as ground-truth faults."""

from .catalog import (
    FAULT_SPECS,
    FaultContext,
    FaultInstance,
    FaultKind,
    FaultSpec,
    Severity,
    apply_fault,
    revert_fault,
    spec_for,
)
from .injector import FaultInjector, GroundTruth
from .services import ServiceHealth

__all__ = [
    "FaultKind",
    "Severity",
    "FaultSpec",
    "FaultInstance",
    "FaultContext",
    "FAULT_SPECS",
    "spec_for",
    "apply_fault",
    "revert_fault",
    "FaultInjector",
    "GroundTruth",
    "ServiceHealth",
]
