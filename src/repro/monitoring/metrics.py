"""Time-series storage for monitoring probes.

Slide 9: infrastructure probes (network, power) are "captured at high
frequency (≈1 Hz)" with live visualization, a REST API and long-term
storage.  :class:`MetricStore` keeps one fixed-capacity numpy ring buffer
per series — O(1) appends, vectorized window queries, bounded memory even
on month-long campaigns.

Park-wide sweeps additionally get :class:`RingColumnBlock`: many
same-capacity rings packed as columns of two shared 2-D arrays, so one
sweep appends a sample to every column with a single fancy-index scatter
per array instead of one Python-level ``append`` per node.  Each column is
still addressable as an ordinary series through :class:`ColumnRing`, a
read/append facade with the exact :class:`RingBuffer` interface, adopted
into a store via :meth:`MetricStore.bind_series`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..util.errors import MonitoringError

__all__ = ["SeriesStats", "RingBuffer", "RingColumnBlock", "ColumnRing",
           "MetricStore"]


@dataclass(frozen=True)
class SeriesStats:
    count: int
    mean: float
    minimum: float
    maximum: float


class RingBuffer:
    """Fixed-capacity (timestamp, value) ring."""

    __slots__ = ("_t", "_v", "_capacity", "_size", "_head")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise MonitoringError("ring capacity must be >= 1")
        self._capacity = capacity
        self._t = np.empty(capacity, dtype=np.float64)
        self._v = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._head = 0  # next write slot

    def __len__(self) -> int:
        return self._size

    def append(self, t: float, value: float) -> None:
        self._t[self._head] = t
        self._v[self._head] = value
        self._head = (self._head + 1) % self._capacity
        self._size = min(self._size + 1, self._capacity)

    def _ordered(self) -> tuple[np.ndarray, np.ndarray]:
        if self._size < self._capacity:
            return self._t[: self._size], self._v[: self._size]
        idx = np.concatenate([np.arange(self._head, self._capacity),
                              np.arange(0, self._head)])
        return self._t[idx], self._v[idx]

    def last(self) -> tuple[float, float]:
        if self._size == 0:
            raise MonitoringError("empty series")
        idx = (self._head - 1) % self._capacity
        return float(self._t[idx]), float(self._v[idx])

    def window(self, t_from: float, t_to: float) -> tuple[np.ndarray, np.ndarray]:
        """All samples with ``t_from <= t < t_to`` (chronological)."""
        t, v = self._ordered()
        mask = (t >= t_from) & (t < t_to)
        return t[mask], v[mask]


class RingColumnBlock:
    """Many same-capacity rings sharing two 2-D arrays.

    Column *i* is one (timestamp, value) ring with its own head and size;
    the storage layout is ``(columns, capacity)`` so a park-wide sweep
    writes one sample into many columns with a single fancy-index scatter
    per array (:meth:`append_rows`) — the vectorized counterpart of
    calling :meth:`RingBuffer.append` once per node.
    """

    __slots__ = ("_t", "_v", "_capacity", "_heads", "_sizes")

    def __init__(self, columns: int, capacity: int):
        if capacity < 1:
            raise MonitoringError("ring capacity must be >= 1")
        if columns < 1:
            raise MonitoringError("column block needs >= 1 column")
        self._capacity = capacity
        self._t = np.empty((columns, capacity), dtype=np.float64)
        self._v = np.empty((columns, capacity), dtype=np.float64)
        self._heads = np.zeros(columns, dtype=np.intp)
        self._sizes = np.zeros(columns, dtype=np.intp)

    @property
    def columns(self) -> int:
        return self._t.shape[0]

    def ring(self, column: int) -> "ColumnRing":
        """A RingBuffer-compatible view of one column."""
        return ColumnRing(self, column)

    def append_rows(self, cols: np.ndarray, t: float,
                    values: np.ndarray) -> None:
        """Append ``(t, values[i])`` to column ``cols[i]`` for all *i*.

        ``cols`` must not repeat a column: a fancy-index scatter writes
        duplicates only once, where sequential appends would keep both.
        """
        heads = self._heads[cols]
        self._t[cols, heads] = t
        self._v[cols, heads] = values
        self._heads[cols] = (heads + 1) % self._capacity
        sizes = self._sizes[cols] + 1
        np.minimum(sizes, self._capacity, out=sizes)
        self._sizes[cols] = sizes

    def _append_one(self, col: int, t: float, value: float) -> None:
        head = self._heads[col]
        self._t[col, head] = t
        self._v[col, head] = value
        self._heads[col] = (head + 1) % self._capacity
        if self._sizes[col] < self._capacity:
            self._sizes[col] += 1


class ColumnRing:
    """One :class:`RingColumnBlock` column behind the RingBuffer interface.

    Probes hand these to the store (:meth:`MetricStore.bind_series`) so
    window/last/stats queries and scalar appends keep working unchanged
    while the park sweep feeds the same storage through one scatter.
    """

    __slots__ = ("_block", "_col")

    def __init__(self, block: RingColumnBlock, col: int):
        self._block = block
        self._col = col

    def __len__(self) -> int:
        return int(self._block._sizes[self._col])

    def append(self, t: float, value: float) -> None:
        self._block._append_one(self._col, t, value)

    def _ordered(self) -> tuple[np.ndarray, np.ndarray]:
        block, col = self._block, self._col
        size = int(block._sizes[col])
        head = int(block._heads[col])
        t, v = block._t[col], block._v[col]
        if size < block._capacity:
            return t[:size], v[:size]
        idx = np.concatenate([np.arange(head, block._capacity),
                              np.arange(0, head)])
        return t[idx], v[idx]

    def last(self) -> tuple[float, float]:
        if len(self) == 0:
            raise MonitoringError("empty series")
        block, col = self._block, self._col
        idx = (int(block._heads[col]) - 1) % block._capacity
        return float(block._t[col, idx]), float(block._v[col, idx])

    def window(self, t_from: float, t_to: float) -> tuple[np.ndarray, np.ndarray]:
        """All samples with ``t_from <= t < t_to`` (chronological)."""
        t, v = self._ordered()
        mask = (t >= t_from) & (t < t_to)
        return t[mask], v[mask]


#: Anything the store can serve as a series.
Series = Union[RingBuffer, ColumnRing]


class MetricStore:
    """Named series, each a ring buffer."""

    def __init__(self, capacity_per_series: int = 4096):
        self._capacity = capacity_per_series
        self._series: dict[str, Series] = {}

    @property
    def capacity(self) -> int:
        """Ring capacity shared by every series in the store."""
        return self._capacity

    def series(self, name: str) -> Series:
        """The named ring, created empty on first use.

        Hot-path accessor: probes hold the returned reference and append
        directly, skipping the per-sample name lookup ``record`` pays.
        """
        ring = self._series.get(name)
        if ring is None:
            ring = RingBuffer(self._capacity)
            self._series[name] = ring
        return ring

    def bind_series(self, name: str, ring: Series) -> bool:
        """Adopt an externally backed ring (a block column) as a series.

        Returns False — and binds nothing — when the name is already
        taken, in which case the caller must keep using the existing ring
        (the probes fall back to their scalar path).
        """
        if name in self._series:
            return False
        self._series[name] = ring
        return True

    def record(self, series: str, t: float, value: float) -> None:
        self.series(series).append(t, value)

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def has_series(self, series: str) -> bool:
        return series in self._series

    def _ring(self, series: str) -> Series:
        try:
            return self._series[series]
        except KeyError:
            raise MonitoringError(f"unknown series: {series}") from None

    def last(self, series: str) -> tuple[float, float]:
        return self._ring(series).last()

    def window(self, series: str, t_from: float, t_to: float):
        return self._ring(series).window(t_from, t_to)

    def stats(self, series: str, t_from: float, t_to: float) -> SeriesStats:
        _, values = self.window(series, t_from, t_to)
        if values.size == 0:
            return SeriesStats(0, float("nan"), float("nan"), float("nan"))
        return SeriesStats(
            count=int(values.size),
            mean=float(values.mean()),
            minimum=float(values.min()),
            maximum=float(values.max()),
        )
