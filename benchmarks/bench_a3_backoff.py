"""A3 — ablation of the external scheduler's policies (slide 17).

Compares, on a busy testbed over one week, three launcher designs:

* the paper's: check resources availability first + exponential backoff;
* no availability check (submit blindly, rely on immediate-or-cancel):
  many UNSTABLE builds waste Jenkins workers;
* no backoff (constant aggressive retry): even more wasted attempts.
"""

from repro import FrameworkBuilder
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec
from repro.scheduling import SchedulerPolicy
from repro.util import HOUR, WEEK

from conftest import paper_row, print_table

_SPEC = ScenarioSpec(
    name="a3-backoff",
    seed=15,
    clusters=("paravance", "grisou", "parasilo"),
    families=("multireboot", "refapi"),
    workload=WorkloadConfig(target_utilization=0.7),
)


def _run(policy: SchedulerPolicy, seed=15):
    fw = FrameworkBuilder(_SPEC.derive(seed=seed, policy=policy)).build()
    fw.start(faults=False)
    fw.run_until(WEEK)
    records = fw.history.records
    unstable = sum(1 for r in records if r.status == "UNSTABLE")
    useful = sum(1 for r in records if r.status in ("SUCCESS", "FAILURE"))
    blocked = fw.scheduler.stats()["total_blocked"]
    return useful, unstable, blocked


def bench_a3_backoff(benchmark):
    paper = benchmark.pedantic(
        lambda: _run(SchedulerPolicy()), rounds=1, iterations=1)
    no_check = _run(SchedulerPolicy(check_resources_first=False,
                                    max_concurrent_per_site=4))
    no_backoff = _run(SchedulerPolicy(check_resources_first=False,
                                      max_concurrent_per_site=4,
                                      backoff_initial_s=0.25 * HOUR,
                                      backoff_factor=1.0))
    rows = [
        paper_row("paper policy: useful/unstable builds", "-",
                  f"{paper[0]}/{paper[1]}"),
        paper_row("no availability check: useful/unstable", "-",
                  f"{no_check[0]}/{no_check[1]}"),
        paper_row("no backoff either: useful/unstable", "-",
                  f"{no_backoff[0]}/{no_backoff[1]}"),
    ]
    print_table("A3: scheduler policy ablation (slide 17)", rows)
    # shape: the paper's design wastes (almost) no builds...
    assert paper[1] <= min(no_check[1], no_backoff[1])
    # ...while constant retry without backoff wastes the most
    assert no_backoff[1] >= no_check[1]
