"""Fault catalog: every bug class the paper reports, as injectable faults.

Slide 13 and slide 22 list the real bugs the framework caught:

* different CPU settings (power management / C-states, hyperthreading,
  turbo boost) — :data:`FaultKind.CPU_CSTATES` etc.;
* disk drives configuration (R/W caching) — ``DISK_WRITE_CACHE`` /
  ``DISK_READ_AHEAD``;
* different disk performance due to different disk firmware versions —
  ``DISK_FIRMWARE_SKEW``;
* cabling issues ⇒ wrong measurements by the monitoring service —
  ``PDU_CABLE_SWAP``;
* a cluster decommissioned after random reboots — ``RANDOM_REBOOTS``;
* a Linux kernel race causing boot delays — ``KERNEL_BOOT_RACE``;
* an OFED-stack bug causing random failures to start — ``IB_OFED_FAILURE``;
* "various weak spots in the infrastructure and configuration problems" —
  the service-level kinds (flaky API, broken images, degraded deployment,
  KaVLAN misconfiguration, stale OAR properties...).

Each kind has an *apply* handler that mutates the simulated world (machine
hardware state or service health) and a *revert* handler used when an
operator fixes the corresponding bug.  A :class:`FaultInstance` records
ground truth so campaigns can score detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..nodes.machine import MachinePark, SimulatedNode
from ..util.errors import FaultError
from .services import ServiceHealth

__all__ = [
    "FaultKind",
    "Severity",
    "FaultSpec",
    "FaultInstance",
    "FaultContext",
    "FAULT_SPECS",
    "TRANSPORT_FAULT_SPECS",
    "spec_for",
    "apply_fault",
    "revert_fault",
]


class Severity(enum.Enum):
    PERFORMANCE = "performance"  # silently skews measurements
    AVAILABILITY = "availability"  # breaks node/service availability
    CORRECTNESS = "correctness"  # wrong data served to users
    SERVICE = "service"  # degrades a testbed service
    TRANSPORT = "transport"  # degrades the service wire layer itself


class FaultKind(enum.Enum):
    # CPU / BIOS configuration drift (slide 13)
    CPU_CSTATES = "cpu-cstates"
    CPU_HYPERTHREADING = "cpu-hyperthreading"
    CPU_TURBO = "cpu-turbo"
    CPU_POWER_PROFILE = "cpu-power-profile"
    BIOS_VERSION_SKEW = "bios-version-skew"
    # Disks (slides 13 & 22)
    DISK_WRITE_CACHE = "disk-write-cache"
    DISK_READ_AHEAD = "disk-read-ahead"
    DISK_FIRMWARE_SKEW = "disk-firmware-skew"
    DISK_DEAD = "disk-dead"
    # Memory / NIC hardware
    RAM_DIMM_FAILED = "ram-dimm-failed"
    NIC_DOWNGRADE = "nic-downgrade"
    # Wiring (slide 13: "cabling issue -> wrong measurements")
    PDU_CABLE_SWAP = "pdu-cable-swap"
    # Infiniband (slide 22: OFED bug)
    IB_OFED_FAILURE = "ib-ofed-failure"
    # Stability (slide 22: random reboots, kernel race)
    RANDOM_REBOOTS = "random-reboots"
    KERNEL_BOOT_RACE = "kernel-boot-race"
    CONSOLE_BROKEN = "console-broken"
    # Services
    OAR_PROPERTY_DRIFT = "oar-property-drift"
    API_FLAKY = "api-flaky"
    CMDLINE_BROKEN = "cmdline-broken"
    ENV_IMAGE_BROKEN = "env-image-broken"
    DEPLOY_DEGRADED = "deploy-degraded"
    KAVLAN_MISCONFIG = "kavlan-misconfig"
    KWAPI_DOWN = "kwapi-down"
    # Service wire layer (scheduled by the chaos transport, not the
    # in-world injector — see TRANSPORT_FAULT_SPECS below)
    CONN_DROP = "conn-drop"
    LINE_GARBAGE = "line-garbage"
    LINE_SPLIT = "line-split"
    LINE_DUP = "line-dup"
    LINE_DELAY = "line-delay"


@dataclass(frozen=True)
class FaultSpec:
    """Static metadata for one fault kind."""

    kind: FaultKind
    severity: Severity
    #: Relative injection frequency (hardware drift dominates, as on the
    #: real testbed where heterogeneous aging hardware is the main source).
    weight: float
    #: Test families (slide 21 names) expected to be able to catch this.
    detectable_by: frozenset[str]
    description: str


FAULT_SPECS: dict[FaultKind, FaultSpec] = {
    s.kind: s
    for s in [
        FaultSpec(FaultKind.CPU_CSTATES, Severity.PERFORMANCE, 3.0,
                  frozenset({"refapi", "stdenv"}),
                  "C-states silently re-enabled after a BIOS reset"),
        FaultSpec(FaultKind.CPU_HYPERTHREADING, Severity.PERFORMANCE, 2.0,
                  frozenset({"refapi", "stdenv"}),
                  "hyperthreading toggled by a maintenance operation"),
        FaultSpec(FaultKind.CPU_TURBO, Severity.PERFORMANCE, 2.0,
                  frozenset({"refapi", "stdenv"}),
                  "turbo boost enabled, breaking run-to-run reproducibility"),
        FaultSpec(FaultKind.CPU_POWER_PROFILE, Severity.PERFORMANCE, 2.0,
                  frozenset({"refapi", "stdenv"}),
                  "BIOS power profile reset to 'balanced'"),
        FaultSpec(FaultKind.BIOS_VERSION_SKEW, Severity.PERFORMANCE, 2.0,
                  frozenset({"dellbios"}),
                  "some nodes run an older BIOS version than the rest"),
        FaultSpec(FaultKind.DISK_WRITE_CACHE, Severity.PERFORMANCE, 3.0,
                  frozenset({"disk", "refapi"}),
                  "drive write cache disabled after replacement"),
        FaultSpec(FaultKind.DISK_READ_AHEAD, Severity.PERFORMANCE, 1.5,
                  frozenset({"disk", "refapi"}),
                  "drive read-ahead disabled"),
        FaultSpec(FaultKind.DISK_FIRMWARE_SKEW, Severity.PERFORMANCE, 2.5,
                  frozenset({"disk", "refapi"}),
                  "replacement drives shipped with older firmware"),
        FaultSpec(FaultKind.DISK_DEAD, Severity.AVAILABILITY, 2.0,
                  frozenset({"disk", "refapi"}),
                  "drive failed outright"),
        FaultSpec(FaultKind.RAM_DIMM_FAILED, Severity.CORRECTNESS, 2.0,
                  frozenset({"refapi"}),
                  "a DIMM bank died; node has half its documented RAM"),
        FaultSpec(FaultKind.NIC_DOWNGRADE, Severity.PERFORMANCE, 2.0,
                  frozenset({"refapi"}),
                  "NIC negotiated 1 Gbps on a 10 Gbps port (bad cable)"),
        FaultSpec(FaultKind.PDU_CABLE_SWAP, Severity.CORRECTNESS, 1.5,
                  frozenset({"kwapi"}),
                  "two nodes' power cables swapped; kwapi reports the wrong node"),
        FaultSpec(FaultKind.IB_OFED_FAILURE, Severity.AVAILABILITY, 1.5,
                  frozenset({"mpigraph"}),
                  "OFED stack fails to start on boot"),
        FaultSpec(FaultKind.RANDOM_REBOOTS, Severity.AVAILABILITY, 1.0,
                  frozenset({"multireboot", "oarstate"}),
                  "node reboots spontaneously (failing PSU/mainboard)"),
        FaultSpec(FaultKind.KERNEL_BOOT_RACE, Severity.AVAILABILITY, 1.0,
                  frozenset({"multireboot", "multideploy"}),
                  "kernel race delays some boots by minutes"),
        FaultSpec(FaultKind.CONSOLE_BROKEN, Severity.SERVICE, 1.5,
                  frozenset({"console"}),
                  "serial console dead (misconfigured conman)"),
        FaultSpec(FaultKind.OAR_PROPERTY_DRIFT, Severity.CORRECTNESS, 2.0,
                  frozenset({"oarproperties"}),
                  "OAR database property no longer matches the Reference API"),
        FaultSpec(FaultKind.API_FLAKY, Severity.SERVICE, 1.5,
                  frozenset({"sidapi"}),
                  "site REST API intermittently returns errors"),
        FaultSpec(FaultKind.CMDLINE_BROKEN, Severity.SERVICE, 1.0,
                  frozenset({"cmdline"}),
                  "command-line tool broken by a partial upgrade"),
        FaultSpec(FaultKind.ENV_IMAGE_BROKEN, Severity.SERVICE, 2.0,
                  frozenset({"environments"}),
                  "a reference environment image fails on one cluster"),
        FaultSpec(FaultKind.DEPLOY_DEGRADED, Severity.SERVICE, 1.5,
                  frozenset({"paralleldeploy", "multideploy"}),
                  "deployment service degraded on one cluster"),
        FaultSpec(FaultKind.KAVLAN_MISCONFIG, Severity.SERVICE, 1.0,
                  frozenset({"kavlan"}),
                  "switch misconfiguration breaks VLAN isolation on a site"),
        FaultSpec(FaultKind.KWAPI_DOWN, Severity.SERVICE, 1.0,
                  frozenset({"kwapi"}),
                  "power monitoring stopped recording on a site"),
    ]
}


#: Wire-layer fault kinds, scheduled by the chaos transport
#: (:mod:`repro.service.chaos`) against the ``repro-sim-1`` protocol.
#: Deliberately a SEPARATE table: ``FaultInjector`` derives its default
#: kind tuple and RNG weight vector from :data:`FAULT_SPECS`, so folding
#: these in would shift every in-world fault draw and break the pinned
#: determinism goldens.  ``detectable_by`` names the recovery mechanism
#: expected to mask each fault end to end.
TRANSPORT_FAULT_SPECS: dict[FaultKind, FaultSpec] = {
    s.kind: s
    for s in [
        FaultSpec(FaultKind.CONN_DROP, Severity.TRANSPORT, 1.5,
                  frozenset({"resm"}),
                  "connection dropped mid-exchange (RESM resumes the run)"),
        FaultSpec(FaultKind.LINE_GARBAGE, Severity.TRANSPORT, 2.0,
                  frozenset({"err-recovery"}),
                  "garbage line injected into the stream (answered ERR)"),
        FaultSpec(FaultKind.LINE_SPLIT, Severity.TRANSPORT, 2.0,
                  frozenset({"err-recovery"}),
                  "one line torn into two partial lines"),
        FaultSpec(FaultKind.LINE_DUP, Severity.TRANSPORT, 2.0,
                  frozenset({"err-recovery"}),
                  "one line delivered twice"),
        FaultSpec(FaultKind.LINE_DELAY, Severity.TRANSPORT, 2.5,
                  frozenset({"heartbeat"}),
                  "line delivery stalled (heartbeat keeps the peer honest)"),
    ]
}


def spec_for(kind: FaultKind) -> FaultSpec:
    if kind in TRANSPORT_FAULT_SPECS:
        return TRANSPORT_FAULT_SPECS[kind]
    return FAULT_SPECS[kind]


@dataclass(eq=False)  # identity semantics: two injections are never "equal"
class FaultInstance:
    """One injected fault: the ground truth a campaign scores against."""

    fault_id: int
    kind: FaultKind
    target: str  # node uid, cluster uid, site uid or "image@cluster"
    site: str
    cluster: Optional[str]
    injected_at: float
    details: dict[str, Any] = field(default_factory=dict)
    active: bool = True
    detected_at: Optional[float] = None
    detected_by: Optional[str] = None
    fixed_at: Optional[float] = None

    @property
    def severity(self) -> Severity:
        return FAULT_SPECS[self.kind].severity

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    def matches(self, kind: FaultKind, target: str) -> bool:
        return self.active and self.kind == kind and self.target == target


@dataclass
class FaultContext:
    """Everything fault handlers may mutate."""

    machines: MachinePark
    services: ServiceHealth
    #: Names of the reference environment images (for ENV_IMAGE_BROKEN).
    images: tuple[str, ...]
    #: cluster uid -> node uids (avoids re-deriving from machines each time).
    clusters: dict[str, list[str]] = field(default_factory=dict)
    sites: dict[str, list[str]] = field(default_factory=dict)  # site -> clusters

    @classmethod
    def build(cls, machines: MachinePark, services: ServiceHealth,
              images: tuple[str, ...]) -> "FaultContext":
        clusters: dict[str, list[str]] = {}
        sites: dict[str, list[str]] = {}
        for m in machines.machines.values():
            clusters.setdefault(m.cluster_uid, []).append(m.uid)
            if m.cluster_uid not in sites.setdefault(m.site_uid, []):
                sites[m.site_uid].append(m.cluster_uid)
        return cls(machines=machines, services=services, images=images,
                   clusters=clusters, sites=sites)

    def pick_node(self, rng: np.random.Generator,
                  predicate: Optional[Callable[[SimulatedNode], bool]] = None,
                  ) -> Optional[SimulatedNode]:
        uids = sorted(self.machines.machines)
        order = rng.permutation(len(uids))
        for i in order:
            node = self.machines[uids[int(i)]]
            if predicate is None or predicate(node):
                return node
        return None

    def pick_cluster(self, rng: np.random.Generator,
                     predicate: Optional[Callable[[str], bool]] = None) -> Optional[str]:
        names = sorted(self.clusters)
        order = rng.permutation(len(names))
        for i in order:
            if predicate is None or predicate(names[int(i)]):
                return names[int(i)]
        return None

    def pick_site(self, rng: np.random.Generator,
                  predicate: Optional[Callable[[str], bool]] = None) -> Optional[str]:
        names = sorted(self.sites)
        order = rng.permutation(len(names))
        for i in order:
            if predicate is None or predicate(names[int(i)]):
                return names[int(i)]
        return None

    def site_of_cluster(self, cluster: str) -> str:
        return self.machines[self.clusters[cluster][0]].site_uid


# --------------------------------------------------------------------------
# apply / revert handlers
# --------------------------------------------------------------------------

_Handler = Callable[[FaultContext, np.random.Generator], Optional[tuple[str, dict]]]


def _bios_flag_handler(attr: str, value: bool | str,
                       capability: Optional[str] = None) -> _Handler:
    def apply(ctx: FaultContext, rng: np.random.Generator):
        def eligible(node: SimulatedNode) -> bool:
            if getattr(node.actual.bios, attr) == value:
                return False
            if capability and not getattr(node.description.cpu, capability):
                return False
            return True

        node = ctx.pick_node(rng, eligible)
        if node is None:
            return None
        old = getattr(node.actual.bios, attr)
        setattr(node.actual.bios, attr, value)
        return node.uid, {"attr": attr, "old": old, "new": value}

    return apply


def _apply_bios_version_skew(ctx: FaultContext, rng: np.random.Generator):
    cluster = ctx.pick_cluster(rng, lambda c: len(ctx.clusters[c]) >= 4)
    if cluster is None:
        return None
    uids = ctx.clusters[cluster]
    count = max(1, int(len(uids) * float(rng.uniform(0.1, 0.4))))
    chosen = [uids[int(i)] for i in rng.choice(len(uids), size=count, replace=False)]
    old = {}
    for uid in chosen:
        node = ctx.machines[uid]
        old[uid] = node.actual.bios.version
        node.actual.bios.version = "0.9.7"  # stale vendor release
    return cluster, {"nodes": chosen, "old_versions": old}


def _disk_flag_handler(attr: str) -> _Handler:
    def apply(ctx: FaultContext, rng: np.random.Generator):
        node = ctx.pick_node(rng, lambda n: any(getattr(d, attr) for d in n.actual.disks))
        if node is None:
            return None
        disks = [d for d in node.actual.disks if getattr(d, attr)]
        disk = disks[int(rng.integers(len(disks)))]
        setattr(disk, attr, False)
        return node.uid, {"device": disk.device, "attr": attr}

    return apply


def _apply_disk_firmware_skew(ctx: FaultContext, rng: np.random.Generator):
    from ..testbed.catalog import disk_model

    def eligible(cluster: str) -> bool:
        node = ctx.machines[ctx.clusters[cluster][0]]
        return any(len(disk_model(d.model).firmware_versions) > 1
                   for d in node.actual.disks)

    cluster = ctx.pick_cluster(rng, eligible)
    if cluster is None:
        return None
    uids = ctx.clusters[cluster]
    sample = ctx.machines[uids[0]]
    devices = [d.device for d in sample.actual.disks
               if len(disk_model(d.model).firmware_versions) > 1]
    device = devices[int(rng.integers(len(devices)))]
    count = max(1, int(len(uids) * float(rng.uniform(0.1, 0.3))))
    chosen = [uids[int(i)] for i in rng.choice(len(uids), size=count, replace=False)]
    old = {}
    for uid in chosen:
        disk = ctx.machines[uid].find_disk(device)
        lineage = disk_model(disk.model).firmware_versions
        old[uid] = disk.firmware
        disk.firmware = lineage[0]  # oldest release
    return cluster, {"nodes": chosen, "device": device, "old_firmware": old}


def _apply_disk_dead(ctx: FaultContext, rng: np.random.Generator):
    node = ctx.pick_node(rng, lambda n: any(d.healthy for d in n.actual.disks))
    if node is None:
        return None
    disks = [d for d in node.actual.disks if d.healthy]
    disk = disks[int(rng.integers(len(disks)))]
    disk.healthy = False
    return node.uid, {"device": disk.device}


def _apply_ram_dimm(ctx: FaultContext, rng: np.random.Generator):
    node = ctx.pick_node(rng, lambda n: n.actual.ram_gb == n.description.ram_gb
                         and n.description.ram_gb >= 4)
    if node is None:
        return None
    old = node.actual.ram_gb
    node.actual.ram_gb = old // 2
    return node.uid, {"old_ram_gb": old}


def _apply_nic_downgrade(ctx: FaultContext, rng: np.random.Generator):
    def eligible(node: SimulatedNode) -> bool:
        nic = node.actual.nics[0]
        return nic.nominal_gbps >= 10.0 and nic.rate_gbps == nic.nominal_gbps

    node = ctx.pick_node(rng, eligible)
    if node is None:
        return None
    nic = node.actual.nics[0]
    old = nic.rate_gbps
    nic.rate_gbps = 1.0
    return node.uid, {"device": nic.device, "old_gbps": old}


def _apply_pdu_swap(ctx: FaultContext, rng: np.random.Generator):
    cluster = ctx.pick_cluster(rng, lambda c: len(ctx.clusters[c]) >= 2)
    if cluster is None:
        return None
    uids = ctx.clusters[cluster]
    i = int(rng.integers(len(uids) - 1))
    a, b = ctx.machines[uids[i]], ctx.machines[uids[i + 1]]
    a_wiring = (a.actual.pdu_uid, a.actual.pdu_port)
    b_wiring = (b.actual.pdu_uid, b.actual.pdu_port)
    if a_wiring == (a.description.pdu.pdu_uid, a.description.pdu.port) and \
       b_wiring == (b.description.pdu.pdu_uid, b.description.pdu.port):
        a.actual.pdu_uid, a.actual.pdu_port = b_wiring
        b.actual.pdu_uid, b.actual.pdu_port = a_wiring
        return cluster, {"nodes": [a.uid, b.uid]}
    return None


def _apply_ofed(ctx: FaultContext, rng: np.random.Generator):
    node = ctx.pick_node(rng, lambda n: n.actual.infiniband is not None
                         and n.actual.infiniband.stack_ok)
    if node is None:
        return None
    node.actual.infiniband.stack_ok = False
    return node.uid, {}


def _apply_random_reboots(ctx: FaultContext, rng: np.random.Generator):
    node = ctx.pick_node(rng, lambda n: n.crash_mtbf_s is None)
    if node is None:
        return None
    node.crash_mtbf_s = float(rng.uniform(2.0, 12.0)) * 3600.0
    old_prob = node.boot_failure_prob
    node.boot_failure_prob = 0.15
    return node.uid, {"mtbf_s": node.crash_mtbf_s, "old_boot_failure_prob": old_prob}


def _apply_boot_race(ctx: FaultContext, rng: np.random.Generator):
    cluster = ctx.pick_cluster(
        rng, lambda c: ctx.machines[ctx.clusters[c][0]].boot_race_delay_s == 0.0
    )
    if cluster is None:
        return None
    delay = float(rng.uniform(180.0, 600.0))
    for uid in ctx.clusters[cluster]:
        ctx.machines[uid].boot_race_delay_s = delay
    return cluster, {"delay_s": delay}


def _apply_console(ctx: FaultContext, rng: np.random.Generator):
    node = ctx.pick_node(rng, lambda n: n.actual.console_ok)
    if node is None:
        return None
    node.actual.console_ok = False
    return node.uid, {}


def _apply_oar_drift(ctx: FaultContext, rng: np.random.Generator):
    # Flip a documented property for a handful of a cluster's nodes in the
    # OAR database (simulated through ServiceHealth.oar_property_drift).
    cluster = ctx.pick_cluster(rng)
    assert cluster is not None
    uids = ctx.clusters[cluster]
    count = max(1, len(uids) // 8)
    chosen = [uids[int(i)] for i in rng.choice(len(uids), size=count, replace=False)]
    prop = ["memnode", "disktype", "eth10g"][int(rng.integers(3))]
    for uid in chosen:
        ctx.services.oar_property_drift.setdefault(uid, set()).add(prop)
    return cluster, {"nodes": chosen, "property": prop}


def _apply_api_flaky(ctx: FaultContext, rng: np.random.Generator):
    site = ctx.pick_site(rng, lambda s: ctx.services.api_failure_prob.get(s, 0.0) == 0.0)
    if site is None:
        return None
    ctx.services.api_failure_prob[site] = float(rng.uniform(0.15, 0.5))
    return site, {"failure_prob": ctx.services.api_failure_prob[site]}


def _apply_cmdline(ctx: FaultContext, rng: np.random.Generator):
    site = ctx.pick_site(rng, lambda s: ctx.services.cmdline_failure_prob.get(s, 0.0) == 0.0)
    if site is None:
        return None
    ctx.services.cmdline_failure_prob[site] = float(rng.uniform(0.3, 0.9))
    return site, {"failure_prob": ctx.services.cmdline_failure_prob[site]}


def _apply_env_broken(ctx: FaultContext, rng: np.random.Generator):
    image = ctx.images[int(rng.integers(len(ctx.images)))]
    cluster = ctx.pick_cluster(rng, lambda c: (image, c) not in ctx.services.broken_images)
    if cluster is None:
        return None
    ctx.services.broken_images.add((image, cluster))
    return f"{image}@{cluster}", {"image": image, "cluster": cluster}


def _apply_deploy_degraded(ctx: FaultContext, rng: np.random.Generator):
    cluster = ctx.pick_cluster(rng, lambda c: c not in ctx.services.deploy_degradation)
    if cluster is None:
        return None
    ctx.services.deploy_degradation[cluster] = float(rng.uniform(0.15, 0.4))
    return cluster, {"extra_failure_prob": ctx.services.deploy_degradation[cluster]}


def _apply_kavlan(ctx: FaultContext, rng: np.random.Generator):
    site = ctx.pick_site(rng, lambda s: s not in ctx.services.kavlan_broken)
    if site is None:
        return None
    ctx.services.kavlan_broken.add(site)
    return site, {}


def _apply_kwapi_down(ctx: FaultContext, rng: np.random.Generator):
    site = ctx.pick_site(rng, lambda s: s not in ctx.services.kwapi_down)
    if site is None:
        return None
    ctx.services.kwapi_down.add(site)
    return site, {}


_APPLY: dict[FaultKind, _Handler] = {
    FaultKind.CPU_CSTATES: _bios_flag_handler("c_states", True),
    FaultKind.CPU_HYPERTHREADING: _bios_flag_handler("hyperthreading", True, "ht_capable"),
    FaultKind.CPU_TURBO: _bios_flag_handler("turbo_boost", True, "turbo_capable"),
    FaultKind.CPU_POWER_PROFILE: _bios_flag_handler("power_profile", "balanced"),
    FaultKind.BIOS_VERSION_SKEW: _apply_bios_version_skew,
    FaultKind.DISK_WRITE_CACHE: _disk_flag_handler("write_cache"),
    FaultKind.DISK_READ_AHEAD: _disk_flag_handler("read_ahead"),
    FaultKind.DISK_FIRMWARE_SKEW: _apply_disk_firmware_skew,
    FaultKind.DISK_DEAD: _apply_disk_dead,
    FaultKind.RAM_DIMM_FAILED: _apply_ram_dimm,
    FaultKind.NIC_DOWNGRADE: _apply_nic_downgrade,
    FaultKind.PDU_CABLE_SWAP: _apply_pdu_swap,
    FaultKind.IB_OFED_FAILURE: _apply_ofed,
    FaultKind.RANDOM_REBOOTS: _apply_random_reboots,
    FaultKind.KERNEL_BOOT_RACE: _apply_boot_race,
    FaultKind.CONSOLE_BROKEN: _apply_console,
    FaultKind.OAR_PROPERTY_DRIFT: _apply_oar_drift,
    FaultKind.API_FLAKY: _apply_api_flaky,
    FaultKind.CMDLINE_BROKEN: _apply_cmdline,
    FaultKind.ENV_IMAGE_BROKEN: _apply_env_broken,
    FaultKind.DEPLOY_DEGRADED: _apply_deploy_degraded,
    FaultKind.KAVLAN_MISCONFIG: _apply_kavlan,
    FaultKind.KWAPI_DOWN: _apply_kwapi_down,
}


def apply_fault(kind: FaultKind, ctx: FaultContext, rng: np.random.Generator,
                fault_id: int, now: float) -> Optional[FaultInstance]:
    """Inject one fault of ``kind``; returns None if no eligible target."""
    if kind not in _APPLY:
        raise FaultError(f"no apply handler for {kind}")
    result = _APPLY[kind](ctx, rng)
    if result is None:
        return None
    target, details = result
    cluster: Optional[str] = None
    if target in ctx.clusters:
        cluster = target
        site = ctx.site_of_cluster(target)
    elif target in ctx.sites:
        site = target
    elif "@" in target:
        cluster = target.split("@", 1)[1]
        site = ctx.site_of_cluster(cluster)
    else:  # node uid
        node = ctx.machines[target]
        cluster, site = node.cluster_uid, node.site_uid
    return FaultInstance(
        fault_id=fault_id, kind=kind, target=target, site=site, cluster=cluster,
        injected_at=now, details=details,
    )


def revert_fault(instance: FaultInstance, ctx: FaultContext) -> None:
    """Undo a fault (the operator's fix).  Idempotent per instance."""
    if not instance.active:
        return
    kind, target, details = instance.kind, instance.target, instance.details
    machines, services = ctx.machines, ctx.services
    if kind in (FaultKind.CPU_CSTATES, FaultKind.CPU_HYPERTHREADING,
                FaultKind.CPU_TURBO, FaultKind.CPU_POWER_PROFILE):
        setattr(machines[target].actual.bios, details["attr"], details["old"])
    elif kind == FaultKind.BIOS_VERSION_SKEW:
        for uid, version in details["old_versions"].items():
            machines[uid].actual.bios.version = version
    elif kind in (FaultKind.DISK_WRITE_CACHE, FaultKind.DISK_READ_AHEAD):
        setattr(machines[target].find_disk(details["device"]), details["attr"], True)
    elif kind == FaultKind.DISK_FIRMWARE_SKEW:
        for uid, fw in details["old_firmware"].items():
            machines[uid].find_disk(details["device"]).firmware = fw
    elif kind == FaultKind.DISK_DEAD:
        machines[target].find_disk(details["device"]).healthy = True
    elif kind == FaultKind.RAM_DIMM_FAILED:
        machines[target].actual.ram_gb = details["old_ram_gb"]
    elif kind == FaultKind.NIC_DOWNGRADE:
        machines[target].find_nic(details["device"]).rate_gbps = details["old_gbps"]
    elif kind == FaultKind.PDU_CABLE_SWAP:
        a, b = (machines[u] for u in details["nodes"])
        a.actual.pdu_uid, a.actual.pdu_port = a.description.pdu.pdu_uid, a.description.pdu.port
        b.actual.pdu_uid, b.actual.pdu_port = b.description.pdu.pdu_uid, b.description.pdu.port
    elif kind == FaultKind.IB_OFED_FAILURE:
        machines[target].actual.infiniband.stack_ok = True
    elif kind == FaultKind.RANDOM_REBOOTS:
        machines[target].crash_mtbf_s = None
        machines[target].boot_failure_prob = details["old_boot_failure_prob"]
    elif kind == FaultKind.KERNEL_BOOT_RACE:
        for uid in ctx.clusters[target]:
            machines[uid].boot_race_delay_s = 0.0
    elif kind == FaultKind.CONSOLE_BROKEN:
        machines[target].actual.console_ok = True
    elif kind == FaultKind.OAR_PROPERTY_DRIFT:
        for uid in details["nodes"]:
            drifted = services.oar_property_drift.get(uid)
            if drifted:
                drifted.discard(details["property"])
                if not drifted:
                    del services.oar_property_drift[uid]
    elif kind == FaultKind.API_FLAKY:
        services.api_failure_prob.pop(target, None)
    elif kind == FaultKind.CMDLINE_BROKEN:
        services.cmdline_failure_prob.pop(target, None)
    elif kind == FaultKind.ENV_IMAGE_BROKEN:
        services.broken_images.discard((details["image"], details["cluster"]))
    elif kind == FaultKind.DEPLOY_DEGRADED:
        services.deploy_degradation.pop(target, None)
    elif kind == FaultKind.KAVLAN_MISCONFIG:
        services.kavlan_broken.discard(target)
    elif kind == FaultKind.KWAPI_DOWN:
        services.kwapi_down.discard(target)
    else:  # pragma: no cover - exhaustive above
        raise FaultError(f"no revert handler for {kind}")
    instance.active = False
