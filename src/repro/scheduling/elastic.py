"""Malleable scheduling policies: the grow/shrink decision procedures.

The OAR layer provides the *mechanism* — ``grow``/``shrink``/
``evict_dead_nodes`` on :class:`~repro.oar.server.OarServer`, all ordinary
deterministic kernel events guarded by the job's generation counter.  This
module provides the *policies* that drive it, registered in the ordinary
strategy registry so a scenario selects one by name
(``ScenarioSpec.strategy``):

* ``easy-backfill`` — the rigid baseline: jobs run at their preferred
  width from start to finish, exactly the historical behaviour (and
  byte-identical to ``default``).  Malleable width ranges are ignored, so
  an A/B against it holds contention constant.
* ``common-pool`` — treat idle capacity as a common pool: running
  malleable jobs expand into nodes that are free through their walltime
  deadline (one node per job per round, round-robin in FCFS order, so the
  pool is shared fairly).  Growing never displaces a reservation — only
  capacity nothing else could use before the grower's deadline — so it
  runs every tick; on queue pressure every job above its preferred width
  is first clipped back so the reclaimed nodes immediately re-plan queued
  work forward.
* ``steal-agreement`` — everything common-pool does, plus an explicit
  negotiation for queued jobs: a queued job short of nodes asks the
  running malleable jobs to cede width down toward their minimum.  The
  agreement is all-or-nothing — donors only shrink when their combined
  cedeable width covers the deficit — and each donor keeps enough width
  to still finish inside its walltime (the feasibility floor), so a steal
  never converts a finishing job into a walltime kill.

Every decision runs inside the scheduler tick (the simulated clock is
frozen), iterates jobs in job-id order, and picks nodes in deterministic
database order — two runs of the same scenario make byte-identical calls.

Test-cell decisions are inherited from :class:`DefaultStrategy` unchanged:
elastic policies govern *user* jobs and leave the framework's own
launch/defer behaviour alone.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from .policies import DefaultStrategy, register_strategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..oar.jobs import Job
    from ..oar.server import OarServer
    from .launcher import TickView

__all__ = ["EasyBackfillStrategy", "CommonPoolStrategy",
           "StealAgreementStrategy"]


def _running_malleable(oar: "OarServer") -> list["Job"]:
    """Running malleable jobs in job-id (FCFS) order."""
    return [j for j in oar.running_jobs() if j.malleable]


@register_strategy
class EasyBackfillStrategy(DefaultStrategy):
    """Rigid baseline with reservations: never grows or shrinks.

    The underlying OAR scheduler already runs FCFS with conservative
    backfilling; this strategy simply leaves every job at its preferred
    width, which makes it the identical-contention baseline for the
    malleable policies (same submissions, same placements, same ticks).
    """

    name = "easy-backfill"


@register_strategy
class CommonPoolStrategy(DefaultStrategy):
    """Expand running malleable jobs into the idle pool; reclaim on queue
    pressure."""

    name = "common-pool"

    #: A reservation further than this away counts as queue pressure.
    queue_slack_s = 60.0

    def on_tick(self, view: "TickView") -> None:
        super().on_tick(view)  # test-cell decisions, unchanged
        self.elastic_tick(view.scheduler.oar)

    def elastic_tick(self, oar: "OarServer") -> None:
        self._evict_dead(oar)
        pressure = oar.queued_jobs(self.queue_slack_s)
        if pressure:
            self._reclaim(oar, pressure)
        # Expanding is safe even under pressure: grow only claims nodes
        # free through the job's whole walltime window, so no reservation
        # (queued job) is ever displaced — only capacity nothing else
        # could use before the grower's deadline.  The extra width burns
        # the job's remaining mass faster, so it finishes and frees its
        # whole allocation earlier.
        self._expand(oar)

    # -- shared building blocks ------------------------------------------------

    def _evict_dead(self, oar: "OarServer") -> None:
        """Release dead nodes held by malleable jobs (shrink past them, or
        re-queue at FCFS rank when the job would fall below its minimum)."""
        for job in _running_malleable(oar):
            oar.evict_dead_nodes(job)

    def _reclaim(self, oar: "OarServer", pressure: list["Job"]) -> None:
        """Clip every malleable job back to its preferred width and re-plan
        the queue onto the freed nodes at once."""
        freed: set[str] = set()
        for job in _running_malleable(oar):
            extra = job.width - job.request.parts[0].count
            if extra > 0:
                freed.update(oar.shrink(job, extra, replan=False))
        if freed:
            oar.replan_now(freed)

    def _expand(self, oar: "OarServer") -> None:
        """Round-robin grow: one node per job per round until the pool or
        every job's headroom is exhausted."""
        while True:
            granted = False
            for job in _running_malleable(oar):
                if job.width >= job.max_nodes:
                    continue
                candidates = oar.grow_candidates(job)
                if not candidates:
                    continue
                oar.grow(job, candidates[:1])
                granted = True
            if not granted:
                return


@register_strategy
class StealAgreementStrategy(CommonPoolStrategy):
    """Common-pool plus queued jobs negotiating nodes away from running
    malleable jobs above their minimum."""

    name = "steal-agreement"

    def elastic_tick(self, oar: "OarServer") -> None:
        self._evict_dead(oar)
        pressure = oar.queued_jobs(self.queue_slack_s)
        if pressure:
            self._reclaim(oar, pressure)
            self._negotiate(oar, oar.queued_jobs(self.queue_slack_s))
        self._expand(oar)

    def _negotiate(self, oar: "OarServer", queued: list["Job"]) -> None:
        """One steal round, FCFS over the queued jobs.

        For each queued single-part job, count the matching nodes free
        right now; if short, ask the running malleable jobs (again FCFS)
        to cede width from nodes the queued job can use.  All-or-nothing:
        donors only shrink when the combined offer covers the deficit, so
        a failed negotiation leaves every allocation untouched.
        """
        now = oar.sim.now
        for job in queued:
            if len(job.request.parts) != 1:
                continue
            part = job.request.parts[0]
            if not isinstance(part.count, int):
                continue  # nodes=ALL cannot be bargained for
            needed = part.count
            candidates = [u for u in oar._matching(part.expr)
                          if oar.node_state(u) == "Alive"]
            if not candidates:
                continue
            window = max(job.walltime_s, 1.0)
            if oar.gantt.use_profile:
                # One profile query answers "free through the window" for
                # the whole matching set; each candidate costs a bit test
                # instead of a timeline bisect.
                fmask = oar.gantt.profile_free_mask(
                    oar.matching_mask(part.expr), now, now + window)
                bit = oar.gantt.bit
                have = sum(1 for u in candidates if fmask >> bit(u) & 1)
            else:
                have = sum(1 for u in candidates
                           if oar.gantt.is_free(u, now, now + window))
            deficit = needed - have
            if deficit <= 0:
                continue  # the ordinary replan can already place it
            usable = set(candidates)
            offers: list[tuple["Job", list[str]]] = []
            offered = 0
            for donor in _running_malleable(oar):
                floor = self._feasible_floor(donor, now)
                room = donor.width - floor
                if room <= 0:
                    continue
                # Only nodes the queued job can actually use, newest first
                # (mirrors shrink's tail-first release order).
                givable = [u for u in reversed(donor.assignment[0])
                           if u in usable][:room]
                if not givable:
                    continue
                take = min(len(givable), deficit - offered)
                offers.append((donor, givable[:take]))
                offered += take
                if offered >= deficit:
                    break
            if offered < deficit:
                continue  # no agreement: nobody cedes anything
            freed: set[str] = set()
            for donor, uids in offers:
                freed.update(oar.shrink(donor, len(uids), prefer=set(uids),
                                        replan=False))
            oar.replan_now(freed)

    @staticmethod
    def _feasible_floor(donor: "Job", now: float) -> int:
        """Narrowest width at which the donor still finishes in walltime.

        Below this, a steal would turn a job that was going to finish into
        a walltime kill — a trade no agreement should make.
        """
        floor = donor.min_nodes
        if donor.auto_duration is None:
            return floor
        deadline = donor.started_at + donor.walltime_s
        wall_left = deadline - now
        if wall_left <= 0:
            return donor.width
        if donor.mass_remaining is not None:
            mass = donor.mass_remaining \
                - (now - donor.mass_accrued_at) * donor.width
        else:
            mass = (donor.auto_duration
                    - (now - donor.started_at)) * donor.width
        if mass <= 0:
            return floor
        return max(floor, min(donor.width,
                              math.ceil(mass / wall_left - 1e-9)))
