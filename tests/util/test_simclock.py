"""Unit tests for calendar helpers."""

import pytest

from repro.util import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    WEEK,
    day_of_week,
    format_duration,
    format_time,
    hour_of_day,
    is_peak_hours,
    is_weekend,
    sim_date,
)


def test_constants_consistent():
    assert HOUR == 60 * MINUTE
    assert DAY == 24 * HOUR
    assert WEEK == 7 * DAY
    assert MONTH == 30 * DAY


def test_epoch_is_wednesday():
    assert day_of_week(0.0) == 2  # Monday=0 -> Wednesday=2


def test_day_of_week_cycles():
    assert day_of_week(5 * DAY) == (2 + 5) % 7
    assert day_of_week(7 * DAY) == 2


def test_hour_of_day():
    assert hour_of_day(0.0) == 0.0
    assert hour_of_day(13.5 * HOUR) == 13.5
    assert hour_of_day(DAY + 2 * HOUR) == 2.0


def test_weekend_detection():
    # epoch (Wed) + 3 days = Saturday, +4 = Sunday, +5 = Monday
    assert not is_weekend(0.0)
    assert is_weekend(3 * DAY)
    assert is_weekend(4 * DAY)
    assert not is_weekend(5 * DAY)


def test_peak_hours_weekday():
    assert not is_peak_hours(8 * HOUR)
    assert is_peak_hours(9 * HOUR)
    assert is_peak_hours(18.99 * HOUR)
    assert not is_peak_hours(19 * HOUR)


def test_peak_hours_never_on_weekend():
    saturday_noon = 3 * DAY + 12 * HOUR
    assert not is_peak_hours(saturday_noon)


def test_sim_date_epoch():
    d = sim_date(0.0)
    assert (d.month_index, d.day, d.hour, d.minute, d.second) == (0, 1, 0, 0, 0)
    assert d.month_name == "Feb"


def test_sim_date_rollover():
    d = sim_date(MONTH + DAY + HOUR + MINUTE + 1)
    assert (d.month_index, d.day, d.hour, d.minute, d.second) == (1, 2, 1, 1, 1)
    assert d.month_name == "Mar"


def test_sim_date_negative_rejected():
    with pytest.raises(ValueError):
        sim_date(-1.0)


def test_month_names_wrap_after_a_year():
    assert sim_date(12 * MONTH).month_name == "Feb"
    assert sim_date(11 * MONTH).month_name == "Jan"


def test_format_time():
    assert format_time(0.0) == "Feb 01 00:00:00"
    assert format_time(2 * DAY + 14 * HOUR + 5 * MINUTE) == "Feb 03 14:05:00"


def test_format_duration_seconds():
    assert format_duration(45) == "45s"
    assert format_duration(0) == "0s"


def test_format_duration_hms():
    assert format_duration(2 * HOUR + 30 * MINUTE) == "02:30:00"


def test_format_duration_days():
    assert format_duration(2 * DAY + 3 * HOUR + 15 * MINUTE) == "2d 03:15:00"


def test_format_duration_negative():
    assert format_duration(-90) == "-" + format_duration(90)


def test_format_duration_rounds():
    assert format_duration(59.4) == "59s"
    assert format_duration(59.6) == format_duration(60)


# -- boundary behaviour (peak-hour/weekend edges, negative durations) ---------


def test_peak_hours_edges_at_0900_and_1900():
    # t=0 is Wednesday 00:00; the peak window is [09:00, 19:00).
    wed = 0.0
    assert not is_peak_hours(wed + 9 * HOUR - 1)
    assert is_peak_hours(wed + 9 * HOUR)  # 09:00:00 sharp is peak
    assert is_peak_hours(wed + 19 * HOUR - 1)
    assert not is_peak_hours(wed + 19 * HOUR)  # 19:00:00 sharp is off-peak
    assert hour_of_day(wed + 9 * HOUR) == 9.0


def test_weekend_edges():
    # epoch Wednesday -> Saturday starts 3 days in, Monday 5 days in.
    saturday = 3 * DAY
    assert not is_weekend(saturday - 1)  # Friday 23:59:59
    assert is_weekend(saturday)  # Saturday 00:00:00
    assert is_weekend(saturday + 2 * DAY - 1)  # Sunday 23:59:59
    assert not is_weekend(saturday + 2 * DAY)  # Monday 00:00:00
    assert day_of_week(saturday) == 5
    assert day_of_week(5 * DAY) == 0


def test_no_peak_hours_on_weekend():
    saturday = 3 * DAY
    assert not is_peak_hours(saturday + 10 * HOUR)
    assert not is_peak_hours(saturday + DAY + 10 * HOUR)  # Sunday
    assert is_peak_hours(saturday + 2 * DAY + 10 * HOUR)  # Monday


def test_format_duration_negative_days_and_hms():
    assert format_duration(-(2 * DAY + 3 * HOUR + 15 * MINUTE)) == "-2d 03:15:00"
    assert format_duration(-(2 * HOUR + 30 * MINUTE)) == "-02:30:00"
    assert format_duration(-0.4) == "0s"  # rounds to zero, no "-0s"


def test_format_duration_minute_boundary():
    assert format_duration(60) == "00:01:00"
    assert format_duration(DAY) == "1d 00:00:00"
