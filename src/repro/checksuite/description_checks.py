"""Description-correctness families: refapi, oarproperties, dellbios.

Slide 21: "Homogeneity and correctness of testbed description (refapi,
oarproperties, dellbios)".
"""

from __future__ import annotations

from typing import Any

from ..faults.catalog import FaultKind
from ..oar.database import properties_from_description
from .base import CheckContext, CheckFamily, Finding

__all__ = ["RefapiCheck", "OarPropertiesCheck", "DellBiosCheck"]


class RefapiCheck(CheckFamily):
    """Reserve one node per cluster and run g5k-checks against the
    Reference API; also verify the cluster's descriptions are homogeneous."""

    name = "refapi"
    kind = "software"
    walltime_s = 1800.0
    nodes_needed = 1

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = ctx.testbed.cluster(config["cluster"])
        # Homogeneity of the description itself (no hardware needed).
        reference = cluster.nodes[0]
        for node in cluster.nodes[1:]:
            if (node.cpu, node.ram_gb, [d.model for d in node.disks]) != (
                reference.cpu, reference.ram_gb, [d.model for d in reference.disks]
            ):
                outcome.findings.append(Finding(
                    None, node.uid,
                    "description not homogeneous with the rest of the cluster"))
        job = yield from self.reserve(
            ctx, f"cluster='{cluster.uid}'/nodes=1,walltime=0:30")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            yield ctx.sim.timeout(120.0)  # acquisition pass on the node
            outcome.findings.extend(self.g5k_checks_findings(ctx, job.assigned_nodes[0]))
        finally:
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome


class OarPropertiesCheck(CheckFamily):
    """Compare every OAR database row with the Reference API derivation."""

    name = "oarproperties"
    kind = "software"
    walltime_s = 600.0

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = ctx.testbed.cluster(config["cluster"])
        yield ctx.sim.timeout(30.0)  # one SQL pass over the cluster's rows
        for node in cluster.nodes:
            served = ctx.oardb.properties(node.uid)
            expected = properties_from_description(ctx.refapi.node(node.uid))
            wrong = {k for k, v in expected.items() if served.get(k) != v}
            if wrong:
                outcome.findings.append(Finding(
                    FaultKind.OAR_PROPERTY_DRIFT, node.uid,
                    f"OAR properties diverge from Reference API: {sorted(wrong)}"))
        outcome.passed = not outcome.findings
        return outcome


class DellBiosCheck(CheckFamily):
    """BIOS version homogeneity on Dell clusters (out-of-band via the BMC)."""

    name = "dellbios"
    kind = "software"
    walltime_s = 600.0

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters() if c.is_dell]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = ctx.testbed.cluster(config["cluster"])
        yield ctx.sim.timeout(3.0 * cluster.node_count)  # one BMC query per node
        versions: dict[str, list[str]] = {}
        for node in cluster.nodes:
            actual = ctx.machines[node.uid].actual.bios.version
            versions.setdefault(actual, []).append(node.uid)
        if len(versions) > 1:
            minority = min(versions.values(), key=len)
            outcome.findings.append(Finding(
                FaultKind.BIOS_VERSION_SKEW, cluster.uid,
                f"{len(versions)} BIOS versions coexist "
                f"(e.g. {minority[0]} differs from the majority)"))
        else:
            documented = cluster.nodes[0].bios.version
            (version,) = versions
            if version != documented:
                outcome.findings.append(Finding(
                    FaultKind.BIOS_VERSION_SKEW, cluster.uid,
                    f"BIOS {version} does not match documented {documented}"))
        outcome.passed = not outcome.findings
        return outcome
