"""The Jenkins-shaped automation server.

Slide 20 lists why Jenkins was the right substrate, and this class
implements exactly those benefits:

* *clean execution environment for scripts* — every build runs its runner
  generator from scratch;
* *queue to control overloading* — builds wait for one of ``executors``
  slots (FIFO);
* *access control for users to trigger jobs manually* — :meth:`trigger`
  takes a ``cause`` (who/what triggered);
* *long-term storage of results history and test logs* — every
  :class:`~repro.ci.job.Build` with its log is kept on the job.
"""

from __future__ import annotations

from typing import Any, Optional

from ..util.errors import CiError
from ..util.events import Interrupt, Process, Simulator
from .job import Build, BuildStatus, JobDefinition, Runner

__all__ = ["JenkinsServer"]


class JenkinsServer:
    """Job registry + build queue + executor pool."""

    def __init__(self, sim: Simulator, executors: int = 8):
        self.sim = sim
        self.jobs: dict[str, JobDefinition] = {}
        self.executors = sim.resource(executors)
        self._build_procs: dict[Build, Process] = {}

    # -- job management -----------------------------------------------------

    def register_job(self, name: str, runner: Runner, description: str = "",
                     timeout_s: float = 4 * 3600.0) -> JobDefinition:
        if name in self.jobs:
            raise CiError(f"job already registered: {name}")
        job = JobDefinition(name=name, runner=runner, description=description,
                            timeout_s=timeout_s)
        self.jobs[name] = job
        return job

    def job(self, name: str) -> JobDefinition:
        try:
            return self.jobs[name]
        except KeyError:
            raise CiError(f"unknown job: {name}") from None

    # -- triggering -----------------------------------------------------------

    def trigger(self, job_name: str, parameters: Optional[dict[str, Any]] = None,
                cause: str = "manual") -> Build:
        """Enqueue one build; returns immediately with the queued build."""
        job = self.job(job_name)
        build = Build(
            number=job.next_build_number,
            job_name=job_name,
            parameters=dict(parameters or {}),
            cause=cause,
            queued_at=self.sim.now,
            done_event=self.sim.event(),
        )
        job.builds.append(build)
        proc = self.sim.process(self._execute(job, build),
                                name=f"build-{job_name}-{build.number}")
        self._build_procs[build] = proc
        return build

    def abort(self, build: Build) -> None:
        """Abort a queued or running build."""
        if build.finished:
            raise CiError(f"build already finished: {build}")
        proc = self._build_procs.get(build)
        if proc is not None and proc.alive:
            proc.interrupt("aborted")

    # -- execution -------------------------------------------------------------

    def _execute(self, job: JobDefinition, build: Build):
        request = self.executors.request()
        try:
            yield request
        except Interrupt:
            self.executors.cancel(request)  # still queued: just withdraw
            build.log_line(self.sim.now, "aborted while queued")
            self._finish(build, BuildStatus.ABORTED)
            self._build_procs.pop(build, None)
            return
        build.started_at = self.sim.now
        build.log_line(self.sim.now, f"started on executor (cause: {build.cause})")
        runner_proc = self.sim.process(job.runner(build))
        watchdog = self.sim.timeout(job.timeout_s, "timeout")
        try:
            outcome = yield self.sim.any_of([runner_proc, watchdog])
            if runner_proc.triggered and runner_proc in outcome:
                # The runner won the race: lazily drop the watchdog's heap
                # entry instead of leaving an hours-long dead timer behind.
                watchdog.cancel()
                status = outcome[runner_proc]
                if not isinstance(status, BuildStatus):
                    build.log_line(self.sim.now,
                                   f"runner returned {status!r}, treating as FAILURE")
                    status = BuildStatus.FAILURE
            else:
                runner_proc.interrupt("timeout")
                build.log_line(self.sim.now, f"timed out after {job.timeout_s}s")
                status = BuildStatus.ABORTED
            self._finish(build, status)
        except Interrupt:
            watchdog.cancel()  # no-op if it already fired
            if runner_proc.alive:
                runner_proc.interrupt("aborted")
            build.log_line(self.sim.now, "aborted")
            self._finish(build, BuildStatus.ABORTED)
        finally:
            self.executors.release(request)
            self._build_procs.pop(build, None)

    def _finish(self, build: Build, status: BuildStatus) -> None:
        build.finished_at = self.sim.now
        build.status = status
        build.log_line(self.sim.now, f"finished: {status.value}")
        build.done_event.succeed(build)

    # -- introspection ----------------------------------------------------------

    def queue_length(self) -> int:
        return self.executors.queue_length

    def busy_executors(self) -> int:
        return self.executors.in_use
