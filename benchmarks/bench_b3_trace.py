"""B3 — trace-driven workload replay: throughput and determinism.

Replays the bundled ``tiny-g5k`` trace (a recorded tiny-smoke run) through
the full closed-loop stack and measures replay throughput — submitted
workload jobs per wall-clock second of simulated scheduling — for the
plain replay and the bursty (2x rate, 2x volume) variant.  Also asserts
the replay contract: every trace job is submitted, and the same trace +
seed + spec produces a byte-identical campaign report.  Numbers land in
``benchmarks/results/BENCH_b3_trace.json``.
"""

import json
import os
import time

from repro import run_scenario, scenarios
from repro.oar import load_trace

from conftest import paper_row, print_table

_RESULTS = os.path.join(os.path.dirname(__file__), "results",
                        "BENCH_b3_trace.json")
_MONTHS = 0.12  # the horizon the bundled trace was recorded over


def _timed_run(spec, seed=0):
    t0 = time.perf_counter()
    fw, report = run_scenario(spec, seed=seed, months=_MONTHS)
    return fw, report, time.perf_counter() - t0


def bench_b3_trace(benchmark):
    trace = load_trace("tiny-g5k")
    replay_spec = scenarios.get("trace-replay")
    bursty_spec = scenarios.get("bursty-replay")

    fw, report, t_replay = benchmark.pedantic(
        lambda: _timed_run(replay_spec), rounds=1, iterations=1)
    fw_bursty, _, t_bursty = _timed_run(bursty_spec)
    _, report_again, _ = _timed_run(replay_spec)

    replay_jps = fw.workload.submitted / max(t_replay, 1e-9)
    bursty_jps = fw_bursty.workload.submitted / max(t_bursty, 1e-9)

    rows = [
        paper_row("trace jobs", len(trace), fw.workload.submitted),
        paper_row("replay throughput (jobs/s)", "-", f"{replay_jps:.0f}"),
        paper_row("bursty jobs (2x rate, 2x volume)", 2 * len(trace),
                  fw_bursty.workload.submitted),
        paper_row("bursty throughput (jobs/s)", "-", f"{bursty_jps:.0f}"),
        paper_row("replay deterministic", "byte-identical",
                  "yes" if report.to_dict() == report_again.to_dict()
                  else "NO"),
    ]
    print_table("B3: trace-driven workload replay", rows)

    os.makedirs(os.path.dirname(_RESULTS), exist_ok=True)
    with open(_RESULTS, "w", encoding="utf-8") as fh:
        json.dump({
            "id": "b3_trace",
            "metrics": {
                "trace_jobs": len(trace),
                "replayed_jobs": fw.workload.submitted,
                "replay_wall_s": round(t_replay, 3),
                "replay_jobs_per_s": round(replay_jps, 1),
                "bursty_jobs": fw_bursty.workload.submitted,
                "bursty_wall_s": round(t_bursty, 3),
                "bursty_jobs_per_s": round(bursty_jps, 1),
            },
            "outcome": "passed",
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # contract: the whole trace replays, scaled variants scale, runs repeat
    assert fw.workload.submitted == len(trace)
    assert fw_bursty.workload.submitted == 2 * len(trace)
    assert report.to_dict() == report_again.to_dict()
    # throughput floor: generous (measured ~1000+ jobs/s) but catches a
    # replay path regressing to per-job quadratic behaviour
    assert replay_jps > 100
