"""The sixteen test-script families (751 configurations, slide 21)."""

from .base import CheckContext, CheckFamily, Finding, TestOutcome
from .deploy_checks import (
    EnvironmentsCheck,
    MultiDeployCheck,
    MultiRebootCheck,
    ParallelDeployCheck,
    StdenvCheck,
)
from .description_checks import DellBiosCheck, OarPropertiesCheck, RefapiCheck
from .hardware_checks import DiskCheck, MpigraphCheck
from .infra_checks import ConsoleCheck, KavlanCheck, KwapiCheck
from .registry import ALL_FAMILIES, coverage_table, family_by_name, total_configurations
from .service_checks import CmdlineCheck, OarStateCheck, SidApiCheck

__all__ = [
    "Finding",
    "TestOutcome",
    "CheckContext",
    "CheckFamily",
    "RefapiCheck",
    "OarPropertiesCheck",
    "DellBiosCheck",
    "OarStateCheck",
    "CmdlineCheck",
    "SidApiCheck",
    "EnvironmentsCheck",
    "StdenvCheck",
    "ParallelDeployCheck",
    "MultiRebootCheck",
    "MultiDeployCheck",
    "ConsoleCheck",
    "KavlanCheck",
    "KwapiCheck",
    "MpigraphCheck",
    "DiskCheck",
    "ALL_FAMILIES",
    "family_by_name",
    "coverage_table",
    "total_configurations",
]
