"""Result analysis: build history, status page, reliability trends."""

from .history import BuildHistory, BuildRecord
from .statuspage import CellStatus, StatusPage

__all__ = ["BuildHistory", "BuildRecord", "StatusPage", "CellStatus"]
