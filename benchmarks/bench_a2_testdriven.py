"""A2 — ablation: test-driven operations (the framework's raison d'etre).

Same testbed, same fault arrivals, one month: with the framework ON,
faults get detected and fixed and the active-fault count stays low; with
it OFF (the pre-framework world of slide 10, "very few bugs are
reported"), faults accumulate unboundedly and experiments silently run on
broken hardware.
"""

from repro import run_scenario
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec

from conftest import paper_row, print_table

_SPEC = ScenarioSpec(
    name="a2-testdriven",
    seed=9,
    months=1.0,
    clusters=("paravance", "grisou", "grimoire", "graoully", "nova",
              "taurus", "suno", "chetemi"),
    backlog_faults=6,
    fault_mean_interarrival_s=43_200.0,
    workload=WorkloadConfig(target_utilization=0.4),
)


def _run(framework_enabled: bool):
    _, report = run_scenario(_SPEC.derive(framework_enabled=framework_enabled))
    return report


def bench_a2_testdriven(benchmark):
    with_fw = benchmark.pedantic(lambda: _run(True), rounds=1, iterations=1)
    without = _run(False)
    rows = [
        paper_row("active faults after 1 month (framework ON)", "low",
                  with_fw.faults_active_end),
        paper_row("active faults after 1 month (framework OFF)", "grows",
                  without.faults_active_end),
        paper_row("faults detected (ON)", "-", with_fw.faults_detected),
        paper_row("faults detected (OFF)", 0, without.faults_detected),
        paper_row("bugs filed (ON)", "-", with_fw.bugs_filed),
        paper_row("bugs filed (OFF)", 0, without.bugs_filed),
    ]
    print_table("A2: test-driven operations vs no testing (slides 10/23)", rows)
    assert without.faults_detected == 0
    assert without.bugs_filed == 0
    assert with_fw.faults_detected > 0
    assert with_fw.faults_active_end < without.faults_active_end
