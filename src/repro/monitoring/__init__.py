"""Monitoring: metric ring buffers, Ganglia system probes, kwapi power."""

from .metrics import ColumnRing, MetricStore, RingBuffer, RingColumnBlock, \
    SeriesStats
from .probes import Ganglia, Kwapi

__all__ = ["MetricStore", "RingBuffer", "RingColumnBlock", "ColumnRing",
           "SeriesStats", "Ganglia", "Kwapi"]
