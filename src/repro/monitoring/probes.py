"""Monitoring services: Ganglia system probes and kwapi power probes.

* :class:`Ganglia` samples per-node system metrics (CPU load, memory) —
  slide 9's "system-level probes".
* :class:`Kwapi` measures power per **PDU outlet** and maps outlets back to
  nodes using the *documented* wiring from the Reference API.  When a
  cabling fault swapped two power cables, kwapi faithfully reports the
  *wrong node's* consumption — the exact slide-13 bug ("cabling issue ⇒
  wrong measurements by testbed monitoring service").  A site under
  ``KWAPI_DOWN`` returns no measurements at all.

Hot-path note: on a month-long campaign the probes sample the whole park
every period, so both services precompute per-node series handles (direct
ring references plus the ``"<uid>.<metric>"`` key strings) instead of
rebuilding f-string keys and dicts per node per sample, and the park-wide
sweeps (:meth:`Ganglia.sample_park`, :meth:`Kwapi.sample_park`) run in one
pass.  By default each probe packs its per-node series into a
:class:`~repro.monitoring.metrics.RingColumnBlock`, so a sweep gathers the
park's values into arrays and lands them with one numpy scatter per metric
instead of one ring append per node; the per-node scalar path remains
(``vectorized=False``, or whenever a series name is already owned by a
plain ring) and records byte-identical samples — the equivalence tests in
``tests/monitoring/test_probes.py`` pin the two paths together.  Only the
*documented* wiring is precomputed — the actual cabling is re-read on
every measurement, because cabling faults mutate it in place.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..faults.services import ServiceHealth
from ..nodes.machine import MachinePark
from ..testbed.description import TestbedDescription
from ..util.events import Simulator
from .metrics import MetricStore, RingColumnBlock, Series

__all__ = ["Ganglia", "Kwapi"]

#: Ganglia's per-node metric names, in recording order.
_GANGLIA_METRICS = ("cpu_load", "mem_total_gb", "up")


class Ganglia:
    """System-level metric collection."""

    def __init__(self, sim: Simulator, machines: MachinePark,
                 store: Optional[MetricStore] = None, period_s: float = 60.0,
                 vectorized: bool = True):
        self.sim = sim
        self.machines = machines
        self.store = store if store is not None else MetricStore()
        self.period_s = period_s
        self._running = False
        #: Per-node sampling handles, built lazily: (machine, ring per
        #: metric).  A direct ring reference skips the store's key lookup
        #: and the f-string key rebuild on every sample.
        self._handles: dict[str, tuple] = {}
        #: Column-block backing for the park sweep: node *i* (database
        #: order) owns columns ``m * n + i`` for metric *m*.  Columns are
        #: bound to the store lazily (on first sample, like the scalar
        #: rings) so never-sampled nodes don't grow phantom series.
        self._block: Optional[RingColumnBlock] = None
        self._base_of: dict[str, int] = {}
        self._col_of: dict[str, int] = {}
        if vectorized and machines.machines:
            uids = sorted(machines.machines)
            self._block = RingColumnBlock(
                len(_GANGLIA_METRICS) * len(uids), self.store.capacity)
            self._base_of = {uid: i for i, uid in enumerate(uids)}

    def _handle(self, uid: str) -> tuple:
        handle = self._handles.get(uid)
        if handle is None:
            machine = self.machines[uid]
            names = [f"{uid}.{name}" for name in _GANGLIA_METRICS]
            rings: tuple[Series, ...]
            block, base = self._block, self._base_of.get(uid)
            if block is not None and base is not None \
                    and not any(self.store.has_series(n) for n in names):
                n = len(self._base_of)
                rings = tuple(block.ring(m * n + base)
                              for m in range(len(_GANGLIA_METRICS)))
                for name, ring in zip(names, rings):
                    self.store.bind_series(name, ring)
                self._col_of[uid] = base
            else:
                # A name is already owned by a plain ring (shared store):
                # this node stays on the scalar path for good.
                rings = tuple(self.store.series(n) for n in names)
            handle = (machine,) + rings
            self._handles[uid] = handle
        return handle

    def sample_node(self, uid: str) -> dict[str, float]:
        """One on-demand sample of a node's system metrics."""
        machine, cpu_ring, mem_ring, up_ring = self._handle(uid)
        now = self.sim.now
        cpu = machine.cpu_load
        mem = float(machine.actual.ram_gb)
        up = 1.0 if machine.available else 0.0
        cpu_ring.append(now, cpu)
        mem_ring.append(now, mem)
        up_ring.append(now, up)
        return {"cpu_load": cpu, "mem_total_gb": mem, "up": up}

    def sample_park(self, uids: Iterable[str]) -> int:
        """Sample every node in one sweep; returns the number sampled.

        On the vectorized path the sweep gathers the park's values into
        arrays and lands all nodes with one scatter per metric
        (``uids`` must not repeat a node); nodes bound to plain rings
        drop the whole sweep back to the scalar loop, which records the
        same samples one append at a time.
        """
        uids = list(uids)
        handles = self._handles
        handle = self._handle
        for uid in uids:
            if uid not in handles:
                handle(uid)
        block = self._block
        if block is not None:
            col_of = self._col_of
            n = len(self._base_of)
            cols = np.empty(len(uids), dtype=np.intp)
            cpu = np.empty(len(uids), dtype=np.float64)
            mem = np.empty(len(uids), dtype=np.float64)
            up = np.empty(len(uids), dtype=np.float64)
            vectorizable = True
            for i, uid in enumerate(uids):
                col = col_of.get(uid)
                if col is None:
                    vectorizable = False
                    break
                machine = handles[uid][0]
                cols[i] = col
                cpu[i] = machine.cpu_load
                mem[i] = float(machine.actual.ram_gb)
                up[i] = 1.0 if machine.available else 0.0
            if vectorizable:
                now = self.sim.now
                block.append_rows(cols, now, cpu)
                block.append_rows(cols + n, now, mem)
                block.append_rows(cols + 2 * n, now, up)
                return len(uids)
        now = self.sim.now
        count = 0
        for uid in uids:
            machine, cpu_ring, mem_ring, up_ring = handles[uid]
            cpu_ring.append(now, machine.cpu_load)
            mem_ring.append(now, float(machine.actual.ram_gb))
            up_ring.append(now, 1.0 if machine.available else 0.0)
            count += 1
        return count

    def start(self, node_uids: Optional[list[str]] = None) -> None:
        """Start periodic sampling (all nodes by default)."""
        if self._running:
            return
        self._running = True
        uids = node_uids if node_uids is not None else sorted(self.machines.machines)
        self.sim.process(self._run(uids), name="ganglia")

    def stop(self) -> None:
        self._running = False

    def _run(self, uids: list[str]):
        while self._running:
            self.sample_park(uids)
            yield self.sim.timeout(self.period_s)


class Kwapi:
    """Power monitoring through PDU outlets."""

    def __init__(self, sim: Simulator, machines: MachinePark,
                 testbed: TestbedDescription, services: ServiceHealth,
                 store: Optional[MetricStore] = None,
                 vectorized: bool = True):
        self.sim = sim
        self.machines = machines
        self.services = services
        self.store = store if store is not None else MetricStore()
        #: documented wiring: (pdu uid, port) -> node uid
        self._documented: dict[tuple[str, int], str] = {}
        #: inverse documented wiring, so per-node reads stop scanning the
        #: whole outlet table; the documentation never changes at runtime
        #: (only the *actual* cabling drifts), so this is safe to freeze.
        self._outlet_of: dict[str, tuple[str, int]] = {}
        self._site_of: dict[str, str] = {}
        #: precomputed "<uid>.power_w" series keys (satellite fix: these
        #: were f-string-rebuilt on every sample of every node).
        self._power_key: dict[str, str] = {}
        self._power_ring: dict[str, Series] = {}
        for node in testbed.iter_nodes():
            outlet = (node.pdu.pdu_uid, node.pdu.port)
            self._documented[outlet] = node.uid
            self._outlet_of[node.uid] = outlet
            self._site_of[node.uid] = node.site
            self._power_key[node.uid] = f"{node.uid}.power_w"
        #: Column-block backing for the park sweep (one power_w column per
        #: documented node); columns are bound to the store lazily on a
        #: node's first measurement, so down-site nodes a sweep skips
        #: never appear in ``series_names()``.
        self._block: Optional[RingColumnBlock] = None
        self._base_of: dict[str, int] = {}
        self._col_of: dict[str, int] = {}
        if vectorized and self._power_key:
            uids = list(self._power_key)
            self._block = RingColumnBlock(len(uids), self.store.capacity)
            self._base_of = {uid: i for i, uid in enumerate(uids)}

    def _ring(self, node_uid: str) -> Series:
        ring = self._power_ring.get(node_uid)
        if ring is None:
            key = self._power_key[node_uid]
            block, base = self._block, self._base_of.get(node_uid)
            if block is not None and base is not None \
                    and not self.store.has_series(key):
                ring = block.ring(base)
                self.store.bind_series(key, ring)
                self._col_of[node_uid] = base
            else:
                # Name already owned by a plain ring (shared store): this
                # node stays on the scalar path for good.
                ring = self.store.series(key)
            self._power_ring[node_uid] = ring
        return ring

    def _actual_wiring(self) -> dict[tuple[str, int], object]:
        """One pass over the park: (pdu uid, port) actually cabled -> machine.

        Built fresh per sweep — cabling faults mutate ``machine.actual``
        in place, so this must never be cached across simulated events.
        """
        return {(m.actual.pdu_uid, m.actual.pdu_port): m
                for m in self.machines.machines.values()}

    def outlet_watts(self, pdu_uid: str, port: int) -> Optional[float]:
        """Raw measurement of one outlet: the draw of whatever machine is
        *actually* cabled there."""
        machine = self._actual_wiring().get((pdu_uid, port))
        return machine.power_draw_watts() if machine is not None else None

    def node_power_watts(self, node_uid: str) -> Optional[float]:
        """What the monitoring service *reports* for a node.

        Looks up the node's documented outlet and measures it; if cables
        were swapped this returns the neighbour's consumption.  Returns
        None when the site's kwapi is down or the outlet reads nothing.
        """
        if self._site_of.get(node_uid) in self.services.kwapi_down:
            return None
        desc_outlet = self._outlet_of.get(node_uid)
        if desc_outlet is None:
            return None
        value = self.outlet_watts(*desc_outlet)
        if value is not None:
            self._ring(node_uid).append(self.sim.now, value)
        return value

    def sample_park(self, node_uids: Iterable[str]) -> int:
        """Measure every node's documented outlet in one sweep.

        The actual-cabling map is built once for the whole park instead of
        once per outlet, so a full sweep is O(nodes) rather than
        O(nodes^2), and on the vectorized path the measurements land with
        one numpy scatter instead of one ring append per node
        (``node_uids`` must not repeat a node).  The reported values
        (including wrong-node readings from swapped cables) are identical
        to per-node calls.  Returns the number of measurements recorded.
        """
        wiring = self._actual_wiring()
        kwapi_down = self.services.kwapi_down
        now = self.sim.now
        if self._block is not None:
            cols: list[int] = []
            watts: list[float] = []
            col_of = self._col_of
            power_ring = self._power_ring
            vectorizable = True
            for uid in node_uids:
                if self._site_of.get(uid) in kwapi_down:
                    continue
                desc_outlet = self._outlet_of.get(uid)
                if desc_outlet is None:
                    continue
                machine = wiring.get(desc_outlet)
                if machine is None:
                    continue
                if uid not in power_ring:
                    self._ring(uid)  # first measurement: bind the column
                col = col_of.get(uid)
                if col is None:
                    vectorizable = False  # plain-ring node: go scalar
                    break
                cols.append(col)
                watts.append(machine.power_draw_watts())
            if vectorizable:
                self._block.append_rows(np.asarray(cols, dtype=np.intp), now,
                                        np.asarray(watts, dtype=np.float64))
                return len(cols)
        count = 0
        for uid in node_uids:
            if self._site_of.get(uid) in kwapi_down:
                continue
            desc_outlet = self._outlet_of.get(uid)
            if desc_outlet is None:
                continue
            machine = wiring.get(desc_outlet)
            if machine is None:
                continue
            self._ring(uid).append(now, machine.power_draw_watts())
            count += 1
        return count

    def true_power_watts(self, node_uid: str) -> float:
        """Ground truth (not available to the real service; used by tests
        to quantify the reporting error a cable swap introduces)."""
        return self.machines[node_uid].power_draw_watts()
