"""Simulated physical machines: the *actual* state of each node.

The Reference API (:mod:`repro.testbed.refapi`) holds what the testbed
*claims*; a :class:`SimulatedNode` holds what the hardware *is*.  On a
healthy node the two agree.  Faults (:mod:`repro.faults`) silently mutate
the actual state — a BIOS option flips during a maintenance, a disk gets
replaced with one running older firmware, a cable gets swapped — and the
whole point of the paper's framework is to detect those divergences.

The mutable state also drives a small performance model: effective CPU
throughput and disk bandwidth depend on the BIOS/cache/firmware state, so
performance-measuring checks (disk, mpigraph) observe realistic signal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..testbed.description import ClusterDescription, NodeDescription
from ..util.events import Simulator
from ..util.rng import RngStreams

__all__ = [
    "PowerState",
    "ActualBios",
    "ActualDisk",
    "ActualNic",
    "ActualInfiniband",
    "HardwareState",
    "SimulatedNode",
    "MachinePark",
]

#: Baseline sequential throughput by storage type, MB/s.
_DISK_BASE_MBPS = {"HDD": 120.0, "SSD": 440.0}

#: Idle / per-core-load power draw in watts, by CPU vendor era (rough).
_IDLE_WATTS = 95.0
_WATTS_PER_BUSY_CORE = 9.0


class PowerState(enum.Enum):
    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    CRASHED = "crashed"


@dataclass
class ActualBios:
    version: str
    c_states: bool
    hyperthreading: bool
    turbo_boost: bool
    power_profile: str


@dataclass
class ActualDisk:
    device: str
    vendor: str
    model: str
    size_gb: int
    interface: str
    storage_type: str
    firmware: str
    write_cache: bool
    read_ahead: bool
    healthy: bool = True


@dataclass
class ActualNic:
    device: str
    model: str
    driver: str
    rate_gbps: float  # negotiated link rate; may be lower than nominal
    nominal_gbps: float
    mac: str
    link_up: bool = True


@dataclass
class ActualInfiniband:
    model: str
    rate_gbps: int
    guid: str
    #: The OFED userland stack can fail to start (a real bug on slide 22).
    stack_ok: bool = True


@dataclass
class HardwareState:
    """Everything a fact-acquisition tool could observe on the node."""

    bios: ActualBios
    cpu_count: int
    cores_per_cpu: int
    threads_per_core: int
    clock_ghz: float
    cpu_model: str
    ram_gb: int
    disks: list[ActualDisk]
    nics: list[ActualNic]
    infiniband: Optional[ActualInfiniband]
    serial: str
    #: PDU outlet this node is *actually* cabled to (cabling faults swap it).
    pdu_uid: str = ""
    pdu_port: int = 0
    console_ok: bool = True

    @classmethod
    def from_description(cls, desc: NodeDescription) -> "HardwareState":
        return cls(
            bios=ActualBios(
                version=desc.bios.version,
                c_states=desc.bios.c_states,
                hyperthreading=desc.bios.hyperthreading,
                turbo_boost=desc.bios.turbo_boost,
                power_profile=desc.bios.power_profile,
            ),
            cpu_count=desc.cpu_count,
            cores_per_cpu=desc.cpu.cores,
            threads_per_core=desc.cpu.threads_per_core,
            clock_ghz=desc.cpu.clock_ghz,
            cpu_model=desc.cpu.model,
            ram_gb=desc.ram_gb,
            disks=[
                ActualDisk(
                    device=d.device,
                    vendor=d.vendor,
                    model=d.model,
                    size_gb=d.size_gb,
                    interface=d.interface,
                    storage_type=d.storage_type,
                    firmware=d.firmware,
                    write_cache=d.write_cache,
                    read_ahead=d.read_ahead,
                )
                for d in desc.disks
            ],
            nics=[
                ActualNic(
                    device=n.device,
                    model=n.model,
                    driver=n.driver,
                    rate_gbps=n.rate_gbps,
                    nominal_gbps=n.rate_gbps,
                    mac=n.mac,
                )
                for n in desc.nics
            ],
            infiniband=(
                ActualInfiniband(
                    model=desc.infiniband.model,
                    rate_gbps=desc.infiniband.rate_gbps,
                    guid=desc.infiniband.guid,
                )
                if desc.infiniband
                else None
            ),
            serial=desc.serial,
            pdu_uid=desc.pdu.pdu_uid,
            pdu_port=desc.pdu.port,
        )

    def visible_logical_cpus(self) -> int:
        """What /proc/cpuinfo would show, given the current HT setting."""
        threads = self.threads_per_core if self.bios.hyperthreading else 1
        return self.cpu_count * self.cores_per_cpu * threads


class SimulatedNode:
    """One machine: actual hardware + power/boot state + performance model."""

    def __init__(
        self,
        sim: Simulator,
        desc: NodeDescription,
        cluster: ClusterDescription,
        rng_streams: RngStreams,
        index: int,
    ):
        self.sim = sim
        self.description = desc
        self.uid = desc.uid
        self.cluster_uid = cluster.uid
        self.site_uid = desc.site
        self.actual = HardwareState.from_description(desc)
        self.state = PowerState.ON
        self._mean_boot_s = cluster.boot_time_s
        self._rng = rng_streams.fork("node-timing", index)
        self.deployed_env = "std"  # currently installed environment image
        self.boot_count = 0
        #: Extra boot delay in seconds added by kernel-race style faults.
        self.boot_race_delay_s = 0.0
        #: Probability that one power cycle fails to bring the node up.
        #: The small baseline models ordinary flakiness; the random-reboots
        #: fault raises it dramatically.
        self.boot_failure_prob = 0.001
        #: Mean time between spontaneous crashes (None = stable machine).
        self.crash_mtbf_s: Optional[float] = None
        #: CPU load factor in [0,1] (set by workload/monitoring consumers).
        self.cpu_load = 0.0

    # -- boot / power ---------------------------------------------------------

    def sample_boot_duration(self) -> float:
        """Boot time: lognormal jitter around the cluster mean, plus any
        fault-induced race delay (intermittent, like the real kernel bug)."""
        jitter = float(self._rng.lognormal(mean=0.0, sigma=0.1))
        duration = self._mean_boot_s * jitter
        if self.boot_race_delay_s > 0 and self._rng.random() < 0.5:
            duration += self.boot_race_delay_s
        return duration

    def sample_boot_ok(self) -> bool:
        """Whether one power cycle succeeds (random-reboot faults fail often)."""
        return float(self._rng.random()) >= self.boot_failure_prob

    def boot(self, env: Optional[str] = None):
        """Process generator: power-cycle the node into ``env``.

        Returns the boot duration, or raises nothing — a failed boot leaves
        the node CRASHED (callers check ``available``).
        """
        self.state = PowerState.BOOTING
        duration = self.sample_boot_duration()
        yield self.sim.timeout(duration)
        self.boot_count += 1
        if not self.sample_boot_ok():
            self.state = PowerState.CRASHED
            return duration
        if env is not None:
            self.deployed_env = env
        self.state = PowerState.ON
        return duration

    def crash(self) -> None:
        """Spontaneous failure (random-reboot fault, dead PSU...)."""
        self.state = PowerState.CRASHED

    @property
    def available(self) -> bool:
        return self.state == PowerState.ON

    # -- performance model ------------------------------------------------------

    def cpu_performance_factor(self) -> float:
        """Relative compute throughput vs the reference configuration.

        The paper's motivating observation (slide 13): a ~5 % performance
        change from BIOS drift is enough to invalidate conclusions.  The
        penalties below create exactly that kind of subtle signal.
        """
        factor = 1.0
        bios = self.actual.bios
        ref = self.description.bios
        if bios.c_states and not ref.c_states:
            factor *= 0.95  # wake-up latency on tight loops
        if bios.turbo_boost and not ref.turbo_boost:
            factor *= 1.06  # faster, but no longer reproducible
        if not bios.turbo_boost and ref.turbo_boost:
            factor *= 0.94
        if bios.power_profile != ref.power_profile:
            factor *= 0.93
        if bios.hyperthreading != ref.hyperthreading:
            factor *= 0.97  # scheduling noise on HPC workloads
        return factor

    def disk_bandwidth_mbps(self, device: str) -> float:
        """Measured sequential write bandwidth for one disk."""
        disk = self.find_disk(device)
        if not disk.healthy:
            return 0.0
        bw = _DISK_BASE_MBPS[disk.storage_type]
        if not disk.write_cache:
            bw *= 0.45  # write-cache off halves streaming writes (real bug)
        if not disk.read_ahead:
            bw *= 0.85
        # Older firmware -> a few percent slower (the slide-22 firmware bug).
        model_versions = self._firmware_lineage(disk)
        if disk.firmware in model_versions:
            lag = len(model_versions) - 1 - model_versions.index(disk.firmware)
            bw *= 0.95**lag
        return bw

    @staticmethod
    def _firmware_lineage(disk: ActualDisk) -> tuple[str, ...]:
        from ..testbed.catalog import DISK_MODELS

        for dm in DISK_MODELS:
            if dm.model == disk.model:
                return dm.firmware_versions
        return (disk.firmware,)

    def network_rate_gbps(self, device: str = "eth0") -> float:
        nic = self.find_nic(device)
        return nic.rate_gbps if nic.link_up else 0.0

    def power_draw_watts(self) -> float:
        """Instantaneous draw given current load (consumed by kwapi)."""
        if self.state in (PowerState.OFF, PowerState.CRASHED):
            return 6.0  # BMC only
        busy_cores = self.cpu_load * self.actual.cpu_count * self.actual.cores_per_cpu
        draw = _IDLE_WATTS + _WATTS_PER_BUSY_CORE * busy_cores
        if self.actual.bios.turbo_boost and self.cpu_load > 0.5:
            draw *= 1.12
        return draw

    # -- lookup helpers -----------------------------------------------------------

    def find_disk(self, device: str) -> ActualDisk:
        for d in self.actual.disks:
            if d.device == device:
                return d
        raise KeyError(f"{self.uid}: no disk {device}")

    def find_nic(self, device: str) -> ActualNic:
        for n in self.actual.nics:
            if n.device == device:
                return n
        raise KeyError(f"{self.uid}: no NIC {device}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimulatedNode {self.uid} {self.state.value}>"


@dataclass
class MachinePark:
    """All simulated machines, indexed by node uid."""

    machines: dict[str, SimulatedNode] = field(default_factory=dict)

    @classmethod
    def from_testbed(cls, sim: Simulator, testbed, rng_streams: RngStreams) -> "MachinePark":
        park = cls()
        index = 0
        for cluster in testbed.iter_clusters():
            for desc in cluster.nodes:
                park.machines[desc.uid] = SimulatedNode(
                    sim, desc, cluster, rng_streams, index
                )
                index += 1
        return park

    def __getitem__(self, uid: str) -> SimulatedNode:
        return self.machines[uid]

    def __contains__(self, uid: str) -> bool:
        return uid in self.machines

    def __len__(self) -> int:
        return len(self.machines)

    def of_cluster(self, cluster_uid: str) -> list[SimulatedNode]:
        return [m for m in self.machines.values() if m.cluster_uid == cluster_uid]

    def of_site(self, site_uid: str) -> list[SimulatedNode]:
        return [m for m in self.machines.values() if m.site_uid == site_uid]

    def available_in_cluster(self, cluster_uid: str) -> list[SimulatedNode]:
        return [m for m in self.of_cluster(cluster_uid) if m.available]
