"""Per-connection protocol session: state machine + transports.

One :class:`Session` serves one client connection.  Its lifecycle::

    AWAIT_HELO --HELO--> IDLE --RUN/SUBM--> (streaming) --> IDLE --QUIT

``RUN`` is the interesting state: the session executes a full campaign
*inside* the handler, and the simulated clock only advances between
protocol exchanges — every scheduler tick with due cells blocks on the
socket until the client has decided each one (``SCHD``/``DEFR``) and sent
``REDY``.  That synchronous bridge is what makes a remote scheduler
byte-identical to the in-process one: no sim event fires while a decision
is pending, and decisions apply in arrival order.

Malformed input never kills the server: codec errors and ill-timed verbs
are answered with ``ERR <code> <reason>`` and the session keeps reading.
Only EOF/timeouts (:class:`SessionClosed`) and ``QUIT`` end it.
"""

from __future__ import annotations

import hashlib
import json
import socket
from dataclasses import asdict
from typing import Optional

from .. import scenarios
from ..analysis.compare import compare_runs
from ..core.campaign import run_scenario
from ..util.serialization import canonical_json, encode_dataclass
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Message,
    ProtocolError,
    decode,
    encode,
    format_time_arg,
)

__all__ = ["Session", "SessionClosed", "Transport", "SocketTransport"]


class SessionClosed(Exception):
    """The peer went away (EOF, timeout, or QUIT): unwind silently."""


class Transport:
    """One line in, one line out.  Sessions never touch sockets directly,
    so tests drive the full state machine through a scripted transport."""

    def send_line(self, line: str) -> None:
        raise NotImplementedError

    def recv_line(self) -> str:
        """Next line without its newline; raises SessionClosed on EOF."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class SocketTransport(Transport):
    """Buffered line framing over a TCP socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        try:
            # The protocol is many tiny request/response lines per tick;
            # Nagle + delayed ACK would add ~40ms to every exchange.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP transports (unix sockets, socketpairs)
        self._rfile = sock.makefile("rb")

    def send_line(self, line: str) -> None:
        try:
            self.sock.sendall(line.encode("utf-8") + b"\n")
        except OSError:
            raise SessionClosed("send failed") from None

    def recv_line(self) -> str:
        try:
            raw = self._rfile.readline(MAX_LINE_BYTES + 2)
        except (OSError, ValueError):
            raise SessionClosed("recv failed") from None
        if not raw:
            raise SessionClosed("EOF")
        if len(raw) > MAX_LINE_BYTES:
            # Poison line: report once, then drop the peer (resynchronizing
            # inside an oversized line is guesswork).
            raise ProtocolError("proto",
                                f"line exceeds {MAX_LINE_BYTES} bytes")
        return raw.decode("utf-8", errors="replace").rstrip("\r\n")

    def close(self) -> None:
        try:
            self._rfile.close()
            self.sock.close()
        except OSError:
            pass


class _RunState:
    """Session state scoped to one RUN: JCPL buffer + GETS counters."""

    __slots__ = ("oar_started", "oar_completed", "ticks", "decided")

    def __init__(self):
        self.oar_started = 0
        self.oar_completed = 0
        self.ticks = 0
        self.decided = 0


class Session:
    """The protocol state machine for one connection."""

    def __init__(self, transport: Transport, campaigns=None,
                 server_name: str = "repro-sim"):
        self.transport = transport
        self.campaigns = campaigns
        self.server_name = server_name
        self.greeted = False
        self.client_name = "?"
        self._run: Optional[_RunState] = None
        self._last_report = None

    # -- plumbing --------------------------------------------------------------

    def _send(self, verb: str, *args: object) -> None:
        self.transport.send_line(encode(verb, *args))

    def _err(self, exc: ProtocolError) -> None:
        self._send("ERR", exc.code, *exc.message.split())

    def _data_block(self, lines: list[str]) -> None:
        self._send("DATA", len(lines))
        for line in lines:
            self.transport.send_line(line)
        self._send(".")

    def _recv(self) -> Message:
        """Next well-formed message; malformed lines are ERRed in place."""
        while True:
            try:
                return decode(self.transport.recv_line())
            except ProtocolError as exc:
                self._err(exc)
                if exc.code == "proto" and "exceeds" in exc.message:
                    raise SessionClosed("oversized line") from None

    # -- main loop -------------------------------------------------------------

    def serve(self) -> None:
        """Serve until QUIT or disconnect.  Never raises on bad input."""
        try:
            while True:
                msg = self._recv()
                try:
                    if not self._dispatch(msg):
                        return
                except ProtocolError as exc:
                    self._err(exc)
        except SessionClosed:
            return
        finally:
            self.transport.close()

    def _dispatch(self, msg: Message) -> bool:
        verb = msg.verb
        if not self.greeted:
            if verb != "HELO":
                raise ProtocolError("state", "HELO first")
            return self._do_helo(msg)
        if verb == "HELO":
            raise ProtocolError("state", "already greeted")
        if verb == "QUIT":
            self._send("OK", "bye")
            return False
        if verb == "RUN":
            self._do_run(msg)
        elif verb == "SUBM":
            self._do_subm(msg)
        elif verb == "RPRT":
            self._do_rprt(msg)
        elif verb == "CMPR":
            self._do_cmpr(msg)
        elif verb in ("GETS", "SCHD", "DEFR", "REDY"):
            raise ProtocolError("state", f"{verb} only valid inside a run")
        else:  # a server->client verb echoed back at us
            raise ProtocolError("state", f"unexpected {verb}")
        return True

    def _do_helo(self, msg: Message) -> bool:
        if msg.args[0] != PROTOCOL_VERSION:
            raise ProtocolError(
                "proto", "version mismatch: server speaks "
                f"{PROTOCOL_VERSION}, client offered {msg.args[0]}")
        self.greeted = True
        if len(msg.args) > 1:
            self.client_name = msg.args[1]
        self._send("OK", PROTOCOL_VERSION, self.server_name)
        return True

    # -- RUN: one remotely-scheduled campaign ----------------------------------

    def _do_run(self, msg: Message) -> None:
        from .policy import ExternalProtocolStrategy  # cycle guard

        name, seed_text, months_text = msg.args
        try:
            spec = scenarios.get(name)
        except KeyError:
            raise ProtocolError("arg", f"unknown scenario {name!r}") from None
        try:
            seed = int(seed_text)
        except ValueError:
            raise ProtocolError("arg", f"bad seed {seed_text!r}") from None
        months: Optional[float] = None
        if months_text != "-":
            try:
                months = float(months_text)
            except ValueError:
                raise ProtocolError("arg",
                                    f"bad months {months_text!r}") from None
            if not months > 0:
                raise ProtocolError("arg", "months must be positive")

        self._run = run = _RunState()

        def on_builder(builder):
            builder.with_extra(
                "scheduling_strategy",
                lambda policy: ExternalProtocolStrategy(policy, self))

        def on_built(fw):
            fw.oar.on_job_start.append(lambda job: _count(run, "oar_started"))
            fw.oar.on_job_complete.append(
                lambda job: _count(run, "oar_completed"))

        try:
            _, report = run_scenario(spec, seed=seed, months=months,
                                     on_built=on_built, on_builder=on_builder)
        except (SessionClosed, ProtocolError):
            raise
        except Exception as exc:  # a sim bug must not take the server down
            raise ProtocolError("run", f"campaign failed: {exc!r}") from exc
        finally:
            self._run = None
        self._last_report = report
        self._send("DONE", "run", name, f"seed={seed}",
                   f"ticks={run.ticks}", f"decisions={run.decided}")

    def decision_round(self, view, due, completions) -> None:
        """One scheduler tick, negotiated over the wire.

        Called from inside the event kernel (via the strategy) whenever
        cells are due.  Sim time is frozen until the client sends REDY.
        """
        run = self._run
        assert run is not None
        run.ticks += 1
        now = view.now
        self._send("TICK", format_time_arg(now), len(completions), len(due))
        for (t, cell_id, status) in completions:
            self._send("JCPL", format_time_arg(t), cell_id, status)
        undecided = {}
        for cell in due:
            cid = view.cell_id(cell)
            undecided[str(cid)] = cell
            alive, free = view.availability(cell)
            self._send("JOBN", cid, cell.family.kind, cell.site,
                       cell.cluster if cell.cluster is not None else "-",
                       cell.family.nodes_needed, view.in_flight(cell.site),
                       alive, free, cell.runs, cell.blocked_attempts)
        while True:
            msg = self._recv()
            verb = msg.verb
            try:
                if verb == "REDY":
                    run.decided += len(due) - len(undecided)
                    self._send("OK", "tick", "complete")
                    return
                if verb in ("SCHD", "DEFR"):
                    cell = undecided.pop(msg.args[0], None)
                    if cell is None:
                        raise ProtocolError(
                            "arg", f"cell {msg.args[0]} not due (or already "
                            "decided) this tick")
                    if verb == "SCHD":
                        view.launch(cell)
                    else:
                        view.defer(cell)
                    self._send("OK", verb.lower(), msg.args[0])
                elif verb == "GETS":
                    self._do_gets(msg, view)
                elif verb == "QUIT":
                    self._send("OK", "bye")
                    raise SessionClosed("client quit mid-run")
                else:
                    raise ProtocolError("state",
                                        f"{verb} not valid inside a tick")
            except ProtocolError as exc:
                self._err(exc)

    def _do_gets(self, msg: Message, view) -> None:
        what = msg.args[0]
        if what == "servers":
            self._data_block([f"{cluster} {site} {alive} {free}"
                              for (cluster, site, alive, free)
                              in view.cluster_states()])
        elif what == "jobs":
            run = self._run
            oar = view.scheduler.oar
            doc = {
                "running": len(oar.running_jobs()),
                "waiting": oar.waiting_count(),
                "oar_started": run.oar_started,
                "oar_completed": run.oar_completed,
                "builds_in_flight": sum(
                    1 for c in view.scheduler.cells if c.in_flight),
            }
            self._data_block([canonical_json(doc)])
        elif what == "policy":
            policy = view.scheduler.policy
            self._data_block([canonical_json(encode_dataclass(policy))])
        else:
            raise ProtocolError(
                "arg", f"GETS knows servers|jobs|policy, not {what!r}")

    # -- campaign service ------------------------------------------------------

    def _do_subm(self, msg: Message) -> None:
        if self.campaigns is None:
            raise ProtocolError("state", "no campaign service attached")
        try:
            doc = json.loads(msg.args[0])
        except ValueError:
            raise ProtocolError("arg", "SUBM payload is not JSON") from None

        def on_cell(run, cached, index, total):
            status = "cached" if cached else ("ok" if run.ok else "failed")
            self._send("CELL", run.scenario, run.seed, status, index, total)

        try:
            runs = self.campaigns.run_matrix(doc, on_cell=on_cell)
        except (SessionClosed, ProtocolError):
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("arg", f"bad matrix: {exc}") from exc
        ok = sum(1 for r in runs if r.ok)
        self._send("DONE", "subm", f"cells={len(runs)}",
                   f"ok={ok}", f"failed={len(runs) - ok}")

    def _do_rprt(self, msg: Message) -> None:
        if msg.args and msg.args[0] == "store":
            if self.campaigns is None:
                raise ProtocolError("state", "no campaign service attached")
            docs = self.campaigns.stored_runs()
            self._send("RPRT", _sha256(canonical_json(docs)))
            self._data_block([canonical_json(doc) for doc in docs])
            return
        if self._last_report is None:
            raise ProtocolError("state", "no report yet (RUN first)")
        body = canonical_json(self._last_report.to_dict())
        self._send("RPRT", _sha256(body))
        self._data_block([body])

    def _do_cmpr(self, msg: Message) -> None:
        if self.campaigns is None:
            raise ProtocolError("state", "no campaign service attached")
        baseline = msg.args[0]
        runs = [r for r in self.campaigns.store.runs() if r.ok]
        try:
            deltas = compare_runs(runs, baseline=baseline)
        except (KeyError, ValueError) as exc:
            raise ProtocolError("arg", str(exc.args[0])) from None
        doc = {scenario: [asdict(d) for d in metric_deltas]
               for scenario, metric_deltas in deltas.items()}
        self._data_block([canonical_json(doc)])


def _count(run: _RunState, field: str) -> None:
    setattr(run, field, getattr(run, field) + 1)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
