"""KaVLAN: VLAN allocation, switch reconfiguration, isolation semantics."""

from .manager import RECONFIG_S_PER_SWITCH, KavlanManager, Vlan, VlanType

__all__ = ["VlanType", "Vlan", "KavlanManager", "RECONFIG_S_PER_SWITCH"]
