# detlint PRF401 fixture: park-wide scans inside tick-path functions.
# The profile refactor moved tick-path availability questions onto
# Gantt's ResourceProfile; a loop over the park's node/timeline
# collections in these functions reintroduces the O(nodes) rescans.


class FakeScheduler:
    def _schedule_pass(self, now):
        for uid in self.db.node_uids():  # EXPECT(PRF401)
            self.touch(uid)
        busy = [u for u in self.gantt._timelines]  # EXPECT(PRF401)
        return busy

    def grow_candidates(self, job):
        return [u for u in sorted(self.machines.machines)  # EXPECT(PRF401)
                if self.ok(u)]

    def elastic_tick(self, oar):
        for node in self.park.nodes:  # EXPECT(PRF401)
            node.poke()
        for tl in self.gantt.timelines.values():  # EXPECT(PRF401)
            tl.scan()

    def availability(self, cell):
        return sum(1 for u in self.db.alive_nodes())  # EXPECT(PRF401)

    def _negotiate(self, oar, queued):
        # OK: iterating the profile's answer, not the park.
        for uid in oar.gantt.free_uids(self.mask, 0.0, 1.0):
            self.take(uid)

    def _free_alive(self, uids):
        # OK: a caller-supplied candidate list, not the whole park.
        return sum(1 for u in uids if self.ok(u))

    def refresh_everything(self):
        # OK: not a tick-path function (runs once at startup).
        for uid in self.db.node_uids():
            self.touch(uid)
