"""E7 — slides 16-17: scheduling on a heavily-used testbed.

Regenerates the motivating observation: on a contended testbed, a 1-node
job starts almost immediately while a whole-cluster (nodes=ALL) request
waits orders of magnitude longer — "waiting for all nodes of a given
cluster to be available can take weeks".  Also demonstrates the
immediate-or-cancel contract the external scheduler relies on.
"""

from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import JobState, OarDatabase, OarServer, WorkloadConfig, WorkloadGenerator
from repro.testbed import CLUSTER_SPECS, ReferenceApi, build_grid5000
from repro.util import DAY, HOUR, RngStreams, Simulator

from conftest import paper_row, print_table

_CLUSTERS = ("paravance", "grisou", "parasilo")


def _contended_world(seed=3, utilization=0.75):
    specs = [s for s in CLUSTER_SPECS if s.name in _CLUSTERS]
    testbed = build_grid5000(specs)
    sim = Simulator()
    rngs = RngStreams(seed=seed)
    park = MachinePark.from_testbed(sim, testbed, rngs)
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()), park)
    workload = WorkloadGenerator(
        sim, oar, testbed, rngs,
        WorkloadConfig(target_utilization=utilization))
    workload.start()
    sim.run(until=2 * DAY)  # warm the queue up
    return sim, oar


def _scenario():
    sim, oar = _contended_world()
    single = oar.submit("cluster='paravance'/nodes=1,walltime=1",
                        auto_duration=600.0)
    whole = oar.submit("cluster='paravance'/nodes=ALL,walltime=2",
                       auto_duration=600.0)
    immediate = oar.submit("cluster='paravance'/nodes=ALL,walltime=2",
                           immediate=True)
    sim.run(until=sim.now + 21 * DAY)
    return single, whole, immediate


def bench_e7_scheduler(benchmark):
    single, whole, immediate = benchmark.pedantic(_scenario, rounds=1,
                                                  iterations=1)
    single_wait = single.wait_time_s if single.wait_time_s is not None else float("inf")
    whole_wait = whole.wait_time_s if whole.wait_time_s is not None else float("inf")
    rows = [
        paper_row("1-node job wait", "~immediate",
                  f"{single_wait / HOUR:.2f}h"),
        paper_row("whole-cluster (ALL) job wait", "days-weeks",
                  f"{whole_wait / DAY:.1f}d"),
        paper_row("immediate-or-cancel on busy cluster", "cancelled",
                  immediate.state.value),
    ]
    print_table("E7: scheduling on a heavily-used testbed (slides 16-17)", rows)
    # shape: whole-cluster requests wait far longer than single-node ones
    assert whole_wait > 4 * single_wait
    assert whole_wait > 12 * HOUR
    assert immediate.state == JobState.CANCELLED
