"""Tests for the g5k-checks verification engine."""

import numpy as np
import pytest

from repro.checks import expected_facts, run_g5k_checks
from repro.faults import (
    FaultContext,
    FaultKind,
    ServiceHealth,
    apply_fault,
    revert_fault,
)
from repro.nodes import MachinePark, acquire_all
from repro.testbed import ReferenceApi
from repro.util import RngStreams, Simulator


@pytest.fixture()
def world(fresh_testbed):
    sim = Simulator()
    park = MachinePark.from_testbed(sim, fresh_testbed, RngStreams(seed=4))
    refapi = ReferenceApi(fresh_testbed)
    ctx = FaultContext.build(park, ServiceHealth(), ("debian8-std",))
    return park, refapi, ctx


def test_healthy_node_passes(world):
    park, refapi, _ = world
    for uid in ("graphene-1", "grimoire-1", "azur-29", "chetemi-15"):
        report = run_g5k_checks(park[uid], refapi)
        assert report.ok, report.summary()


def test_expected_facts_equal_acquired_on_healthy_node(world):
    park, refapi, _ = world
    node = park["parasilo-7"]
    assert expected_facts(refapi.node(node.uid)) == acquire_all(node)


def test_every_testbed_node_passes_when_pristine(world):
    park, refapi, _ = world
    bad = [uid for uid, m in park.machines.items()
           if not run_g5k_checks(m, refapi).ok]
    assert bad == []


# Fault kinds whose effect surfaces in acquired facts, with the hint the
# check should produce.
_HARDWARE_KINDS = [
    FaultKind.CPU_CSTATES,
    FaultKind.CPU_HYPERTHREADING,
    FaultKind.CPU_TURBO,
    FaultKind.CPU_POWER_PROFILE,
    FaultKind.DISK_WRITE_CACHE,
    FaultKind.DISK_READ_AHEAD,
    FaultKind.RAM_DIMM_FAILED,
    FaultKind.NIC_DOWNGRADE,
    FaultKind.IB_OFED_FAILURE,
]


@pytest.mark.parametrize("kind", _HARDWARE_KINDS)
def test_node_fault_detected_with_correct_hint(world, kind):
    park, refapi, ctx = world
    rng = np.random.default_rng(7)
    inst = apply_fault(kind, ctx, rng, 1, 0.0)
    assert inst is not None
    report = run_g5k_checks(park[inst.target], refapi, now=10.0)
    assert not report.ok
    assert kind in report.hints(), report.summary()
    revert_fault(inst, ctx)
    assert run_g5k_checks(park[inst.target], refapi).ok


def test_bios_skew_detected_on_affected_nodes(world):
    park, refapi, ctx = world
    rng = np.random.default_rng(8)
    inst = apply_fault(FaultKind.BIOS_VERSION_SKEW, ctx, rng, 1, 0.0)
    for uid in inst.details["nodes"]:
        report = run_g5k_checks(park[uid], refapi)
        assert FaultKind.BIOS_VERSION_SKEW in report.hints()


def test_firmware_skew_detected_via_hdparm(world):
    park, refapi, ctx = world
    rng = np.random.default_rng(9)
    inst = apply_fault(FaultKind.DISK_FIRMWARE_SKEW, ctx, rng, 1, 0.0)
    uid = inst.details["nodes"][0]
    report = run_g5k_checks(park[uid], refapi)
    assert FaultKind.DISK_FIRMWARE_SKEW in report.hints()


def test_dead_disk_detected(world):
    park, refapi, ctx = world
    rng = np.random.default_rng(10)
    inst = apply_fault(FaultKind.DISK_DEAD, ctx, rng, 1, 0.0)
    report = run_g5k_checks(park[inst.target], refapi)
    assert FaultKind.DISK_DEAD in report.hints()


def test_service_fault_invisible_to_g5kchecks(world):
    """Service-level faults don't show in node facts; other families catch them."""
    park, refapi, ctx = world
    rng = np.random.default_rng(11)
    inst = apply_fault(FaultKind.API_FLAKY, ctx, rng, 1, 0.0)
    assert inst is not None
    bad = [uid for uid, m in park.machines.items()
           if not run_g5k_checks(m, refapi).ok]
    assert bad == []


def test_report_summary_readable(world):
    park, refapi, ctx = world
    rng = np.random.default_rng(12)
    inst = apply_fault(FaultKind.DISK_WRITE_CACHE, ctx, rng, 1, 0.0)
    report = run_g5k_checks(park[inst.target], refapi)
    text = report.summary()
    assert inst.target in text
    assert "write_cache" in text
    assert "disk-write-cache" in text  # the actionable hint


def test_ok_summary(world):
    park, refapi, _ = world
    assert run_g5k_checks(park["nova-1"], refapi).summary().endswith("OK")


def test_stale_description_also_flagged(world):
    """The description being wrong (not the hardware) is equally a mismatch:
    g5k-checks cannot tell which side is right — and that is the point."""
    park, refapi, _ = world
    node_desc = refapi.node("grisou-10")
    import dataclasses

    wrong = dataclasses.replace(node_desc, ram_gb=256)  # operator typo
    refapi.update_node(wrong, timestamp=1.0, message="typo in RAM size")
    report = run_g5k_checks(park["grisou-10"], refapi)
    assert FaultKind.RAM_DIMM_FAILED in report.hints()


def test_multiple_faults_all_reported(world):
    park, refapi, ctx = world
    node = park["grimoire-2"]
    node.actual.bios.c_states = True
    node.find_disk("sdb").write_cache = False
    report = run_g5k_checks(node, refapi)
    assert {FaultKind.CPU_CSTATES, FaultKind.DISK_WRITE_CACHE} <= report.hints()
    assert len(report.mismatches) >= 2
