"""Per-connection protocol session: state machine + transports.

One :class:`Session` serves one client connection.  Its lifecycle::

    AWAIT_HELO --HELO--> IDLE --RUN/SUBM--> (streaming) --> IDLE --QUIT

``RUN`` is the interesting state: the session executes a full campaign
*inside* the handler, and the simulated clock only advances between
protocol exchanges — every scheduler tick with due cells blocks on the
socket until the client has decided each one (``SCHD``/``DEFR``) and sent
``REDY``.  That synchronous bridge is what makes a remote scheduler
byte-identical to the in-process one: no sim event fires while a decision
is pending, and decisions apply in arrival order.

Malformed input never kills the server: codec errors and ill-timed verbs
are answered with ``ERR <code> <reason>`` and the session keeps reading.
Only EOF/timeouts (:class:`SessionClosed`) and ``QUIT`` end it.

Resilience: every ``RUN`` is issued a token and its committed ticks are
recorded in a :class:`~repro.service.resume.RunRegistry`; a client that
lost its connection mid-run reconnects and sends ``RESM <token>`` to
resume deterministically (see :mod:`repro.service.resume`).  While a
session waits on a silent peer it sends ``PING`` heartbeats, and a peer
that stays silent past the recv deadline frees the session.
"""

from __future__ import annotations

import hashlib
import json
import socket
from dataclasses import asdict
from typing import Callable, Optional

from .. import scenarios
from ..analysis.compare import compare_runs
from ..core.campaign import run_scenario
from ..util.serialization import canonical_json, encode_dataclass
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Message,
    ProtocolError,
    decode,
    encode,
    format_time_arg,
)
from .resume import RunRecord, RunRegistry

__all__ = ["Session", "SessionClosed", "Transport", "SocketTransport"]


class SessionClosed(Exception):
    """The peer went away (EOF, timeout, or QUIT): unwind silently."""


class Transport:
    """One line in, one line out.  Sessions never touch sockets directly,
    so tests drive the full state machine through a scripted transport."""

    def send_line(self, line: str) -> None:
        raise NotImplementedError

    def recv_line(self) -> str:
        """Next line without its newline; raises SessionClosed on EOF."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class SocketTransport(Transport):
    """Buffered line framing over a TCP socket, with peer-death deadlines.

    The framing buffer is explicit (no ``makefile`` object), so a socket
    timeout mid-line never loses the partial bytes already received —
    the next ``recv_line`` picks up exactly where the wire left off.

    ``recv_deadline_s`` bounds how long one ``recv_line`` waits in total
    before declaring the peer dead (:class:`SessionClosed` frees the
    session).  ``heartbeat_interval_s`` wakes the :attr:`on_idle` hook
    while waiting, so the session can probe a silent peer with ``PING``
    — a broken connection then fails the *send* immediately instead of
    wedging in ``recv`` until the deadline.
    """

    def __init__(self, sock: socket.socket,
                 recv_deadline_s: Optional[float] = None,
                 heartbeat_interval_s: Optional[float] = None):
        self.sock = sock
        self.recv_deadline_s = recv_deadline_s
        self.heartbeat_interval_s = heartbeat_interval_s
        #: Idle probe, fired after each silent heartbeat interval; may
        #: raise :class:`SessionClosed` to drop a dead peer.
        self.on_idle: Optional[Callable[[], None]] = None
        try:
            # The protocol is many tiny request/response lines per tick;
            # Nagle + delayed ACK would add ~40ms to every exchange.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP transports (unix sockets, socketpairs)
        self._buf = bytearray()

    def send_line(self, line: str) -> None:
        try:
            # The recv deadline doubles as the send deadline: a peer that
            # stops draining its socket is as dead as one that stops
            # talking.
            self.sock.settimeout(self.recv_deadline_s)
            self.sock.sendall(line.encode("utf-8") + b"\n")
        except OSError:
            raise SessionClosed("send failed") from None

    def send_raw(self, text: str) -> None:
        """Send bytes with *no* newline — the torn-write seam chaos
        testing uses to leave a half-line in the peer's framing buffer."""
        try:
            self.sock.settimeout(self.recv_deadline_s)
            self.sock.sendall(text.encode("utf-8"))
        except OSError:
            raise SessionClosed("send failed") from None

    def recv_line(self) -> str:
        waited = 0.0
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                raw = bytes(self._buf[:nl])
                del self._buf[:nl + 1]
                if len(raw) > MAX_LINE_BYTES:
                    raise ProtocolError(
                        "toobig", f"line exceeds {MAX_LINE_BYTES} bytes")
                return raw.decode("utf-8", errors="replace").rstrip("\r")
            if len(self._buf) > MAX_LINE_BYTES:
                # Poison flood with no newline in sight: report once,
                # then drop the peer (resynchronizing is guesswork).
                raise ProtocolError(
                    "toobig", f"line exceeds {MAX_LINE_BYTES} bytes")
            interval = self.heartbeat_interval_s
            if interval is None or (self.recv_deadline_s is not None
                                    and self.recv_deadline_s < interval):
                interval = self.recv_deadline_s
            try:
                self.sock.settimeout(interval)
                chunk = self.sock.recv(65536)
            except socket.timeout:
                waited += interval or 0.0
                if (self.recv_deadline_s is not None
                        and waited >= self.recv_deadline_s):
                    raise SessionClosed(
                        f"peer silent for {waited:.0f}s "
                        "(recv deadline)") from None
                if self.on_idle is not None:
                    self.on_idle()
                continue
            except (OSError, ValueError):
                raise SessionClosed("recv failed") from None
            if not chunk:
                raise SessionClosed("EOF")
            self._buf += chunk

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _RunState:
    """Session state scoped to one RUN: JCPL buffer + GETS counters,
    plus the resume bookkeeping (decision record + replay cursor)."""

    __slots__ = ("oar_started", "oar_completed", "ticks", "decided",
                 "record", "replay", "replayed")

    def __init__(self, record: Optional[RunRecord] = None):
        self.oar_started = 0
        self.oar_completed = 0
        self.ticks = 0
        self.decided = 0
        self.record = record
        #: Committed ticks to re-apply silently before going interactive
        #: (a snapshot — the record keeps growing as new ticks commit).
        self.replay: list[list[tuple[str, str]]] = \
            list(record.ticks) if record is not None else []
        self.replayed = 0


class Session:
    """The protocol state machine for one connection."""

    def __init__(self, transport: Transport, campaigns=None,
                 server_name: str = "repro-sim",
                 runs: Optional[RunRegistry] = None):
        self.transport = transport
        self.campaigns = campaigns
        self.server_name = server_name
        #: Shared across a service's sessions so RESM works from a fresh
        #: connection; a private registry still allows same-session RESM.
        self.runs = runs if runs is not None else RunRegistry()
        self.greeted = False
        self.client_name = "?"
        self._run: Optional[_RunState] = None
        self._last_report = None

    # -- plumbing --------------------------------------------------------------

    def _send(self, verb: str, *args: object) -> None:
        self.transport.send_line(encode(verb, *args))

    def heartbeat(self) -> None:
        """Idle probe: a PING the client ignores, but whose *send* fails
        fast on a dead connection (wired as the transport's on_idle)."""
        self._send("PING")

    def _err(self, exc: ProtocolError) -> None:
        self._send("ERR", exc.code, *exc.message.split())

    def _data_block(self, lines: list[str]) -> None:
        self._send("DATA", len(lines))
        for line in lines:
            self.transport.send_line(line)
        self._send(".")

    def _recv(self) -> Message:
        """Next well-formed message; malformed lines are ERRed in place."""
        while True:
            try:
                return decode(self.transport.recv_line())
            except ProtocolError as exc:
                self._err(exc)
                if exc.code == "toobig":
                    # Resynchronizing inside an oversized line is
                    # guesswork: report the dedicated code, then drop.
                    raise SessionClosed("oversized line") from None

    # -- main loop -------------------------------------------------------------

    def serve(self) -> None:
        """Serve until QUIT or disconnect.  Never raises on bad input."""
        try:
            while True:
                msg = self._recv()
                try:
                    if not self._dispatch(msg):
                        return
                except ProtocolError as exc:
                    self._err(exc)
        except SessionClosed:
            return
        finally:
            self.transport.close()

    def _dispatch(self, msg: Message) -> bool:
        verb = msg.verb
        if not self.greeted:
            if verb != "HELO":
                raise ProtocolError("state", "HELO first")
            return self._do_helo(msg)
        if verb == "HELO":
            raise ProtocolError("state", "already greeted")
        if verb == "QUIT":
            self._send("OK", "bye")
            return False
        if verb == "RUN":
            self._do_run(msg)
        elif verb == "RESM":
            self._do_resm(msg)
        elif verb == "SUBM":
            self._do_subm(msg)
        elif verb == "RPRT":
            self._do_rprt(msg)
        elif verb == "CMPR":
            self._do_cmpr(msg)
        elif verb in ("GETS", "SCHD", "DEFR", "REDY"):
            raise ProtocolError("state", f"{verb} only valid inside a run")
        else:  # a server->client verb echoed back at us
            raise ProtocolError("state", f"unexpected {verb}")
        return True

    def _do_helo(self, msg: Message) -> bool:
        if msg.args[0] != PROTOCOL_VERSION:
            raise ProtocolError(
                "proto", "version mismatch: server speaks "
                f"{PROTOCOL_VERSION}, client offered {msg.args[0]}")
        self.greeted = True
        if len(msg.args) > 1:
            self.client_name = msg.args[1]
        self._send("OK", PROTOCOL_VERSION, self.server_name)
        return True

    # -- RUN: one remotely-scheduled campaign ----------------------------------

    def _do_run(self, msg: Message) -> None:
        name, seed_text, months_text = msg.args
        try:
            spec = scenarios.get(name)
        except KeyError:
            raise ProtocolError("arg", f"unknown scenario {name!r}") from None
        try:
            seed = int(seed_text)
        except ValueError:
            raise ProtocolError("arg", f"bad seed {seed_text!r}") from None
        months: Optional[float] = None
        if months_text != "-":
            try:
                months = float(months_text)
            except ValueError:
                raise ProtocolError("arg",
                                    f"bad months {months_text!r}") from None
            if not months > 0:
                raise ProtocolError("arg", "months must be positive")
        record = self.runs.create(name, seed, months)
        # The token travels before the first TICK so the client holds it
        # even if the very next exchange dies.
        self._send("OK", "run", record.token)
        self._execute_run(spec, seed, months, record)

    def _do_resm(self, msg: Message) -> None:
        token = msg.args[0]
        try:
            record = self.runs.attach(token)
        except KeyError:
            raise ProtocolError("run",
                                f"unknown run token {token!r}") from None
        except ValueError as exc:
            raise ProtocolError("state", str(exc)) from None
        try:
            spec = scenarios.get(record.scenario)
        except KeyError:
            self.runs.detach(record, "failed")
            raise ProtocolError(
                "arg", f"scenario {record.scenario!r} no longer "
                "registered") from None
        self._send("OK", "resume", token, f"replay={len(record.ticks)}")
        self._execute_run(spec, record.seed, record.months, record)

    def _execute_run(self, spec, seed: int, months: Optional[float],
                     record: RunRecord) -> None:
        """Run one (possibly resumed) campaign against this session.

        Resume is replay: the scenario re-executes from scratch (cheap
        and deterministic) while :meth:`decision_round` silently re-
        applies the committed decision log, then switches to interactive
        negotiation exactly where the previous connection died.
        """
        from .policy import ExternalProtocolStrategy  # cycle guard

        self._run = run = _RunState(record)

        def on_builder(builder):
            builder.with_extra(
                "scheduling_strategy",
                lambda policy: ExternalProtocolStrategy(policy, self))

        def on_built(fw):
            fw.oar.on_job_start.append(lambda job: _count(run, "oar_started"))
            fw.oar.on_job_complete.append(
                lambda job: _count(run, "oar_completed"))

        try:
            _, report = run_scenario(spec, seed=seed, months=months,
                                     on_built=on_built, on_builder=on_builder)
        except SessionClosed:
            # The peer died mid-run: keep the record resumable.
            self.runs.detach(record, "disconnected")
            raise
        except ProtocolError:
            self.runs.detach(record, "failed")
            raise
        except Exception as exc:  # a sim bug must not take the server down
            self.runs.detach(record, "failed")
            raise ProtocolError("run", f"campaign failed: {exc!r}") from exc
        finally:
            self._run = None
        self._last_report = report
        record.report = report
        self.runs.detach(record, "done")
        self._send("DONE", "run", spec.name, f"seed={seed}",
                   f"ticks={run.ticks}", f"decisions={run.decided}")

    def decision_round(self, view, due, completions) -> None:
        """One scheduler tick, negotiated over the wire.

        Called from inside the event kernel (via the strategy) whenever
        cells are due.  Sim time is frozen until the client sends REDY.
        """
        run = self._run
        assert run is not None
        run.ticks += 1
        if run.replayed < len(run.replay):
            self._replay_round(view, due, run)
            return
        now = view.now
        self._send("TICK", format_time_arg(now), len(completions), len(due))
        for (t, cell_id, status) in completions:
            self._send("JCPL", format_time_arg(t), cell_id, status)
        undecided = {}
        for cell in due:
            cid = view.cell_id(cell)
            undecided[str(cid)] = cell
            alive, free = view.availability(cell)
            self._send("JOBN", cid, cell.family.kind, cell.site,
                       cell.cluster if cell.cluster is not None else "-",
                       cell.family.nodes_needed, view.in_flight(cell.site),
                       alive, free, cell.runs, cell.blocked_attempts)
        decided: list[tuple[str, str]] = []
        while True:
            msg = self._recv()
            verb = msg.verb
            try:
                if verb == "REDY":
                    run.decided += len(due) - len(undecided)
                    if run.record is not None:
                        # Commit point: only REDY-complete ticks replay on
                        # RESM; a tick abandoned mid-round is renegotiated.
                        run.record.ticks.append(decided)
                    self._send("OK", "tick", "complete")
                    return
                if verb in ("SCHD", "DEFR"):
                    cell = undecided.pop(msg.args[0], None)
                    if cell is None:
                        raise ProtocolError(
                            "arg", f"cell {msg.args[0]} not due (or already "
                            "decided) this tick")
                    if verb == "SCHD":
                        view.launch(cell)
                    else:
                        view.defer(cell)
                    decided.append((msg.args[0], verb))
                    self._send("OK", verb.lower(), msg.args[0])
                elif verb == "GETS":
                    self._do_gets(msg, view)
                elif verb == "QUIT":
                    self._send("OK", "bye")
                    raise SessionClosed("client quit mid-run")
                else:
                    raise ProtocolError("state",
                                        f"{verb} not valid inside a tick")
            except ProtocolError as exc:
                self._err(exc)

    def _replay_round(self, view, due, run: _RunState) -> None:
        """Silently re-apply one committed tick of a resumed run.

        No wire traffic: the client only rejoins the conversation once
        the replay cursor catches up with where the old connection died.
        A mismatch between the recorded decisions and the re-simulated
        due set means the world diverged — impossible while scenarios are
        deterministic — and fails the run loudly rather than guessing.
        """
        decisions = run.replay[run.replayed]
        run.replayed += 1
        index = {str(view.cell_id(cell)): cell for cell in due}
        for cid, action in decisions:
            cell = index.pop(cid, None)
            if cell is None:
                raise ProtocolError(
                    "internal", f"resume replay desynchronized: cell {cid} "
                    "not due at the recorded tick")
            if action == "SCHD":
                view.launch(cell)
            else:
                view.defer(cell)
        run.decided += len(decisions)

    def _do_gets(self, msg: Message, view) -> None:
        what = msg.args[0]
        if what == "servers":
            self._data_block([f"{cluster} {site} {alive} {free}"
                              for (cluster, site, alive, free)
                              in view.cluster_states()])
        elif what == "jobs":
            run = self._run
            oar = view.scheduler.oar
            doc = {
                "running": len(oar.running_jobs()),
                "waiting": oar.waiting_count(),
                "oar_started": run.oar_started,
                "oar_completed": run.oar_completed,
                "builds_in_flight": sum(
                    1 for c in view.scheduler.cells if c.in_flight),
            }
            self._data_block([canonical_json(doc)])
        elif what == "policy":
            policy = view.scheduler.policy
            self._data_block([canonical_json(encode_dataclass(policy))])
        else:
            raise ProtocolError(
                "arg", f"GETS knows servers|jobs|policy, not {what!r}")

    # -- campaign service ------------------------------------------------------

    def _do_subm(self, msg: Message) -> None:
        if self.campaigns is None:
            raise ProtocolError("state", "no campaign service attached")
        try:
            doc = json.loads(msg.args[0])
        except ValueError:
            raise ProtocolError("arg", "SUBM payload is not JSON") from None

        def on_cell(run, cached, index, total):
            status = "cached" if cached else ("ok" if run.ok else "failed")
            self._send("CELL", run.scenario, run.seed, status, index, total)

        try:
            runs = self.campaigns.run_matrix(doc, on_cell=on_cell)
        except (SessionClosed, ProtocolError):
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("arg", f"bad matrix: {exc}") from exc
        ok = sum(1 for r in runs if r.ok)
        self._send("DONE", "subm", f"cells={len(runs)}",
                   f"ok={ok}", f"failed={len(runs) - ok}")

    def _do_rprt(self, msg: Message) -> None:
        if msg.args and msg.args[0] == "store":
            if self.campaigns is None:
                raise ProtocolError("state", "no campaign service attached")
            docs = self.campaigns.stored_runs()
            self._send("RPRT", _sha256(canonical_json(docs)))
            self._data_block([canonical_json(doc) for doc in docs])
            return
        if msg.args:
            # ``RPRT <token>``: recover a finished run's report from any
            # connection — the one that ran it may have died between
            # DONE and the fetch.
            record = self.runs.get(msg.args[0])
            if record is None:
                raise ProtocolError("run",
                                    f"unknown run token {msg.args[0]!r}")
            if record.report is None:
                raise ProtocolError("state",
                                    f"run {record.token} has no report "
                                    f"(status {record.status})")
            report = record.report
        elif self._last_report is None:
            raise ProtocolError("state", "no report yet (RUN first)")
        else:
            report = self._last_report
        body = canonical_json(report.to_dict())
        self._send("RPRT", _sha256(body))
        self._data_block([body])

    def _do_cmpr(self, msg: Message) -> None:
        if self.campaigns is None:
            raise ProtocolError("state", "no campaign service attached")
        baseline = msg.args[0]
        runs = [r for r in self.campaigns.store.runs() if r.ok]
        try:
            deltas = compare_runs(runs, baseline=baseline)
        except (KeyError, ValueError) as exc:
            raise ProtocolError("arg", str(exc.args[0])) from None
        doc = {scenario: [asdict(d) for d in metric_deltas]
               for scenario, metric_deltas in deltas.items()}
        self._data_block([canonical_json(doc)])


def _count(run: _RunState, field: str) -> None:
    setattr(run, field, getattr(run, field) + 1)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
