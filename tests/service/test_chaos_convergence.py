"""Chaos convergence: seeded fault schedules cannot change the bytes.

The resilience acceptance criterion: a :class:`ReferenceClient` whose
every connection is wrapped in a :class:`ChaosTransport` — one seeded
schedule of connection drops, line splits, duplicates, garbage and delays
shared across reconnects — still finishes the run, and the recovered
report is byte-identical (same sha256) to a clean in-process run.  Once
the plan's fault budget drains the wire turns transparent, so every
schedule converges; faults only cost retries, never bytes.

Set ``CHAOS_LOG_DIR`` to dump each schedule's injected-fault log as
JSONL — the artifact the CI ``chaos-smoke`` job uploads.
"""

import hashlib
import json
import os

import pytest

from repro import run_scenario, scenarios
from repro.service import (
    ChaosConfig,
    ChaosPlan,
    ChaosTransport,
    ReferenceClient,
    SimulatorService,
)
from repro.service.session import SessionClosed, Transport

SCENARIO = "tiny-smoke"
SEED = 0
MONTHS = 0.05
#: Distinct seeded fault schedules the suite must survive (acceptance
#: floor is 20).
N_SCHEDULES = 20

_CLEAN: dict = {}
_INJECTED_TOTAL = [0]


def clean_hash() -> str:
    """sha256 of the undisturbed in-process report (computed once)."""
    if "sha" not in _CLEAN:
        _, report = run_scenario(scenarios.get(SCENARIO), seed=SEED,
                                 months=MONTHS)
        doc = json.dumps(report.to_dict(), sort_keys=True,
                         separators=(",", ":"))
        _CLEAN["sha"] = hashlib.sha256(doc.encode("utf-8")).hexdigest()
    return _CLEAN["sha"]


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store = tmp_path_factory.mktemp("chaos") / "store.jsonl"
    svc = SimulatorService(port=0, store=str(store))
    svc.start()
    yield svc
    svc.stop()


def _dump_chaos_log(chaos_seed: int, plan: ChaosPlan) -> None:
    """One JSONL file per schedule when CHAOS_LOG_DIR is set (CI)."""
    log_dir = os.environ.get("CHAOS_LOG_DIR")
    if not log_dir:
        return
    os.makedirs(log_dir, exist_ok=True)
    path = os.path.join(log_dir, f"chaos-seed-{chaos_seed}.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        for doc in plan.log_docs():
            fh.write(json.dumps(doc, sort_keys=True) + "\n")


@pytest.mark.parametrize("chaos_seed", range(N_SCHEDULES))
def test_fault_schedule_converges(service, chaos_seed):
    plan = ChaosPlan(ChaosConfig(seed=chaos_seed, fault_rate=0.35,
                                 max_faults=8, delay_s=0.002))
    host, port = service.address
    client = ReferenceClient(
        host, port, name=f"chaos-{chaos_seed}", timeout_s=15.0,
        retries=plan.config.max_faults + 4,
        backoff_base_s=0.002, backoff_cap_s=0.02, backoff_seed=chaos_seed,
        transport_wrap=lambda t: ChaosTransport(t, plan))
    try:
        result = client.run_scenario(SCENARIO, seed=SEED, months=MONTHS)
    finally:
        client.close()
        _dump_chaos_log(chaos_seed, plan)
    _INJECTED_TOTAL[0] += plan.injected
    assert result["ticks"] > 0
    assert result["sha256"] == clean_hash()


def test_schedules_actually_injected_faults():
    """Guard against silently-transparent chaos: across the schedules at
    least one fault per schedule must have fired on average (in practice
    nearly every schedule drains its whole budget)."""
    assert _INJECTED_TOTAL[0] >= N_SCHEDULES


class _DropAtTick(Transport):
    """Deterministically kill the connection at the Nth TICK delivered.

    ``fuse`` is a shared one-element list so the countdown survives the
    client's reconnect (the replacement transport must not re-arm it).
    """

    def __init__(self, inner: Transport, fuse: list):
        self.inner = inner
        self.fuse = fuse

    def recv_line(self) -> str:
        line = self.inner.recv_line()
        if self.fuse[0] is not None and line.startswith("TICK"):
            self.fuse[0] -= 1
            if self.fuse[0] <= 0:
                self.fuse[0] = None  # one-shot
                self.inner.close()
                raise SessionClosed("scripted disconnect at TICK")
        return line

    def send_line(self, line: str) -> None:
        self.inner.send_line(line)

    def close(self) -> None:
        self.inner.close()


def test_mid_run_disconnect_resumes_same_token(tmp_path):
    """A scripted mid-run drop recovers via RESM, not a fresh RUN: the
    registry holds exactly one record and the bytes still match."""
    with SimulatorService(port=0, store=str(tmp_path / "store.jsonl")) as svc:
        fuse = [2]  # die on the second TICK: token + one committed round
        wrapped = []

        def wrap(transport):
            wrapped.append(transport)
            return _DropAtTick(transport, fuse)

        host, port = svc.address
        with ReferenceClient(host, port, timeout_s=10.0, retries=2,
                             backoff_base_s=0.001, backoff_cap_s=0.01,
                             transport_wrap=wrap) as client:
            result = client.run_scenario(SCENARIO, seed=SEED, months=MONTHS)
        assert result["sha256"] == clean_hash()
        assert len(wrapped) == 2, "expected exactly one reconnect"
        assert len(svc.runs) == 1, "resume must reuse the issued token"


def test_chaos_log_records_every_injection(service):
    """The plan's event log is the CI artifact: one entry per fault, each
    JSON-ready with op ordinal, direction and a catalogued kind."""
    plan = ChaosPlan(ChaosConfig(seed=99, fault_rate=0.5, max_faults=6,
                                 delay_s=0.001))
    host, port = service.address
    with ReferenceClient(host, port, name="chaos-log", timeout_s=15.0,
                         retries=10, backoff_base_s=0.001,
                         backoff_cap_s=0.01,
                         transport_wrap=lambda t: ChaosTransport(t, plan)
                         ) as client:
        client.run_scenario(SCENARIO, seed=SEED, months=MONTHS)
    docs = plan.log_docs()
    assert len(docs) == plan.injected
    assert 0 < plan.injected <= plan.config.max_faults
    for doc in docs:
        assert set(doc) == {"op", "direction", "kind", "detail"}
        assert doc["direction"] in ("recv", "send")
