"""E2 — slide 8: "200 nodes deployed in ~5 minutes" (scalability figure).

Regenerates the deployment-time-vs-node-count series.  The shape to hold:
time grows far slower than linearly (chain broadcast), and the 200-node
point lands in the minutes-not-hours band around the paper's ~5 minutes.
"""

from repro.faults import ServiceHealth
from repro.kadeploy import Kadeploy
from repro.nodes import MachinePark
from repro.testbed import build_grid5000
from repro.util import MINUTE, RngStreams, Simulator

from conftest import paper_row, print_table

_POOL_CLUSTERS = ("paravance", "grisou", "parasilo", "ecotype", "nova",
                  "econome", "graoully", "grele")


def _deploy(n_nodes: int, seed: int = 7) -> float:
    sim = Simulator()
    rngs = RngStreams(seed=seed)
    testbed = build_grid5000()
    machines = MachinePark.from_testbed(sim, testbed, rngs)
    kadeploy = Kadeploy(sim, machines, ServiceHealth(), rngs)
    pool = [n.uid for c in _POOL_CLUSTERS for n in testbed.cluster(c).nodes]
    holder = {}

    def driver():
        holder["r"] = yield sim.process(kadeploy.deploy(pool[:n_nodes],
                                                        "debian9-min"))

    sim.process(driver())
    sim.run()
    assert holder["r"].success_rate > 0.9
    return holder["r"].duration_s


def bench_e2_kadeploy_scale(benchmark):
    series = {n: _deploy(n) for n in (10, 25, 50, 100)}
    series[200] = benchmark.pedantic(lambda: _deploy(200), rounds=1, iterations=1)
    rows = [paper_row(f"deploy {n} nodes (minutes)",
                      "~5" if n == 200 else "-", f"{t / MINUTE:.1f}")
            for n, t in series.items()]
    print_table("E2: Kadeploy scalability (slide 8 figure)", rows)
    # shape: near-flat scaling (20x nodes, far less than 4x time)...
    assert series[200] < 4 * series[10]
    # ...and the headline point in the right band
    assert 3 * MINUTE < series[200] < 12 * MINUTE
