"""OAR resource database: node properties derived from the Reference API.

Slide 7: "*OAR database filled from Reference API*" — users then select
resources with property expressions (``gpu='YES'``, ``eth10g='Y'``...).

The database keeps its **own copy** of the properties.  Normally a sync
keeps it consistent with the Reference API, but the ``OAR_PROPERTY_DRIFT``
fault corrupts individual rows (exactly the kind of silent inconsistency
the *oarproperties* test family exists to catch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..faults.services import ServiceHealth
from ..testbed.description import NodeDescription
from ..testbed.refapi import ReferenceApi
from .request import PropExpr

__all__ = ["properties_from_description", "OarDatabase"]

#: Infiniband rate -> OAR `ib` property value.
_IB_NAMES = {20: "DDR", 40: "QDR", 56: "FDR"}


def properties_from_description(desc: NodeDescription) -> dict[str, Any]:
    """Render one node's description into its OAR property row."""
    return {
        "network_address": f"{desc.uid}.{desc.site}.grid5000.fr",
        "cluster": desc.cluster,
        "site": desc.site,
        "cpucore": desc.cpu.cores,
        "cpucount": desc.cpu_count,
        "corecount": desc.total_cores,
        "cpuarch": desc.cpu.microarchitecture,
        "memnode": desc.ram_gb * 1024,  # MB, like real OAR
        "gpu": "YES" if desc.gpu else "NO",
        "gpucount": desc.gpu.count if desc.gpu else 0,
        "eth10g": "Y" if desc.has_10g else "N",
        "ethnb": len(desc.nics),
        "ib": _IB_NAMES.get(desc.infiniband.rate_gbps, "NO") if desc.infiniband else "NO",
        "disktype": desc.disks[0].interface,
        "disknb": len(desc.disks),
        "deploy": "YES",
        "virtual": "ivt" if desc.cpu.vendor == "intel" else "amd-v",
    }


def _corrupt(props: dict[str, Any], drifted: Iterable[str]) -> dict[str, Any]:
    """Apply the OAR_PROPERTY_DRIFT corruption to a property row."""
    out = dict(props)
    for prop in drifted:
        if prop == "memnode":
            out["memnode"] = out["memnode"] // 2
        elif prop == "disktype":
            out["disktype"] = "UNKNOWN"
        elif prop == "eth10g":
            out["eth10g"] = "N" if out["eth10g"] == "Y" else "Y"
        else:
            out[prop] = None
    return out


@dataclass
class OarDatabase:
    """Property rows for every node, kept nominally in sync with the refapi."""

    refapi: ReferenceApi
    services: ServiceHealth
    _rows: dict[str, dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sync_from_refapi()

    def sync_from_refapi(self) -> None:
        """Re-derive every row from the current Reference API HEAD.

        Rows under the influence of an active OAR_PROPERTY_DRIFT fault stay
        corrupted even after a sync (the drift models a broken sync job /
        manual edit, which a plain re-run does not repair until the
        underlying fault is fixed).
        """
        self._rows = {}
        for node in self.refapi.testbed.iter_nodes():
            self._rows[node.uid] = properties_from_description(node)

    # -- queries -----------------------------------------------------------

    def node_uids(self) -> list[str]:
        return sorted(self._rows)

    def properties(self, uid: str) -> dict[str, Any]:
        """The row as OAR sees it (drift corruption applied)."""
        row = self._rows[uid]
        drifted = self.services.oar_property_drift.get(uid)
        return _corrupt(row, drifted) if drifted else dict(row)

    def clean_properties(self, uid: str) -> dict[str, Any]:
        """The row as it *should* be (refapi-derived, no corruption)."""
        return dict(self._rows[uid])

    def matching(self, expr: Optional[PropExpr],
                 candidates: Optional[Iterable[str]] = None) -> list[str]:
        """Node uids whose (possibly corrupted) properties satisfy ``expr``."""
        uids = sorted(candidates) if candidates is not None else self.node_uids()
        if expr is None:
            return uids
        return [uid for uid in uids if expr.evaluate(self.properties(uid))]
