"""Finding model shared by the detlint engine, baseline and CLI.

A finding is anchored to a *source line's content*, not just its number:
the :attr:`Finding.fingerprint` hashes ``rule | path | stripped line``, so
a baseline entry survives unrelated edits that shift line numbers and only
goes stale when the offending line itself changes (at which point the
author must either fix it or consciously re-baseline — the same contract
as the golden determinism hashes).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: The stripped source line the finding points at (fingerprint anchor).
    line_text: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Content-addressed id used for baseline matching."""
        raw = f"{self.rule}|{self.path}|{self.line_text}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """Human one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
