"""The OAR server: submission, scheduling, execution of jobs.

Scheduling model (a faithful small-scale OAR):

* **FCFS with conservative backfilling** — jobs are considered in
  submission order; each gets the earliest reservation that fits around
  all existing reservations.  Later small jobs therefore slide into holes
  in front of earlier wide jobs without delaying them.
* **Whole-cluster requests** (``nodes=ALL``) need every alive node of the
  matching set free simultaneously — on a loaded testbed this takes a long
  time, which is precisely the paper's scheduling problem (slide 16:
  "waiting for all nodes of a given cluster to be available can take
  weeks").
* **Immediate-or-cancel submissions** model the external test scheduler's
  contract (slide 17): if the job cannot start right now it is cancelled
  (and the Jenkins build is marked unstable by the caller).
* On every job completion, not-yet-started reservations are recomputed so
  early releases pull future jobs forward (as OAR's periodic scheduling
  pass does).

Node states follow OAR vocabulary: **Alive** (usable), **Absent**
(rebooting/off), **Suspected** (crashed).
"""

from __future__ import annotations

import bisect
from typing import Optional, Union

from ..nodes.machine import MachinePark, PowerState
from ..util.errors import SchedulingError
from ..util.events import Simulator
from .database import OarDatabase
from .gantt import Gantt
from .jobs import Job, JobState
from .request import ALL_NODES, JobRequest, parse_request

__all__ = ["OarServer"]

#: Tolerance for "starts now" in immediate-or-cancel submissions.
_IMMEDIATE_SLACK_S = 1.0

#: CPU load applied to allocated nodes (feeds the power model).
_BUSY_LOAD = 0.75
_IDLE_LOAD = 0.02


class OarServer:
    """Resource manager over one testbed."""

    def __init__(self, sim: Simulator, database: OarDatabase, machines: MachinePark):
        self.sim = sim
        self.db = database
        self.machines = machines
        self.gantt = Gantt(database.node_uids())
        self.jobs: dict[int, Job] = {}
        self._next_job_id = 1
        #: Jobs with no reservation yet, in submission order.
        self._waiting: list[Job] = []
        #: Jobs with a reservation that has not started yet.
        self._scheduled: list[Job] = []
        self._matching_cache: dict[str, list[str]] = {}
        #: Replan coalescing: many completions in a burst trigger a single
        #: rescheduling pass (like OAR's periodic scheduler), which keeps
        #: long campaigns tractable.
        self._replan_pending = False
        self.replan_batch_s = 300.0
        #: Nodes freed since the last replanning pass: only queued jobs that
        #: could use them are re-placed (plus a periodic full pass).
        self._dirty_nodes: set[str] = set()
        self.full_replan_period_s = 3600.0
        self._next_full_replan = 0.0
        #: Observation hooks (read-only subscribers, e.g. the service layer's
        #: GETS counters).  Called after the job's own event succeeds; they
        #: must not mutate scheduling state.
        self.on_job_start: list = []
        self.on_job_complete: list = []

    # -- node states -----------------------------------------------------------

    def node_state(self, uid: str) -> str:
        machine = self.machines[uid]
        if machine.state == PowerState.ON:
            return "Alive"
        if machine.state == PowerState.CRASHED:
            return "Suspected"
        return "Absent"

    def alive_nodes(self) -> list[str]:
        return [uid for uid in self.db.node_uids() if self.node_state(uid) == "Alive"]

    # -- submission ----------------------------------------------------------------

    def submit(
        self,
        request: Union[str, JobRequest],
        user: str = "user",
        auto_duration: Optional[float] = None,
        immediate: bool = False,
    ) -> Job:
        """Submit a job; returns it (state CANCELLED for failed immediates).

        ``auto_duration`` caps the actual run time (min with walltime);
        ``None`` means the job runs until :meth:`release` or walltime kill.
        """
        if isinstance(request, str):
            request = parse_request(request)
        job = Job(
            job_id=self._next_job_id,
            user=user,
            request=request,
            submitted_at=self.sim.now,
            immediate=immediate,
            auto_duration=auto_duration,
            started_event=self.sim.event(),
            done_event=self.sim.event(),
        )
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        if immediate:
            placement = self._find_assignment(job, self.sim.now)
            if placement is None or placement[0] > self.sim.now + _IMMEDIATE_SLACK_S:
                job.state = JobState.CANCELLED
                job.finished_at = self.sim.now
                job.done_event.succeed(job)
                return job
            start, assignment = placement
            self._reserve(job, start, assignment)
            return job
        self._waiting.append(job)
        self._schedule_pass()
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a waiting/scheduled job (running jobs use release())."""
        if job.state == JobState.WAITING:
            self._waiting.remove(job)
        elif job.state == JobState.SCHEDULED:
            self._scheduled.remove(job)
            self.gantt.release(job.assigned_nodes, job.job_id,
                               job.scheduled_start)
            self._dirty_nodes.update(job.assigned_nodes)
            self._request_replan()
            job.assignment = ()
        else:
            raise SchedulingError(f"cannot cancel job in state {job.state}")
        job.generation += 1
        job.state = JobState.CANCELLED
        job.finished_at = self.sim.now
        job.done_event.succeed(job)

    def release(self, job: Job) -> None:
        """End a running job now (normal completion)."""
        if job.state != JobState.RUNNING:
            raise SchedulingError(f"cannot release job in state {job.state}")
        self._finish(job, JobState.TERMINATED)

    # -- scheduling ------------------------------------------------------------------

    def _matching(self, part_expr) -> list[str]:
        """Cached property-filter evaluation (expressions repeat heavily)."""
        key = str(part_expr)
        uids = self._matching_cache.get(key)
        if uids is None:
            uids = self.db.matching(part_expr)
            self._matching_cache[key] = uids
        return uids

    def _matching_set(self, part_expr) -> frozenset:
        key = "set:" + str(part_expr)
        cached = self._matching_cache.get(key)
        if cached is None:
            cached = frozenset(self._matching(part_expr))
            self._matching_cache[key] = cached
        return cached  # type: ignore[return-value]

    def invalidate_matching_cache(self) -> None:
        """Call after the OAR database rows change (sync or drift)."""
        self._matching_cache.clear()

    def _find_assignment(
        self, job: Job, after: float,
        intervals_cache: Optional[dict] = None,
        alive: Optional[frozenset] = None,
    ) -> Optional[tuple[float, tuple[tuple[str, ...], ...]]]:
        """Earliest (start, per-part node sets) satisfying the request.

        ``intervals_cache``/``alive`` let a scheduling pass share the
        free-interval computation and the park's alive-node set across
        every job it places at one instant (see :meth:`_schedule_pass`);
        one-off callers omit them and pay the per-call computation.
        """
        walltime = job.walltime_s
        part_candidates: list[list[str]] = []
        for part in job.request.parts:
            if alive is not None:
                candidates = [u for u in self._matching(part.expr)
                              if u in alive]
            else:
                candidates = [u for u in self._matching(part.expr)
                              if self.node_state(u) == "Alive"]
            if not candidates:
                return None
            needed = len(candidates) if part.count == ALL_NODES else part.count
            if needed > len(candidates):
                return None
            part_candidates.append(candidates)
        if len(job.request.parts) == 1:
            # Fast path (the overwhelmingly common shape): interval sweep.
            part, candidates = job.request.parts[0], part_candidates[0]
            needed = len(candidates) if part.count == ALL_NODES else part.count
            start = self.gantt.earliest_start(candidates, after, walltime,
                                              needed, intervals_cache)
            if start is None:
                return None
            free = self.gantt.free_nodes(candidates, start, start + walltime)
            chosen = free if part.count == ALL_NODES else free[:needed]
            return start, (tuple(chosen),)
        all_candidates = sorted({u for c in part_candidates for u in c})
        for start in self.gantt.candidate_starts(all_candidates, after):
            assignment: list[tuple[str, ...]] = []
            taken: set[str] = set()
            feasible = True
            for part, candidates in zip(job.request.parts, part_candidates):
                free = [u for u in candidates
                        if u not in taken and self.gantt.is_free(u, start, start + walltime)]
                needed = len(candidates) if part.count == ALL_NODES else part.count
                if part.count == ALL_NODES:
                    # ALL semantics: every alive matching node, simultaneously.
                    if len(free) < len([u for u in candidates if u not in taken]):
                        feasible = False
                        break
                    chosen = free
                elif len(free) < needed:
                    feasible = False
                    break
                else:
                    chosen = free[:needed]
                assignment.append(tuple(chosen))
                taken.update(chosen)
            if feasible:
                return start, tuple(assignment)
        return None

    def _reserve(self, job: Job, start: float,
                 assignment: tuple[tuple[str, ...], ...]) -> None:
        nodes = [uid for part in assignment for uid in part]
        self.gantt.reserve(nodes, start, start + job.walltime_s, job.job_id)
        job.assignment = assignment
        job.scheduled_start = start
        job.state = JobState.SCHEDULED
        self._scheduled.append(job)
        generation = job.generation
        self.sim.call_at(start, self._try_start, job, generation)

    def _schedule_pass(self) -> None:
        """Give every waiting job the earliest reservation that fits.

        The whole pass runs at one instant, so the alive-node set and each
        node's free-interval list are computed once and shared across the
        queue; only the timelines a reservation actually touches are
        recomputed for later jobs.  Before this batching, a deep queue
        rescanned every identical timeline once per waiting job.
        """
        still_waiting: list[Job] = []
        now = self.sim.now
        alive = frozenset(self.alive_nodes())
        intervals_cache: dict[str, list] = {}
        for job in self._waiting:
            placement = self._find_assignment(job, now, intervals_cache, alive)
            if placement is None:
                still_waiting.append(job)  # no alive matching nodes right now
                continue
            self._reserve(job, *placement)
            for part in placement[1]:
                for uid in part:
                    intervals_cache.pop(uid, None)
        self._waiting = still_waiting

    def _replan_future_jobs(self, touching: Optional[set[str]] = None) -> None:
        """Tear down not-yet-started reservations and reschedule (pull
        forward after an early release or node repair).

        With ``touching``, only jobs whose candidate node set intersects it
        are replanned — the cheap incremental pass between full passes.
        """
        if touching is not None:
            replanned = [
                j for j in self._scheduled
                if any(touching & self._matching_set(p.expr)
                       for p in j.request.parts)
            ]
            if not replanned:
                return
            replanned_set = set(replanned)
            self._scheduled = [j for j in self._scheduled
                               if j not in replanned_set]
        else:
            replanned = self._scheduled
            self._scheduled = []
        for job in replanned:
            self.gantt.release(job.assigned_nodes, job.job_id,
                               job.scheduled_start)
            job.assignment = ()
            job.scheduled_start = None
            job.state = JobState.WAITING
            job.generation += 1  # invalidate the pending _try_start timer
        # Keep global FCFS order across both pools.
        self._waiting = sorted(self._waiting + replanned, key=lambda j: j.job_id)
        self._schedule_pass()

    # -- execution -----------------------------------------------------------------

    def _try_start(self, job: Job, generation: int) -> None:
        if job.generation != generation or job.state != JobState.SCHEDULED:
            return  # stale timer: the job was replanned or cancelled
        self._scheduled.remove(job)
        dead = [u for u in job.assigned_nodes if self.node_state(u) != "Alive"]
        if dead:
            # A reserved node died in the meantime: back to the queue.
            self.gantt.release(job.assigned_nodes, job.job_id,
                               job.scheduled_start)
            job.assignment = ()
            job.scheduled_start = None
            job.generation += 1
            if job.immediate:
                job.state = JobState.CANCELLED
                job.finished_at = self.sim.now
                job.done_event.succeed(job)
            else:
                job.state = JobState.WAITING
                # Re-queue in job-id order: appending to the tail would rank
                # this job behind later-submitted waiters until the next
                # replan re-sort, breaking conservative backfilling's FCFS
                # fairness.  _waiting is kept sorted by job_id (submission
                # order), so a bisect insert preserves the invariant.
                ids = [j.job_id for j in self._waiting]
                self._waiting.insert(bisect.bisect(ids, job.job_id), job)
                self._schedule_pass()
            return
        job.state = JobState.RUNNING
        job.started_at = self.sim.now
        for uid in job.assigned_nodes:
            self.machines[uid].cpu_load = _BUSY_LOAD
        job.started_event.succeed(job)
        for hook in self.on_job_start:
            hook(job)
        generation = job.generation
        if job.auto_duration is not None:
            run_for = min(job.auto_duration, job.walltime_s)
            self.sim.call_in(run_for, self._auto_finish, job, generation)
        else:
            self.sim.call_in(job.walltime_s, self._walltime_kill, job, generation)

    def _auto_finish(self, job: Job, generation: int) -> None:
        if job.generation != generation or job.state != JobState.RUNNING:
            return
        killed = job.auto_duration is not None and job.auto_duration > job.walltime_s
        job.killed_by_walltime = killed
        self._finish(job, JobState.TERMINATED)

    def _walltime_kill(self, job: Job, generation: int) -> None:
        if job.generation != generation or job.state != JobState.RUNNING:
            return
        job.killed_by_walltime = True
        self._finish(job, JobState.ERROR)

    def _finish(self, job: Job, state: JobState) -> None:
        job.generation += 1
        job.state = state
        job.finished_at = self.sim.now
        for uid in job.assigned_nodes:
            self.machines[uid].cpu_load = _IDLE_LOAD
        self.gantt.truncate(job.assigned_nodes, job.job_id, self.sim.now)
        self._dirty_nodes.update(job.assigned_nodes)
        job.done_event.succeed(job)
        for hook in self.on_job_complete:
            hook(job)
        self._request_replan()

    def _request_replan(self) -> None:
        if not self._replan_pending:
            self._replan_pending = True
            self.sim.call_in(self.replan_batch_s, self._do_replan)

    def _do_replan(self) -> None:
        self._replan_pending = False
        if self.sim.now >= self._next_full_replan:
            self._next_full_replan = self.sim.now + self.full_replan_period_s
            self._replan_future_jobs()
        else:
            self._replan_future_jobs(touching=self._dirty_nodes)
        self._dirty_nodes = set()

    # -- introspection ----------------------------------------------------------------

    def waiting_count(self) -> int:
        return len(self._waiting) + len(self._scheduled)

    def running_jobs(self) -> list[Job]:
        return [j for j in self.jobs.values() if j.state == JobState.RUNNING]

    def utilization(self) -> float:
        """Fraction of alive nodes currently allocated."""
        alive = self.alive_nodes()
        if not alive:
            return 0.0
        busy = {u for j in self.running_jobs() for u in j.assigned_nodes}
        return len(busy & set(alive)) / len(alive)

    def housekeeping(self, keep_horizon_s: float = 86_400.0) -> None:
        """Purge ancient Gantt entries (call periodically on long campaigns)."""
        self.gantt.purge_before(self.sim.now - keep_horizon_s)
