"""Tests for the fact-acquisition emulators."""

import pytest

from repro.nodes import (
    MachinePark,
    acquire_all,
    dmidecode,
    ethtool,
    hdparm,
    ibstat,
    ohai,
    smartctl,
)
from repro.util import RngStreams, Simulator


@pytest.fixture()
def park(fresh_testbed):
    sim = Simulator()
    return MachinePark.from_testbed(sim, fresh_testbed, RngStreams(seed=2))


def test_ohai_reports_cpu_and_memory(park):
    facts = ohai(park["paravance-1"])
    assert facts["cpu"]["real"] == 2
    assert facts["cpu"]["cores"] == 16
    assert facts["cpu"]["total"] == 16  # HT disabled
    assert facts["memory"]["total_kb"] == 128 * 1024 * 1024


def test_ohai_sees_ht_flip(park):
    node = park["paravance-1"]
    node.actual.bios.hyperthreading = True
    assert ohai(node)["cpu"]["total"] == 32


def test_ohai_sees_missing_ram(park):
    node = park["paravance-1"]
    node.actual.ram_gb = 64  # broken DIMM bank
    assert ohai(node)["memory"]["total_kb"] == 64 * 1024 * 1024


def test_ohai_block_devices(park):
    facts = ohai(park["grimoire-1"])
    assert set(facts["block_device"]) == {"sda", "sdb", "sdc", "sdd", "sde"}
    assert facts["block_device"]["sdd"]["rotational"] is False  # SSD


def test_ohai_hides_dead_disk(park):
    node = park["grimoire-1"]
    node.find_disk("sdb").healthy = False
    assert "sdb" not in ohai(node)["block_device"]


def test_ethtool_speed_format(park):
    facts = ethtool(park["grisou-1"], "eth0")
    assert facts["speed"] == "10000Mb/s"
    assert facts["link_detected"] == "yes"
    assert facts["driver"] == "i40e"


def test_ethtool_downgraded_link(park):
    node = park["grisou-1"]
    node.find_nic("eth0").rate_gbps = 1.0  # negotiated down (bad cable)
    assert ethtool(node, "eth0")["speed"] == "1000Mb/s"


def test_ethtool_link_down(park):
    node = park["grisou-1"]
    node.find_nic("eth0").link_up = False
    facts = ethtool(node, "eth0")
    assert facts["speed"] == "Unknown!"
    assert facts["link_detected"] == "no"


def test_dmidecode_serial_and_bios(park):
    node = park["chetemi-1"]
    facts = dmidecode(node)
    assert facts["system"]["serial_number"] == node.actual.serial
    assert facts["bios"]["version"] == node.actual.bios.version


def test_hdparm_write_cache_rendering(park):
    node = park["parasilo-1"]
    assert hdparm(node, "sda")["write_cache"] == "enabled"
    node.find_disk("sda").write_cache = False
    assert hdparm(node, "sda")["write_cache"] == "disabled"


def test_smartctl_health(park):
    node = park["parasilo-1"]
    assert smartctl(node, "sdb")["smart_status"] == "PASSED"
    node.find_disk("sdb").healthy = False
    assert smartctl(node, "sdb")["smart_status"] == "FAILED"


def test_ibstat_active(park):
    facts = ibstat(park["graphene-1"])
    assert facts["state"] == "Active"
    assert facts["rate_gbps"] == 20


def test_ibstat_ofed_down(park):
    node = park["graphene-1"]
    node.actual.infiniband.stack_ok = False
    assert ibstat(node)["state"] == "Down"


def test_ibstat_absent_on_non_ib_node(park):
    assert ibstat(park["azur-1"]) == {}


def test_acquire_all_structure(park):
    facts = acquire_all(park["graphene-1"])
    assert {"ohai", "dmidecode", "ethtool", "hdparm", "smartctl", "ibstat"} <= set(facts)
    assert "eth0" in facts["ethtool"]


def test_acquire_all_no_ibstat_key_without_hca(park):
    assert "ibstat" not in acquire_all(park["azur-1"])


def test_acquisition_is_pure_no_state_change(park):
    node = park["grisou-3"]
    before = node.actual.visible_logical_cpus()
    acquire_all(node)
    assert node.actual.visible_logical_cpus() == before
