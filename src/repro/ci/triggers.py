"""Time-based build triggers (Jenkins' built-in "cron on steroids").

Slide 16 notes that Jenkins' basic time-based scheduling is *not
sufficient* for resource-hungry tests — that is what the external
scheduler (:mod:`repro.scheduling`) is for — but periodic triggers remain
the right tool for cheap software-centric checks, and they serve as the
baseline in the scheduling ablation benches.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..util.events import Simulator
from .server import JenkinsServer

__all__ = ["PeriodicTrigger"]


class PeriodicTrigger:
    """Trigger a job every ``period_s`` seconds."""

    def __init__(self, sim: Simulator, server: JenkinsServer, job_name: str,
                 period_s: float,
                 parameters_fn: Optional[Callable[[], dict[str, Any]]] = None,
                 initial_delay_s: float = 0.0):
        self.sim = sim
        self.server = server
        self.job_name = job_name
        self.period_s = period_s
        self.parameters_fn = parameters_fn
        self.initial_delay_s = initial_delay_s
        self.fired = 0
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.sim.process(self._run(), name=f"cron-{self.job_name}")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        if self.initial_delay_s:
            yield self.sim.timeout(self.initial_delay_s)
        while self._running:
            params = self.parameters_fn() if self.parameters_fn else {}
            self.server.trigger(self.job_name, parameters=params, cause="timer")
            self.fired += 1
            yield self.sim.timeout(self.period_s)
