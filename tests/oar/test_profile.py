"""Differential tests: ResourceProfile vs the linear timeline oracles.

The profile is a derived index; every answer it gives must be
*byte-identical* (same floats, same node choices) to the pre-profile
linear algorithms, which survive as ``Gantt._linear_earliest_start`` /
``NodeTimeline.free_intervals`` / ``Gantt.free_nodes`` exactly so these
tests have an oracle.  Random reserve/release/truncate/grow/shrink-shaped
sequences drive both representations through the public mutators, then
every query is cross-checked, including after a forced full rebuild.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.oar.gantt import Gantt, ResourceProfile
from repro.util.errors import SchedulingError

NODES = ["n0", "n1", "n2", "n3", "n4"]

# Awkward floats on purpose: the profile's eligibility bisect must
# reproduce the sweep's `end - duration >= t` IEEE arithmetic exactly.
TIMES = st.sampled_from(
    [0.0, 0.1, 0.3, 1.0, 2.5, 3.0, 7.7, 10.0, 16.1, 30.0, 100.0 / 3.0, 59.9]
)
DURATIONS = st.sampled_from([0.1, 0.3, 1.0, 2.0, 7.7, 10.0, 33.3])

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("reserve"),
                  st.sets(st.sampled_from(NODES), min_size=1),
                  TIMES, DURATIONS, st.integers(1, 6)),
        st.tuples(st.just("release"), st.integers(1, 6), st.booleans()),
        st.tuples(st.just("truncate"), st.integers(1, 6), TIMES),
        st.tuples(st.just("purge"), TIMES),
    ),
    max_size=14,
)


def _apply_ops(ops):
    """Drive a Gantt through the public mutators; returns it."""
    g = Gantt(NODES)
    starts = {}  # job_id -> reservation start (the scheduler's hint)
    for op in ops:
        if op[0] == "reserve":
            _, uids, start, dur, job_id = op
            if job_id in starts:
                continue  # one reservation interval per job, like the server
            try:
                g.reserve(sorted(uids), start, start + dur, job_id)
            except SchedulingError:
                continue  # overlap: rolled back, both views unchanged
            starts[job_id] = start
        elif op[0] == "release":
            _, job_id, with_hint = op
            g.release(NODES, job_id, starts.get(job_id) if with_hint else None)
            starts.pop(job_id, None)
        elif op[0] == "truncate":
            _, job_id, t = op
            g.truncate(NODES, job_id, t)
        else:
            g.purge_before(op[1])
    return g


def _profile_free_intervals(prof: ResourceProfile, uid: str, after: float):
    """Reconstruct one node's free windows from the step function."""
    b = 1 << prof.bit(uid)
    out = []
    open_at = None
    for t, mask in zip(prof._times, prof._masks):
        if mask & b:
            if open_at is None:
                open_at = t
        elif open_at is not None:
            if t > after:
                out.append((max(open_at, after), t))
            open_at = None
    assert open_at is not None, "final step must be all-free"
    out.append((max(open_at, after), math.inf))
    return out


def _check_invariants(prof: ResourceProfile):
    times, masks = prof._times, prof._masks
    assert times[0] == float("-inf")
    assert all(a < b for a, b in zip(times, times[1:])), "times strictly increase"
    assert all(a != b for a, b in zip(masks, masks[1:])), "steps are coalesced"
    assert masks[-1] == prof.full_mask, "the unbounded tail is all-free"
    assert all(0 <= m <= prof.full_mask for m in masks)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS, after=TIMES, duration=DURATIONS,
       k=st.integers(1, len(NODES)),
       subset=st.sets(st.sampled_from(NODES), min_size=1))
def test_profile_matches_linear_oracles(ops, after, duration, k, subset):
    g = _apply_ops(ops)
    uids = sorted(subset)
    _check_invariants(g.profile)

    # earliest_start: profile walk vs the retired interval sweep.
    got = g.earliest_start(uids, after, duration, k)
    want = g._linear_earliest_start(list(uids), after, duration, k) \
        if 1 <= k <= len(uids) else None
    assert got == want

    # free-set probe: mask intersection vs per-node is_free, same order.
    fmask = g.profile_free_mask(g.mask_for(uids), after, after + duration)
    assert g.uids_from_mask(fmask) == g.free_nodes(uids, after, after + duration)

    # per-node free windows: step function vs NodeTimeline.free_intervals.
    for uid in uids:
        assert _profile_free_intervals(g.profile, uid, after) == \
            g._timelines[uid].free_intervals(after)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_incremental_profile_equals_rebuild(ops):
    """The incrementally maintained step function is exactly the one a
    from-scratch rebuild produces (same boundaries, same masks)."""
    g = _apply_ops(ops)
    inc = (list(g.profile._times), list(g.profile._masks))
    g._profile_dirty = True
    g._rebuild_profile()
    assert (g._profile._times, g._profile._masks) == inc


@settings(max_examples=150, deadline=None)
@given(ops=_OPS, after=TIMES, duration=DURATIONS, k=st.integers(1, 4))
def test_profile_survives_direct_timeline_mutation(ops, after, duration, k):
    """timeline() hands out a mutable view and must stale-mark the index."""
    g = _apply_ops(ops)
    tl = g.timeline("n2")
    assert g._profile_dirty
    tl.purge_before(math.inf)  # wipe n2 behind the profile's back
    got = g.earliest_start(NODES, after, duration, k)
    assert got == g._linear_earliest_start(list(NODES), after, duration, k)


def test_failed_reserve_keeps_profile_consistent():
    g = Gantt(NODES)
    g.reserve(["n1"], 10.0, 20.0, 1)
    with pytest.raises(SchedulingError):
        g.reserve(["n0", "n1", "n2"], 5.0, 15.0, 2)  # n1 overlaps: rollback
    # Rollback left the timelines as before; the profile must agree.
    assert g.free_nodes(NODES, 5.0, 15.0) == ["n0", "n2", "n3", "n4"]
    fmask = g.profile_free_mask(g.full_mask, 5.0, 15.0)
    assert g.uids_from_mask(fmask) == ["n0", "n2", "n3", "n4"]
    inc = (list(g.profile._times), list(g.profile._masks))
    g._profile_dirty = True
    assert (g.profile._times, g.profile._masks) == inc


def test_truncate_then_hinted_release_frees_exactly_once():
    """A truncated reservation released with the original start hint must
    not double-free the tail in the profile (the hint bisect still finds
    the entry: truncation keeps the start)."""
    g = Gantt(NODES)
    g.reserve(["n0", "n1"], 10.0, 50.0, 1)
    g.truncate(["n0", "n1"], 1, 30.0)       # early completion at t=30
    g.release(["n0", "n1"], 1, start=10.0)  # then teardown with stale-ish hint
    inc = (list(g.profile._times), list(g.profile._masks))
    g._profile_dirty = True
    assert (g.profile._times, g.profile._masks) == inc
    assert g.free_nodes(NODES, 0.0, 100.0) == NODES


def test_truncate_at_start_then_hinted_release_is_noop():
    """Truncating at/before the start drops the entry; a later hinted
    release must remove nothing and leave the profile consistent."""
    g = Gantt(NODES)
    g.reserve(["n3"], 10.0, 50.0, 7)
    g.truncate(["n3"], 7, 10.0)             # dropped entirely
    assert len(g._timelines["n3"]) == 0
    g.release(["n3"], 7, start=10.0)        # stale hint: nothing to remove
    assert g.free_nodes(NODES, 0.0, 100.0) == NODES
    inc = (list(g.profile._times), list(g.profile._masks))
    g._profile_dirty = True
    assert (g.profile._times, g.profile._masks) == inc
