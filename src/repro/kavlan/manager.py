"""KaVLAN: network isolation through VLAN reconfiguration.

Slide 8 describes four network configurations:

* **default VLAN** — routing between Grid'5000 sites (every node reachable);
* **local, isolated VLAN** — only accessible through an SSH gateway
  connected to both networks;
* **routed VLAN** — separate level-2 network, reachable through routing;
* **global VLAN** — all nodes connected at level 2 across sites, no routing.

The manager allocates VLANs from per-site pools, moves nodes between them
by reconfiguring switch ports ("almost no overhead" — a few seconds per
switch), and answers reachability queries that the *kavlan* test family
verifies end to end.  A site under the ``KAVLAN_MISCONFIG`` fault applies
port changes that silently do not take effect: nodes remain on the default
VLAN, which breaks the isolation contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..faults.services import ServiceHealth
from ..testbed.topology import NetworkTopology
from ..util.errors import VlanError
from ..util.events import Simulator

__all__ = ["VlanType", "Vlan", "KavlanManager", "RECONFIG_S_PER_SWITCH"]

#: Switch reconfiguration time per involved switch ("almost no overhead").
RECONFIG_S_PER_SWITCH = 4.0

#: Per-site pool sizes (the real testbed has 3 local + 3 routed per site
#: and a handful of global VLANs).
_POOL = {"local": 3, "routed": 3, "global": 1}


class VlanType(enum.Enum):
    DEFAULT = "default"
    LOCAL = "local"
    ROUTED = "routed"
    GLOBAL = "global"


@dataclass(eq=False)
class Vlan:
    vlan_id: int
    type: VlanType
    site: str  # owning site ("" for the default VLAN)
    #: Nodes whose switch ports were *requested* to join this VLAN.
    requested: set[str] = field(default_factory=set)
    #: Nodes whose ports were *actually* reconfigured (≠ requested when the
    #: site's KaVLAN is misconfigured).
    applied: set[str] = field(default_factory=set)
    released: bool = False


class KavlanManager:
    """Allocate VLANs and reconfigure node ports."""

    def __init__(self, sim: Simulator, topology: NetworkTopology,
                 services: ServiceHealth, sites: list[str]):
        self.sim = sim
        self.topology = topology
        self.services = services
        self.default_vlan = Vlan(vlan_id=100, type=VlanType.DEFAULT, site="")
        self._vlans: list[Vlan] = [self.default_vlan]
        self._pools: dict[tuple[str, VlanType], int] = {}
        for site in sites:
            self._pools[(site, VlanType.LOCAL)] = _POOL["local"]
            self._pools[(site, VlanType.ROUTED)] = _POOL["routed"]
            self._pools[(site, VlanType.GLOBAL)] = _POOL["global"]
        self._next_id = 101
        #: node uid -> VLAN it is actually on (absent = default VLAN).
        self._membership: dict[str, Vlan] = {}

    # -- allocation -------------------------------------------------------------

    def allocate(self, type: VlanType, site: str) -> Vlan:
        if type == VlanType.DEFAULT:
            raise VlanError("the default VLAN is not allocatable")
        key = (site, type)
        if key not in self._pools:
            raise VlanError(f"unknown site: {site}")
        if self._pools[key] <= 0:
            raise VlanError(f"no {type.value} VLAN left on {site}")
        self._pools[key] -= 1
        vlan = Vlan(vlan_id=self._next_id, type=type, site=site)
        self._next_id += 1
        self._vlans.append(vlan)
        return vlan

    def release(self, vlan: Vlan):
        """Process generator: move members back to default and free the VLAN."""
        if vlan.type == VlanType.DEFAULT:
            raise VlanError("cannot release the default VLAN")
        if vlan.released:
            raise VlanError(f"vlan {vlan.vlan_id} already released")
        yield from self.set_nodes(vlan, [])
        vlan.released = True
        self._pools[(vlan.site, vlan.type)] += 1

    # -- reconfiguration ----------------------------------------------------------

    def set_nodes(self, vlan: Vlan, node_uids: list[str]):
        """Process generator: make ``node_uids`` the members of ``vlan``.

        Takes ``RECONFIG_S_PER_SWITCH`` per switch touched.  On a site with
        broken KaVLAN the commands are accepted but port changes are lost.
        """
        if vlan.released:
            raise VlanError(f"vlan {vlan.vlan_id} is released")
        target = set(node_uids)
        current = vlan.requested
        moved = (target - current) | (current - target)
        switches = {self.topology.switch_of(u) for u in moved}
        if switches:
            yield self.sim.timeout(RECONFIG_S_PER_SWITCH * len(switches))
        vlan.requested = target
        broken = self.services.kavlan_broken
        actually_applied = set()
        for uid in moved:
            site = self.topology.graph.nodes[uid]["site"]
            if site in broken:
                continue  # silently lost: node stays where it was
            if uid in target:
                self._membership[uid] = vlan
                actually_applied.add(uid)
            elif self._membership.get(uid) is vlan:
                del self._membership[uid]
        vlan.applied = {u for u in target
                        if self._membership.get(u) is vlan}
        return vlan.applied

    def vlan_of(self, node_uid: str) -> Vlan:
        return self._membership.get(node_uid, self.default_vlan)

    # -- reachability ----------------------------------------------------------------

    def reachable(self, a: str, b: str, via_gateway: bool = False) -> bool:
        """Can ``a`` open a TCP connection to ``b``?

        Default<->default and routed<->anything-routable go through; a local
        VLAN is sealed except through its SSH gateway (``via_gateway``).
        """
        if a == b:
            return True
        va, vb = self.vlan_of(a), self.vlan_of(b)
        if va is vb:
            return True  # same L2 segment (incl. both on default)
        for near, far in ((va, vb), (vb, va)):
            if near.type == VlanType.LOCAL or far.type == VlanType.LOCAL:
                # local VLANs: no routing in or out, gateway only
                return via_gateway
        if VlanType.GLOBAL in (va.type, vb.type):
            # a global VLAN is its own L2 world; no routing to other VLANs
            return False
        # default <-> routed and routed <-> routed are routed
        return True

    def isolation_violations(self, vlan: Vlan, probes: list[str]) -> list[tuple[str, str]]:
        """Pairs (member, probe) that can talk although they should not.

        ``probes`` are nodes outside the VLAN; for a LOCAL vlan any
        connectivity without the gateway is a violation.
        """
        if vlan.type != VlanType.LOCAL:
            raise VlanError("isolation check is defined for local VLANs")
        violations = []
        for member in sorted(vlan.requested):
            for probe in probes:
                if probe in vlan.requested:
                    continue
                if self.reachable(member, probe, via_gateway=False):
                    violations.append((member, probe))
        return violations
