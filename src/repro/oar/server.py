"""The OAR server: submission, scheduling, execution of jobs.

Scheduling model (a faithful small-scale OAR):

* **FCFS with conservative backfilling** — jobs are considered in
  submission order; each gets the earliest reservation that fits around
  all existing reservations.  Later small jobs therefore slide into holes
  in front of earlier wide jobs without delaying them.
* **Whole-cluster requests** (``nodes=ALL``) need every alive node of the
  matching set free simultaneously — on a loaded testbed this takes a long
  time, which is precisely the paper's scheduling problem (slide 16:
  "waiting for all nodes of a given cluster to be available can take
  weeks").
* **Immediate-or-cancel submissions** model the external test scheduler's
  contract (slide 17): if the job cannot start right now it is cancelled
  (and the Jenkins build is marked unstable by the caller).
* On every job completion, not-yet-started reservations are recomputed so
  early releases pull future jobs forward (as OAR's periodic scheduling
  pass does).

Node states follow OAR vocabulary: **Alive** (usable), **Absent**
(rebooting/off), **Suspected** (crashed).
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence, Union

_NEG_INF = float("-inf")

from ..nodes.machine import MachinePark, PowerState
from ..util.errors import SchedulingError
from ..util.events import Simulator
from .database import OarDatabase
from .gantt import Gantt
from .jobs import Job, JobState
from .request import ALL_NODES, JobRequest, parse_request

__all__ = ["OarServer"]

#: Tolerance for "starts now" in immediate-or-cancel submissions.
_IMMEDIATE_SLACK_S = 1.0

#: CPU load applied to allocated nodes (feeds the power model).
_BUSY_LOAD = 0.75
_IDLE_LOAD = 0.02


class _PassContext:
    """Per-instant scheduling context shared by every placement attempt in
    one pass: the park's alive-node bitmask (dead nodes cleared) and the
    per-expression candidate masks.  Before the profile refactor each pass
    carried a ``frozenset`` of alive uids plus a free-interval cache; one
    integer mask per expression replaces both."""

    __slots__ = ("_server", "alive_mask", "_cand")

    def __init__(self, server: "OarServer") -> None:
        self._server = server
        gantt = server.gantt
        dead = 0
        for uid in server.db.node_uids():
            if server.node_state(uid) != "Alive":
                dead |= 1 << gantt.bit(uid)
        self.alive_mask = gantt.full_mask & ~dead
        self._cand: dict[str, int] = {}

    def candidates_mask(self, part_expr) -> int:
        """Alive nodes matching the expression, as a bitmask."""
        key = str(part_expr)
        mask = self._cand.get(key)
        if mask is None:
            mask = self._server.matching_mask(part_expr) & self.alive_mask
            self._cand[key] = mask
        return mask


class OarServer:
    """Resource manager over one testbed."""

    def __init__(self, sim: Simulator, database: OarDatabase, machines: MachinePark):
        self.sim = sim
        self.db = database
        self.machines = machines
        self.gantt = Gantt(database.node_uids())
        self.jobs: dict[int, Job] = {}
        self._next_job_id = 1
        #: Jobs with no reservation yet, in submission order.
        self._waiting: list[Job] = []
        #: Jobs with a reservation that has not started yet.
        self._scheduled: list[Job] = []
        self._matching_cache: dict[str, list[str]] = {}
        #: Replan coalescing: many completions in a burst trigger a single
        #: rescheduling pass (like OAR's periodic scheduler), which keeps
        #: long campaigns tractable.
        self._replan_pending = False
        self.replan_batch_s = 300.0
        #: Regions freed since the last replanning pass, uid -> (hole_start,
        #: hole_end) of the surrounding free window: only queued jobs the
        #: freed regions could actually pull forward are re-placed between
        #: periodic full passes.
        self._dirty_windows: dict[str, tuple[float, float]] = {}
        #: "windows" also requires a freed hole that fits the job *earlier*
        #: than its current reservation; "nodes" is the PR-7 filter (any
        #: freed node in the job's matching set triggers a replan).
        #: "nodes" stays the default because it is golden-pinned: tearing
        #: down strictly more jobs makes the re-placement pass regroup
        #: node choices, so "windows" produces equally valid but not
        #: byte-identical plans (verified: all four determinism goldens
        #: drift under "windows", none under "nodes").  Scale runs opt in
        #: to "windows"; `replan_check` asserts it never misses a
        #: pull-forward.
        self.replan_filter = "nodes"
        #: Cross-check mode for the incremental filter: after every
        #: replanning pass assert no still-scheduled job could start
        #: earlier than its reservation (see :meth:`_assert_plans_tight`).
        self.replan_check = False
        self.full_replan_period_s = 3600.0
        self._next_full_replan = 0.0
        #: Observation hooks (read-only subscribers, e.g. the service layer's
        #: GETS counters).  Called after the job's own event succeeds; they
        #: must not mutate scheduling state.
        self.on_job_start: list = []
        self.on_job_complete: list = []
        #: Grow/shrink events executed by malleable policies (campaign
        #: reports surface these per strategy).
        self.grow_events = 0
        self.shrink_events = 0
        #: Allocated node-seconds integral: accrued at every allocation
        #: change, so time-averaged utilization is exact, not sampled.
        self._alloc_count = 0
        self._alloc_integral = 0.0
        self._alloc_since = 0.0

    # -- node states -----------------------------------------------------------

    def node_state(self, uid: str) -> str:
        machine = self.machines[uid]
        if machine.state == PowerState.ON:
            return "Alive"
        if machine.state == PowerState.CRASHED:
            return "Suspected"
        return "Absent"

    def alive_nodes(self) -> list[str]:
        return [uid for uid in self.db.node_uids() if self.node_state(uid) == "Alive"]

    # -- submission ----------------------------------------------------------------

    def submit(
        self,
        request: Union[str, JobRequest],
        user: str = "user",
        auto_duration: Optional[float] = None,
        immediate: bool = False,
    ) -> Job:
        """Submit a job; returns it (state CANCELLED for failed immediates).

        ``auto_duration`` caps the actual run time (min with walltime);
        ``None`` means the job runs until :meth:`release` or walltime kill.
        """
        if isinstance(request, str):
            request = parse_request(request)
        job = Job(
            job_id=self._next_job_id,
            user=user,
            request=request,
            submitted_at=self.sim.now,
            immediate=immediate,
            auto_duration=auto_duration,
            started_event=self.sim.event(),
            done_event=self.sim.event(),
        )
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        if immediate:
            placement = self._find_assignment(job, self.sim.now)
            if placement is None or placement[0] > self.sim.now + _IMMEDIATE_SLACK_S:
                job.state = JobState.CANCELLED
                job.finished_at = self.sim.now
                job.done_event.succeed(job)
                return job
            start, assignment = placement
            self._reserve(job, start, assignment)
            return job
        self._waiting.append(job)
        self._schedule_pass()
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a waiting/scheduled job (running jobs use release())."""
        if job.state == JobState.WAITING:
            self._waiting.remove(job)
        elif job.state == JobState.SCHEDULED:
            self._scheduled.remove(job)
            scheduled_start = job.scheduled_start
            self.gantt.release(job.assigned_nodes, job.job_id,
                               scheduled_start)
            self._mark_freed(job.assigned_nodes, scheduled_start)
            self._request_replan()
            job.assignment = ()
        else:
            raise SchedulingError(f"cannot cancel job in state {job.state}")
        job.generation += 1
        job.state = JobState.CANCELLED
        job.finished_at = self.sim.now
        job.done_event.succeed(job)

    def release(self, job: Job) -> None:
        """End a running job now (normal completion)."""
        if job.state != JobState.RUNNING:
            raise SchedulingError(f"cannot release job in state {job.state}")
        self._finish(job, JobState.TERMINATED)

    # -- scheduling ------------------------------------------------------------------

    def _matching(self, part_expr) -> list[str]:
        """Cached property-filter evaluation (expressions repeat heavily)."""
        key = str(part_expr)
        uids = self._matching_cache.get(key)
        if uids is None:
            uids = self.db.matching(part_expr)
            self._matching_cache[key] = uids
        return uids

    def _matching_set(self, part_expr) -> frozenset:
        key = "set:" + str(part_expr)
        cached = self._matching_cache.get(key)
        if cached is None:
            cached = frozenset(self._matching(part_expr))
            self._matching_cache[key] = cached
        return cached  # type: ignore[return-value]

    def matching_mask(self, part_expr) -> int:
        """Cached bitmask of the nodes matching an expression (bit order ==
        database order, see :class:`~repro.oar.gantt.ResourceProfile`)."""
        key = "mask:" + str(part_expr)
        cached = self._matching_cache.get(key)
        if cached is None:
            cached = self.gantt.mask_for(self._matching(part_expr))
            self._matching_cache[key] = cached  # type: ignore[assignment]
        return cached  # type: ignore[return-value]

    def invalidate_matching_cache(self) -> None:
        """Call after the OAR database rows change (sync or drift)."""
        self._matching_cache.clear()

    def _find_assignment(
        self, job: Job, after: float,
        ctx: Optional[_PassContext] = None,
    ) -> Optional[tuple[float, tuple[tuple[str, ...], ...]]]:
        """Earliest (start, per-part node sets) satisfying the request.

        ``ctx`` (a :class:`_PassContext`) shares the alive-node mask and
        the per-expression candidate masks across every job placed at one
        instant (see :meth:`_schedule_pass`); one-off callers omit it and
        pay the O(nodes) context build.  Placement runs on the Gantt's
        availability profile; candidate masks never change while the pass
        reserves nodes (freeness lives in the profile, which the
        reservations update), so nothing needs per-job invalidation.
        """
        if not self.gantt.use_profile:
            return self._linear_find_assignment(job, after)
        if ctx is None:
            ctx = _PassContext(self)
        walltime = job.walltime_s
        parts = job.request.parts
        if len(parts) == 1:
            # Fast path (the overwhelmingly common shape): profile query.
            part = parts[0]
            cmask = ctx.candidates_mask(part.expr)
            if cmask == 0:
                return None
            avail = cmask.bit_count()
            needed = avail if part.count == ALL_NODES else part.count
            if needed > avail:
                return None
            if needed == avail:
                # Whole-set placement (ALL, or a count that equals every
                # alive candidate): the golden-pinned fixpoint walk.
                candidates = self.gantt.uids_from_mask(cmask)
                start = self.gantt.earliest_start(candidates, after,
                                                  walltime, needed)
                if start is None:
                    return None
                free = self.gantt.free_nodes(candidates, start,
                                             start + walltime)
                chosen = free if part.count == ALL_NODES else free[:needed]
                return start, (tuple(chosen),)
            start = self.gantt.profile_earliest(cmask, after, walltime, needed)
            if start is None:
                return None
            # Lowest free bits == first free candidates in database order —
            # identical to filtering the candidate list through is_free.
            chosen = self.gantt.free_uids(cmask, start, start + walltime,
                                          needed)
            return start, (tuple(chosen),)
        part_candidates: list[list[str]] = []
        for part in parts:
            cmask = ctx.candidates_mask(part.expr)
            if cmask == 0:
                return None
            candidates = self.gantt.uids_from_mask(cmask)
            needed = len(candidates) if part.count == ALL_NODES else part.count
            if needed > len(candidates):
                return None
            part_candidates.append(candidates)
        return self._multi_part_assignment(job, after, part_candidates)

    def _linear_find_assignment(
        self, job: Job, after: float,
        intervals_cache: Optional[dict] = None,
        alive: Optional[frozenset] = None,
    ) -> Optional[tuple[float, tuple[tuple[str, ...], ...]]]:
        """The pre-profile placement (PR 5), kept verbatim: the A/B
        baseline for ``bench_k2_scale`` and the `use_profile = False`
        escape hatch.

        ``intervals_cache``/``alive`` let a scheduling pass share the
        free-interval computation and the park's alive-node set across
        every job it places at one instant (see :meth:`_schedule_pass`);
        one-off callers omit them and pay the per-call computation.
        """
        walltime = job.walltime_s
        part_candidates: list[list[str]] = []
        for part in job.request.parts:
            if alive is not None:
                candidates = [u for u in self._matching(part.expr)
                              if u in alive]
            else:
                candidates = [u for u in self._matching(part.expr)
                              if self.node_state(u) == "Alive"]
            if not candidates:
                return None
            needed = len(candidates) if part.count == ALL_NODES else part.count
            if needed > len(candidates):
                return None
            part_candidates.append(candidates)
        if len(job.request.parts) == 1:
            # Fast path (the overwhelmingly common shape): interval sweep.
            part, candidates = job.request.parts[0], part_candidates[0]
            needed = len(candidates) if part.count == ALL_NODES else part.count
            start = self.gantt.earliest_start(candidates, after, walltime,
                                              needed, intervals_cache)
            if start is None:
                return None
            free = self.gantt.free_nodes(candidates, start, start + walltime)
            chosen = free if part.count == ALL_NODES else free[:needed]
            return start, (tuple(chosen),)
        return self._multi_part_assignment(job, after, part_candidates)

    def _multi_part_assignment(
        self, job: Job, after: float, part_candidates: list[list[str]],
    ) -> Optional[tuple[float, tuple[tuple[str, ...], ...]]]:
        """Rare multi-part shape: candidate-start scan over the union."""
        walltime = job.walltime_s
        all_candidates = sorted({u for c in part_candidates for u in c})
        for start in self.gantt.candidate_starts(all_candidates, after):
            assignment: list[tuple[str, ...]] = []
            taken: set[str] = set()
            feasible = True
            for part, candidates in zip(job.request.parts, part_candidates):
                free = [u for u in candidates
                        if u not in taken and self.gantt.is_free(u, start, start + walltime)]
                needed = len(candidates) if part.count == ALL_NODES else part.count
                if part.count == ALL_NODES:
                    # ALL semantics: every alive matching node, simultaneously.
                    if len(free) < len([u for u in candidates if u not in taken]):
                        feasible = False
                        break
                    chosen = free
                elif len(free) < needed:
                    feasible = False
                    break
                else:
                    chosen = free[:needed]
                assignment.append(tuple(chosen))
                taken.update(chosen)
            if feasible:
                return start, tuple(assignment)
        return None

    def _reserve(self, job: Job, start: float,
                 assignment: tuple[tuple[str, ...], ...]) -> None:
        nodes = [uid for part in assignment for uid in part]
        self.gantt.reserve(nodes, start, start + job.walltime_s, job.job_id)
        job.assignment = assignment
        job.scheduled_start = start
        job.state = JobState.SCHEDULED
        self._scheduled.append(job)
        generation = job.generation
        self.sim.call_at(start, self._try_start, job, generation)

    def _schedule_pass(self) -> None:
        """Give every waiting job the earliest reservation that fits.

        The whole pass runs at one instant, so the alive-node mask and the
        per-expression candidate masks are computed once (the
        :class:`_PassContext`) and shared across the queue, while node
        freeness comes from the availability profile the reservations
        themselves keep current.  The ``use_profile = False`` branch is
        the PR-5 pass (shared alive frozenset + free-interval cache),
        kept as the A/B baseline.
        """
        still_waiting: list[Job] = []
        now = self.sim.now
        if self.gantt.use_profile:
            ctx = _PassContext(self)
            for job in self._waiting:
                placement = self._find_assignment(job, now, ctx)
                if placement is None:
                    still_waiting.append(job)  # no alive matching nodes now
                    continue
                self._reserve(job, *placement)
        else:
            alive = frozenset(self.alive_nodes())
            intervals_cache: dict[str, list] = {}
            for job in self._waiting:
                placement = self._linear_find_assignment(
                    job, now, intervals_cache, alive)
                if placement is None:
                    still_waiting.append(job)  # no alive matching nodes now
                    continue
                self._reserve(job, *placement)
                for part in placement[1]:
                    for uid in part:
                        intervals_cache.pop(uid, None)
        self._waiting = still_waiting

    def _replan_future_jobs(
        self,
        touching: Optional[Union[set, dict]] = None,
    ) -> None:
        """Tear down not-yet-started reservations and reschedule (pull
        forward after an early release or node repair).

        ``touching`` narrows the teardown to the incremental pass between
        full sweeps: a dict maps freed uids to their surrounding free
        ``(hole_start, hole_end)`` window (see :meth:`_mark_freed`); a
        bare uid set means unbounded windows, which degenerates to the
        node-intersection filter.  Under ``replan_filter == "windows"`` a
        job is only replanned when some freed hole on a matching node
        could host it *earlier* than its current reservation; under
        "nodes" any freed matching node triggers it.
        """
        if touching is not None:
            if self.replan_filter == "windows":
                if not isinstance(touching, dict):
                    touching = {u: (_NEG_INF, math.inf)
                                for u in sorted(touching)}
                replanned = [j for j in self._scheduled
                             if self._replan_hit(j, touching)]
            else:
                touched = frozenset(touching)
                replanned = [
                    j for j in self._scheduled
                    if any(touched & self._matching_set(p.expr)
                           for p in j.request.parts)
                ]
            if not replanned:
                if self.replan_check:
                    self._assert_plans_tight()
                return
            replanned_set = set(replanned)
            self._scheduled = [j for j in self._scheduled
                               if j not in replanned_set]
        else:
            replanned = self._scheduled
            self._scheduled = []
        for job in replanned:
            self.gantt.release(job.assigned_nodes, job.job_id,
                               job.scheduled_start)
            job.assignment = ()
            job.scheduled_start = None
            job.state = JobState.WAITING
            job.generation += 1  # invalidate the pending _try_start timer
        # Keep global FCFS order across both pools.
        self._waiting = sorted(self._waiting + replanned, key=lambda j: j.job_id)
        self._schedule_pass()
        if self.replan_check:
            self._assert_plans_tight()

    def _replan_hit(self, job: Job, windows: dict) -> bool:
        """Could a freed region pull this scheduled job forward?

        A hole ``[lo, hi)`` on a matching node helps iff some start ``s in
        [max(now, lo), scheduled_start)`` fits ``s + walltime <= hi`` —
        i.e. the hole's usable edge both precedes the current reservation
        and is long enough.  The recorded windows are conservative (they
        only ever over-approximate the freed region), so a miss here is a
        proof the job cannot start earlier, not a heuristic.
        """
        now = self.sim.now
        start = job.scheduled_start
        walltime = job.walltime_s
        for part in job.request.parts:
            matching = self._matching_set(part.expr)
            for uid, (lo, hi) in windows.items():
                if uid not in matching:
                    continue
                usable = lo if lo > now else now
                if usable < start and usable + walltime <= hi:
                    return True
        return False

    def _assert_plans_tight(self) -> None:
        """Cross-check for the incremental filter: after a replanning pass
        no still-scheduled job may be startable earlier than its
        reservation.  (Its own reservation still occupies its slot, so the
        recomputed earliest start can only be >= the planned one; < means
        the filter missed a freed hole.)  Enabled via ``replan_check`` by
        the differential tests and the scale benchmark."""
        now = self.sim.now
        ctx = _PassContext(self)
        for job in self._scheduled:
            placement = self._find_assignment(job, now, ctx)
            if placement is not None and placement[0] < job.scheduled_start:
                raise AssertionError(
                    f"incremental replan missed an improvement: job "
                    f"{job.job_id} reserved at t={job.scheduled_start} "
                    f"could start at t={placement[0]}")

    # -- execution -----------------------------------------------------------------

    def _try_start(self, job: Job, generation: int) -> None:
        if job.generation != generation or job.state != JobState.SCHEDULED:
            return  # stale timer: the job was replanned or cancelled
        self._scheduled.remove(job)
        dead = [u for u in job.assigned_nodes if self.node_state(u) != "Alive"]
        if dead:
            # A reserved node died in the meantime: back to the queue.
            self.gantt.release(job.assigned_nodes, job.job_id,
                               job.scheduled_start)
            job.assignment = ()
            job.scheduled_start = None
            job.generation += 1
            if job.immediate:
                job.state = JobState.CANCELLED
                job.finished_at = self.sim.now
                job.done_event.succeed(job)
            else:
                job.state = JobState.WAITING
                # Re-queue in job-id order: appending to the tail would rank
                # this job behind later-submitted waiters until the next
                # replan re-sort, breaking conservative backfilling's FCFS
                # fairness.  _waiting is kept sorted by job_id (submission
                # order), so a bisect insert preserves the invariant.
                ids = [j.job_id for j in self._waiting]
                self._waiting.insert(bisect.bisect(ids, job.job_id), job)
                self._schedule_pass()
            return
        job.state = JobState.RUNNING
        job.started_at = self.sim.now
        for uid in job.assigned_nodes:
            self.machines[uid].cpu_load = _BUSY_LOAD
        self._account_alloc(len(job.assigned_nodes))
        job.started_event.succeed(job)
        for hook in self.on_job_start:
            hook(job)
        generation = job.generation
        if job.auto_duration is not None:
            run_for = min(job.auto_duration, job.walltime_s)
            self.sim.call_in(run_for, self._auto_finish, job, generation)
        else:
            self.sim.call_in(job.walltime_s, self._walltime_kill, job, generation)

    def _auto_finish(self, job: Job, generation: int) -> None:
        if job.generation != generation or job.state != JobState.RUNNING:
            return
        if job.mass_remaining is not None:
            # Mass-tracked (resized at least once): killed iff the walltime
            # deadline arrived with work still outstanding.
            self._accrue_mass(job)
            killed = job.mass_remaining > 1e-6
        else:
            killed = (job.auto_duration is not None
                      and job.auto_duration > job.walltime_s)
        job.killed_by_walltime = killed
        self._finish(job, JobState.TERMINATED)

    def _walltime_kill(self, job: Job, generation: int) -> None:
        if job.generation != generation or job.state != JobState.RUNNING:
            return
        job.killed_by_walltime = True
        self._finish(job, JobState.ERROR)

    def _finish(self, job: Job, state: JobState) -> None:
        job.generation += 1
        job.state = state
        job.finished_at = self.sim.now
        self._account_alloc(-len(job.assigned_nodes))
        for uid in job.assigned_nodes:
            self.machines[uid].cpu_load = _IDLE_LOAD
        self.gantt.truncate(job.assigned_nodes, job.job_id, self.sim.now)
        self._mark_freed(job.assigned_nodes)
        job.done_event.succeed(job)
        for hook in self.on_job_complete:
            hook(job)
        self._request_replan()

    # -- grow/shrink protocol (malleable jobs) ---------------------------------

    def _check_resizable(self, job: Job, verb: str) -> None:
        if job.state != JobState.RUNNING:
            raise SchedulingError(
                f"cannot {verb} job {job.job_id} in state {job.state}")
        if len(job.request.parts) != 1:
            raise SchedulingError(
                f"{verb} supports single-part requests only "
                f"(job {job.job_id} has {len(job.request.parts)} parts)")

    def _accrue_mass(self, job: Job) -> None:
        """Bring the remaining-work account up to now at the current width.

        Lazily initialized on the first resize: until then the job's total
        work is ``min(auto_duration, walltime) * width`` node-seconds and
        it has been consuming at its start width — so rigid jobs never
        enter mass tracking and keep their original finish timers.
        """
        if job.auto_duration is None:
            return
        now = self.sim.now
        if job.mass_remaining is None:
            # Full demanded work, NOT clamped to walltime: a job wanting
            # more than its walltime allows must reach the deadline with
            # mass outstanding, so _auto_finish flags it killed exactly
            # like the rigid auto_duration > walltime check does.
            job.mass_remaining = \
                (job.auto_duration - (now - job.started_at)) * job.width
        else:
            job.mass_remaining -= (now - job.mass_accrued_at) * job.width
        job.mass_accrued_at = now
        if job.mass_remaining < 0.0:
            job.mass_remaining = 0.0

    def _reschedule_finish(self, job: Job) -> None:
        """Re-register the finish timer after a width change.

        Bumping the generation first invalidates the previous finish or
        walltime-kill timer — the guard that makes a grow racing a pending
        walltime kill safe: whichever event was already queued sees a stale
        generation and becomes a no-op.
        """
        job.generation += 1
        generation = job.generation
        deadline = job.started_at + job.walltime_s
        if job.auto_duration is not None:
            finish_at = min(self.sim.now + job.mass_remaining / job.width,
                            deadline)
            self.sim.call_at(finish_at, self._auto_finish, job, generation)
        else:
            self.sim.call_at(deadline, self._walltime_kill, job, generation)

    def grow(self, job: Job, nodes: Sequence[str]) -> None:
        """Expand a running malleable job onto idle nodes, effective now.

        The nodes must match the request's property expression, be alive,
        and be free from now through the job's walltime deadline (see
        :meth:`grow_candidates`) — growing therefore never disturbs any
        existing reservation.  With linear speedup the remaining work
        spreads over the wider allocation and the finish timer pulls in.
        """
        nodes = list(nodes)
        self._check_resizable(job, "grow")
        if not nodes:
            return
        now = self.sim.now
        deadline = job.started_at + job.walltime_s
        if now >= deadline:
            raise SchedulingError(
                f"job {job.job_id} is at its walltime deadline")
        if job.width + len(nodes) > job.max_nodes:
            raise SchedulingError(
                f"cannot grow job {job.job_id} to {job.width + len(nodes)} "
                f"nodes: max_nodes={job.max_nodes}")
        current = set(job.assigned_nodes)
        matching = self._matching_set(job.request.parts[0].expr)
        for uid in nodes:
            if uid in current:
                raise SchedulingError(
                    f"node {uid} already allocated to job {job.job_id}")
            if uid not in matching:
                raise SchedulingError(
                    f"node {uid} does not match job {job.job_id}'s request")
            if self.node_state(uid) != "Alive":
                raise SchedulingError(f"node {uid} is not alive")
        self._accrue_mass(job)  # settle work done at the old width first
        self.gantt.reserve(nodes, now, deadline, job.job_id)
        job.assignment = (job.assignment[0] + tuple(nodes),)
        for uid in nodes:
            self.machines[uid].cpu_load = _BUSY_LOAD
        self._account_alloc(len(nodes))
        job.grow_count += 1
        self.grow_events += 1
        self._reschedule_finish(job)

    def shrink(self, job: Job, k: int, prefer: Optional[set] = None,
               replan: bool = True) -> list[str]:
        """Reclaim ``k`` nodes from a running malleable job, effective now.

        Refuses to shrink below the request's ``min_nodes``.  Nodes leave
        the allocation tail first (grown nodes before original ones);
        ``prefer`` biases the pick toward specific uids (the
        steal-agreement policy frees nodes a queued job can actually use).
        Freed reservations are truncated at now, and with ``replan=True``
        future reservations touching them are immediately re-placed so
        queued work pulls forward.  Returns the freed uids.
        """
        self._check_resizable(job, "shrink")
        if k <= 0:
            raise SchedulingError(f"shrink needs a positive count, got {k}")
        if job.width - k < job.min_nodes:
            raise SchedulingError(
                f"cannot shrink job {job.job_id} to {job.width - k} nodes: "
                f"min_nodes={job.min_nodes}")
        alloc = list(job.assignment[0])
        chosen: list[str] = []
        if prefer:
            for uid in reversed(alloc):
                if len(chosen) == k:
                    break
                if uid in prefer:
                    chosen.append(uid)
        if len(chosen) < k:
            taken = set(chosen)
            for uid in reversed(alloc):
                if len(chosen) == k:
                    break
                if uid not in taken:
                    chosen.append(uid)
        self._accrue_mass(job)  # settle work done at the old width first
        chosen_set = set(chosen)
        job.assignment = (tuple(u for u in alloc if u not in chosen_set),)
        self.gantt.truncate(chosen, job.job_id, self.sim.now)
        for uid in chosen:
            self.machines[uid].cpu_load = _IDLE_LOAD
        self._account_alloc(-k)
        job.shrink_count += 1
        self.shrink_events += 1
        self._reschedule_finish(job)
        self._mark_freed(chosen)
        if replan:
            self.replan_now(chosen_set)
        return chosen

    def evict_dead_nodes(self, job: Job) -> bool:
        """Drop dead nodes from a running job's allocation (policy-driven).

        When the surviving width stays >= ``min_nodes`` the job shrinks
        past the dead nodes and keeps running; otherwise it is torn down
        and re-queued at its FCFS rank, exactly like a pre-start node death
        in :meth:`_try_start`.  Returns True when anything changed.  Only
        malleable policies call this — the rigid path keeps the historical
        behaviour (a dead node is held until the job ends).
        """
        if job.state != JobState.RUNNING or len(job.request.parts) != 1:
            return False
        dead = [u for u in job.assignment[0]
                if self.node_state(u) != "Alive"]
        if not dead:
            return False
        dead_set = set(dead)
        alive = [u for u in job.assignment[0] if u not in dead_set]
        now = self.sim.now
        if len(alive) >= max(job.min_nodes, 1):
            # Survivable: shrink past the dead nodes.  Work already done on
            # them is kept (the mass account accrues at the full width up
            # to now) — checkpoint-and-continue semantics.
            self._accrue_mass(job)
            job.assignment = (tuple(alive),)
            self.gantt.truncate(dead, job.job_id, now)
            self._account_alloc(-len(dead))
            job.shrink_count += 1
            self.shrink_events += 1
            self._reschedule_finish(job)
            self._mark_freed(dead)
            self._request_replan()
            return True
        # Below min_nodes: tear the run down and restart from the queue.
        released = job.assigned_nodes
        self.gantt.release(released, job.job_id)
        for uid in alive:
            self.machines[uid].cpu_load = _IDLE_LOAD
        self._account_alloc(-len(released))
        job.assignment = ()
        job.scheduled_start = None
        job.started_at = None
        job.mass_remaining = None
        job.mass_accrued_at = None
        job.generation += 1
        job.state = JobState.WAITING
        #: Fresh start event: the original already fired for the first run.
        job.started_event = self.sim.event()
        self._mark_freed(alive)
        # Re-queue at the job-id rank (see _try_start's dead-node path).
        ids = [j.job_id for j in self._waiting]
        self._waiting.insert(bisect.bisect(ids, job.job_id), job)
        self._schedule_pass()
        return True

    def replan_now(self, touching: Optional[set] = None) -> None:
        """Synchronously re-place future reservations (the immediate
        counterpart of the batched replan; malleable policies call this
        right after freeing capacity so queued work pulls forward within
        the same tick)."""
        if touching is not None and not touching:
            return
        self._replan_future_jobs(touching)

    def grow_candidates(self, job: Job) -> list[str]:
        """Alive matching nodes free from now through the job's walltime
        deadline — exactly what :meth:`grow` may claim without disturbing
        any existing reservation.  Deterministic database order."""
        if job.state != JobState.RUNNING or len(job.request.parts) != 1:
            return []
        now = self.sim.now
        deadline = job.started_at + job.walltime_s
        if deadline <= now:
            return []
        current = set(job.assigned_nodes)
        expr = job.request.parts[0].expr
        if self.gantt.use_profile:
            # One profile query answers "free through the deadline" for
            # the whole matching set; per-node work is a bit test.
            fmask = self.gantt.profile_free_mask(
                self.matching_mask(expr), now, deadline)
            bit = self.gantt.bit
            return [uid for uid in self._matching(expr)
                    if uid not in current
                    and fmask >> bit(uid) & 1
                    and self.node_state(uid) == "Alive"]
        out = []
        for uid in self._matching(expr):
            if uid in current or self.node_state(uid) != "Alive":
                continue
            if self.gantt.is_free(uid, now, deadline):
                out.append(uid)
        return out

    def _account_alloc(self, delta: int) -> None:
        now = self.sim.now
        self._alloc_integral += self._alloc_count * (now - self._alloc_since)
        self._alloc_since = now
        self._alloc_count += delta

    def allocated_node_seconds(self, until: Optional[float] = None) -> float:
        """Exact integral of allocated nodes over time since t=0."""
        until = self.sim.now if until is None else until
        return (self._alloc_integral
                + self._alloc_count * (until - self._alloc_since))

    def _mark_freed(self, uids: Sequence[str],
                    at: Optional[float] = None) -> None:
        """Record freed regions for the incremental replanner: each uid's
        surrounding free window at the release point (one timeline bisect
        per node).  Windows only widen until the next replanning pass
        consumes them, so later reservations landing inside a recorded
        hole can make it conservative (too wide) but never too narrow."""
        t = self.sim.now if at is None else at
        windows = self._dirty_windows
        gantt = self.gantt
        for uid in uids:
            lo, hi = gantt.hole_around(uid, t)
            old = windows.get(uid)
            if old is not None:
                if old[0] < lo:
                    lo = old[0]
                if old[1] > hi:
                    hi = old[1]
            windows[uid] = (lo, hi)

    def _request_replan(self) -> None:
        if not self._replan_pending:
            self._replan_pending = True
            self.sim.call_in(self.replan_batch_s, self._do_replan)

    def _do_replan(self) -> None:
        self._replan_pending = False
        if self.sim.now >= self._next_full_replan:
            self._next_full_replan = self.sim.now + self.full_replan_period_s
            self._replan_future_jobs()
        else:
            self._replan_future_jobs(touching=self._dirty_windows)
        self._dirty_windows = {}

    # -- introspection ----------------------------------------------------------------

    def waiting_count(self) -> int:
        return len(self._waiting) + len(self._scheduled)

    def queued_jobs(self, slack_s: float = 60.0) -> list[Job]:
        """Jobs that want to run but are not running: the waiting pool plus
        scheduled jobs whose reservation starts more than ``slack_s`` away.

        Conservative backfilling parks nearly every submission with a
        future reservation, so "queue pressure" means far-future
        reservations, not an empty-handed waiting list.  Sorted by job id
        (FCFS order)."""
        horizon = self.sim.now + slack_s
        queued = list(self._waiting)
        queued.extend(j for j in self._scheduled
                      if j.scheduled_start is not None
                      and j.scheduled_start > horizon)
        queued.sort(key=lambda j: j.job_id)
        return queued

    def running_jobs(self) -> list[Job]:
        return [j for j in self.jobs.values() if j.state == JobState.RUNNING]

    def utilization(self) -> float:
        """Fraction of alive nodes currently allocated."""
        alive = self.alive_nodes()
        if not alive:
            return 0.0
        busy = {u for j in self.running_jobs() for u in j.assigned_nodes}
        return len(busy & set(alive)) / len(alive)

    def housekeeping(self, keep_horizon_s: float = 86_400.0) -> None:
        """Purge ancient Gantt entries (call periodically on long campaigns)."""
        self.gantt.purge_before(self.sim.now - keep_horizon_s)
