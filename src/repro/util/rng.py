"""Seeded, named random streams.

Each subsystem (fault injector, workload generator, Kadeploy timing model,
...) draws from its own independent stream derived from the campaign seed.
This keeps campaigns reproducible *and* insensitive to draw-order coupling:
adding a draw in one subsystem does not perturb any other subsystem.

Streams are derived with :class:`numpy.random.SeedSequence` spawn keys
hashed from the stream name, so ``streams("faults")`` is stable across runs
and across the order in which streams are first requested.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams"]


def _name_key(name: str) -> int:
    """Stable 64-bit key for a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory of independent named :class:`numpy.random.Generator` streams.

    >>> rngs = RngStreams(seed=42)
    >>> a = rngs.stream("faults")
    >>> b = rngs.stream("workload")
    >>> a is rngs.stream("faults")   # cached: same object on re-request
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_name_key(name),))
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fork(self, name: str, index: int) -> np.random.Generator:
        """An un-cached generator for the ``index``-th member of a family.

        Used when per-entity streams are needed (e.g. one per node) without
        polluting the cache.
        """
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_name_key(name), int(index))
        )
        return np.random.default_rng(seq)
