"""Tests for fault application and reversion (every kind round-trips)."""

import numpy as np
import pytest

from repro.faults import (
    FAULT_SPECS,
    FaultContext,
    FaultKind,
    ServiceHealth,
    apply_fault,
    revert_fault,
)
from repro.nodes import MachinePark
from repro.util import RngStreams, Simulator

IMAGES = ("debian8-std", "debian9-min", "centos7-min")


@pytest.fixture()
def ctx(fresh_testbed):
    sim = Simulator()
    park = MachinePark.from_testbed(sim, fresh_testbed, RngStreams(seed=3))
    return FaultContext.build(park, ServiceHealth(), IMAGES)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


def _snapshot(ctx):
    """Cheap digest of the whole mutable world, for revert verification."""
    parts = []
    for uid in sorted(ctx.machines.machines):
        m = ctx.machines[uid]
        hw = m.actual
        parts.append((
            uid, hw.bios.version, hw.bios.c_states, hw.bios.hyperthreading,
            hw.bios.turbo_boost, hw.bios.power_profile, hw.ram_gb,
            tuple((d.device, d.firmware, d.write_cache, d.read_ahead, d.healthy)
                  for d in hw.disks),
            tuple((n.device, n.rate_gbps, n.link_up) for n in hw.nics),
            hw.infiniband.stack_ok if hw.infiniband else None,
            hw.pdu_uid, hw.pdu_port, hw.console_ok,
            m.crash_mtbf_s, m.boot_race_delay_s, m.boot_failure_prob,
        ))
    s = ctx.services
    parts.append((
        tuple(sorted(s.api_failure_prob.items())),
        tuple(sorted(s.cmdline_failure_prob.items())),
        tuple(sorted(s.broken_images)),
        tuple(sorted(s.deploy_degradation.items())),
        tuple(sorted(s.kavlan_broken)),
        tuple(sorted(s.kwapi_down)),
        tuple(sorted((k, tuple(sorted(v))) for k, v in s.oar_property_drift.items())),
    ))
    return parts


@pytest.mark.parametrize("kind", list(FAULT_SPECS))
def test_every_kind_applies_and_reverts_cleanly(ctx, rng, kind):
    before = _snapshot(ctx)
    instance = apply_fault(kind, ctx, rng, fault_id=1, now=100.0)
    assert instance is not None, f"{kind} found no target on a pristine testbed"
    assert _snapshot(ctx) != before, f"{kind} applied but changed nothing"
    assert instance.active
    assert instance.site
    revert_fault(instance, ctx)
    assert not instance.active
    assert _snapshot(ctx) == before, f"{kind} revert did not restore state"


@pytest.mark.parametrize("kind", list(FAULT_SPECS))
def test_revert_is_idempotent(ctx, rng, kind):
    instance = apply_fault(kind, ctx, rng, fault_id=1, now=0.0)
    revert_fault(instance, ctx)
    snapshot = _snapshot(ctx)
    revert_fault(instance, ctx)  # second revert must be a no-op
    assert _snapshot(ctx) == snapshot


def test_cstates_fault_targets_node(ctx, rng):
    inst = apply_fault(FaultKind.CPU_CSTATES, ctx, rng, 1, 0.0)
    assert ctx.machines[inst.target].actual.bios.c_states is True
    assert inst.cluster == ctx.machines[inst.target].cluster_uid


def test_hyperthreading_respects_capability(ctx, rng):
    for _ in range(30):
        inst = apply_fault(FaultKind.CPU_HYPERTHREADING, ctx, rng, 1, 0.0)
        node = ctx.machines[inst.target]
        assert node.description.cpu.ht_capable
        revert_fault(inst, ctx)


def test_firmware_skew_hits_subset_of_cluster(ctx, rng):
    inst = apply_fault(FaultKind.DISK_FIRMWARE_SKEW, ctx, rng, 1, 0.0)
    cluster_nodes = ctx.clusters[inst.target]
    affected = inst.details["nodes"]
    assert 1 <= len(affected) <= len(cluster_nodes) // 2
    device = inst.details["device"]
    firmwares = {ctx.machines[u].find_disk(device).firmware for u in cluster_nodes}
    assert len(firmwares) == 2  # skew: two versions coexist


def test_pdu_swap_breaks_wiring_consistency(ctx, rng):
    inst = apply_fault(FaultKind.PDU_CABLE_SWAP, ctx, rng, 1, 0.0)
    a_uid, b_uid = inst.details["nodes"]
    a, b = ctx.machines[a_uid], ctx.machines[b_uid]
    assert (a.actual.pdu_uid, a.actual.pdu_port) == (b.description.pdu.pdu_uid, b.description.pdu.port)
    assert (b.actual.pdu_uid, b.actual.pdu_port) == (a.description.pdu.pdu_uid, a.description.pdu.port)


def test_ram_fault_halves_memory(ctx, rng):
    inst = apply_fault(FaultKind.RAM_DIMM_FAILED, ctx, rng, 1, 0.0)
    node = ctx.machines[inst.target]
    assert node.actual.ram_gb == node.description.ram_gb // 2


def test_env_broken_target_format(ctx, rng):
    inst = apply_fault(FaultKind.ENV_IMAGE_BROKEN, ctx, rng, 1, 0.0)
    image, cluster = inst.target.split("@")
    assert image in IMAGES
    assert cluster in ctx.clusters
    assert not ctx.services.image_ok(image, cluster)


def test_site_fault_has_no_cluster(ctx, rng):
    inst = apply_fault(FaultKind.API_FLAKY, ctx, rng, 1, 0.0)
    assert inst.cluster is None
    assert inst.site in ctx.sites


def test_api_flaky_not_stacked_on_same_site(ctx, rng):
    sites = set()
    for i in range(40):
        inst = apply_fault(FaultKind.API_FLAKY, ctx, rng, i, 0.0)
        if inst is None:
            break
        sites.add(inst.target)
    assert len(sites) == len(ctx.sites)  # once all sites flaky, no more targets


def test_matches_helper(ctx, rng):
    inst = apply_fault(FaultKind.CONSOLE_BROKEN, ctx, rng, 1, 0.0)
    assert inst.matches(FaultKind.CONSOLE_BROKEN, inst.target)
    assert not inst.matches(FaultKind.CPU_TURBO, inst.target)
    revert_fault(inst, ctx)
    assert not inst.matches(FaultKind.CONSOLE_BROKEN, inst.target)


def test_detectable_by_families_are_known(ctx):
    known = {
        "refapi", "oarproperties", "dellbios", "oarstate", "cmdline", "sidapi",
        "environments", "stdenv", "paralleldeploy", "multireboot", "multideploy",
        "console", "kavlan", "kwapi", "mpigraph", "disk",
    }
    for spec in FAULT_SPECS.values():
        assert spec.detectable_by <= known, spec.kind
        assert spec.detectable_by, f"{spec.kind} undetectable by any family"


def test_boot_race_applies_cluster_wide(ctx, rng):
    inst = apply_fault(FaultKind.KERNEL_BOOT_RACE, ctx, rng, 1, 0.0)
    for uid in ctx.clusters[inst.target]:
        assert ctx.machines[uid].boot_race_delay_s == inst.details["delay_s"]
