"""Trace-driven workloads: record, parse, and replay job arrival traces.

The synthetic Poisson generator gives every scenario the same statistical
shape of load.  Real scheduling studies evaluate against *workload traces*
— recorded streams of (submit time, size, walltime, runtime) — which is a
whole new scenario-diversity axis: replay any recorded run, any published
cluster trace, time-compressed or load-scaled variants of either.

Pieces:

* :class:`TraceRecord` / :class:`WorkloadTrace` — the in-memory model;
* :func:`parse_swf` — parser for the Standard Workload Format used by the
  Parallel Workloads Archive (``;`` comments, 18 whitespace-separated
  fields per job);
* JSONL native format (``load_trace`` / ``save_trace``) — one JSON
  document per line, torn-tail tolerant like every other archive here;
* :class:`TraceReplayGenerator` — a
  :class:`~repro.oar.workload.WorkloadSource` that submits the recorded
  jobs at their timestamps, with ``time_scale`` and ``load_scale`` knobs;
* :class:`TraceRecorder` — subscribes to any workload source and exports
  the run back to a trace, so Poisson runs become replayable fixtures;
* :class:`TraceReplayConfig` — the frozen declarative knob a
  :class:`~repro.scenarios.ScenarioSpec` carries to select trace replay.

Replay determinism: a trace fully determines the submission stream, so the
same trace + spec + seed produces byte-identical campaign reports.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Optional, Union

from ..util.errors import ParseError
from ..util.serialization import iter_jsonl
from .jobs import Job
from .request import ALL_NODES, Comparison, JobRequest, format_walltime
from .server import OarServer
from .workload import WorkloadSource

__all__ = [
    "TraceRecord",
    "WorkloadTrace",
    "TraceReplayConfig",
    "TraceReplayGenerator",
    "TraceRecorder",
    "parse_swf",
    "load_trace",
    "save_trace",
    "record_from_job",
    "record_scenario",
    "builtin_trace_names",
]

#: Identifies the JSONL native format's header line.
_FORMAT_TAG = "repro-trace-v1"

#: Bundled traces live next to this module; referencing one by bare name
#: (e.g. ``"tiny-g5k"``) keeps presets machine-independent.
_BUILTIN_DIR = os.path.join(os.path.dirname(__file__), "builtin_traces")


@dataclass(frozen=True)
class TraceRecord:
    """One recorded job: when it arrived, what it asked for, how it ran.

    ``nodes`` is the *requested* size (SWF field 8, the PWA convention,
    falling back to allocated when the archive row carries ``-1``);
    ``alloc_nodes`` carries the *allocated* size (SWF field 5) when it is
    known — the requested/allocated distinction is what lets an imported
    trace express elastic widths.
    """

    submit_s: float
    nodes: int
    walltime_s: float
    #: Actual run time (the job finishes early when < walltime).
    run_s: float
    cluster: Optional[str] = None
    user: str = ""
    job_id: Optional[int] = None
    #: Allocated processors (SWF field 5); ``None`` when unknown (-1).
    alloc_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"record needs nodes >= 1, got {self.nodes}")
        if self.walltime_s <= 0:
            raise ValueError(f"record needs walltime > 0, got {self.walltime_s}")
        if self.alloc_nodes is not None and self.alloc_nodes < 1:
            raise ValueError(
                f"record needs alloc_nodes >= 1 or None, got {self.alloc_nodes}")

    def to_doc(self) -> dict:
        doc = {"submit_s": self.submit_s, "nodes": self.nodes,
               "walltime_s": self.walltime_s, "run_s": self.run_s}
        if self.cluster:
            doc["cluster"] = self.cluster
        if self.user:
            doc["user"] = self.user
        if self.job_id is not None:
            doc["job_id"] = self.job_id
        if self.alloc_nodes is not None:
            doc["alloc_nodes"] = self.alloc_nodes
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "TraceRecord":
        try:
            alloc = doc.get("alloc_nodes")
            return cls(
                submit_s=float(doc["submit_s"]),
                nodes=int(doc["nodes"]),
                walltime_s=float(doc["walltime_s"]),
                run_s=float(doc.get("run_s", doc["walltime_s"])),
                cluster=doc.get("cluster"),
                user=doc.get("user", ""),
                job_id=doc.get("job_id"),
                alloc_nodes=int(alloc) if alloc is not None else None,
            )
        except KeyError as exc:
            raise ValueError(
                f"trace record is missing the {exc.args[0]!r} field: {doc!r}"
            ) from None


@dataclass(frozen=True)
class WorkloadTrace:
    """An ordered collection of :class:`TraceRecord`."""

    records: tuple[TraceRecord, ...]
    name: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def span_s(self) -> float:
        """Time between the first and last submission."""
        if not self.records:
            return 0.0
        times = [r.submit_s for r in self.records]
        return max(times) - min(times)

    def sorted(self) -> "WorkloadTrace":
        """Records in submission order (stable for equal timestamps)."""
        ordered = tuple(sorted(self.records, key=lambda r: r.submit_s))
        return WorkloadTrace(ordered, name=self.name)

    def rebased(self) -> "WorkloadTrace":
        """Shift submission times so the earliest becomes 0."""
        if not self.records:
            return self
        t0 = min(r.submit_s for r in self.records)
        if t0 == 0.0:
            return self
        shifted = tuple(
            TraceRecord(r.submit_s - t0, r.nodes, r.walltime_s, r.run_s,
                        r.cluster, r.user, r.job_id, r.alloc_nodes)
            for r in self.records)
        return WorkloadTrace(shifted, name=self.name)

    def scaled(self, time_scale: float = 1.0,
               load_scale: float = 1.0) -> "WorkloadTrace":
        """A variant with compressed/stretched time and thinned/duplicated
        load.

        ``time_scale`` multiplies every submission timestamp: 0.5 packs the
        same jobs into half the wall-clock (twice the arrival rate); job
        durations are untouched.  ``load_scale`` changes how many jobs
        replay: 2.0 submits every job twice, 0.5 keeps every other job —
        deterministic decimation/duplication, no RNG involved.
        """
        if time_scale <= 0 or load_scale <= 0:
            raise ValueError("time_scale and load_scale must be positive")
        out: list[TraceRecord] = []
        for i, r in enumerate(self.records):
            copies = math.floor((i + 1) * load_scale) - math.floor(i * load_scale)
            for copy in range(copies):
                out.append(TraceRecord(
                    r.submit_s * time_scale, r.nodes, r.walltime_s, r.run_s,
                    r.cluster, r.user, r.job_id if copy == 0 else None,
                    r.alloc_nodes))
        return WorkloadTrace(tuple(out), name=self.name)

    def stats(self) -> dict:
        """Summary numbers (the CLI's ``trace inspect`` view)."""
        if not self.records:
            return {"jobs": 0, "span_s": 0.0}
        nodes = [r.nodes for r in self.records]
        node_seconds = sum(r.nodes * min(r.run_s, r.walltime_s)
                           for r in self.records)
        span = self.span_s
        return {
            "jobs": len(self.records),
            "span_s": span,
            "mean_interarrival_s": span / max(len(self.records) - 1, 1),
            "nodes_min": min(nodes),
            "nodes_max": max(nodes),
            "nodes_mean": sum(nodes) / len(nodes),
            "node_seconds": node_seconds,
            "clusters": sorted({r.cluster for r in self.records if r.cluster}),
            "users": len({r.user for r in self.records if r.user}),
        }


# -- declarative knob ----------------------------------------------------------


@dataclass(frozen=True)
class TraceReplayConfig:
    """Declarative trace-replay selection for a ``ScenarioSpec``.

    ``path`` is a trace file (SWF or JSONL, by extension) or the bare name
    of a bundled trace (see :func:`builtin_trace_names`).  The scales match
    :meth:`WorkloadTrace.scaled`.
    """

    path: str = "tiny-g5k"
    time_scale: float = 1.0
    load_scale: float = 1.0
    #: Shift the trace so its first submission lands at simulation start.
    rebase: bool = True
    #: Elastic replay: widen each job's request into a malleable range
    #: ``lo..preferred..hi`` with ``lo = nodes * elastic_min_scale`` and
    #: ``hi = nodes * elastic_max_scale``.  The defaults (both 1.0) replay
    #: rigid requests byte-identically.
    elastic_min_scale: float = 1.0
    elastic_max_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {self.time_scale}")
        if self.load_scale <= 0:
            raise ValueError(f"load_scale must be positive, got {self.load_scale}")
        if not 0 < self.elastic_min_scale <= 1.0:
            raise ValueError(
                f"elastic_min_scale must be in (0, 1], got {self.elastic_min_scale}")
        if self.elastic_max_scale < 1.0:
            raise ValueError(
                f"elastic_max_scale must be >= 1, got {self.elastic_max_scale}")

    def load(self) -> WorkloadTrace:
        return load_trace(self.path)


# -- parsing / persistence -----------------------------------------------------

#: SWF field indices (0-based) — Standard Workload Format, Feitelson et al.
_SWF_SUBMIT = 1
_SWF_RUN = 3
_SWF_ALLOC_PROCS = 4
_SWF_REQ_PROCS = 7
_SWF_REQ_TIME = 8
_SWF_USER = 11
_SWF_FIELDS = 18


def parse_swf(text: str, name: str = "") -> WorkloadTrace:
    """Parse Standard Workload Format text into a :class:`WorkloadTrace`.

    ``;`` starts a comment (the header convention of the Parallel
    Workloads Archive).  Missing values are encoded as ``-1``: requested
    processors fall back to allocated processors, requested time to run
    time.  Jobs with no usable size or time are skipped — partial archive
    rows must not abort a 100k-job trace.
    """
    records: list[TraceRecord] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) < _SWF_REQ_TIME + 1:
            raise ParseError(
                f"SWF line {lineno}: expected >= {_SWF_REQ_TIME + 1} of the "
                f"{_SWF_FIELDS} SWF fields, got {len(fields)}", raw, 0)
        try:
            submit = float(fields[_SWF_SUBMIT])
            run = float(fields[_SWF_RUN])
            alloc = int(float(fields[_SWF_ALLOC_PROCS]))
            nodes = int(float(fields[_SWF_REQ_PROCS]))
            if nodes <= 0:
                nodes = alloc
            walltime = float(fields[_SWF_REQ_TIME])
            job_id = int(float(fields[0]))
            user = fields[_SWF_USER] if len(fields) > _SWF_USER else "-1"
        except ValueError as exc:
            raise ParseError(f"SWF line {lineno}: {exc}", raw, 0) from None
        if walltime <= 0:
            walltime = run
        if nodes <= 0 or walltime <= 0:
            continue  # unusable archive row
        records.append(TraceRecord(
            submit_s=submit,
            nodes=nodes,
            walltime_s=walltime,
            run_s=run if run > 0 else walltime,
            user=f"user{user}" if user != "-1" else "",
            job_id=job_id,
            alloc_nodes=alloc if alloc > 0 else None,
        ))
    return WorkloadTrace(tuple(records), name=name)


def trace_to_swf(trace: WorkloadTrace) -> str:
    """Render a trace as SWF text (the interchange direction of
    ``repro-campaign trace convert``)."""
    lines = [f"; repro workload trace {trace.name or '(unnamed)'}",
             f"; jobs: {len(trace)}"]
    for i, r in enumerate(trace.records, start=1):
        fields = [-1] * _SWF_FIELDS
        fields[0] = r.job_id if r.job_id is not None else i
        fields[_SWF_SUBMIT] = int(r.submit_s)
        fields[_SWF_RUN] = int(r.run_s)
        fields[_SWF_ALLOC_PROCS] = (r.alloc_nodes if r.alloc_nodes is not None
                                    else r.nodes)
        fields[_SWF_REQ_PROCS] = r.nodes
        fields[_SWF_REQ_TIME] = int(r.walltime_s)
        if r.user.startswith("user") and r.user[4:].isdigit():
            fields[_SWF_USER] = int(r.user[4:])
        lines.append(" ".join(str(f) for f in fields))
    return "\n".join(lines) + "\n"


def builtin_trace_names() -> list[str]:
    """Names of the traces bundled with the package."""
    if not os.path.isdir(_BUILTIN_DIR):
        return []
    return sorted(f[:-6] for f in os.listdir(_BUILTIN_DIR)
                  if f.endswith(".jsonl"))


def _resolve_trace_path(path: Union[str, "os.PathLike[str]"]) -> str:
    p = os.fspath(path)
    if os.path.exists(p):
        return p
    builtin = os.path.join(_BUILTIN_DIR, f"{p}.jsonl")
    if os.path.sep not in p and os.path.exists(builtin):
        return builtin
    raise FileNotFoundError(
        f"no trace file {p!r} (and no builtin trace of that name; "
        f"builtins: {', '.join(builtin_trace_names()) or 'none'})")


def load_trace(path: Union[str, "os.PathLike[str]"],
               name: str = "") -> WorkloadTrace:
    """Load a trace file: ``.swf`` parses as SWF, anything else as the
    JSONL native format.  A bare name (no separator) falls back to the
    bundled traces."""
    resolved = _resolve_trace_path(path)
    trace_name = name or os.path.splitext(os.path.basename(resolved))[0]
    if resolved.endswith(".swf"):
        with open(resolved, "r", encoding="utf-8") as fh:
            return parse_swf(fh.read(), name=trace_name)
    records = []
    for doc in iter_jsonl(resolved):
        if not isinstance(doc, dict):
            continue
        if doc.get("format") == _FORMAT_TAG:  # header line
            trace_name = doc.get("name") or trace_name
            continue
        records.append(TraceRecord.from_doc(doc))
    return WorkloadTrace(tuple(records), name=trace_name)


def save_trace(trace: WorkloadTrace,
               path: Union[str, "os.PathLike[str]"]) -> None:
    """Write the JSONL native format: a tagged header line, then one
    record per line (append-only friendly, torn-tail tolerant).

    One open + one fsync for the whole file — a per-record
    :func:`append_jsonl` would pay ~100k fsyncs on an archive-sized
    trace, and a full rewrite needs no crash-safe append anyway.
    """
    docs = [{"format": _FORMAT_TAG, "name": trace.name, "jobs": len(trace)}]
    docs.extend(record.to_doc() for record in trace.records)
    with open(path, "wb") as fh:
        for doc in docs:
            line = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                              allow_nan=False)
            fh.write(line.encode("utf-8") + b"\n")
        fh.flush()
        os.fsync(fh.fileno())


# -- recording -----------------------------------------------------------------


def _request_cluster(request: JobRequest) -> Optional[str]:
    """The cluster a single-part ``cluster='x'/...`` request pins, if any."""
    if len(request.parts) != 1:
        return None
    expr = request.parts[0].expr
    if (isinstance(expr, Comparison) and expr.name == "cluster"
            and expr.op == "="):
        return str(expr.value)
    return None


def record_from_job(job: Job) -> Optional[TraceRecord]:
    """Render one submitted job as a trace record.

    Returns ``None`` for jobs a trace cannot express: an unassigned
    ``nodes=ALL`` request has no concrete size yet.
    """
    nodes = 0
    for i, part in enumerate(job.request.parts):
        if part.count == ALL_NODES:
            if i >= len(job.assignment):
                return None
            nodes += len(job.assignment[i])
        else:
            nodes += int(part.count)
    if nodes < 1:
        return None
    if job.auto_duration is not None:
        run = job.auto_duration
    elif job.run_time_s is not None:
        run = job.run_time_s
    else:
        run = job.walltime_s
    return TraceRecord(
        submit_s=job.submitted_at,
        nodes=nodes,
        walltime_s=job.walltime_s,
        run_s=run,
        cluster=_request_cluster(job.request),
        user=job.user,
        job_id=job.job_id,
    )


class TraceRecorder:
    """Capture every job a :class:`WorkloadSource` submits.

    Attach before the source starts; after the run, :meth:`trace` is a
    replayable fixture of exactly the workload the simulation saw.
    """

    def __init__(self, source: Optional[WorkloadSource] = None, name: str = ""):
        self.name = name
        self._records: list[TraceRecord] = []
        if source is not None:
            self.attach(source)

    def attach(self, source: WorkloadSource) -> None:
        source.on_submit.append(self.record_job)

    def record_job(self, job: Job) -> None:
        record = record_from_job(job)
        if record is not None:
            self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def trace(self) -> WorkloadTrace:
        return WorkloadTrace(tuple(self._records), name=self.name)


def record_scenario(spec, seed: Optional[int] = None,
                    months: Optional[float] = None,
                    name: str = "") -> WorkloadTrace:
    """Run a scenario and export its workload stream as a trace.

    ``spec`` is a :class:`~repro.scenarios.ScenarioSpec` or preset name.
    The recorded trace replays the *workload* side of the run (user jobs),
    not the test jobs — those are re-generated by the scheduler under
    whatever scenario replays the trace.
    """
    from .. import scenarios  # local: avoid a package import cycle
    from ..core.campaign import run_scenario

    if isinstance(spec, str):
        spec = scenarios.get(spec)
    recorder = TraceRecorder(name=name or f"{spec.name}-recorded")
    run_scenario(spec, seed=seed, months=months,
                 on_built=lambda fw: recorder.attach(fw.workload))
    return recorder.trace()


# -- replay --------------------------------------------------------------------


class TraceReplayGenerator(WorkloadSource):
    """Submit a recorded trace's jobs at their timestamps.

    The trace is sorted (and by default rebased to simulation start), then
    time/load scaled.  Records pinned to a cluster the current testbed does
    not have lose the pin (they run wherever nodes are free) and sizes are
    clamped to what the testbed can ever satisfy, so any trace replays on
    any world.
    """

    process_name = "trace-replay"

    def __init__(
        self,
        sim,
        oar: OarServer,
        trace: WorkloadTrace,
        testbed=None,
        time_scale: float = 1.0,
        load_scale: float = 1.0,
        rebase: bool = True,
        elastic_min_scale: float = 1.0,
        elastic_max_scale: float = 1.0,
    ):
        super().__init__(sim, oar)
        self.trace = trace
        self.elastic_min_scale = elastic_min_scale
        self.elastic_max_scale = elastic_max_scale
        prepared = trace.sorted()
        if rebase:
            prepared = prepared.rebased()
        if time_scale != 1.0 or load_scale != 1.0:
            prepared = prepared.scaled(time_scale, load_scale)
        self._records = prepared.records
        if testbed is not None:
            self._cluster_sizes: dict[str, int] = {
                c.uid: c.node_count for c in testbed.iter_clusters()}
            self._total_nodes: Optional[int] = sum(self._cluster_sizes.values())
        else:
            self._cluster_sizes = {}
            self._total_nodes = None

    @classmethod
    def from_config(cls, sim, oar: OarServer, config: TraceReplayConfig,
                    testbed=None) -> "TraceReplayGenerator":
        return cls(sim, oar, config.load(), testbed=testbed,
                   time_scale=config.time_scale,
                   load_scale=config.load_scale, rebase=config.rebase,
                   elastic_min_scale=config.elastic_min_scale,
                   elastic_max_scale=config.elastic_max_scale)

    def _run(self):
        origin = self.sim.now
        for record in self._records:
            delay = origin + record.submit_s - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            if not self._running:
                return
            self.submit_record(record)

    def submit_record(self, record: TraceRecord) -> Job:
        """Build and submit the OAR job one record describes."""
        nodes = record.nodes
        cluster = record.cluster
        if cluster is not None and self._cluster_sizes and \
                cluster not in self._cluster_sizes:
            cluster = None  # unknown cluster: replay anywhere
        if cluster is not None and self._cluster_sizes:
            nodes = min(nodes, self._cluster_sizes[cluster])
        elif self._total_nodes is not None:
            nodes = min(nodes, self._total_nodes)
        walltime = max(record.walltime_s, 1.0)
        prefix = f"cluster='{cluster}'/" if cluster is not None else ""
        if self.elastic_min_scale != 1.0 or self.elastic_max_scale != 1.0:
            cap = (self._cluster_sizes[cluster]
                   if cluster is not None and self._cluster_sizes
                   else self._total_nodes)
            lo = max(1, int(nodes * self.elastic_min_scale))
            hi = max(nodes, math.ceil(nodes * self.elastic_max_scale))
            if cap is not None:
                hi = min(hi, cap)
            hi = max(hi, nodes)
            count = f"{lo}..{nodes}..{hi}" if lo < nodes or hi > nodes \
                else str(nodes)
        else:
            count = str(nodes)
        request = f"{prefix}nodes={count},walltime={format_walltime(walltime)}"
        self.submitted += 1
        user = record.user or f"trace{self.submitted}"
        job = self.oar.submit(request, user=user,
                              auto_duration=max(min(record.run_s, walltime), 0.0))
        self._notify_submitted(job)
        return job
