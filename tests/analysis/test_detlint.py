"""detlint: fixture-driven rule tests, suppression/baseline round-trips,
the src/repro self-check, and the CI-gate contract."""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.static import (
    RULES,
    analyze_file,
    analyze_paths,
    analyze_source,
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.static.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "detlint_fixtures"
_EXPECT = re.compile(r"#\s*EXPECT\((?P<rule>[A-Z0-9]+)\)")

FIXTURE_FILES = {
    "DET001": FIXTURES / "scheduling" / "det001_cases.py",
    "DET002": FIXTURES / "plain" / "det002_cases.py",
    "DET003": FIXTURES / "plain" / "det003_cases.py",
    "KRN101": FIXTURES / "plain" / "krn101_cases.py",
    "SER201": FIXTURES / "plain" / "ser201_cases.py",
    "ERR301": FIXTURES / "service" / "err301_cases.py",
    "ERR302": FIXTURES / "service" / "err302_cases.py",
    "PRF401": FIXTURES / "scheduling" / "prf401_cases.py",
}


def expected_lines(path: Path, rule: str) -> set:
    """Line numbers carrying an ``EXPECT(rule)`` marker."""
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT.search(line)
        if m and m.group("rule") == rule:
            out.add(lineno)
    return out


# -- rule catalogue ----------------------------------------------------------

def test_catalogue_is_complete():
    assert set(FIXTURE_FILES) == set(RULES), \
        "every registered rule needs a fixture file (and vice versa)"


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_FILES))
def test_rule_fixture(rule_id):
    """Positive lines are flagged, negative lines are not — exactly."""
    path = FIXTURE_FILES[rule_id]
    expected = expected_lines(path, rule_id)
    assert expected, f"fixture for {rule_id} has no EXPECT markers"
    findings, _ = analyze_file(str(path), rules=[RULES[rule_id]])
    assert {f.line for f in findings} == expected
    assert all(f.rule == rule_id for f in findings)


def test_scope_limits_rules():
    """ERR301 only runs under service/ and util/events.py paths."""
    source = FIXTURE_FILES["ERR301"].read_text()
    in_scope, _ = analyze_source(source, "service/err301_cases.py",
                                 rules=[RULES["ERR301"]])
    out_of_scope, _ = analyze_source(source, "plain/err301_cases.py",
                                     rules=[RULES["ERR301"]])
    assert in_scope and not out_of_scope
    kernel, _ = analyze_source(source, "util/events.py",
                               rules=[RULES["ERR301"]])
    assert {f.line for f in kernel} == {f.line for f in in_scope}


def test_det002_benchmarks_exempt():
    source = "import time\nt = time.time()\n"
    flagged, _ = analyze_source(source, "src/repro/foo.py")
    exempt, _ = analyze_source(source, "benchmarks/bench_x.py")
    assert [f.rule for f in flagged] == ["DET002"]
    assert not exempt


def test_det003_rng_module_exempt():
    source = "import numpy as np\ng = np.random.default_rng()\n"
    flagged, _ = analyze_source(source, "src/repro/faults/injector.py")
    exempt, _ = analyze_source(source, "src/repro/util/rng.py")
    assert [f.rule for f in flagged] == ["DET003"]
    assert not exempt


def test_syntax_error_is_a_finding():
    findings, _ = analyze_source("def broken(:\n", "bad.py")
    assert [f.rule for f in findings] == ["SYNTAX"]


# -- suppression comments ----------------------------------------------------

def test_line_suppression_by_rule():
    source = ("import time\n"
              "t = time.time()  # detlint: disable=DET002 — host-side\n")
    findings, suppressed = analyze_source(source, "x.py")
    assert not findings and suppressed == 1


def test_line_suppression_wrong_rule_does_not_hide():
    source = "import time\nt = time.time()  # detlint: disable=DET003\n"
    findings, suppressed = analyze_source(source, "x.py")
    assert [f.rule for f in findings] == ["DET002"] and suppressed == 0


def test_line_suppression_all_rules():
    source = "import time\nt = time.time()  # detlint: disable\n"
    findings, suppressed = analyze_source(source, "x.py")
    assert not findings and suppressed == 1


def test_skip_file():
    source = "# detlint: skip-file\nimport time\nt = time.time()\n"
    findings, suppressed = analyze_source(source, "x.py")
    assert not findings and suppressed == 0


# -- baseline round-trip -----------------------------------------------------

def _violations(tmp_path, body):
    p = tmp_path / "mod.py"
    p.write_text(body)
    return p


def test_baseline_roundtrip(tmp_path):
    mod = _violations(tmp_path, "import time\nt = time.time()\n"
                                "u = time.monotonic()\n")
    findings, _ = analyze_paths([str(mod)])
    assert len(findings) == 2
    doc = baseline_from_findings(findings)
    baseline_file = tmp_path / "baseline.json"
    save_baseline(str(baseline_file), doc)
    loaded = load_baseline(str(baseline_file))
    new, baselined, stale = apply_baseline(findings, loaded)
    assert not new and len(baselined) == 2 and not stale


def test_baseline_budget_counts_duplicates(tmp_path):
    mod = _violations(tmp_path, "import time\nt = time.time()\n")
    findings, _ = analyze_paths([str(mod)])
    doc = baseline_from_findings(findings)
    # The same line duplicated exceeds the count budget: one new finding.
    mod.write_text("import time\nt = time.time()\nt = time.time()\n")
    findings2, _ = analyze_paths([str(mod)])
    new, baselined, stale = apply_baseline(findings2, doc)
    assert len(baselined) == 1 and len(new) == 1 and not stale


def test_baseline_goes_stale_when_fixed(tmp_path):
    mod = _violations(tmp_path, "import time\nt = time.time()\n")
    findings, _ = analyze_paths([str(mod)])
    doc = baseline_from_findings(findings)
    mod.write_text("t = 0.0\n")
    findings2, _ = analyze_paths([str(mod)])
    new, baselined, stale = apply_baseline(findings2, doc)
    assert not new and not baselined and len(stale) == 1


def test_baseline_survives_line_shifts(tmp_path):
    """The fingerprint anchors on line *content*, not line number."""
    mod = _violations(tmp_path, "import time\nt = time.time()\n")
    findings, _ = analyze_paths([str(mod)])
    doc = baseline_from_findings(findings)
    mod.write_text("import time\n\n\n# padding\nt = time.time()\n")
    findings2, _ = analyze_paths([str(mod)])
    new, baselined, stale = apply_baseline(findings2, doc)
    assert not new and len(baselined) == 1 and not stale


# -- CLI ---------------------------------------------------------------------

def test_cli_update_baseline_then_clean(tmp_path, capsys):
    mod = _violations(tmp_path, "import time\nt = time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(mod), "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    assert lint_main([str(mod), "--baseline", str(baseline)]) == 0
    # A fresh violation on top of the baseline fails the gate.
    mod.write_text("import time\nt = time.time()\nu = time.monotonic()\n")
    assert lint_main([str(mod), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "time.monotonic" in out and "1 new finding" in out


def test_cli_json_report(tmp_path, capsys):
    mod = _violations(tmp_path, "import time\nt = time.time()\n")
    assert lint_main([str(mod), "--no-baseline", "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["summary"] == {"new": 1, "baselined": 0, "suppressed": 0,
                                 "stale_baseline_entries": 0}
    (finding,) = report["findings"]
    assert finding["rule"] == "DET002" and not finding["baselined"]
    assert finding["fingerprint"]


def test_cli_select_and_unknown_rule(tmp_path, capsys):
    mod = _violations(tmp_path, "import time, random\n"
                                "t = time.time()\nr = random.random()\n")
    assert lint_main([str(mod), "--no-baseline", "--select", "DET003"]) == 1
    out = capsys.readouterr().out
    assert "DET003" in out and "DET002" not in out
    assert lint_main([str(mod), "--select", "NOPE999"]) == 2


def test_cli_missing_path(capsys):
    assert lint_main(["definitely/not/here.py"]) == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


# -- the gates the CI lint job relies on ------------------------------------

def test_self_check_src_repro_is_clean():
    """src/repro has zero unbaselined findings — the CI gate cannot rot."""
    findings, _ = analyze_paths([str(REPO_ROOT / "src" / "repro")])
    baseline = load_baseline(str(REPO_ROOT / "detlint-baseline.json"))
    new, _, stale = apply_baseline(findings, baseline)
    assert not new, "\n".join(f.format() for f in new)
    assert not stale, "baseline has stale entries: run --update-baseline"


def test_committed_baseline_is_empty():
    """The baseline starts empty; growing it needs a justified diff."""
    baseline = load_baseline(str(REPO_ROOT / "detlint-baseline.json"))
    assert baseline["findings"] == []


def test_ci_gate_fails_on_deliberate_det002(tmp_path):
    """The exact CI invocation exits 1 on a planted wall-clock call."""
    bad = tmp_path / "planted.py"
    bad.write_text("import time\n\ndef tick():\n    return time.time()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.static", str(bad),
         "--no-baseline", "--json"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stderr
    report = json.loads(proc.stdout)
    assert [f["rule"] for f in report["findings"]] == ["DET002"]


def test_ci_gate_passes_on_clean_tree(tmp_path):
    good = tmp_path / "clean.py"
    good.write_text("def tick(sim):\n    return sim.now\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.static", str(good),
         "--no-baseline"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
