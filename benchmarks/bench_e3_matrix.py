"""E3 — slide 15: Matrix Project, 14 images x 32 clusters = 448 cells.

Regenerates the test_environments matrix and runs a full matrix pass on a
(stubbed-runner) Jenkins server to exercise expansion, queueing over 16
executors, and Matrix Reloaded retrying exactly the failed subset.
"""

from repro.ci import BuildStatus, JenkinsServer, MatrixProject, matrix_reloaded
from repro.kadeploy import REFERENCE_IMAGES
from repro.testbed import build_grid5000
from repro.util import Simulator

from conftest import paper_row, print_table


def _run_matrix():
    sim = Simulator()
    server = JenkinsServer(sim, executors=16)
    testbed = build_grid5000()
    broken = {("centos7-min", "grisou"), ("debian8-xen", "azur")}

    def runner(build):
        yield sim.timeout(900.0)
        cell = (build.parameters["image"], build.parameters["cluster"])
        return BuildStatus.FAILURE if cell in broken else BuildStatus.SUCCESS

    server.register_job("test_environments", runner)
    project = MatrixProject("test_environments", axes={
        "image": [img.name for img in REFERENCE_IMAGES],
        "cluster": [c.uid for c in testbed.iter_clusters()],
    })
    builds = project.trigger_all(server)
    sim.run()
    retries = matrix_reloaded(project, server)
    sim.run()
    return project, builds, retries


def bench_e3_matrix(benchmark):
    project, builds, retries = benchmark.pedantic(_run_matrix, rounds=1,
                                                  iterations=1)
    failed = sum(1 for b in builds if b.status == BuildStatus.FAILURE)
    rows = [
        paper_row("images", 14, len(project.axes["image"])),
        paper_row("clusters", 32, len(project.axes["cluster"])),
        paper_row("configurations (14 x 32)", 448, project.cell_count),
        paper_row("builds executed", 448, len(builds)),
        paper_row("matrix-reloaded retries (failed only)", "-", len(retries)),
    ]
    print_table("E3: test_environments matrix (slide 15)", rows)
    assert project.cell_count == 448
    assert len(builds) == 448
    assert len(retries) == failed == 2
