"""External test scheduler: availability-aware triggering with policies."""

from .launcher import ExternalScheduler, TestCell
from .pernode import PerNodeVariant, make_pernode_scheduler
from .policies import Backoff, SchedulerPolicy

__all__ = [
    "SchedulerPolicy",
    "Backoff",
    "TestCell",
    "ExternalScheduler",
    "PerNodeVariant",
    "make_pernode_scheduler",
]
