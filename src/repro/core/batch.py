"""Multi-seed, multi-scenario campaign batches.

The paper's testbed earns trust by running *many* scenarios *often*; the
single-seed serial :func:`~repro.core.campaign.run_campaign` loop cannot
keep up with a seed × scenario sweep.  :func:`run_campaigns` fans the
matrix across ``multiprocessing`` workers (each world is an independent
simulation — embarrassingly parallel) and :func:`aggregate_runs` collapses
the per-seed reports into mean ± 95 % CI per metric.

The engine *streams*: results come back via ``imap_unordered`` as cells
finish (reassembled into matrix order at the end), each completion fires an
``on_cell`` progress callback, and a crashing cell is captured as a failed
:class:`CampaignRun` instead of killing the pool.  With a
:class:`~repro.core.store.CampaignStore` attached every finished cell is
durably archived, and ``resume=True`` skips cells the store already holds —
an interrupted sweep re-pays only its missing (or previously crashed)
cells.

Specs travel to workers as their JSON documents (``ScenarioSpec`` is fully
serializable), so the fan-out works with any start method and the exact
scenario a worker ran is what its report records.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import queue as queue_mod
import threading
import traceback
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from ..scenarios import get as get_preset
from ..scenarios.spec import ScenarioSpec
from .campaign import CampaignReport, run_scenario
from .store import CampaignStore, cell_hash, format_cell_key

__all__ = ["CampaignRun", "MetricSummary", "run_campaigns",
           "aggregate_runs", "summarize_runs", "shutdown_worker_pool"]

# -- warm worker pool ---------------------------------------------------------
#
# Worker processes are expensive to fork/spawn (each re-imports the whole
# package); a sweep driver calling run_campaigns() in a loop — parameter
# scans, resumed stores, the CLI compare flow — used to pay that startup
# for every batch.  The pool below survives between calls and is only
# rebuilt when the requested worker count changes.  Workers are stateless
# (cells travel as JSON specs and come back as reports), so reuse cannot
# leak simulation state across batches.

_warm_pool: Optional[multiprocessing.pool.Pool] = None
_warm_pool_size = 0
#: Serializes warm-pool batches across threads: the campaign service runs
#: one session per connection thread, and two threads resizing/draining a
#: shared Pool concurrently is undefined behaviour.  Held for the whole
#: warm branch of :func:`run_campaigns` (one batch at a time is also the
#: global dedupe cache's friend: the second identical sweep resumes from
#: the store instead of racing the first).
_warm_pool_lock = threading.RLock()


def _get_warm_pool(processes: int) -> multiprocessing.pool.Pool:
    global _warm_pool, _warm_pool_size
    if _warm_pool is not None and _warm_pool_size != processes:
        shutdown_worker_pool()
    if _warm_pool is None:
        _warm_pool = multiprocessing.Pool(processes=processes)
        _warm_pool_size = processes
    return _warm_pool


def shutdown_worker_pool() -> None:
    """Tear down the warm worker pool (no-op when none is alive).

    Registered via ``atexit``; call it explicitly to reclaim the worker
    processes early (e.g. after the last batch of a long-lived driver).
    """
    global _warm_pool, _warm_pool_size
    with _warm_pool_lock:
        if _warm_pool is not None:
            _warm_pool.terminate()
            _warm_pool.join()
            _warm_pool = None
            _warm_pool_size = 0


atexit.register(shutdown_worker_pool)

#: Scalar CampaignReport fields worth aggregating across seeds.
SCALAR_METRICS: tuple[str, ...] = (
    "bugs_filed",
    "bugs_fixed",
    "bugs_open",
    "bugs_unexplained",
    "faults_injected",
    "faults_detected",
    "faults_active_end",
    "detection_latency_days_median",
    "fix_time_days_median",
    "first_month_success",
    "last_month_success",
    "total_builds",
    "unstable_builds",
    "jobs_completed",
    "turnaround_mean_s",
    "wait_mean_s",
    "node_utilization",
    "grow_events",
    "shrink_events",
)


@dataclass(frozen=True)
class CampaignRun:
    """One (scenario, seed) cell of the batch matrix.

    ``report`` is ``None`` when the cell crashed; ``error`` then carries
    the worker's traceback.  ``spec_hash`` is the seed-independent content
    hash of the effective scenario (see :func:`repro.core.store.cell_hash`)
    — it is what lets :func:`aggregate_runs` detect two *different* specs
    masquerading under one name.  ``quarantined`` marks a poison cell
    (hung past its watchdog, or failed every supervised attempt): its
    failure is final and ``resume`` will not retry it.
    """

    scenario: str
    seed: int
    report: Optional[CampaignReport]
    spec_hash: str = ""
    error: Optional[str] = None
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.report is not None

    @property
    def error_summary(self) -> str:
        """Last line of the captured traceback (the exception itself)."""
        lines = (self.error or "").strip().splitlines()
        return lines[-1] if lines else "unknown error"


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± 95 % confidence interval of one metric across seeds."""

    mean: float
    std: float
    ci95: float  # half-width; the interval is mean ± ci95
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci95:.2f} (n={self.n})"


#: Two-sided 95 % Student-t critical values by degrees of freedom.  Seed
#: sweeps are small (n of 3-10), where the normal z=1.96 understates the
#: interval badly (t(3)=3.182); beyond 30 dof the normal approximation
#: is within 2 %.
_T95: tuple[float, ...] = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t95(dof: int) -> float:
    if dof <= 0:
        return float("nan")
    if dof <= len(_T95):
        return _T95[dof - 1]
    return 1.96


def _run_cell(payload: tuple[int, dict, int, Optional[float]]
              ) -> tuple[int, Optional[CampaignReport], Optional[str]]:
    """Worker entry point (top-level so it pickles under 'spawn' too).

    Returns ``(matrix_index, report, error)``.  A crashing cell comes back
    as a traceback string instead of poisoning the pool — one sick
    scenario must not cost the rest of the matrix.
    """
    index, spec_doc, seed, months = payload
    try:
        spec = ScenarioSpec.from_dict(spec_doc)
        _, report = run_scenario(spec, seed=seed, months=months)
        return index, report, None
    except Exception:
        return index, None, traceback.format_exc()


def _run_cell_child(payload: tuple[int, dict, int, Optional[float]],
                    queue: "multiprocessing.Queue") -> None:
    """Supervised-mode child entry point: one process, one cell.

    The result travels back over a queue; a child that never delivers
    (hang, segfault, ``os._exit``) is detected by the supervisor via the
    wall-clock watchdog / its exit code — the parent never blocks on it.
    """
    queue.put(_run_cell(payload))


class _SupervisedCell:
    """Bookkeeping for one in-flight supervised cell."""

    __slots__ = ("payload", "attempt", "proc", "queue", "deadline")

    def __init__(self, payload, attempt: int, ctx, timeout_s, now):
        self.payload = payload
        self.attempt = attempt
        self.queue = ctx.Queue(maxsize=1)
        self.proc = ctx.Process(target=_run_cell_child,
                                args=(payload, self.queue), daemon=True)
        self.proc.start()
        self.deadline = (now + timeout_s) if timeout_s is not None else None


def _run_supervised(pending, finish, workers: int,
                    cell_timeout_s: Optional[float],
                    max_cell_attempts: int,
                    retry_backoff_s: float) -> None:
    """Process-per-cell execution with watchdog, retries and quarantine.

    Unlike the pool paths, every attempt gets a *fresh* worker process,
    so a hung or crashed cell costs exactly one process — terminated and
    replaced — and never wedges a shared pool.  Real wall-clock time
    (not sim time) governs the watchdog, deliberately: a hung *process*
    is a host-level fault, outside the simulation's determinism contract.
    """
    import time  # local: keeps the module import graph sim-clock-clean

    ctx = multiprocessing.get_context()
    #: (payload, attempt, not_before): retries wait out their backoff.
    waiting: list[tuple[tuple, int, float]] = [
        (payload, 1, 0.0) for payload in pending]
    active: dict[int, _SupervisedCell] = {}

    def retire(cell: _SupervisedCell, error: Optional[str],
               report, timed_out: bool) -> None:
        """One attempt is over: retry, quarantine, or finish."""
        index = cell.payload[0]
        if error is None:
            finish(index, report, None)
            return
        if timed_out:
            # Deterministic cells hang deterministically: retrying a
            # watchdog kill would hang again.  Straight to quarantine.
            finish(index, None, error, quarantined=True)
            return
        if cell.attempt < max_cell_attempts:
            now = time.monotonic()  # detlint: disable=DET002
            backoff = retry_backoff_s * 2 ** (cell.attempt - 1)
            waiting.append((cell.payload, cell.attempt + 1, now + backoff))
            return
        # Out of attempts.  With retries configured this cell is poison
        # (it failed repeatedly); without, it is an ordinary recorded
        # failure, exactly as the unsupervised paths would report it.
        finish(index, None, error, quarantined=max_cell_attempts > 1)

    def reap(cell: _SupervisedCell, now: float) -> bool:
        """Check one in-flight attempt; True when it retired."""
        try:
            result = cell.queue.get_nowait()
        except queue_mod.Empty:
            if cell.proc.is_alive():
                if cell.deadline is not None and now >= cell.deadline:
                    cell.proc.terminate()
                    cell.proc.join(timeout=5.0)
                    retire(cell, f"cell timed out after {cell_timeout_s}s "
                           "wall clock; worker terminated and replaced",
                           None, timed_out=True)
                    return True
                return False
            # Dead without a result: give the queue feeder one final,
            # bounded chance, then call it a crash.
            try:
                result = cell.queue.get(timeout=0.2)
            except queue_mod.Empty:
                retire(cell, "worker died without a result "
                       f"(exit code {cell.proc.exitcode})", None,
                       timed_out=False)
                return True
        cell.proc.join(timeout=5.0)
        _, report, error = result
        retire(cell, error, report, timed_out=False)
        return True

    while len(waiting) + len(active) > 0:
        now = time.monotonic()  # detlint: disable=DET002
        # Launch every retry whose backoff has elapsed, capacity allowing.
        still_waiting = []
        for payload, attempt, not_before in waiting:
            if len(active) < workers and now >= not_before:
                active[payload[0]] = _SupervisedCell(
                    payload, attempt, ctx, cell_timeout_s, now)
            else:
                still_waiting.append((payload, attempt, not_before))
        waiting[:] = still_waiting
        for index in list(active):
            if reap(active[index], time.monotonic()):  # detlint: disable=DET002
                del active[index]
        time.sleep(0.02)


#: Progress callback: ``on_cell(run, cached)`` fires once per finished
#: cell, in completion order; ``cached`` is True for store hits.
ProgressCallback = Callable[[CampaignRun, bool], None]


def run_campaigns(
    specs: Sequence[Union[ScenarioSpec, str]],
    seeds: Iterable[int],
    workers: Optional[int] = None,
    months: Optional[float] = None,
    store: Optional[Union[CampaignStore, str, "os.PathLike[str]"]] = None,
    resume: bool = False,
    on_cell: Optional[ProgressCallback] = None,
    warm_pool: bool = True,
    chunksize: Optional[int] = None,
    cell_timeout_s: Optional[float] = None,
    max_cell_attempts: int = 1,
    retry_backoff_s: float = 0.25,
) -> list[CampaignRun]:
    """Run every scenario × seed combination; returns one run per cell.

    ``specs`` may mix :class:`ScenarioSpec` values and preset names
    (resolved via :func:`repro.scenarios.get`).  ``workers`` defaults to
    ``min(len(matrix), cpu_count)``; ``workers=1`` runs serially in
    process (useful for debugging and for determinism tests).  ``months``
    optionally overrides every spec's horizon.

    ``store`` (a :class:`~repro.core.store.CampaignStore` or a path to
    one) durably archives each cell as it finishes; with ``resume=True``
    cells the store already holds *successfully* are returned from the
    archive instead of re-executed (recorded failures are retried, so a
    resume after a transient crash heals the matrix).  ``on_cell`` fires
    once per finished cell in completion order.

    A cell that raises does not abort the sweep: its :class:`CampaignRun`
    carries the traceback in ``error`` and ``report=None``, and is
    recorded as a failure when a store is attached.

    ``warm_pool=True`` (the default) keeps the worker pool alive between
    calls, so a driver looping over batches pays process startup once;
    ``warm_pool=False`` restores the old one-shot pool.  ``chunksize``
    controls how many cells ride one IPC message (default: adaptive,
    1 for small matrices scaling up to 8) — larger chunks cut dispatch
    overhead on big sweeps at the cost of coarser work stealing.

    ``cell_timeout_s`` / ``max_cell_attempts`` switch on *supervised*
    execution (process-per-cell instead of the pool): a cell past its
    wall-clock timeout is killed, recorded as a quarantined timeout
    failure, and its worker replaced; a crashing cell is retried up to
    ``max_cell_attempts`` times with exponential backoff
    (``retry_backoff_s · 2^(attempt-1)``) and quarantined once the
    attempts are spent.  Quarantined cells are final: ``resume=True``
    returns them from the store instead of looping on a poison cell.
    Leave both at their defaults for the original pool behaviour.

    Results are deterministic per cell and come back in matrix order
    (scenario-major, seed-minor) regardless of worker count, pool warmth
    or chunking.
    """
    resolved = [get_preset(s) if isinstance(s, str) else s for s in specs]
    seed_list = list(seeds)
    matrix = [(spec, seed) for spec in resolved for seed in seed_list]
    if not matrix:
        return []
    if store is not None and not isinstance(store, CampaignStore):
        store = CampaignStore(store)

    # Hash/serialize each spec once; every cell of its seed row reuses it.
    hashes = {id(spec): cell_hash(spec, months) for spec in resolved}
    docs = {id(spec): spec.to_dict() for spec in resolved}
    runs: list[Optional[CampaignRun]] = [None] * len(matrix)
    pending: list[tuple[int, dict, int, Optional[float]]] = []
    for index, (spec, seed) in enumerate(matrix):
        if store is not None and resume:
            effective = months if months is not None else spec.months
            key = format_cell_key(hashes[id(spec)], seed, effective)
            cached = store.get(key)
        else:
            cached = None
        if cached is not None and (cached.ok or cached.quarantined):
            # Successes resume from the archive; so do quarantined
            # failures — a poison cell must not be retried forever.
            runs[index] = CampaignRun(
                scenario=spec.name, seed=seed, report=cached.report,
                spec_hash=cached.spec_hash, error=cached.error,
                quarantined=cached.quarantined)
            if on_cell is not None:
                on_cell(runs[index], True)
        else:
            pending.append((index, docs[id(spec)], seed, months))

    def finish(index: int, report: Optional[CampaignReport],
               error: Optional[str], quarantined: bool = False) -> None:
        spec, seed = matrix[index]
        runs[index] = CampaignRun(scenario=spec.name, seed=seed,
                                  report=report, spec_hash=hashes[id(spec)],
                                  error=error, quarantined=quarantined)
        if store is not None:
            if error is None:
                store.record_success(spec, seed, report, months=months,
                                     spec_hash=hashes[id(spec)])
            else:
                store.record_failure(spec, seed, error, months=months,
                                     spec_hash=hashes[id(spec)],
                                     quarantined=quarantined)
        if on_cell is not None:
            on_cell(runs[index], False)

    if workers is None:
        workers = min(len(matrix), os.cpu_count() or 1)
    supervised = cell_timeout_s is not None or max_cell_attempts > 1
    if supervised:
        _run_supervised(pending, finish, workers=max(1, workers),
                        cell_timeout_s=cell_timeout_s,
                        max_cell_attempts=max_cell_attempts,
                        retry_backoff_s=retry_backoff_s)
    elif workers <= 1 or len(pending) <= 1:
        for payload in pending:
            finish(*_run_cell(payload))
    else:
        if chunksize is None:
            chunksize = max(1, min(8, len(pending) // (workers * 4)))
        if warm_pool:
            # Sized by `workers`, not by this batch's pending count: a
            # mostly-cached resume batch must reuse the warm pool, not
            # tear it down to fit its two missing cells (idle workers are
            # far cheaper than a pool rebuild).
            with _warm_pool_lock:
                pool = _get_warm_pool(workers)
                try:
                    # Streaming: archive/report each cell the moment it
                    # lands, in completion order; `runs` reassembles
                    # matrix order.
                    for result in pool.imap_unordered(_run_cell, pending,
                                                      chunksize):
                        finish(*result)
                except BaseException:
                    # A broken or abandoned pool (worker killed mid-batch,
                    # KeyboardInterrupt while draining) must not poison
                    # the next call; dispose of it before propagating.
                    shutdown_worker_pool()
                    raise
        else:
            with multiprocessing.Pool(
                    processes=min(workers, len(pending))) as pool:
                for result in pool.imap_unordered(_run_cell, pending,
                                                  chunksize):
                    finish(*result)
    assert all(r is not None for r in runs)
    return runs  # type: ignore[return-value]


def aggregate_runs(
    runs: Sequence[CampaignRun],
) -> dict[str, dict[str, MetricSummary]]:
    """Per-scenario mean ± 95 % CI for every scalar metric.

    NaN metric values (e.g. the median detection latency of a campaign
    that detected nothing) are dropped from that metric's sample, as are
    failed runs (``report=None``).

    Two *different* specs sharing one scenario name would silently merge
    into a single bogus confidence interval; runs carry the spec content
    hash, so that conflict is detected and raises ``ValueError`` instead.
    """
    by_scenario: dict[str, list[CampaignRun]] = {}
    for run in runs:
        if not run.ok:
            continue
        by_scenario.setdefault(run.scenario, []).append(run)
    for scenario, cell_runs in by_scenario.items():
        hashes = {r.spec_hash for r in cell_runs if r.spec_hash}
        if len(hashes) > 1:
            raise ValueError(
                f"scenario name {scenario!r} covers {len(hashes)} different "
                f"specs ({', '.join(sorted(hashes))}); aggregating them into "
                "one CI would be meaningless — rename one of the specs")
    out: dict[str, dict[str, MetricSummary]] = {}
    for scenario, cell_runs in by_scenario.items():
        metrics: dict[str, MetricSummary] = {}
        for name in SCALAR_METRICS:
            values = [float(getattr(r.report, name)) for r in cell_runs]
            values = [v for v in values if not math.isnan(v)]
            if not values:
                metrics[name] = MetricSummary(float("nan"), float("nan"),
                                              float("nan"), 0)
                continue
            n = len(values)
            mean = sum(values) / n
            var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
            std = math.sqrt(var)
            ci95 = _t95(n - 1) * std / math.sqrt(n) if n > 1 else 0.0
            metrics[name] = MetricSummary(mean=mean, std=std, ci95=ci95, n=n)
        out[scenario] = metrics
    return out


def summarize_runs(runs: Sequence[CampaignRun],
                   metrics: Sequence[str] = ("bugs_filed", "bugs_fixed",
                                             "faults_detected",
                                             "last_month_success",
                                             "total_builds")) -> str:
    """Human-readable aggregate table (one block per scenario).

    Failed cells are excluded from the statistics and listed at the end.
    """
    aggregated = aggregate_runs(runs)
    lines = []
    for scenario in sorted(aggregated):
        seeds = sorted(r.seed for r in runs if r.scenario == scenario and r.ok)
        lines.append(f"{scenario}  (seeds: {', '.join(map(str, seeds))})")
        for name in metrics:
            lines.append(f"  {name:<32} {aggregated[scenario][name]}")
    failed = [r for r in runs if not r.ok]
    if failed:
        lines.append(f"failed cells ({len(failed)}):")
        for r in failed:
            lines.append(f"  {r.scenario} @ seed {r.seed}: {r.error_summary}")
    return "\n".join(lines)
