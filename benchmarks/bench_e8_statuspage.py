"""E8 — slides 18-19: the external status page.

Runs the framework for one simulated week on a faulty testbed and
regenerates the three views the paper requires: per-test across clusters,
per-cluster across tests, and the historical success trend.
"""

from repro import FrameworkBuilder
from repro.analysis import StatusPage
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec
from repro.util import WEEK

from conftest import paper_row, print_table

_SPEC = ScenarioSpec(
    name="e8-statuspage",
    seed=3,
    clusters=("grisou", "grimoire", "graoully", "nova", "taurus"),
    fault_mean_interarrival_s=86_400.0,
    workload=WorkloadConfig(target_utilization=0.3),
)


def _run_week():
    fw = FrameworkBuilder(_SPEC).build()
    for _ in range(8):
        fw.injector.inject()
    fw.start()
    fw.run_until(WEEK)
    return fw


def bench_e8_statuspage(benchmark):
    fw = benchmark.pedantic(_run_week, rounds=1, iterations=1)
    page = StatusPage(fw.history, fw.testbed)
    rendered = page.render(now=fw.sim.now)
    print()
    print(rendered)
    print(page.render_trend(until=fw.sim.now))
    grid = page.grid()
    per_cluster = page.per_cluster_status("grisou")
    rows = [
        paper_row("families on the page", 16, len(grid)),
        paper_row("per-test view works", "yes",
                  "yes" if page.per_family_status("refapi") else "no"),
        paper_row("per-cluster view works", "yes",
                  "yes" if per_cluster else "no"),
        paper_row("historical trend points", ">0",
                  len(fw.history.weekly_success_series(WEEK))),
    ]
    print_table("E8: status page views (slide 18 requirements)", rows)
    assert len(grid) >= 12  # most families ran within the week
    assert per_cluster
    assert "legend" in rendered
