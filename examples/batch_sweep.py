#!/usr/bin/env python
"""Seed x scenario sweeps: the paper's numbers with error bars.

A single campaign is one draw from a stochastic world; the paper's claims
("~118 bugs filed", "reliability climbs to 93 %") deserve confidence
intervals.  ``run_campaigns`` fans a seed x scenario matrix across worker
processes and ``summarize_runs`` reports mean ± 95 % CI per metric.

Every finished cell is archived to a ``CampaignStore`` (JSONL, written
under ``examples/results/`` next to this script) as it streams in, so
re-running this script resumes instead of recomputing — delete the store
file to start cold.  The results directory is gitignored: run artifacts
never land in the repo root.

Run:  python examples/batch_sweep.py [n_seeds] [workers]
      (defaults: 4 seeds, one worker per matrix cell up to cpu_count)
"""

import sys
import time
from pathlib import Path

from repro import run_campaigns, scenarios, summarize_runs

RESULTS_DIR = Path(__file__).resolve().parent / "results"
STORE = RESULTS_DIR / "batch_sweep_store.jsonl"


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    # Two contrasting worlds, shrunk to the smoke testbed so the sweep
    # finishes in seconds; drop the derive() calls for the full-size study.
    smoke = scenarios.get("tiny-smoke")
    stormy = scenarios.get("flaky-services").derive(
        name="flaky-small", clusters=smoke.clusters, backlog_faults=10,
        months=smoke.months, workload=smoke.workload)

    matrix = [smoke, stormy]
    total = len(matrix) * n_seeds
    print(f"sweeping {len(matrix)} scenarios x {n_seeds} seeds "
          f"(store: {STORE})...")

    done = [0]

    def progress(run, cached):
        done[0] += 1
        status = "cached" if cached else ("ok" if run.ok else "FAILED")
        print(f"  [{done[0]}/{total}] {run.scenario} @ seed {run.seed}: {status}")

    t0 = time.perf_counter()
    runs = run_campaigns(matrix, seeds=range(n_seeds), workers=workers,
                         store=STORE, resume=True, on_cell=progress)
    elapsed = time.perf_counter() - t0
    print(f"{len(runs)} campaigns in {elapsed:.1f}s wall-clock "
          "(re-run to resume from the store)\n")

    print("aggregate (mean ± 95% CI across seeds):")
    print(summarize_runs(runs))

    smoke_bugs = [r.report.bugs_filed for r in runs
                  if r.ok and r.scenario == smoke.name]
    storm_bugs = [r.report.bugs_filed for r in runs
                  if r.ok and r.scenario == stormy.name]
    print(f"\nper-seed bugs filed: {smoke.name}={smoke_bugs} "
          f"{stormy.name}={storm_bugs}")


if __name__ == "__main__":
    main()
