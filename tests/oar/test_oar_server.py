"""Tests for the OAR server: FCFS + backfilling, ALL-nodes, immediate jobs."""

import pytest

from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import JobState, OarDatabase, OarServer
from repro.testbed import CLUSTER_SPECS, ReferenceApi, build_grid5000
from repro.util import HOUR, RngStreams, Simulator


@pytest.fixture()
def world():
    """Small three-cluster testbed (nancy subset: 72 nodes) for speed."""
    specs = [s for s in CLUSTER_SPECS if s.name in ("grisou", "grimoire", "graoully")]
    testbed = build_grid5000(specs)
    sim = Simulator()
    park = MachinePark.from_testbed(sim, testbed, RngStreams(seed=5))
    db = OarDatabase(ReferenceApi(testbed), ServiceHealth())
    oar = OarServer(sim, db, park)
    return sim, oar, park, testbed


def test_job_starts_immediately_on_idle_testbed(world):
    sim, oar, _, _ = world
    job = oar.submit("cluster='grisou'/nodes=2,walltime=1", auto_duration=600.0)
    sim.run(until=1.0)
    assert job.state == JobState.RUNNING
    assert job.started_at == 0.0
    assert len(job.assigned_nodes) == 2
    assert all(u.startswith("grisou-") for u in job.assigned_nodes)


def test_job_terminates_after_duration(world):
    sim, oar, _, _ = world
    job = oar.submit("nodes=1,walltime=2", auto_duration=1800.0)
    sim.run(until=HOUR)
    assert job.state == JobState.TERMINATED
    assert job.finished_at == 1800.0
    assert not job.killed_by_walltime


def test_walltime_kill_for_held_job(world):
    sim, oar, _, _ = world
    job = oar.submit("nodes=1,walltime=1")  # no auto_duration: held
    sim.run(until=2 * HOUR)
    assert job.state == JobState.ERROR
    assert job.killed_by_walltime
    assert job.run_time_s == HOUR


def test_release_ends_held_job(world):
    sim, oar, _, _ = world
    job = oar.submit("nodes=1,walltime=2")

    def driver():
        yield job.started_event
        yield sim.timeout(500.0)
        oar.release(job)

    sim.process(driver())
    sim.run()
    assert job.state == JobState.TERMINATED
    assert job.run_time_s == 500.0


def test_fcfs_queueing_when_cluster_full(world):
    sim, oar, _, testbed = world
    n = testbed.cluster("grimoire").node_count
    first = oar.submit(f"cluster='grimoire'/nodes={n},walltime=2", auto_duration=2 * HOUR)
    second = oar.submit("cluster='grimoire'/nodes=1,walltime=1", auto_duration=600.0)
    sim.run(until=1.0)
    assert first.state == JobState.RUNNING
    assert second.state == JobState.SCHEDULED
    assert second.scheduled_start == pytest.approx(2 * HOUR)
    sim.run(until=3 * HOUR)
    assert second.state == JobState.TERMINATED
    assert second.wait_time_s == pytest.approx(2 * HOUR)


def test_backfilling_small_job_slips_ahead(world):
    sim, oar, _, testbed = world
    n = testbed.cluster("grisou").node_count
    # half the cluster busy for 1h
    oar.submit(f"cluster='grisou'/nodes={n // 2},walltime=1", auto_duration=HOUR)
    # wide job needs the whole cluster -> reserved at t=1h
    wide = oar.submit(f"cluster='grisou'/nodes={n},walltime=1", auto_duration=HOUR)
    # small short job fits in the remaining half right now without delaying wide
    small = oar.submit("cluster='grisou'/nodes=2,walltime=0:30", auto_duration=900.0)
    sim.run(until=10.0)
    assert small.state == JobState.RUNNING  # backfilled
    assert wide.state == JobState.SCHEDULED
    assert wide.scheduled_start == pytest.approx(HOUR)
    sim.run(until=3 * HOUR)
    assert wide.state == JobState.TERMINATED
    assert wide.wait_time_s == pytest.approx(HOUR)


def test_requeue_after_node_death_preserves_fcfs_order(world):
    """A job whose reserved node dies re-enters the queue at its job-id
    rank, not behind later-submitted waiters (conservative backfilling's
    FCFS fairness)."""
    sim, oar, park, testbed = world
    n_grim = testbed.cluster("grimoire").node_count
    n_grao = testbed.cluster("graoully").node_count
    # One graoully node is down, so whole-graoully requests wait forever.
    park[f"graoully-{n_grao}"].crash()
    blocker = oar.submit(f"cluster='grimoire'/nodes={n_grim},walltime=10",
                         auto_duration=10 * HOUR)                      # id 1
    victim = oar.submit(f"cluster='grimoire'/nodes={n_grim},walltime=1",
                        auto_duration=HOUR)                            # id 2
    waiter_a = oar.submit(f"cluster='graoully'/nodes={n_grao},walltime=1")  # id 3
    waiter_b = oar.submit(f"cluster='graoully'/nodes={n_grao},walltime=1")  # id 4
    sim.run(until=1.0)
    assert blocker.state == JobState.RUNNING
    assert victim.state == JobState.SCHEDULED
    assert [j.job_id for j in oar._waiting] == [3, 4]
    # One of the victim's reserved nodes dies an hour before its start.
    sim.call_at(9 * HOUR, park[victim.assigned_nodes[0]].crash)
    sim.run(until=10 * HOUR + 60.0)
    # The victim is back to WAITING (7 alive nodes < the 8 it needs) and
    # slotted *ahead* of the later-submitted waiters, not appended.
    assert victim.state == JobState.WAITING
    assert [j.job_id for j in oar._waiting] == [2, 3, 4]
    assert waiter_a.state == JobState.WAITING
    assert waiter_b.state == JobState.WAITING


def test_nodes_all_takes_whole_cluster(world):
    sim, oar, _, testbed = world
    job = oar.submit("cluster='graoully'/nodes=ALL,walltime=1", auto_duration=600.0)
    sim.run(until=1.0)
    assert job.state == JobState.RUNNING
    assert len(job.assigned_nodes) == testbed.cluster("graoully").node_count


def test_nodes_all_waits_for_last_node(world):
    sim, oar, _, _ = world
    blocker = oar.submit("cluster='graoully'/nodes=1,walltime=5", auto_duration=5 * HOUR)
    whole = oar.submit("cluster='graoully'/nodes=ALL,walltime=1", auto_duration=600.0)
    sim.run(until=1.0)
    assert blocker.state == JobState.RUNNING
    assert whole.state == JobState.SCHEDULED
    assert whole.scheduled_start == pytest.approx(5 * HOUR)


def test_immediate_job_on_idle_cluster_runs(world):
    sim, oar, _, _ = world
    job = oar.submit("cluster='grisou'/nodes=4,walltime=1", immediate=True,
                     auto_duration=600.0)
    sim.run(until=1.0)
    assert job.state == JobState.RUNNING


def test_immediate_job_on_busy_cluster_cancelled(world):
    sim, oar, _, testbed = world
    n = testbed.cluster("grimoire").node_count
    oar.submit(f"cluster='grimoire'/nodes={n},walltime=5", auto_duration=5 * HOUR)
    sim.run(until=1.0)
    job = oar.submit("cluster='grimoire'/nodes=1,walltime=1", immediate=True)
    assert job.state == JobState.CANCELLED
    assert job.done_event.triggered


def test_multipart_request_starts_simultaneously(world):
    sim, oar, _, _ = world
    job = oar.submit(
        "cluster='grisou'/nodes=2+cluster='graoully'/nodes=3,walltime=1",
        auto_duration=600.0,
    )
    sim.run(until=1.0)
    assert job.state == JobState.RUNNING
    part1, part2 = job.assignment
    assert len(part1) == 2 and all(u.startswith("grisou-") for u in part1)
    assert len(part2) == 3 and all(u.startswith("graoully-") for u in part2)


def test_no_matching_resources_waits_forever(world):
    sim, oar, _, _ = world
    job = oar.submit("cluster='nonexistent'/nodes=1,walltime=1")
    sim.run(until=HOUR)
    assert job.state == JobState.WAITING


def test_crashed_node_excluded_from_scheduling(world):
    sim, oar, park, testbed = world
    park["graoully-1"].crash()
    assert oar.node_state("graoully-1") == "Suspected"
    n = testbed.cluster("graoully").node_count
    job = oar.submit(f"cluster='graoully'/nodes={n},walltime=1", auto_duration=60.0)
    sim.run(until=1.0)
    assert job.state == JobState.WAITING  # n nodes requested, only n-1 alive


def test_nodes_all_adapts_to_alive_set(world):
    sim, oar, park, testbed = world
    park["graoully-1"].crash()
    job = oar.submit("cluster='graoully'/nodes=ALL,walltime=1", auto_duration=60.0)
    sim.run(until=1.0)
    assert job.state == JobState.RUNNING
    assert len(job.assigned_nodes) == testbed.cluster("graoully").node_count - 1
    assert "graoully-1" not in job.assigned_nodes


def test_node_crash_before_start_requeues_job(world):
    sim, oar, park, testbed = world
    n = testbed.cluster("grimoire").node_count
    oar.submit(f"cluster='grimoire'/nodes={n},walltime=1", auto_duration=HOUR)
    queued = oar.submit(f"cluster='grimoire'/nodes={n},walltime=1", auto_duration=60.0)
    sim.run(until=1.0)
    assert queued.state == JobState.SCHEDULED
    victim = queued.assigned_nodes[0]
    sim.call_in(30 * 60, park[victim].crash)
    sim.run(until=HOUR + 10)
    # reservation was invalidated; job went back to waiting (n > alive)
    assert queued.state == JobState.WAITING


def test_early_release_pulls_forward(world):
    sim, oar, _, testbed = world
    n = testbed.cluster("graoully").node_count
    long_job = oar.submit(f"cluster='graoully'/nodes={n},walltime=10")
    follower = oar.submit(f"cluster='graoully'/nodes={n},walltime=1", auto_duration=60.0)
    sim.run(until=1.0)
    assert follower.scheduled_start == pytest.approx(10 * HOUR)

    sim.call_at(HOUR, lambda: oar.release(long_job))  # finish 9h early
    sim.run(until=2 * HOUR)
    assert follower.state == JobState.TERMINATED
    # pulled forward at the next (batched) replanning pass
    assert follower.started_at == pytest.approx(HOUR + oar.replan_batch_s)


def test_cancel_waiting_job(world):
    sim, oar, _, _ = world
    job = oar.submit("cluster='nonexistent'/nodes=1,walltime=1")
    oar.cancel(job)
    assert job.state == JobState.CANCELLED
    assert oar.waiting_count() == 0


def test_cancel_scheduled_job_frees_reservation(world):
    sim, oar, _, testbed = world
    n = testbed.cluster("grimoire").node_count
    oar.submit(f"cluster='grimoire'/nodes={n},walltime=2", auto_duration=2 * HOUR)
    queued = oar.submit(f"cluster='grimoire'/nodes={n},walltime=2", auto_duration=60.0)
    third = oar.submit(f"cluster='grimoire'/nodes={n},walltime=1", auto_duration=60.0)
    sim.run(until=1.0)
    assert third.scheduled_start == pytest.approx(4 * HOUR)
    oar.cancel(queued)
    sim.run(until=5 * HOUR)
    # the cancel triggers a replan; third's reservation moves up to the
    # first job's completion
    assert third.started_at == pytest.approx(2 * HOUR)


def test_cancel_running_job_raises(world):
    sim, oar, _, _ = world
    job = oar.submit("nodes=1,walltime=1", auto_duration=HOUR)
    sim.run(until=1.0)
    with pytest.raises(Exception):
        oar.cancel(job)


def test_utilization_metric(world):
    sim, oar, _, testbed = world
    assert oar.utilization() == 0.0
    total = testbed.node_count
    job = oar.submit(f"nodes={total // 2},walltime=1", auto_duration=HOUR)
    sim.run(until=1.0)
    assert oar.utilization() == pytest.approx((total // 2) / total)
    _ = job


def test_allocated_nodes_report_load(world):
    sim, oar, park, _ = world
    job = oar.submit("cluster='grisou'/nodes=1,walltime=1", auto_duration=1800.0)
    sim.run(until=1.0)
    uid = job.assigned_nodes[0]
    assert park[uid].cpu_load > 0.5
    sim.run(until=HOUR)
    assert park[uid].cpu_load < 0.1


def test_no_double_allocation_under_load(world):
    sim, oar, _, _ = world
    jobs = []
    for i in range(40):
        sim.call_in(i * 60.0, lambda i=i: jobs.append(
            oar.submit("cluster='grisou'/nodes=8,walltime=1",
                       auto_duration=1200.0 + 60 * i)))
    sim.run(until=6 * HOUR)
    # reconstruct intervals: no node may host two overlapping jobs
    intervals: dict[str, list[tuple[float, float]]] = {}
    for job in jobs:
        if job.started_at is None:
            continue
        for uid in job.assigned_nodes:
            intervals.setdefault(uid, []).append((job.started_at, job.finished_at or 1e18))
    for uid, spans in intervals.items():
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"overlap on {uid}"


def test_housekeeping_purges_gantt(world):
    sim, oar, _, _ = world
    for _ in range(5):
        oar.submit("nodes=1,walltime=0:10", auto_duration=300.0)
    sim.run(until=HOUR)
    oar.housekeeping(keep_horizon_s=60.0)
    tl = oar.gantt.timeline(oar.db.node_uids()[0])
    assert len(tl) <= 1
