"""Synthetic Grid'5000-shaped testbed generator.

Builds a :class:`~repro.testbed.description.TestbedDescription` reproducing
the paper's slide-6 inventory **exactly**:

* 8 sites, 32 clusters, 894 nodes, 8490 cores, 10 Gbps backbone;
* exactly 18 Dell clusters (dellbios test family),
* exactly 12 Infiniband clusters (mpigraph test family),
* exactly 9 disk-testable clusters (disk test family),

so that the slide-21 coverage table (751 test configurations) is exact.

Cluster names and hardware mixes echo the real testbed circa 2017 but node
counts are synthetic (the real per-cluster inventory is not in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .catalog import GPU_MODELS, IB_MODELS, cpu_for, disk_model, nic_model
from .description import (
    BiosSettings,
    ClusterDescription,
    CpuSpec,
    DiskSpec,
    GpuSpec,
    InfinibandSpec,
    NicSpec,
    NodeDescription,
    PduPort,
    SiteDescription,
    TestbedDescription,
)

__all__ = ["ClusterSpec", "CLUSTER_SPECS", "SITE_NAMES", "build_grid5000"]

#: The eight paper-era Grid'5000 sites.
SITE_NAMES: tuple[str, ...] = (
    "grenoble",
    "lille",
    "luxembourg",
    "lyon",
    "nancy",
    "nantes",
    "rennes",
    "sophia",
)

#: Ports per power distribution unit.
_PDU_PORTS = 24


@dataclass(frozen=True)
class ClusterSpec:
    """Static recipe for one synthetic cluster."""

    site: str
    name: str
    nodes: int
    cpu_model: str
    cpu_count: int
    ram_gb: int
    vendor: str
    chassis: str
    vintage: int
    nic_models: tuple[str, ...]  # first one is the primary (mounted) NIC
    disk_models: tuple[str, ...]  # first one is the system disk
    ib_rate: Optional[int] = None
    gpu_model: Optional[str] = None
    gpu_count: int = 0
    boot_time_s: float = 180.0


# Per-node core counts are cpu_count x catalog cores; totals are asserted in
# build_grid5000:  894 nodes / 8490 cores / 32 clusters / 8 sites.
CLUSTER_SPECS: tuple[ClusterSpec, ...] = (
    # -- grenoble (4 clusters) -------------------------------------------------
    ClusterSpec("grenoble", "edel", 40, "Intel Xeon L5420", 2, 24, "bull", "Bull R422-E1", 2008,
                ("Broadcom NetXtreme BCM5720",), ("ST3250310NS",), ib_rate=40, boot_time_s=260.0),
    ClusterSpec("grenoble", "genepi", 30, "Intel Xeon E5420", 2, 8, "bull", "Bull R422-E1", 2008,
                ("Broadcom NetXtreme BCM5720",), ("ST3250310NS",), ib_rate=40, boot_time_s=260.0),
    ClusterSpec("grenoble", "adonis", 10, "Intel Xeon E5520", 2, 24, "bull", "Bull R422-E2", 2009,
                ("Broadcom NetXtreme BCM5720",), ("WD2502ABYS",), ib_rate=40,
                gpu_model="NVIDIA Tesla S1070", gpu_count=2, boot_time_s=240.0),
    ClusterSpec("grenoble", "digitalis", 6, "Intel Xeon X5670", 2, 48, "hp", "HP DL360 G7", 2010,
                ("Intel 82576 Gigabit",), ("HUA722010CLA330",), boot_time_s=220.0),
    # -- lille (4 clusters) ----------------------------------------------------
    ClusterSpec("lille", "chetemi", 15, "Intel Xeon E5-2660 v2", 2, 256, "dell", "Dell R630", 2016,
                ("Intel X710 10-Gigabit", "Broadcom NetXtreme BCM5720"),
                ("PERC H330 600GB SAS", "PERC H330 600GB SAS"), boot_time_s=150.0),
    ClusterSpec("lille", "chifflet", 8, "Intel Xeon E5-2630 v3", 2, 128, "dell", "Dell R730", 2016,
                ("Intel X710 10-Gigabit", "Broadcom NetXtreme BCM5720"),
                ("PERC H330 600GB SAS", "SM863 480GB"), boot_time_s=150.0),
    ClusterSpec("lille", "chinqchint", 40, "Intel Xeon E5420", 2, 8, "dell", "Dell 1950", 2008,
                ("Broadcom NetXtreme BCM5720",), ("WD2502ABYS",), boot_time_s=280.0),
    ClusterSpec("lille", "chimint", 20, "Intel Xeon L5420", 2, 16, "dell", "Dell 1950", 2008,
                ("Broadcom NetXtreme BCM5720",), ("ST3250310NS",), boot_time_s=280.0),
    # -- luxembourg (3 clusters) -------------------------------------------------
    ClusterSpec("luxembourg", "granduc", 16, "Intel Xeon L5420", 2, 16, "hp", "HP DL165 G7", 2008,
                ("Intel 82576 Gigabit",), ("ST3250310NS",), boot_time_s=250.0),
    ClusterSpec("luxembourg", "petitprince", 16, "Intel Xeon E5-2620", 2, 32, "dell", "Dell M620", 2013,
                ("Intel 82599ES 10-Gigabit",), ("ST9500620NS",), boot_time_s=180.0),
    ClusterSpec("luxembourg", "nyx", 6, "Intel Xeon E5420", 2, 8, "hp", "HP DL140 G3", 2008,
                ("Intel 82576 Gigabit",), ("WD2502ABYS",), boot_time_s=250.0),
    # -- lyon (4 clusters) -------------------------------------------------------
    ClusterSpec("lyon", "sagittaire", 60, "AMD Opteron 285", 2, 2, "sun", "Sun Fire V20z", 2006,
                ("Broadcom NetXtreme BCM5720",), ("ST3250310NS",), boot_time_s=320.0),
    ClusterSpec("lyon", "taurus", 16, "Intel Xeon L5420", 2, 32, "dell", "Dell R720", 2012,
                ("Intel 82599ES 10-Gigabit",), ("ST9500620NS",), ib_rate=40, boot_time_s=180.0),
    ClusterSpec("lyon", "orion", 4, "Intel Xeon E5-2620", 2, 32, "dell", "Dell R720", 2012,
                ("Intel 82599ES 10-Gigabit",), ("ST9500620NS",),
                gpu_model="NVIDIA Tesla M2075", gpu_count=1, boot_time_s=180.0),
    ClusterSpec("lyon", "nova", 23, "Intel Xeon E5-2630 v3", 2, 64, "dell", "Dell R430", 2016,
                ("Intel X710 10-Gigabit",), ("PERC H330 600GB SAS", "MG03ACA100"), boot_time_s=150.0),
    # -- nancy (6 clusters) --------------------------------------------------------
    ClusterSpec("nancy", "graphene", 90, "Intel Xeon X3440", 1, 16, "carri", "Carri CS-5393B", 2010,
                ("Intel 82576 Gigabit",), ("HUA722010CLA330",), ib_rate=20, boot_time_s=230.0),
    ClusterSpec("nancy", "griffon", 70, "Intel Xeon L5420", 2, 16, "carri", "Carri CS-5393B", 2009,
                ("Intel 82576 Gigabit",), ("HUA722010CLA330",), ib_rate=20, boot_time_s=240.0),
    ClusterSpec("nancy", "grimoire", 8, "Intel Xeon E5-2630 v3", 2, 128, "hp", "HP DL380 G9", 2016,
                ("Intel X710 10-Gigabit", "Intel X710 10-Gigabit",
                 "Intel X710 10-Gigabit", "Intel X710 10-Gigabit"),
                ("PERC H330 600GB SAS", "MG03ACA100", "MG03ACA100",
                 "SSDSC2BB300G4", "SM863 480GB"), ib_rate=56, boot_time_s=150.0),
    ClusterSpec("nancy", "grisou", 48, "Intel Xeon E5-2620", 2, 128, "dell", "Dell R630", 2016,
                ("Intel X710 10-Gigabit", "Intel X710 10-Gigabit"),
                ("PERC H330 600GB SAS", "MG03ACA100"), boot_time_s=150.0),
    ClusterSpec("nancy", "graoully", 16, "Intel Xeon E5-2630 v3", 2, 128, "dell", "Dell R630", 2016,
                ("Intel X710 10-Gigabit",), ("PERC H330 600GB SAS",), ib_rate=56, boot_time_s=150.0),
    ClusterSpec("nancy", "grele", 14, "Intel Xeon E5-2630 v3", 2, 128, "dell", "Dell R730", 2017,
                ("Intel X710 10-Gigabit",), ("PERC H330 600GB SAS",), ib_rate=56,
                gpu_model="NVIDIA GTX 1080 Ti", gpu_count=2, boot_time_s=150.0),
    # -- nantes (3 clusters) ---------------------------------------------------------
    ClusterSpec("nantes", "econome", 22, "Intel Xeon E5-2630 v3", 2, 64, "dell", "Dell C6220", 2014,
                ("Intel 82599ES 10-Gigabit",), ("MG03ACA100", "MG03ACA100"), boot_time_s=170.0),
    ClusterSpec("nantes", "ecotype", 40, "Intel Xeon E5-2620", 2, 128, "dell", "Dell R630", 2017,
                ("Intel X550 10-Gigabit",), ("SM863 480GB", "SM863 480GB"), boot_time_s=150.0),
    ClusterSpec("nantes", "estats", 19, "Intel Xeon X3440", 1, 8, "sgi", "SGI XE310", 2009,
                ("Intel 82576 Gigabit",), ("WD2502ABYS",), boot_time_s=260.0),
    # -- rennes (4 clusters) ------------------------------------------------------------
    ClusterSpec("rennes", "paravance", 60, "Intel Xeon E5-2630 v3", 2, 128, "dell", "Dell R630", 2015,
                ("Intel X710 10-Gigabit", "Intel X710 10-Gigabit"),
                ("PERC H330 600GB SAS", "MG03ACA100"), boot_time_s=150.0),
    ClusterSpec("rennes", "parasilo", 28, "Intel Xeon E5-2630 v3", 2, 128, "dell", "Dell R630", 2015,
                ("Intel X710 10-Gigabit",),
                ("PERC H330 600GB SAS", "MG03ACA100", "MG03ACA100",
                 "MG03ACA100", "SSDSC2BB300G4"), boot_time_s=150.0),
    ClusterSpec("rennes", "parapide", 25, "Intel Xeon X5570", 2, 24, "dell", "Dell R410", 2010,
                ("Intel 82576 Gigabit",), ("HUA722010CLA330",), ib_rate=40, boot_time_s=220.0),
    ClusterSpec("rennes", "parapluie", 30, "Intel Xeon E5-2620", 2, 48, "hp", "HP DL165 G7", 2012,
                ("Intel 82576 Gigabit",), ("ST9500620NS",), ib_rate=40, boot_time_s=210.0),
    # -- sophia (4 clusters) ---------------------------------------------------------------
    ClusterSpec("sophia", "suno", 35, "Intel Xeon E5420", 2, 32, "dell", "Dell R410", 2009,
                ("Broadcom NetXtreme BCM5720",), ("WD2502ABYS",), boot_time_s=240.0),
    ClusterSpec("sophia", "uvb", 30, "Intel Xeon E5520", 2, 24, "ibm", "IBM x3550 M2", 2010,
                ("Intel 82576 Gigabit",), ("HUA722010CLA330",), ib_rate=40, boot_time_s=230.0),
    ClusterSpec("sophia", "helios", 20, "Intel Xeon L5420", 2, 8, "dell", "Dell 1950", 2008,
                ("Broadcom NetXtreme BCM5720",), ("ST3250310NS",), boot_time_s=280.0),
    ClusterSpec("sophia", "azur", 29, "AMD Opteron 250", 2, 4, "sun", "Sun Fire V20z", 2005,
                ("Broadcom NetXtreme BCM5720",), ("ST3250310NS",), boot_time_s=330.0),
)


def _mac(node_index: int, nic_index: int) -> str:
    """Deterministic locally-administered MAC address."""
    value = (node_index << 8) | nic_index
    octets = [0x02, 0x16, 0x3E, (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF]
    return ":".join(f"{o:02x}" for o in octets)


def _guid(node_index: int) -> str:
    return f"0x0002c903{node_index:08x}"


def _build_node(spec: ClusterSpec, idx: int, global_index: int) -> NodeDescription:
    cpu_model = cpu_for(spec.cpu_model)
    cpu = CpuSpec(
        model=cpu_model.name,
        vendor=cpu_model.vendor,
        microarchitecture=cpu_model.microarchitecture,
        cores=cpu_model.cores,
        threads_per_core=cpu_model.threads_per_core,
        clock_ghz=cpu_model.clock_ghz,
        ht_capable=cpu_model.ht_capable,
        turbo_capable=cpu_model.turbo_capable,
    )
    disks = []
    for di, dm_name in enumerate(spec.disk_models):
        dm = disk_model(dm_name)
        disks.append(
            DiskSpec(
                device=f"sd{chr(ord('a') + di)}",
                vendor=dm.vendor,
                model=dm.model,
                size_gb=dm.size_gb,
                interface=dm.interface,
                storage_type=dm.storage_type,
                firmware=dm.reference_firmware,
                write_cache=True,
                read_ahead=True,
            )
        )
    nics = []
    for ni, nm_name in enumerate(spec.nic_models):
        nm = nic_model(nm_name)
        nics.append(
            NicSpec(
                device=f"eth{ni}",
                model=nm.model,
                driver=nm.driver,
                rate_gbps=nm.rate_gbps,
                mac=_mac(global_index, ni),
                mountable=True,
            )
        )
    ib = None
    if spec.ib_rate is not None:
        ib_model = IB_MODELS[spec.ib_rate]
        ib = InfinibandSpec(model=ib_model.model, rate_gbps=ib_model.rate_gbps,
                            guid=_guid(global_index))
    gpu = None
    if spec.gpu_model is not None:
        gm = GPU_MODELS[spec.gpu_model]
        gpu = GpuSpec(model=gm.model, count=spec.gpu_count, memory_gb=gm.memory_gb)
    pdu = PduPort(pdu_uid=f"{spec.name}-pdu{idx // _PDU_PORTS + 1}", port=idx % _PDU_PORTS + 1)
    return NodeDescription(
        uid=f"{spec.name}-{idx + 1}",
        cluster=spec.name,
        site=spec.site,
        cpu=cpu,
        cpu_count=spec.cpu_count,
        ram_gb=spec.ram_gb,
        disks=tuple(disks),
        nics=tuple(nics),
        bios=BiosSettings(version=f"{spec.vintage % 100}.2.1"),
        pdu=pdu,
        infiniband=ib,
        gpu=gpu,
        serial=f"{spec.vendor[:2].upper()}{spec.vintage}{global_index:05d}",
    )


def build_grid5000(specs: Sequence[ClusterSpec] = CLUSTER_SPECS) -> TestbedDescription:
    """Materialize the full synthetic testbed description.

    The result is fully deterministic (no RNG involved): descriptions are
    *documentation*, and documentation does not vary run to run.  Hardware
    variance (faults, firmware skew...) is applied later to the *actual*
    machines by :mod:`repro.faults`.
    """
    sites = {name: SiteDescription(uid=name) for name in SITE_NAMES}
    global_index = 0
    for spec in specs:
        cluster = ClusterDescription(
            uid=spec.name,
            site=spec.site,
            vendor=spec.vendor,
            chassis_model=spec.chassis,
            vintage_year=spec.vintage,
            boot_time_s=spec.boot_time_s,
        )
        for idx in range(spec.nodes):
            cluster.nodes.append(_build_node(spec, idx, global_index))
            global_index += 1
        sites[spec.site].clusters.append(cluster)
    testbed = TestbedDescription(
        name="grid5000-sim",
        backbone_gbps=10.0,
        # Subset builds (tests, focused experiments) drop empty sites.
        sites=[sites[name] for name in SITE_NAMES if sites[name].clusters],
    )
    if specs is CLUSTER_SPECS:
        # Paper-exact inventory (slide 6) -- guards against table drift.
        assert testbed.site_count == 8, testbed.site_count
        assert testbed.cluster_count == 32, testbed.cluster_count
        assert testbed.node_count == 894, testbed.node_count
        assert testbed.total_cores == 8490, testbed.total_cores
    return testbed
