#!/usr/bin/env python
"""External-scheduler policies on a contended testbed (slides 16-17).

Compares, over two simulated weeks on a busy testbed:

* the paper's scheduler (availability check first, exponential backoff);
* a naive variant that triggers blindly (burns Jenkins workers on
  UNSTABLE builds);
* the per-node alternative of slide 23's open question.

Each variant is a ``derive()`` of one base ``ScenarioSpec`` — policies are
data, not wiring.

Run:  python examples/scheduler_policies.py
"""

from repro import FrameworkBuilder
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec
from repro.scheduling import SchedulerPolicy
from repro.util import WEEK

BASE = ScenarioSpec(
    name="policy-duel",
    seed=5,
    clusters=("grisou", "grimoire", "graoully", "paravance", "parasilo"),
    families=("multireboot", "refapi"),
    workload=WorkloadConfig(target_utilization=0.7),
)


def run(label: str, spec: ScenarioSpec) -> None:
    fw = FrameworkBuilder(spec).build()
    fw.start(faults=False)
    fw.run_until(2 * WEEK)
    records = fw.history.records
    unstable = sum(1 for r in records if r.status == "UNSTABLE")
    hardware = [r for r in records if r.family.startswith("multireboot")]
    print(f"{label:<28} builds={len(records):>4}  unstable={unstable:>3}  "
          f"hardware-runs={len(hardware):>3}")


def main() -> None:
    print("two weeks on a 70%-utilized testbed:\n")
    run("paper scheduler", BASE)
    run("no availability check",
        BASE.derive(name="naive",
                    policy=SchedulerPolicy(check_resources_first=False,
                                           max_concurrent_per_site=4)))
    run("per-node scheduling", BASE.derive(name="pernode-duel", pernode=True))
    print("\nthe paper scheduler avoids wasted (UNSTABLE) builds; per-node")
    print("scheduling runs hardware tests far more often, one node at a time.")


if __name__ == "__main__":
    main()
