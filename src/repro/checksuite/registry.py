"""Registry of the sixteen families and the slide-21 coverage table."""

from __future__ import annotations

from ..testbed.description import TestbedDescription
from .base import CheckFamily
from .deploy_checks import (
    EnvironmentsCheck,
    MultiDeployCheck,
    MultiRebootCheck,
    ParallelDeployCheck,
    StdenvCheck,
)
from .description_checks import DellBiosCheck, OarPropertiesCheck, RefapiCheck
from .hardware_checks import DiskCheck, MpigraphCheck
from .infra_checks import ConsoleCheck, KavlanCheck, KwapiCheck
from .service_checks import CmdlineCheck, OarStateCheck, SidApiCheck

__all__ = ["ALL_FAMILIES", "family_by_name", "coverage_table", "total_configurations"]

#: slide-21 order.
ALL_FAMILIES: tuple[CheckFamily, ...] = (
    RefapiCheck(),
    OarPropertiesCheck(),
    DellBiosCheck(),
    OarStateCheck(),
    CmdlineCheck(),
    SidApiCheck(),
    EnvironmentsCheck(),
    StdenvCheck(),
    ParallelDeployCheck(),
    MultiRebootCheck(),
    MultiDeployCheck(),
    ConsoleCheck(),
    KavlanCheck(),
    KwapiCheck(),
    MpigraphCheck(),
    DiskCheck(),
)

_BY_NAME = {f.name: f for f in ALL_FAMILIES}


def family_by_name(name: str) -> CheckFamily:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown test family: {name!r}") from None


def coverage_table(testbed: TestbedDescription) -> dict[str, int]:
    """Configurations per family — the slide-21 table (sums to 751)."""
    return {f.name: len(f.configurations(testbed)) for f in ALL_FAMILIES}


def total_configurations(testbed: TestbedDescription) -> int:
    return sum(coverage_table(testbed).values())
