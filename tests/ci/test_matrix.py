"""Tests for Matrix Project and Matrix Reloaded."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ci import BuildStatus, JenkinsServer, MatrixProject, matrix_reloaded
from repro.util import CiError, Simulator


@pytest.fixture()
def jenkins():
    sim = Simulator()
    return sim, JenkinsServer(sim, executors=32)


def test_paper_matrix_is_448_configurations():
    """Slide 15: test_environments = 14 images x 32 clusters = 448."""
    project = MatrixProject(
        "test_environments",
        axes={
            "image": [f"img{i}" for i in range(14)],
            "cluster": [f"c{i}" for i in range(32)],
        },
    )
    assert project.cell_count == 14 * 32 == 448
    assert len(project.cells()) == 448


def test_cells_cover_cartesian_product():
    project = MatrixProject("m", axes={"a": ["1", "2"], "b": ["x", "y", "z"]})
    cells = project.cells()
    assert len(cells) == 6
    assert {"a": "2", "b": "y"} in cells
    assert len({tuple(sorted(c.items())) for c in cells}) == 6


def test_empty_axis_rejected():
    with pytest.raises(CiError):
        MatrixProject("m", axes={"a": []})


def test_duplicate_axis_values_rejected():
    with pytest.raises(CiError):
        MatrixProject("m", axes={"a": ["x", "x"]})


def test_trigger_all_builds_every_cell(jenkins):
    sim, server = jenkins

    def runner(build):
        yield sim.timeout(10.0)
        return BuildStatus.SUCCESS

    server.register_job("m", runner)
    project = MatrixProject("m", axes={"a": ["1", "2"], "b": ["x", "y"]})
    builds = project.trigger_all(server)
    sim.run()
    assert len(builds) == 4
    assert all(b.status == BuildStatus.SUCCESS for b in builds)
    params = {tuple(sorted(b.parameters.items())) for b in builds}
    assert len(params) == 4


def test_latest_results_by_cell(jenkins):
    sim, server = jenkins

    def runner(build):
        yield sim.timeout(1.0)
        return (BuildStatus.FAILURE if build.parameters["cluster"] == "bad"
                else BuildStatus.SUCCESS)

    server.register_job("m", runner)
    project = MatrixProject("m", axes={"cluster": ["good", "bad"]})
    project.trigger_all(server)
    sim.run()
    results = project.latest_results(server)
    assert results[("good",)] == BuildStatus.SUCCESS
    assert results[("bad",)] == BuildStatus.FAILURE


def test_latest_results_none_for_never_built(jenkins):
    _, server = jenkins
    server.register_job("m", lambda b: iter(()))
    project = MatrixProject("m", axes={"cluster": ["a"]})
    assert project.latest_results(server) == {("a",): None}


def test_matrix_reloaded_retries_only_failed(jenkins):
    sim, server = jenkins
    flaky_state = {"bad_fixed": False}

    def runner(build):
        yield sim.timeout(1.0)
        if build.parameters["cluster"] == "bad" and not flaky_state["bad_fixed"]:
            return BuildStatus.FAILURE
        return BuildStatus.SUCCESS

    server.register_job("m", runner)
    project = MatrixProject("m", axes={"cluster": ["a", "b", "bad"]})
    project.trigger_all(server)
    sim.run()
    flaky_state["bad_fixed"] = True
    retries = matrix_reloaded(project, server)
    sim.run()
    assert len(retries) == 1
    assert retries[0].parameters == {"cluster": "bad"}
    assert project.latest_results(server)[("bad",)] == BuildStatus.SUCCESS


def test_matrix_reloaded_includes_unstable_by_default(jenkins):
    sim, server = jenkins
    calls = {"n": 0}

    def runner(build):
        calls["n"] += 1
        yield sim.timeout(1.0)
        return BuildStatus.UNSTABLE if calls["n"] == 1 else BuildStatus.SUCCESS

    server.register_job("m", runner)
    project = MatrixProject("m", axes={"cluster": ["only"]})
    project.trigger_all(server)
    sim.run()
    retries = matrix_reloaded(project, server)
    sim.run()
    assert len(retries) == 1


@given(st.lists(st.integers(1, 6), min_size=1, max_size=4))
def test_cell_count_is_product_of_axis_sizes(sizes):
    axes = {f"axis{i}": [f"v{j}" for j in range(n)] for i, n in enumerate(sizes)}
    project = MatrixProject("m", axes=axes)
    expected = 1
    for n in sizes:
        expected *= n
    assert project.cell_count == expected
    assert len(project.cells()) == expected
