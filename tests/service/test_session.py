"""Session state-machine tests over a scripted (socketless) transport."""

import json

from repro.service import CampaignService, Session
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.session import SessionClosed, Transport

HELO = f"HELO {PROTOCOL_VERSION} tester"


class ScriptTransport(Transport):
    """Feed a fixed line script; record everything the session sends."""

    def __init__(self, lines):
        self.script = list(lines)
        self.sent = []
        self.closed = False

    def send_line(self, line):
        self.sent.append(line)

    def recv_line(self):
        if not self.script:
            raise SessionClosed("script exhausted")
        return self.script.pop(0)

    def close(self):
        self.closed = True


def serve_script(lines, campaigns=None):
    transport = ScriptTransport(lines)
    Session(transport, campaigns=campaigns).serve()
    return transport.sent


def errs(sent):
    return [line for line in sent if line.startswith("ERR ")]


def test_requires_helo_first():
    sent = serve_script(["GETS servers", HELO, "QUIT"])
    assert sent[0].startswith("ERR state")
    assert sent[1].startswith(f"OK {PROTOCOL_VERSION}")
    assert sent[2] == "OK bye"


def test_version_mismatch_is_rejected_then_retryable():
    sent = serve_script(["HELO repro-sim-0 old", HELO, "QUIT"])
    assert sent[0].startswith("ERR proto")
    assert sent[1].startswith(f"OK {PROTOCOL_VERSION}")


def test_double_helo_is_a_state_error():
    sent = serve_script([HELO, HELO, "QUIT"])
    assert sent[1].startswith("ERR state")
    assert sent[-1] == "OK bye"


def test_run_verbs_outside_a_run_are_state_errors():
    sent = serve_script([HELO, "SCHD 0", "DEFR 1", "REDY",
                         "GETS servers", "QUIT"])
    assert len(errs(sent)) == 4
    assert all(e.startswith("ERR state") for e in errs(sent))
    assert sent[-1] == "OK bye"  # the session survived every one


def test_unknown_scenario_and_bad_args_are_arg_errors():
    sent = serve_script([HELO,
                         "RUN no-such-preset 0 -",
                         "RUN tiny-smoke notanint -",
                         "RUN tiny-smoke 0 zero",
                         "RUN tiny-smoke 0 -1.0",
                         "QUIT"])
    assert len(errs(sent)) == 4
    assert all(e.startswith("ERR arg") for e in errs(sent))


def test_malformed_lines_never_kill_the_session():
    sent = serve_script([HELO, "", "WAT 1", "SCHD", "QUIT"])
    codes = [e.split()[1] for e in errs(sent)]
    assert codes == ["proto", "verb", "arity"]
    assert sent[-1] == "OK bye"


def test_disconnect_without_quit_unwinds_silently():
    transport = ScriptTransport([HELO])  # EOF right after the greeting
    Session(transport).serve()
    assert transport.closed


def test_server_to_client_verbs_echoed_back_are_state_errors():
    sent = serve_script([HELO, "TICK 1.0 0 0", "OK", "DATA 1", "QUIT"])
    assert len(errs(sent)) == 3
    assert all(e.startswith("ERR state") for e in errs(sent))


def test_rprt_before_any_run_is_a_state_error():
    sent = serve_script([HELO, "RPRT", "QUIT"])
    assert errs(sent)[0].startswith("ERR state")


def test_subm_without_campaign_service_is_a_state_error():
    sent = serve_script([HELO, 'SUBM {"scenarios": ["tiny-smoke"]}', "QUIT"],
                        campaigns=None)
    assert errs(sent)[0].startswith("ERR state")


def test_subm_rejects_bad_documents():
    campaigns = CampaignService()  # in-memory store
    sent = serve_script(
        [HELO,
         "SUBM not-json",
         'SUBM {"scenarios": []}',
         'SUBM {"scenarios": ["no-such-preset"]}',
         'SUBM {"scenarios": ["tiny-smoke"], "seeds": []}',
         'SUBM {"scenarios": ["tiny-smoke"], "workers": 0}',
         "QUIT"],
        campaigns=campaigns)
    assert len(errs(sent)) == 5
    assert all(e.startswith("ERR arg") for e in errs(sent))


def test_subm_streams_cells_and_dedupes_through_the_store():
    campaigns = CampaignService()
    doc = json.dumps({"scenarios": ["tiny-smoke"], "seeds": [0, 1],
                      "months": 0.05})
    first = serve_script([HELO, "SUBM " + doc, "QUIT"], campaigns=campaigns)
    cells = [line for line in first if line.startswith("CELL ")]
    assert cells == ["CELL tiny-smoke 0 ok 1 2", "CELL tiny-smoke 1 ok 2 2"]
    assert any(line.startswith("DONE subm cells=2 ok=2") for line in first)

    # a second client resubmitting the matrix hits the dedupe cache
    second = serve_script([HELO, "SUBM " + doc, "QUIT"], campaigns=campaigns)
    cells = [line for line in second if line.startswith("CELL ")]
    assert cells == ["CELL tiny-smoke 0 cached 1 2",
                     "CELL tiny-smoke 1 cached 2 2"]


def test_cmpr_unknown_baseline_is_an_arg_error():
    sent = serve_script([HELO, "CMPR nothing-stored", "QUIT"],
                        campaigns=CampaignService())
    assert errs(sent)[0].startswith("ERR arg")
