"""B1 — the batch campaign runner: seed x scenario matrix throughput.

Campaign worlds are independent simulations, so a sweep is embarrassingly
parallel: ``run_campaigns`` fans the matrix over ``multiprocessing``
workers.  This bench runs 4 seeds x 2 scenarios serially and with
``workers=4``, checks the reports are bit-identical either way, and (on a
multi-core box) that the parallel path is faster.
"""

import dataclasses
import os
import time

from repro import run_campaigns, scenarios
from repro.util import canonical_json

from conftest import paper_row, print_table

_SEEDS = (0, 1, 2, 3)


def _matrix():
    smoke = scenarios.get("tiny-smoke").derive(months=0.15)
    stormy = scenarios.get("flaky-services").derive(
        name="flaky-small", clusters=smoke.clusters, months=0.15,
        backlog_faults=10, workload=smoke.workload)
    return [smoke, stormy]


def _doc(report):
    return canonical_json(dataclasses.asdict(report))


def bench_b1_batch(benchmark):
    matrix = _matrix()
    t0 = time.perf_counter()
    serial = run_campaigns(matrix, seeds=_SEEDS, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_campaigns(matrix, seeds=_SEEDS, workers=4),
        rounds=1, iterations=1)
    t_parallel = time.perf_counter() - t0

    rows = [
        paper_row("matrix cells (2 scenarios x 4 seeds)", 8, len(parallel)),
        paper_row("serial wall-clock (s)", "-", f"{t_serial:.1f}"),
        paper_row("workers=4 wall-clock (s)", "-", f"{t_parallel:.1f}"),
        paper_row("cpu count", "-", os.cpu_count()),
    ]
    print_table("B1: batch campaign matrix (seed x scenario)", rows)
    assert len(parallel) == len(serial) == 8
    assert [_doc(r.report) for r in serial] == [_doc(r.report) for r in parallel]
    if (os.cpu_count() or 1) >= 4:
        # embarrassingly parallel: expect a real speedup on a multi-core box
        assert t_parallel < t_serial
