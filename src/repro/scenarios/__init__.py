"""Declarative scenario layer: specs, presets, serialization.

>>> from repro import scenarios
>>> spec = scenarios.get("tiny-smoke")
>>> scenarios.ScenarioSpec.from_dict(spec.to_dict()) == spec
True
"""

from .presets import all_presets, get, names, register
from .spec import ScenarioSpec

__all__ = ["ScenarioSpec", "get", "names", "register", "all_presets"]
