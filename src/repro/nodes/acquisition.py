"""Fact-acquisition emulators: OHAI, ethtool, dmidecode, hdparm, ibstat.

g5k-checks on the real testbed shells out to these tools at node boot and
parses their output (slide 7: "Acquires info using OHAI, ethtool, etc.").
Here each emulator renders a tool-shaped document from a node's *actual*
hardware state, so a BIOS flip or firmware swap that a fault injected is
faithfully visible in the acquired facts — and a description-vs-actual
mismatch becomes detectable.

All emulators return plain dicts (the structured equivalent of the parsed
tool output), which is what the comparison engine consumes.
"""

from __future__ import annotations

from typing import Any

from .machine import SimulatedNode

__all__ = [
    "ohai",
    "ethtool",
    "dmidecode",
    "hdparm",
    "smartctl",
    "cpupower",
    "ibstat",
    "acquire_all",
]


def ohai(node: SimulatedNode) -> dict[str, Any]:
    """System inventory: CPU, memory, block devices (chef/ohai-shaped)."""
    hw = node.actual
    return {
        "hostname": node.uid,
        "cpu": {
            "model_name": hw.cpu_model,
            "real": hw.cpu_count,
            "cores": hw.cpu_count * hw.cores_per_cpu,
            "total": hw.visible_logical_cpus(),
            "mhz": round(hw.clock_ghz * 1000),
        },
        "memory": {"total_kb": hw.ram_gb * 1024 * 1024},
        "block_device": {
            d.device: {
                "vendor": d.vendor,
                "model": d.model,
                "size_gb": d.size_gb,
                "rotational": d.storage_type == "HDD",
            }
            for d in hw.disks
            if d.healthy
        },
    }


def ethtool(node: SimulatedNode, device: str) -> dict[str, Any]:
    """Link settings for one interface (``ethtool ethX`` shaped)."""
    nic = node.find_nic(device)
    return {
        "interface": nic.device,
        "speed": f"{int(nic.rate_gbps * 1000)}Mb/s" if nic.link_up else "Unknown!",
        "duplex": "Full" if nic.link_up else "Unknown!",
        "link_detected": "yes" if nic.link_up else "no",
        "driver": nic.driver,
        "mac": nic.mac,
    }


def dmidecode(node: SimulatedNode) -> dict[str, Any]:
    """SMBIOS info: BIOS version, serial, product."""
    hw = node.actual
    return {
        "bios": {"version": hw.bios.version},
        "system": {
            "serial_number": hw.serial,
            "product_name": node.description.cluster,
        },
        "processor_count": hw.cpu_count,
    }


def hdparm(node: SimulatedNode, device: str) -> dict[str, Any]:
    """Drive configuration (``hdparm -I /dev/sdX`` shaped)."""
    disk = node.find_disk(device)
    return {
        "device": disk.device,
        "model": disk.model,
        "firmware": disk.firmware,
        "write_cache": "enabled" if disk.write_cache else "disabled",
        "read_ahead": "on" if disk.read_ahead else "off",
    }


def smartctl(node: SimulatedNode, device: str) -> dict[str, Any]:
    """SMART health summary for one drive."""
    disk = node.find_disk(device)
    return {
        "device": disk.device,
        "model_family": disk.vendor,
        "device_model": disk.model,
        "firmware_version": disk.firmware,
        "smart_status": "PASSED" if disk.healthy else "FAILED",
        "user_capacity_gb": disk.size_gb,
    }


def cpupower(node: SimulatedNode) -> dict[str, Any]:
    """CPU power-management state (``cpupower idle-info`` / sysfs shaped).

    This is how the real g5k-checks observes the C-state / turbo / governor
    drift of slide 13 — the BIOS setting surfaces through the kernel.
    """
    bios = node.actual.bios
    return {
        "c_states": "enabled" if bios.c_states else "disabled",
        "turbo_boost": "active" if bios.turbo_boost else "inactive",
        "governor": {"performance": "performance", "balanced": "ondemand",
                     "powersave": "powersave"}[bios.power_profile],
        "smt_active": 1 if bios.hyperthreading else 0,
    }


def ibstat(node: SimulatedNode) -> dict[str, Any]:
    """Infiniband HCA status (``ibstat`` shaped); empty dict if no HCA."""
    ib = node.actual.infiniband
    if ib is None:
        return {}
    return {
        "ca_name": "mlx4_0",
        "model": ib.model,
        "node_guid": ib.guid,
        "rate_gbps": ib.rate_gbps,
        "state": "Active" if ib.stack_ok else "Down",
        "physical_state": "LinkUp" if ib.stack_ok else "Polling",
    }


def acquire_all(node: SimulatedNode) -> dict[str, Any]:
    """Everything g5k-checks gathers in one boot-time pass."""
    facts: dict[str, Any] = {
        "ohai": ohai(node),
        "cpupower": cpupower(node),
        "dmidecode": dmidecode(node),
        "ethtool": {nic.device: ethtool(node, nic.device) for nic in node.actual.nics},
        "hdparm": {d.device: hdparm(node, d.device) for d in node.actual.disks if d.healthy},
        "smartctl": {d.device: smartctl(node, d.device) for d in node.actual.disks},
    }
    ib = ibstat(node)
    if ib:
        facts["ibstat"] = ib
    return facts
