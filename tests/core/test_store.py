"""Campaign result store: keys, codec round-trip, durability, resume."""

import json

import pytest

from repro import CampaignStore, run_campaigns, scenarios
from repro.core.store import cell_hash, cell_key
from repro.oar import WorkloadConfig
from repro.util import canonical_json


def fast_spec(name="store-fast", **overrides):
    defaults = dict(
        name=name,
        months=0.1,
        clusters=("grisou",),
        families=("refapi",),
        backlog_faults=2,
        workload=WorkloadConfig(target_utilization=0.25),
    )
    defaults.update(overrides)
    return scenarios.ScenarioSpec(**defaults)


def crashing_spec(name="store-crash"):
    # executors=0 passes spec validation but blows up in the builder
    # (Resource capacity must be >= 1) — a deterministic in-worker crash.
    return fast_spec(name, executors=0)


# -- keys ---------------------------------------------------------------------


def test_cell_hash_ignores_seed_and_name_changes_matter():
    a = fast_spec()
    assert cell_hash(a) == cell_hash(a.derive(seed=99))
    assert cell_hash(a) != cell_hash(a.derive(name="other"))
    assert cell_hash(a) != cell_hash(a.derive(backlog_faults=3))


def test_cell_hash_folds_months_override():
    native = fast_spec(months=0.2)
    overridden = fast_spec(months=5.0)
    assert cell_hash(native) == cell_hash(overridden, months=0.2)
    assert cell_key(native, 3) == cell_key(overridden, 3, months=0.2)


def test_cell_key_distinguishes_seed_and_months():
    spec = fast_spec()
    assert cell_key(spec, 0) != cell_key(spec, 1)
    assert cell_key(spec, 0) != cell_key(spec, 0, months=0.2)


def test_cell_hash_normalizes_int_valued_floats():
    # months=1 (int) and months=1.0 describe the same world; a resume with
    # --months 1 must cache-hit against a store built from either
    a = fast_spec(months=1)
    b = fast_spec(months=1.0)
    assert cell_hash(a) == cell_hash(b)
    assert cell_key(a, 0) == cell_key(b, 0)
    assert cell_hash(fast_spec(), months=1) == cell_hash(b)
    # and a spec reloaded from its own JSON hashes identically
    from repro.scenarios import ScenarioSpec
    assert ScenarioSpec.from_dict(a.to_dict()).content_hash() == \
        a.content_hash()


def test_store_file_is_strict_json(tmp_path):
    # NaN metrics (e.g. detection latency with nothing detected) must land
    # as null, keeping every archived line jq/RFC-8259 parseable
    import math

    spec = fast_spec("store-strict", framework_enabled=False)
    path = tmp_path / "s.jsonl"
    (run,) = run_campaigns([spec], seeds=[0], workers=1, store=path)
    assert math.isnan(run.report.detection_latency_days_median)
    for line in path.read_text().splitlines():
        doc = json.loads(line, parse_constant=lambda c: pytest.fail(
            f"non-strict JSON constant {c!r} in store"))
        assert doc["report"]["detection_latency_days_median"] is None
    # and the NaN comes back on load
    cell = CampaignStore(path).get(cell_key(spec, 0))
    assert math.isnan(cell.report.detection_latency_days_median)


def test_spec_content_hash_covers_every_knob():
    spec = fast_spec()
    assert spec.content_hash() == fast_spec().content_hash()
    assert spec.content_hash() != spec.derive(seed=1).content_hash()


# -- record round-trip --------------------------------------------------------


def test_store_roundtrips_report(tmp_path):
    from repro.core import run_scenario

    spec = fast_spec()
    _, report = run_scenario(spec, seed=4)
    store = CampaignStore(tmp_path / "s.jsonl")
    store.record_success(spec, 4, report)

    reloaded = CampaignStore(tmp_path / "s.jsonl")
    assert len(reloaded) == 1
    cell = reloaded.get(cell_key(spec, 4))
    assert cell is not None and cell.ok
    assert cell.scenario == spec.name and cell.seed == 4
    # the archived spec documents exactly what ran, cell seed included
    assert cell.spec["seed"] == 4
    assert cell.spec["months"] == spec.months
    # NaN-tolerant equality: compare canonical documents
    assert canonical_json(cell.report.to_dict()) == \
        canonical_json(report.to_dict())


def test_store_records_failures(tmp_path):
    store = CampaignStore(tmp_path / "s.jsonl")
    store.record_failure(fast_spec(), 0, "Traceback: boom")
    reloaded = CampaignStore(tmp_path / "s.jsonl")
    (cell,) = reloaded.failures()
    assert not cell.ok and "boom" in cell.error
    assert reloaded.successes() == []


def test_store_last_record_wins(tmp_path):
    from repro.core import run_scenario

    spec = fast_spec()
    _, report = run_scenario(spec, seed=0)
    store = CampaignStore(tmp_path / "s.jsonl")
    store.record_failure(spec, 0, "first attempt died")
    store.record_success(spec, 0, report)
    reloaded = CampaignStore(tmp_path / "s.jsonl")
    assert len(reloaded) == 1
    assert reloaded.get(cell_key(spec, 0)).ok


def test_store_skips_torn_final_line(tmp_path):
    from repro.core import run_scenario

    spec = fast_spec()
    _, report = run_scenario(spec, seed=0)
    path = tmp_path / "s.jsonl"
    CampaignStore(path).record_success(spec, 0, report)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"v": 1, "key": "torn')  # killed mid-append
    reloaded = CampaignStore(path)
    assert len(reloaded) == 1


def test_append_after_torn_tail_seals_and_survives(tmp_path):
    # A writer killed mid-append leaves a partial line WITHOUT a trailing
    # newline; the next append must not glue its record onto it, and the
    # sealed torn line must lose only itself on later loads.
    from repro.core import run_scenario

    spec = fast_spec()
    _, report = run_scenario(spec, seed=0)
    path = tmp_path / "s.jsonl"
    CampaignStore(path).record_success(spec, 0, report)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"v": 1, "key": "torn')  # no newline: killed mid-write
    store = CampaignStore(path)
    store.record_success(spec, 1, report)  # append over the torn tail
    reloaded = CampaignStore(path)
    assert len(reloaded) == 2
    assert reloaded.get(cell_key(spec, 1)) is not None


def test_store_rejects_unknown_version(tmp_path):
    path = tmp_path / "s.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"v": 999, "key": "x"}) + "\n")
    with pytest.raises(ValueError):
        CampaignStore(path)


# -- resume -------------------------------------------------------------------


def test_resume_skips_stored_cells_and_runs_only_missing(tmp_path):
    spec = fast_spec()
    path = tmp_path / "s.jsonl"
    run_campaigns([spec], seeds=[0, 1], workers=1, store=path)

    executed, cached = [], []

    def progress(run, from_store):
        (cached if from_store else executed).append(run.seed)

    runs = run_campaigns([spec], seeds=[0, 1, 2, 3], workers=1,
                         store=path, resume=True, on_cell=progress)
    assert sorted(executed) == [2, 3]  # only the missing cells ran
    assert sorted(cached) == [0, 1]
    assert [r.seed for r in runs] == [0, 1, 2, 3]
    assert all(r.ok for r in runs)
    assert len(CampaignStore(path)) == 4


def test_resume_returns_identical_reports(tmp_path):
    spec = fast_spec()
    path = tmp_path / "s.jsonl"
    cold = run_campaigns([spec], seeds=[0, 1], workers=1, store=path)
    warm = run_campaigns([spec], seeds=[0, 1], workers=1, store=path,
                         resume=True)
    assert [canonical_json(r.report.to_dict()) for r in cold] == \
        [canonical_json(r.report.to_dict()) for r in warm]


def test_resume_retries_recorded_failures(tmp_path):
    spec = fast_spec()
    path = tmp_path / "s.jsonl"
    store = CampaignStore(path)
    store.record_failure(spec, 0, "transient crash")

    executed = []
    runs = run_campaigns([spec], seeds=[0], workers=1, store=store,
                         resume=True,
                         on_cell=lambda r, c: executed.append((r.seed, c)))
    assert executed == [(0, False)]  # the failed cell was re-run, not skipped
    assert runs[0].ok
    assert CampaignStore(path).get(cell_key(spec, 0)).ok


def test_without_resume_store_cells_are_overwritten(tmp_path):
    spec = fast_spec()
    path = tmp_path / "s.jsonl"
    run_campaigns([spec], seeds=[0], workers=1, store=path)

    executed = []
    run_campaigns([spec], seeds=[0], workers=1, store=path,
                  on_cell=lambda r, c: executed.append(c))
    assert executed == [False]  # resume off: cell re-ran
    assert len(CampaignStore(path)) == 1


def test_store_runs_disambiguates_same_name_variants(tmp_path):
    # one name, two different worlds (different backlog): runs() must split
    # them into distinct display names so aggregation never merges them
    path = tmp_path / "s.jsonl"
    run_campaigns([fast_spec("twin")], seeds=[0], workers=1, store=path)
    run_campaigns([fast_spec("twin", backlog_faults=9)], seeds=[0],
                  workers=1, store=path)
    names = {r.scenario for r in CampaignStore(path).runs()}
    assert len(names) == 2
    assert all(n.startswith("twin#") for n in names)  # same horizon: hash tag

    from repro.core.batch import aggregate_runs
    agg = aggregate_runs(CampaignStore(path).runs())  # must not raise
    assert len(agg) == 2


def test_store_runs_reconstructs_campaign_runs(tmp_path):
    path = tmp_path / "s.jsonl"
    run_campaigns([fast_spec("s-b"), fast_spec("s-a")], seeds=[1, 0],
                  workers=1, store=path)
    runs = CampaignStore(path).runs()
    # sorted scenario-major, seed-minor
    assert [(r.scenario, r.seed) for r in runs] == [
        ("s-a", 0), ("s-a", 1), ("s-b", 0), ("s-b", 1)]
    assert all(r.ok and r.spec_hash for r in runs)
    filtered = CampaignStore(path).runs(scenarios=["s-a"])
    assert [(r.scenario, r.seed) for r in filtered] == [("s-a", 0), ("s-a", 1)]


# -- pluggable backends -------------------------------------------------------


def test_jsonl_backend_is_the_default_and_equivalent(tmp_path):
    from repro.core.store import JsonlBackend
    path = tmp_path / "cells.jsonl"
    store = CampaignStore(str(path))
    assert isinstance(store.backend, JsonlBackend)
    assert store.path == str(path)
    store.record_success(fast_spec(), seed=0,
                         report=_tiny_report(), months=0.1)
    # an explicitly-constructed backend reads the same file
    reopened = CampaignStore(JsonlBackend(str(path)))
    assert len(reopened) == 1
    assert reopened.get(cell_key(fast_spec(), 0, 0.1)).ok


def test_memory_backend_round_trips_without_touching_disk(tmp_path):
    from repro.core.store import MemoryBackend
    backend = MemoryBackend()
    store = CampaignStore(backend)
    assert store.path == "<memory>"
    store.record_success(fast_spec(), seed=3,
                         report=_tiny_report(), months=0.1)
    assert len(backend.docs) == 1
    # a new store over the same backend instance replays its documents
    again = CampaignStore(backend)
    assert len(again) == 1
    assert again.get(cell_key(fast_spec(), 3, 0.1)).ok
    assert not list(tmp_path.iterdir())


def test_custom_backend_sees_every_append():
    from repro.core.store import MemoryBackend

    class CountingBackend(MemoryBackend):
        appends = 0

        def append(self, doc):
            CountingBackend.appends += 1
            super().append(doc)

    store = CampaignStore(CountingBackend())
    store.record_failure(fast_spec(), seed=0, error="boom", months=0.1)
    store.record_success(fast_spec(), seed=1,
                         report=_tiny_report(), months=0.1)
    assert CountingBackend.appends == 2
    assert len(store.failures()) == 1 and len(store.successes()) == 1


def _tiny_report():
    from repro.core.campaign import CampaignReport
    return CampaignReport(
        months=0.1, bugs_filed=1, bugs_fixed=1, bugs_open=0,
        bugs_unexplained=0, faults_injected=2, faults_detected=1,
        faults_active_end=1, detection_latency_days_median=0.5,
        fix_time_days_median=1.0, weekly_success_rates=[(0.0, 1.0)],
        first_month_success=1.0, last_month_success=1.0,
        total_builds=10, unstable_builds=0)
