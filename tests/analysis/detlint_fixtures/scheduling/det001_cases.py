"""DET001 fixture: unordered-iteration positives and negatives.

Lines that must be flagged carry an ``EXPECT(DET001)`` marker; the test
compares the marker set against the engine's findings line-for-line.
"""


def iterate_locals(jobs):
    pending = {j for j in jobs}
    for uid in pending:  # EXPECT(DET001)
        print(uid)
    for uid in sorted(pending):  # negative: sorted pins the order
        print(uid)
    listed = list(pending)  # EXPECT(DET001)
    ordered = sorted(pending)  # negative: sorted() consumes it safely
    still_set = {u for u in pending}  # negative: set -> set is order-free
    if "a" in pending:  # negative: membership, not iteration
        listed.append("a")
    return listed, ordered, still_set


def iterate_set_call(names):
    unique = set(names)
    out = [n for n in unique]  # EXPECT(DET001)
    deduped = sorted(set(names))  # negative
    return out, deduped


def iterate_keys_and_ops(mapping, other):
    merged = set(mapping) | set(other)
    for key in mapping.keys():  # EXPECT(DET001)
        print(key)
    for key in merged:  # EXPECT(DET001)
        print(key)
    for key in sorted(merged | {"x"}):  # negative
        print(key)


def iterate_param(chosen: set):
    return [c for c in chosen]  # EXPECT(DET001)


def make_pool() -> set:
    return {"a", "b"}


def iterate_call_result():
    for item in make_pool():  # EXPECT(DET001)
        print(item)


class Tracker:
    def __init__(self):
        self._dirty: set[str] = set()
        self._order: list[str] = []

    def flush(self):
        for uid in self._dirty:  # EXPECT(DET001)
            print(uid)
        for uid in sorted(self._dirty):  # negative
            print(uid)
        for uid in self._order:  # negative: a list is ordered
            print(uid)
