"""Simulated machines: actual hardware state + fact acquisition emulators."""

from .acquisition import (
    acquire_all,
    cpupower,
    dmidecode,
    ethtool,
    hdparm,
    ibstat,
    ohai,
    smartctl,
)
from .machine import (
    ActualBios,
    ActualDisk,
    ActualInfiniband,
    ActualNic,
    HardwareState,
    MachinePark,
    PowerState,
    SimulatedNode,
)

__all__ = [
    "PowerState",
    "ActualBios",
    "ActualDisk",
    "ActualNic",
    "ActualInfiniband",
    "HardwareState",
    "SimulatedNode",
    "MachinePark",
    "ohai",
    "ethtool",
    "dmidecode",
    "hdparm",
    "smartctl",
    "cpupower",
    "ibstat",
    "acquire_all",
]
