"""Deployment-centric families.

Slide 21: "Provided system images (environments, stdenv)" and
"Reliability of key services (paralleldeploy, multireboot, multideploy)".
The first two are software-centric (one node per cluster); the last three
are hardware-centric (all nodes of a cluster — slide 16), which is what
makes their scheduling hard.
"""

from __future__ import annotations

from typing import Any

from ..faults.catalog import FaultKind
from ..kadeploy.images import REFERENCE_IMAGES, STD_ENV, image_by_name
from ..kadeploy.kascade import broadcast_time_s
from .base import CheckContext, CheckFamily, Finding, TestOutcome

__all__ = [
    "EnvironmentsCheck",
    "StdenvCheck",
    "ParallelDeployCheck",
    "MultiDeployCheck",
    "MultiRebootCheck",
]


def _deploy_findings(result, cluster_uid: str, image: str,
                     degraded_threshold: float = 0.1) -> list[Finding]:
    """Shared classification of a DeploymentResult into findings.

    Widespread failures point at a systemic cause (a degraded deployment
    service), so individual nodes are not blamed; isolated failures are
    reported per node.
    """
    findings: list[Finding] = []
    systemic = (result.outcomes
                and (1 - result.success_rate) > degraded_threshold)
    for uid, phase in sorted(result.failed.items()):
        if phase == "sanity":
            findings.append(Finding(
                FaultKind.ENV_IMAGE_BROKEN, f"{image}@{cluster_uid}",
                f"{uid}: image deployed but the system is broken"))
        elif not systemic:
            findings.append(Finding(
                FaultKind.RANDOM_REBOOTS, uid,
                f"deployment failed in phase {phase}"))
    if systemic:
        findings.append(Finding(
            FaultKind.DEPLOY_DEGRADED, cluster_uid,
            f"deployment success rate only {result.success_rate:.0%}"))
    return findings


class EnvironmentsCheck(CheckFamily):
    """Deploy one reference image on one node of one cluster — the 448-cell
    matrix of slide 15 (14 images x 32 clusters)."""

    name = "environments"
    kind = "software"
    walltime_s = 3600.0
    nodes_needed = 1

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [
            {"image": img.name, "cluster": c.uid}
            for img in REFERENCE_IMAGES
            for c in testbed.iter_clusters()
        ]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster, image = config["cluster"], config["image"]
        job = yield from self.reserve(
            ctx, f"cluster='{cluster}'/nodes=1,walltime=1")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            result = yield ctx.sim.process(
                ctx.kadeploy.deploy(job.assigned_nodes, image))
            outcome.findings.extend(
                _deploy_findings(result, cluster, image, degraded_threshold=1.0))
        finally:
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome


class StdenvCheck(CheckFamily):
    """Deploy the std environment on one node and verify it thoroughly
    (sanity + g5k-checks, which also catches CPU/BIOS drift)."""

    name = "stdenv"
    kind = "software"
    walltime_s = 3600.0
    nodes_needed = 1

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = config["cluster"]
        job = yield from self.reserve(
            ctx, f"cluster='{cluster}'/nodes=1,walltime=1")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            result = yield ctx.sim.process(
                ctx.kadeploy.deploy(job.assigned_nodes, STD_ENV))
            outcome.findings.extend(
                _deploy_findings(result, cluster, STD_ENV, degraded_threshold=1.0))
            node_uid = job.assigned_nodes[0]
            if node_uid in result.deployed:
                yield ctx.sim.timeout(120.0)
                outcome.findings.extend(self.g5k_checks_findings(ctx, node_uid))
        finally:
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome


class _WholeClusterDeployBase(CheckFamily):
    """Shared implementation for hardware-centric deploy families."""

    kind = "hardware"
    walltime_s = 7200.0
    nodes_needed = "ALL"
    rounds = 1

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()]

    def _expected_round_s(self, ctx: CheckContext, cluster_uid: str,
                          n_nodes: int) -> float:
        cluster = ctx.testbed.cluster(cluster_uid)
        image = image_by_name(STD_ENV)
        nic_mbps = cluster.nodes[0].primary_nic.rate_gbps * 125.0
        return (1.6 * cluster.boot_time_s
                + broadcast_time_s(image.size_mb, n_nodes, nic_mbps, 100.0))

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = config["cluster"]
        job = yield from self.reserve(
            ctx, f"cluster='{cluster}'/nodes=ALL,walltime=2")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            durations = []
            for round_no in range(self.rounds):
                start = ctx.sim.now
                result = yield ctx.sim.process(
                    ctx.kadeploy.deploy(job.assigned_nodes, STD_ENV))
                durations.append(ctx.sim.now - start)
                outcome.findings.extend(_deploy_findings(result, cluster, STD_ENV))
            expected = self._expected_round_s(ctx, cluster, len(job.assigned_nodes))
            slowest = max(durations)
            if slowest > expected * 1.45 + 120.0:
                outcome.findings.append(Finding(
                    FaultKind.KERNEL_BOOT_RACE, cluster,
                    f"deployment took {slowest:.0f}s, expected ~{expected:.0f}s"))
        finally:
            self.release(ctx, job)
        self._dedupe(outcome)
        outcome.passed = not outcome.findings
        return outcome

    @staticmethod
    def _dedupe(outcome: TestOutcome) -> None:
        seen = set()
        unique = []
        for f in outcome.findings:
            key = (f.kind_hint, f.target)
            if key not in seen:
                seen.add(key)
                unique.append(f)
        outcome.findings = unique


class ParallelDeployCheck(_WholeClusterDeployBase):
    """One simultaneous whole-cluster deployment."""

    name = "paralleldeploy"
    rounds = 1


class MultiDeployCheck(_WholeClusterDeployBase):
    """Two back-to-back whole-cluster deployments (catches instabilities
    that only show on the second run, and boot-time anomalies)."""

    name = "multideploy"
    rounds = 2


class MultiRebootCheck(CheckFamily):
    """Reboot every node of a cluster three times; flag nodes that fail to
    come back and abnormal boot durations (the kernel-race bug)."""

    name = "multireboot"
    kind = "hardware"
    walltime_s = 7200.0
    nodes_needed = "ALL"
    rounds = 3

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = config["cluster"]
        job = yield from self.reserve(
            ctx, f"cluster='{cluster}'/nodes=ALL,walltime=2")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            mean_boot = ctx.testbed.cluster(cluster).boot_time_s
            flaky: set[str] = set()
            race_rounds = 0
            for _ in range(self.rounds):
                start = ctx.sim.now
                up = yield ctx.sim.process(ctx.kadeploy.reboot(job.assigned_nodes))
                duration = ctx.sim.now - start
                flaky.update(uid for uid, ok in up.items() if not ok)
                if duration > mean_boot * 1.45 + 60.0:
                    race_rounds += 1
            for uid in sorted(flaky):
                outcome.findings.append(Finding(
                    FaultKind.RANDOM_REBOOTS, uid,
                    "node failed to come back from a reboot"))
            if race_rounds >= 2:
                outcome.findings.append(Finding(
                    FaultKind.KERNEL_BOOT_RACE, cluster,
                    f"{race_rounds}/{self.rounds} reboot rounds abnormally slow"))
        finally:
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome
