"""E6 — slide 23: reliability improving, "85 % of tests successful in
February -> 93 % today, despite the addition of new tests".

Consumes the shared campaign's weekly success-rate series.  Shape to hold:
the first-month rate is visibly below the last-month rate, trending up as
operators burn down the fault backlog.
"""

from conftest import paper_row, print_table


def bench_e6_reliability(benchmark, five_month_campaign):
    fw, report = five_month_campaign
    series = benchmark(fw.history.weekly_success_series,
                       report.months * 30 * 86400.0)
    rows = [
        paper_row("first-month success rate", "85%",
                  f"{report.first_month_success:.1%}"),
        paper_row("last-month success rate", "93%",
                  f"{report.last_month_success:.1%}"),
        paper_row("improvement (points)", "+8",
                  f"{(report.last_month_success - report.first_month_success) * 100:+.1f}"),
    ]
    print_table("E6: reliability trend (slide 23)", rows)
    print("  weekly series:")
    for week_start, rate in series:
        bar = "#" * int(round(rate * 40))
        print(f"    week {int(week_start // (7 * 86400)) + 1:>2}  {rate:6.1%} {bar}")
    # shape: the trend is upward (our simulated faults each hit fewer of
    # the 751 configurations than the real bug mix did, so absolute rates
    # sit higher than the paper's 85/93 — see EXPERIMENTS.md)
    assert report.last_month_success > report.first_month_success
    assert report.first_month_success < 0.985  # starts visibly unhealthy
