#!/usr/bin/env python
"""Drive the simulator from another process over the wire protocol.

Starts an in-process :class:`SimulatorService` (normally you would run
``repro-campaign serve`` in its own terminal or container), connects the
bundled reference client, and:

1. runs one remotely-scheduled ``tiny-smoke`` campaign — every scheduler
   tick travels over the socket as ``TICK``/``JOBN`` lines, the client
   answers ``SCHD``/``DEFR``/``REDY``, and the resulting report is
   byte-identical to the in-process run at the same seed (the sha256
   check at the end proves it);
2. submits a small seed matrix through the campaign service twice, to
   show the store-backed dedupe cache turning the second submission into
   pure ``cached`` cells.

The client half of the determinism contract is simple: decide the cells
of each tick **in the order the server presents them**.  The server half
is structural: simulated time is frozen while a decision is pending.

Run:  python examples/remote_scheduler.py
"""

import hashlib
import json

from repro import run_scenario, scenarios
from repro.service import ReferenceClient, SimulatorService

SCENARIO = "tiny-smoke"
SEED = 0
MONTHS = 0.2


def main() -> None:
    service = SimulatorService(port=0).start()  # port=0: pick a free port
    host, port = service.address
    print(f"simulator service listening on {host}:{port}")

    try:
        with ReferenceClient(host, port, name="example") as client:
            print(f"\n-- remote run: {SCENARIO} @ seed {SEED}, "
                  f"{MONTHS} months --")
            result = client.run_scenario(SCENARIO, seed=SEED, months=MONTHS)
            print(f"negotiated {result['ticks']} scheduling rounds, "
                  f"saw {result['completions']} build completions")
            print(f"remote report sha256: {result['sha256']}")

            print("\n-- campaign service: dedupe across submissions --")
            first = client.submit_campaign([SCENARIO], seeds=[0, 1],
                                           months=0.05)
            print(f"first submission:  {first}")
            second = client.submit_campaign([SCENARIO], seeds=[0, 1, 2],
                                            months=0.05)
            print(f"second submission: {second}")
    finally:
        service.stop()

    # the acceptance check: remote == in-process, byte for byte
    _, report = run_scenario(scenarios.get(SCENARIO), seed=SEED,
                             months=MONTHS)
    doc = json.dumps(report.to_dict(), sort_keys=True, separators=(",", ":"))
    local = hashlib.sha256(doc.encode()).hexdigest()
    assert local == result["sha256"], (local, result["sha256"])
    print(f"\nin-process sha256:    {local}")
    print("remote scheduling is byte-identical to in-process scheduling")


if __name__ == "__main__":
    main()
