"""The bundled reference client: the paper's policy over the wire.

This client speaks *only* the line protocol — it never imports simulator
internals, and its scheduling arithmetic is self-contained, so it doubles
as executable documentation for a client in any language.  It mirrors
:class:`~repro.scheduling.policies.DefaultStrategy` exactly:

* fetch the policy knobs once (``GETS policy``);
* for every ``TICK``, walk the ``JOBN`` cells **in presentation order**:
  skip hardware cells during peak hours, skip cells whose site already
  carries the concurrency cap (tick-start count from the JOBN line plus
  this round's own launches), ``DEFR`` cells whose resources do not fit,
  ``SCHD`` the rest (best fit is trivial here: the cell pins its target
  cluster/site, so fitting equals launching — the ds-sim client's
  first-fit-capable loop reduces to the availability test);
* ``REDY`` when the round is decided.

Following presentation order is the client half of the determinism
contract; the server half freezes simulated time during the round.  The
resulting report is byte-identical to an in-process run at the same seed
(``fetch_report`` checks the sha256 the server advertises).

Resilience: :meth:`run_scenario` survives a dying connection.  The run
token from ``OK run <token>`` is captured before the first tick; any wire
failure mid-run abandons the socket, backs off (capped exponential with
*seeded* jitter — no ``random`` module, detlint DET003-clean), reconnects
and sends ``RESM <token>``.  The server replays the committed decision
log and the client renegotiates the rest — deterministically, so the
recovered report is byte-identical to an undisturbed run.  Explicit
server verdicts (``ERR arg`` / ``ERR run``) are not wire damage and fail
fast; everything else is retried up to ``retries`` times.
"""

from __future__ import annotations

import hashlib
import json
import socket
import time
from typing import Callable, Optional

from .protocol import PROTOCOL_VERSION, Message, ProtocolError, decode, encode
from .session import SessionClosed, SocketTransport, Transport

__all__ = ["ReferenceClient", "ClientError", "ServerError", "ConnectionLost"]

_DAY = 86400.0
_HOUR = 3600.0
#: t=0 is Wednesday 2017-02-01 (mirrors repro.util.simclock).
_EPOCH_WEEKDAY = 2


def _is_peak_hours(t: float) -> bool:
    """Self-contained mirror of ``repro.util.simclock.is_peak_hours``."""
    dow = (int(t // _DAY) + _EPOCH_WEEKDAY) % 7
    hod = (t % _DAY) / _HOUR
    return dow < 5 and 9.0 <= hod < 19.0


class ClientError(Exception):
    """The conversation went wrong (base for all client failures)."""


class ServerError(ClientError):
    """The server answered ``ERR``; ``code`` is its first argument."""

    def __init__(self, args: tuple):
        super().__init__(" ".join(args))
        self.code = args[0] if args else "?"


class ConnectionLost(ClientError):
    """The connection died (EOF, reset, timeout): resumable wire damage."""


#: Failures worth a reconnect: dead sockets, torn/garbled lines (which
#: surface as codec errors or shifted message streams), and ill-timed
#: server answers.  Explicit ``ERR`` verdicts are judged separately by
#: their code.  ``ValueError``/``IndexError``/``KeyError`` are how a
#: *truncated-but-parseable* line fails once its arguments are consumed.
_WIRE_DAMAGE = (OSError, ProtocolError, ClientError, ValueError,
                IndexError, KeyError, TypeError)


class _Job:
    """One JOBN line, parsed."""

    __slots__ = ("cell", "kind", "site", "cluster", "need", "site_inflight",
                 "alive", "free", "runs", "blocked")

    def __init__(self, args: tuple):
        (self.cell, self.kind, self.site, cluster, self.need,
         site_inflight, alive, free, runs, blocked) = args
        self.cluster = None if cluster == "-" else cluster
        self.site_inflight = int(site_inflight)
        self.alive = int(alive)
        self.free = int(free)
        self.runs = int(runs)
        self.blocked = int(blocked)

    def fits(self) -> bool:
        if self.need == "0":
            return True
        if self.need == "ALL":
            return self.alive > 0 and self.free == self.alive
        return self.free >= int(self.need)


class _RunProgress:
    """Cross-attempt state of one :meth:`run_scenario` call."""

    __slots__ = ("token", "done", "completions", "ticks")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.token: Optional[str] = None
        self.done = False
        #: Approximate under resume (aborted rounds may double-count);
        #: ``ticks`` is exact — the server reports it on DONE.
        self.completions = 0
        self.ticks = 0


class ReferenceClient:
    """Drive campaigns over a socket; context-manager friendly.

    ``retries``/``backoff_base_s``/``backoff_cap_s`` govern mid-run
    recovery: each reconnect waits ``min(cap, base·2^(attempt-1))``
    scaled by a deterministic jitter in [0.5, 1.0] derived from
    ``backoff_seed`` — two clients with different seeds desynchronize
    their retry storms, yet every run of the same client is reproducible.

    ``transport_wrap`` (if given) wraps every connection's transport —
    the seam the chaos convergence suite uses to inject faults.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 name: str = "refclient", timeout_s: float = 300.0,
                 retries: int = 8, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0, backoff_seed: int = 0,
                 transport_wrap: Optional[
                     Callable[[Transport], Transport]] = None):
        self.host = host
        self.port = port
        self.name = name
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.backoff_seed = backoff_seed
        self._wrap = transport_wrap
        self._transport: Optional[Transport] = None
        self._closed = False
        self.policy: Optional[dict] = None
        self._connect_retrying()

    # -- wire plumbing ---------------------------------------------------------

    def _connect_retrying(self) -> None:
        """Bounded-retry first connect: chaos can kill even the HELO."""
        for attempt in range(self.retries + 1):
            try:
                self._connect()
                return
            except _WIRE_DAMAGE as exc:
                self._abandon()
                if attempt >= self.retries:
                    raise ClientError(
                        f"could not establish a session in "
                        f"{self.retries + 1} attempts "
                        f"(last failure: {exc})") from exc
                time.sleep(self._backoff_delay(attempt + 1))

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout_s)
        transport: Transport = SocketTransport(
            sock, recv_deadline_s=self.timeout_s)
        if self._wrap is not None:
            transport = self._wrap(transport)
        self._transport = transport
        self._send("HELO", PROTOCOL_VERSION, self.name)
        self._expect("OK")

    def _abandon(self) -> None:
        """Drop the connection without ceremony (the server's session
        EOFs, which is exactly what flips a run record to resumable)."""
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    def _send(self, verb: str, *args: object) -> None:
        if self._transport is None:
            raise ConnectionLost("not connected")
        try:
            self._transport.send_line(encode(verb, *args))
        except SessionClosed as exc:
            raise ConnectionLost(str(exc)) from None

    def _raw_line(self) -> str:
        if self._transport is None:
            raise ConnectionLost("not connected")
        try:
            return self._transport.recv_line()
        except SessionClosed as exc:
            raise ConnectionLost(str(exc)) from None

    def _recv(self) -> Message:
        while True:
            msg = decode(self._raw_line())
            if msg.verb == "PING":
                continue  # heartbeat: liveness only, never answered
            return msg

    def _expect(self, verb: str) -> Message:
        msg = self._recv()
        if msg.verb == "ERR":
            raise ServerError(msg.args)
        if msg.verb != verb:
            raise ClientError(f"expected {verb}, got {msg.verb}")
        return msg

    def _read_data_block(self) -> list[str]:
        header = self._expect("DATA")
        count = int(header.args[0])
        lines = [self._raw_line() for _ in range(count)]
        self._expect(".")
        return lines

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        raw = min(self.backoff_cap_s,
                  self.backoff_base_s * 2 ** max(0, attempt - 1))
        digest = hashlib.sha256(
            f"{self.backoff_seed}:{self.name}:{attempt}".encode()).digest()
        return raw * (0.5 + 0.5 * digest[0] / 255.0)

    # -- the scheduling loop ---------------------------------------------------

    def run_scenario(self, scenario: str, seed: int = 0,
                     months: Optional[float] = None) -> dict:
        """Drive one campaign; returns ``{"sha256":…, "report":…, …}``.

        Survives connection loss: bounded reconnect attempts, each
        resuming via ``RESM`` (or restarting the deterministic run when
        no usable token survived).
        """
        state = _RunProgress()
        for attempt in range(self.retries + 1):
            try:
                return self._attempt_run(scenario, seed, months, state)
            except ServerError as exc:
                # An explicit verdict on a well-formed request fails the
                # same way every retry: unknown scenario / bad seed
                # ("arg") or a deterministic campaign failure ("run").
                if exc.code in ("arg", "run"):
                    raise
                failure: Exception = exc
            except _WIRE_DAMAGE as exc:
                failure = exc
            if attempt >= self.retries:
                raise ClientError(
                    f"run did not survive {self.retries} reconnects "
                    f"(last failure: {failure})") from failure
            self._abandon()
            time.sleep(self._backoff_delay(attempt + 1))
        raise AssertionError("unreachable")

    def _attempt_run(self, scenario: str, seed: int,
                     months: Optional[float], state: _RunProgress) -> dict:
        """One connection's worth of progress on the run."""
        if self._transport is None:
            self._connect()
        if state.done and state.token is None:
            # Finished, but the report fetch needs a token on a fresh
            # connection and none survived: re-run (deterministic, so
            # the report is identical).
            state.reset()
        if not state.done:
            if state.token is None:
                self._send("RUN", scenario, seed,
                           repr(float(months)) if months is not None else "-")
                ok = self._expect("OK")
                if len(ok.args) >= 2 and ok.args[0] == "run":
                    state.token = ok.args[1]
            else:
                self._send("RESM", state.token)
                try:
                    self._expect("OK")
                except ServerError as exc:
                    if exc.code == "run":
                        # The server never issued this token — it was
                        # corrupted in flight.  Start the run over.
                        state.reset()
                        raise ClientError(
                            f"stale run token: {exc}") from exc
                    raise
            self._run_loop(state)
        try:
            sha, report = self._fetch_report_verified(state.token)
        except ServerError as exc:
            if exc.code == "run":
                state.reset()  # corrupted token: re-run from scratch
                raise ClientError(f"stale run token: {exc}") from exc
            raise
        return {"scenario": scenario, "seed": seed, "months": months,
                "ticks": state.ticks, "completions": state.completions,
                "sha256": sha, "report": report}

    def _run_loop(self, state: _RunProgress) -> None:
        """Negotiate ticks until DONE (one connection's attempt)."""
        while True:
            msg = self._recv()
            if msg.verb == "TICK":
                state.completions += self._round(msg)
            elif msg.verb == "DONE":
                state.done = True
                for arg in msg.args:
                    if arg.startswith("ticks="):
                        state.ticks = int(arg[len("ticks="):])
                return
            elif msg.verb == "ERR":
                raise ServerError(msg.args)
            else:
                raise ClientError(f"unexpected {msg.verb} during run")

    def _round(self, tick: Message) -> int:
        now = float(tick.args[0])
        n_jcpl, n_jobn = int(tick.args[1]), int(tick.args[2])
        for _ in range(n_jcpl):
            self._expect("JCPL")
        jobs = [_Job(self._expect("JOBN").args) for _ in range(n_jobn)]
        if self.policy is None:
            self._send("GETS", "policy")
            self.policy = json.loads(self._read_data_block()[0])
        launched: dict[str, int] = {}  # this round's own launches per site
        sent = 0
        for job in jobs:
            action = self._decide(now, job, launched)
            if action is not None:
                self._send(action, job.cell)
                sent += 1
        self._send("REDY")
        for _ in range(sent + 1):  # pipelined: one OK per decision + REDY's
            self._expect("OK")
        return n_jcpl

    def _decide(self, now: float, job: _Job,
                launched: dict) -> Optional[str]:
        """DefaultStrategy, reconstructed from wire data alone."""
        policy = self.policy
        if (job.kind == "hardware"
                and policy["avoid_peak_hours_for_hardware"]
                and _is_peak_hours(now)):
            return None  # calendar gate: retry next tick, no backoff
        if (job.site_inflight + launched.get(job.site, 0)
                >= policy["max_concurrent_per_site"]):
            return None
        if policy["check_resources_first"] and not job.fits():
            return "DEFR"
        launched[job.site] = launched.get(job.site, 0) + 1
        return "SCHD"

    # -- results + campaigns ---------------------------------------------------

    def fetch_report(self, token: Optional[str] = None) -> tuple[str, dict]:
        """RPRT: the last (or ``token``'s) report, hash-verified."""
        return self._fetch_report_verified(token)

    def _fetch_report_verified(
            self, token: Optional[str]) -> tuple[str, dict]:
        if token is not None:
            self._send("RPRT", token)
        else:
            self._send("RPRT")
        advertised = self._expect("RPRT").args[0]
        body = self._read_data_block()[0]
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if digest != advertised:
            raise ClientError(
                f"report hash mismatch: server said {advertised}, "
                f"body hashes to {digest}")
        return digest, json.loads(body)

    def submit_campaign(self, scenarios: list, seeds: list,
                        months: Optional[float] = None,
                        workers: int = 1) -> list[tuple]:
        """SUBM a matrix; returns ``(scenario, seed, status)`` per cell."""
        doc = {"scenarios": scenarios, "seeds": seeds, "workers": workers}
        if months is not None:
            doc["months"] = months
        self._send("SUBM", json.dumps(doc))
        cells = []
        while True:
            msg = self._recv()
            if msg.verb == "CELL":
                scenario, seed, status, _, _ = msg.args
                cells.append((scenario, int(seed), status))
            elif msg.verb == "DONE":
                return cells
            elif msg.verb == "ERR":
                raise ServerError(msg.args)
            else:
                raise ClientError(f"unexpected {msg.verb} during SUBM")

    def compare(self, baseline: str) -> dict:
        """CMPR: per-metric deltas of stored scenarios vs a baseline."""
        self._send("CMPR", baseline)
        return json.loads(self._read_data_block()[0])

    def close(self) -> None:
        """Idempotent, exception-safe teardown: QUIT is best-effort and
        a dead socket never raises out of here (or ``__exit__``)."""
        if self._closed:
            return
        self._closed = True
        transport, self._transport = self._transport, None
        if transport is None:
            return
        try:
            # Cap the farewell: a wedged server must not stall close().
            inner = getattr(transport, "inner", transport)
            if hasattr(inner, "recv_deadline_s"):
                inner.recv_deadline_s = 2.0
            transport.send_line(encode("QUIT"))
            transport.recv_line()  # the OK bye, if the server is alive
        except (OSError, SessionClosed, ClientError, ProtocolError):
            pass
        finally:
            transport.close()

    def __enter__(self) -> "ReferenceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
