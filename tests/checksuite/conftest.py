"""Shared fixtures: a small wired world for exercising test families.

``run_family`` is provided as a fixture (not a module-level helper) so
test modules never import from ``conftest`` — relative imports of conftest
break pytest's rootdir-based collection when ``tests/`` is not a package.
"""

import pytest

from repro.core import FrameworkBuilder
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec

#: Two sites, five clusters (145 nodes): nancy has IB + Dell + disk-testable
#: clusters, lyon brings a GPU cluster — enough to give every family cells.
SMALL_CLUSTERS = ("grisou", "grimoire", "graoully", "taurus", "nova")


@pytest.fixture()
def world():
    spec = ScenarioSpec(
        name="checksuite-world",
        seed=11,
        clusters=SMALL_CLUSTERS,
        workload=WorkloadConfig(target_utilization=0.3),
    )
    return FrameworkBuilder(spec).build()


@pytest.fixture()
def run_family():
    """Drive one family run to completion; returns the outcome."""

    def _run(fw, family, config):
        holder = {}

        def driver():
            holder["outcome"] = yield fw.sim.process(
                family.run(fw.checkctx, config))

        fw.sim.process(driver())
        fw.sim.run()
        return holder["outcome"]

    return _run
