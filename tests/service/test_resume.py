"""RESM machinery: registry semantics and the wire-level attach/report
contract (scripted transport, no sockets — the end-to-end resume path is
covered by tests/service/test_chaos_convergence.py)."""

import hashlib
import json

import pytest

from repro.service import RunRegistry, Session
from test_session import HELO, ScriptTransport

# -- registry semantics -------------------------------------------------------


def test_tokens_are_unique_and_resumable_once_detached():
    reg = RunRegistry()
    a = reg.create("tiny-smoke", 0, 0.05)
    b = reg.create("tiny-smoke", 1, 0.05)
    assert a.token != b.token
    reg.detach(a, "disconnected")
    resumed = reg.attach(a.token)
    assert resumed is a and a.status == "running" and a.attached


def test_attach_guards():
    reg = RunRegistry()
    rec = reg.create("tiny-smoke", 0, None)
    with pytest.raises(KeyError):
        reg.attach("run-999")
    with pytest.raises(ValueError):  # still attached to its session
        reg.attach(rec.token)
    reg.detach(rec, "done")
    with pytest.raises(ValueError):  # finished runs never resume
        reg.attach(rec.token)


def test_eviction_spares_attached_runs():
    reg = RunRegistry(max_records=2)
    live = reg.create("tiny-smoke", 0, None)  # stays attached
    for seed in (1, 2, 3):
        rec = reg.create("tiny-smoke", seed, None)
        reg.detach(rec, "done")
    assert len(reg) == 2
    assert reg.get(live.token) is live, "an attached run must survive"


# -- wire-level contract ------------------------------------------------------


def _serve(lines, runs):
    transport = ScriptTransport(lines)
    Session(transport, runs=runs).serve()
    return transport.sent


def test_resm_unknown_token_is_err_run():
    sent = _serve([HELO, "RESM run-404", "QUIT"], RunRegistry())
    assert any(line.startswith("ERR run") for line in sent)
    assert sent[-1] == "OK bye"  # the session survived


def test_resm_attached_and_finished_runs_are_state_errors():
    reg = RunRegistry()
    attached = reg.create("tiny-smoke", 0, 0.05)
    done = reg.create("tiny-smoke", 1, 0.05)
    reg.detach(done, "done")
    sent = _serve([HELO, f"RESM {attached.token}", f"RESM {done.token}",
                   "QUIT"], reg)
    errors = [line for line in sent if line.startswith("ERR ")]
    assert len(errors) == 2
    assert all(err.startswith("ERR state") for err in errors)


class _FakeReport:
    """Stand-in with the one method _do_rprt needs."""

    def to_dict(self):
        return {"metric": 1.0}


def test_rprt_token_recovers_a_finished_report():
    reg = RunRegistry()
    rec = reg.create("tiny-smoke", 0, 0.05)
    rec.report = _FakeReport()
    reg.detach(rec, "done")
    sent = _serve([HELO, f"RPRT {rec.token}", "QUIT"], reg)
    body = json.dumps({"metric": 1.0}, sort_keys=True, separators=(",", ":"))
    sha = hashlib.sha256(body.encode("utf-8")).hexdigest()
    assert f"RPRT {sha}" in sent
    assert body in sent


def test_rprt_token_errors():
    reg = RunRegistry()
    rec = reg.create("tiny-smoke", 0, 0.05)  # running: no report yet
    sent = _serve([HELO, "RPRT run-404", f"RPRT {rec.token}", "QUIT"], reg)
    errors = [line for line in sent if line.startswith("ERR ")]
    assert errors[0].startswith("ERR run")
    assert errors[1].startswith("ERR state")


def test_run_issues_token_before_first_tick():
    """The OK to RUN carries the resume token up front, so the client
    holds it even if the very next exchange dies."""
    reg = RunRegistry()
    transport = ScriptTransport([HELO, "RUN tiny-smoke 0 0.01"])
    Session(transport, runs=reg).serve()  # script ends mid-run: disconnect
    ok_lines = [line for line in transport.sent if line.startswith("OK run ")]
    assert len(ok_lines) == 1
    token = ok_lines[0].split()[2]
    record = reg.get(token)
    assert record is not None
    assert record.status == "disconnected", "mid-run death stays resumable"
