"""Tests for Ganglia and kwapi probes."""

import numpy as np
import pytest

from repro.faults import FaultContext, FaultKind, ServiceHealth, apply_fault
from repro.monitoring import Ganglia, Kwapi
from repro.nodes import MachinePark
from repro.util import RngStreams, Simulator


@pytest.fixture()
def world(fresh_testbed):
    sim = Simulator()
    services = ServiceHealth()
    park = MachinePark.from_testbed(sim, fresh_testbed, RngStreams(seed=8))
    return sim, services, park, fresh_testbed


def test_ganglia_on_demand_sample(world):
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park)
    park["grisou-1"].cpu_load = 0.5
    sample = ganglia.sample_node("grisou-1")
    assert sample["cpu_load"] == 0.5
    assert sample["up"] == 1.0
    assert ganglia.store.last("grisou-1.cpu_load") == (0.0, 0.5)


def test_ganglia_sees_crash(world):
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park)
    park["grisou-1"].crash()
    assert ganglia.sample_node("grisou-1")["up"] == 0.0


def test_ganglia_periodic_sampling(world):
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park, period_s=30.0)
    ganglia.start(node_uids=["grisou-1"])
    sim.run(until=301.0)
    ganglia.stop()
    t, _ = ganglia.store.window("grisou-1.cpu_load", 0.0, 1e9)
    assert len(t) == 11  # t=0,30,...,300


def test_kwapi_reports_documented_outlet(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    value = kwapi.node_power_watts("grisou-1")
    assert value == pytest.approx(park["grisou-1"].power_draw_watts())


def test_kwapi_cable_swap_reports_wrong_node(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    ctx = FaultContext.build(park, services, ("debian8-std",))
    rng = np.random.default_rng(3)
    inst = apply_fault(FaultKind.PDU_CABLE_SWAP, ctx, rng, 1, 0.0)
    a, b = inst.details["nodes"]
    park[a].cpu_load = 1.0  # distinct loads so the swap is observable
    park[b].cpu_load = 0.0
    assert kwapi.node_power_watts(a) == pytest.approx(kwapi.true_power_watts(b))
    assert kwapi.node_power_watts(b) == pytest.approx(kwapi.true_power_watts(a))
    assert kwapi.node_power_watts(a) != pytest.approx(kwapi.true_power_watts(a))


def test_kwapi_down_site_returns_none(world):
    sim, services, park, testbed = world
    services.kwapi_down.add("nancy")
    kwapi = Kwapi(sim, park, testbed, services)
    assert kwapi.node_power_watts("grisou-1") is None
    assert kwapi.node_power_watts("paravance-1") is not None  # rennes fine


def test_kwapi_unknown_node(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    assert kwapi.node_power_watts("ghost-1") is None


def test_kwapi_records_series(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    kwapi.node_power_watts("grisou-2")
    assert kwapi.store.has_series("grisou-2.power_w")


def test_power_reflects_load(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    idle = kwapi.node_power_watts("grisou-3")
    park["grisou-3"].cpu_load = 1.0
    busy = kwapi.node_power_watts("grisou-3")
    assert busy > idle


# -- batch park sweeps ---------------------------------------------------------


def test_ganglia_sample_park_matches_per_node_samples(world):
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park)
    reference = Ganglia(sim, park)
    uids = sorted(park.machines)
    park[uids[0]].cpu_load = 0.4
    park[uids[1]].crash()

    assert ganglia.sample_park(uids) == len(uids)
    for uid in uids:
        reference.sample_node(uid)
    for uid in uids:
        for metric in ("cpu_load", "mem_total_gb", "up"):
            key = f"{uid}.{metric}"
            assert ganglia.store.last(key) == reference.store.last(key)


def test_ganglia_handles_survive_machine_state_changes(world):
    # The precomputed handles hold machine references, not snapshots: a
    # later crash/load change must show up in the next sample.
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park)
    ganglia.sample_node("grisou-1")
    park["grisou-1"].cpu_load = 0.9
    park["grisou-1"].crash()
    sample = ganglia.sample_node("grisou-1")
    assert sample["cpu_load"] == 0.9
    assert sample["up"] == 0.0


def test_kwapi_sample_park_matches_per_node_reads(world, fresh_testbed):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    reference = Kwapi(sim, park, testbed, services)
    uids = sorted(park.machines)
    park[uids[0]].cpu_load = 0.8

    count = kwapi.sample_park(uids)
    assert count == len(uids)
    for uid in uids:
        want = reference.node_power_watts(uid)
        assert kwapi.store.last(f"{uid}.power_w")[1] == pytest.approx(want)


def test_kwapi_sample_park_reports_swapped_cables(world):
    # The slide-13 bug must survive the batch path: after a cable swap the
    # sweep records the *neighbour's* draw under the documented node.
    sim, services, park, testbed = world
    ctx = FaultContext.build(park, services, ("debian8-std",))
    rng = np.random.default_rng(3)
    inst = apply_fault(FaultKind.PDU_CABLE_SWAP, ctx, rng, 1, 0.0)
    a, b = inst.details["nodes"]
    park[a].cpu_load = 0.9  # make the two draws distinguishable
    park[b].cpu_load = 0.0

    kwapi = Kwapi(sim, park, testbed, services)
    kwapi.sample_park(sorted(park.machines))
    reported_a = kwapi.store.last(f"{a}.power_w")[1]
    assert reported_a == pytest.approx(kwapi.true_power_watts(b))
    assert reported_a != pytest.approx(kwapi.true_power_watts(a))


def test_kwapi_sample_park_skips_down_sites(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    site = testbed.sites[0].uid
    services.kwapi_down.add(site)
    down_nodes = [u for u, s in kwapi._site_of.items() if s == site]
    count = kwapi.sample_park(sorted(park.machines))
    assert count == len(park.machines) - len(down_nodes)
    for uid in down_nodes:
        assert not kwapi.store.has_series(f"{uid}.power_w")


# -- vectorized vs scalar sweeps -----------------------------------------------
#
# The default probes pack per-node series into a RingColumnBlock and land
# each park sweep with one numpy scatter per metric; vectorized=False pins
# the original one-append-per-node loop as the oracle.  Both paths must
# record byte-identical samples.


def test_ganglia_vectorized_sweep_equals_scalar_sweep(world):
    sim, _, park, _ = world
    vector = Ganglia(sim, park)                    # default: column block
    scalar = Ganglia(sim, park, vectorized=False)  # oracle loop
    assert vector._block is not None and scalar._block is None
    uids = sorted(park.machines)
    park[uids[0]].cpu_load = 0.7
    park[uids[2]].crash()
    for _ in range(3):  # several sweeps so rings accumulate history
        assert vector.sample_park(uids) == scalar.sample_park(uids)
    for uid in uids:
        for metric in ("cpu_load", "mem_total_gb", "up"):
            key = f"{uid}.{metric}"
            t, v = vector.store.window(key, 0.0, 1e9)
            ot, ov = scalar.store.window(key, 0.0, 1e9)
            assert list(t) == list(ot) and list(v) == list(ov)
            assert vector.store.last(key) == scalar.store.last(key)


def test_kwapi_vectorized_sweep_equals_scalar_sweep(world):
    sim, services, park, testbed = world
    vector = Kwapi(sim, park, testbed, services)
    scalar = Kwapi(sim, park, testbed, services, vectorized=False)
    assert vector._block is not None and scalar._block is None
    services.kwapi_down.add(testbed.sites[0].uid)  # sweep must skip a site
    uids = sorted(park.machines)
    park[uids[0]].cpu_load = 0.6
    assert vector.sample_park(uids) == scalar.sample_park(uids)
    for uid in uids:
        key = f"{uid}.power_w"
        assert vector.store.has_series(key) == scalar.store.has_series(key)
        if vector.store.has_series(key):
            assert vector.store.last(key) == scalar.store.last(key)


def test_ganglia_on_demand_sample_lands_in_column_block(world):
    # sample_node goes through the same bound column the sweep scatters
    # into: mixed scalar/vector appends stay one chronological series.
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park)
    ganglia.sample_node("grisou-1")
    ganglia.sample_park(sorted(park.machines))
    t, _ = ganglia.store.window("grisou-1.cpu_load", 0.0, 1e9)
    assert len(t) == 2


def test_ganglia_shared_store_conflict_falls_back_to_scalar(world):
    # A series name already owned by a plain ring cannot be rebound; the
    # sweep must drop to the scalar path and still record everything.
    sim, _, park, _ = world
    store = Ganglia(sim, park).store  # placeholder store
    store.record("grisou-1.cpu_load", -1.0, 0.0)  # foreign plain ring
    ganglia = Ganglia(sim, park, store=store)
    uids = sorted(park.machines)
    assert ganglia.sample_park(uids) == len(uids)
    assert ganglia.store.last("grisou-1.cpu_load")[0] == 0.0
    assert ganglia.store.last("grisou-2.cpu_load")[0] == 0.0
