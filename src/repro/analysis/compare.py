"""Scenario-vs-baseline comparison of aggregated campaign metrics.

A sweep is usually a *question*: does doubling the testbed change the bug
count?  Does disabling the framework tank reliability?  This module turns
two aggregated scenarios into per-metric deltas, flagging which differences
are resolvable at 95 % confidence (the intervals do not overlap) and which
drown in seed noise.

Overlapping-CI is a conservative screen, not a t-test: non-overlap at 95 %
implies a significant difference, while overlap merely means "not resolved
at this seed count" — the honest phrasing for small sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # real imports are deferred: analysis loads during the
    # repro.core package's own import (builder pulls in BuildHistory), so a
    # module-level import of core.batch here would be a circular import.
    from ..core.batch import CampaignRun, MetricSummary

__all__ = ["MetricDelta", "ScoreboardRow", "compare_aggregates",
           "compare_runs", "format_comparison", "format_scoreboard",
           "scoreboard"]


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one scenario measured against the baseline."""

    metric: str
    baseline: "MetricSummary"
    other: "MetricSummary"
    #: ``other.mean - baseline.mean`` (NaN when either side has no sample).
    delta: float
    #: Relative change vs the baseline mean (NaN when undefined).
    pct: float
    #: True when the two 95 % intervals overlap (difference not resolved).
    ci_overlap: bool

    @property
    def significant(self) -> bool:
        """Resolved at 95 %: intervals disjoint, with real intervals on
        both sides.  A single-seed side has ci95 = 0 — a point, not an
        interval — so nothing can be resolved from it, only suggested."""
        return (not self.ci_overlap
                and not math.isnan(self.delta)
                and (self.baseline.n > 1 and self.other.n > 1))


def _delta(metric: str, base: "MetricSummary", other: "MetricSummary") -> MetricDelta:
    if base.n == 0 or other.n == 0:
        return MetricDelta(metric, base, other, float("nan"), float("nan"),
                           ci_overlap=True)
    delta = other.mean - base.mean
    pct = delta / abs(base.mean) if base.mean != 0 else float("nan")
    overlap = (base.mean - base.ci95 <= other.mean + other.ci95
               and other.mean - other.ci95 <= base.mean + base.ci95)
    return MetricDelta(metric, base, other, delta, pct, ci_overlap=overlap)


def compare_aggregates(
    aggregated: dict[str, dict[str, "MetricSummary"]],
    baseline: str,
    metrics: Optional[Sequence[str]] = None,
) -> dict[str, list[MetricDelta]]:
    """Delta of every non-baseline scenario against ``baseline``.

    ``aggregated`` is :func:`~repro.core.batch.aggregate_runs` output;
    ``metrics`` defaults to every scalar metric.  Returns
    ``{scenario: [MetricDelta, ...]}`` for every other scenario.
    """
    if metrics is None:
        from ..core.batch import SCALAR_METRICS
        metrics = SCALAR_METRICS
    if baseline not in aggregated:
        raise KeyError(
            f"baseline scenario {baseline!r} not in results "
            f"(have: {', '.join(sorted(aggregated)) or 'none'})")
    base = aggregated[baseline]
    out: dict[str, list[MetricDelta]] = {}
    for scenario, summaries in aggregated.items():
        if scenario == baseline:
            continue
        out[scenario] = [_delta(m, base[m], summaries[m]) for m in metrics]
    return out


def compare_runs(
    runs: Sequence["CampaignRun"],
    baseline: str,
    metrics: Optional[Sequence[str]] = None,
) -> dict[str, list[MetricDelta]]:
    """:func:`compare_aggregates` straight from raw campaign runs."""
    from ..core.batch import aggregate_runs
    return compare_aggregates(aggregate_runs(runs), baseline, metrics)


def format_comparison(deltas: dict[str, list[MetricDelta]],
                      baseline: str,
                      only_significant: bool = False) -> str:
    """Render comparison blocks, one per scenario.

    Lines are marked ``*`` when the difference is resolved at 95 % and
    ``~`` when the intervals overlap.  ``only_significant`` drops the
    unresolved lines.
    """
    lines = [f"baseline: {baseline}"]
    for scenario in sorted(deltas):
        lines.append(f"{scenario}  (Δ vs {baseline})")
        shown = 0
        for d in deltas[scenario]:
            if only_significant and not d.significant:
                continue
            shown += 1
            if math.isnan(d.delta):
                lines.append(f"  ~ {d.metric:<32} no sample")
                continue
            mark = "*" if d.significant else "~"
            pct = f" ({d.pct:+.0%})" if not math.isnan(d.pct) else ""
            lines.append(
                f"  {mark} {d.metric:<32} {d.other.mean:.2f} ± "
                f"{d.other.ci95:.2f} vs {d.baseline.mean:.2f} ± "
                f"{d.baseline.ci95:.2f}  Δ={d.delta:+.2f}{pct}")
        if shown == 0:
            lines.append("  (no metric resolved at 95 %)")
    return "\n".join(lines)


# -- policy scoreboard ---------------------------------------------------------

#: Secondary columns shown next to the ranking metric.
SCOREBOARD_EXTRAS: tuple[str, ...] = (
    "wait_mean_s", "node_utilization", "jobs_completed",
    "grow_events", "shrink_events")


@dataclass(frozen=True)
class ScoreboardRow:
    """One contender's line on the A/B policy scoreboard."""

    rank: int  # 1 = leader
    name: str
    summary: "MetricSummary"  # the ranking metric
    extras: dict[str, "MetricSummary"]
    #: ``mean - leader.mean`` (0 for the leader itself).
    delta_vs_leader: float
    #: Resolved at 95 % against the leader (CIs disjoint, n > 1 both sides).
    significant_vs_leader: bool


def scoreboard(
    aggregated: dict[str, dict[str, "MetricSummary"]],
    metric: str = "turnaround_mean_s",
    ascending: bool = True,
    extras: Sequence[str] = SCOREBOARD_EXTRAS,
) -> list[ScoreboardRow]:
    """Rank aggregated variants on one metric, leader first.

    ``aggregated`` is :func:`~repro.core.batch.aggregate_runs` output
    where each key is one contender (e.g. ``elastic-burst+common-pool``).
    ``ascending=True`` means lower is better (turnaround, wait);
    pass ``False`` for utilization-style metrics.  Each non-leader row is
    tested against the leader with the same conservative overlapping-CI
    screen :class:`MetricDelta` uses, so a ``significant_vs_leader`` row
    is a real resolved gap, not seed noise.  Variants with no sample for
    the metric sort to the bottom.
    """
    def sort_key(item: tuple[str, dict[str, "MetricSummary"]]):
        s = item[1][metric]
        no_sample = s.n == 0 or math.isnan(s.mean)
        mean = s.mean if not no_sample else math.inf
        return (no_sample, mean if ascending else -mean, item[0])

    for name, summaries in aggregated.items():
        if metric not in summaries:
            raise KeyError(f"unknown metric {metric!r} for {name!r} "
                           f"(have: {', '.join(sorted(summaries))})")
    ordered = sorted(aggregated.items(), key=sort_key)
    rows: list[ScoreboardRow] = []
    leader = ordered[0][1][metric] if ordered else None
    for rank, (name, summaries) in enumerate(ordered, start=1):
        s = summaries[metric]
        d = _delta(metric, leader, s)
        rows.append(ScoreboardRow(
            rank=rank,
            name=name,
            summary=s,
            extras={m: summaries[m] for m in extras if m in summaries},
            delta_vs_leader=0.0 if rank == 1 else d.delta,
            significant_vs_leader=False if rank == 1 else d.significant,
        ))
    return rows


def format_scoreboard(rows: Sequence[ScoreboardRow],
                      metric: str = "turnaround_mean_s") -> str:
    """Render the scoreboard as an aligned text table.

    The leader is marked ``►``; other rows carry ``*`` when their gap to
    the leader is resolved at 95 % and ``~`` when it drowns in seed noise.
    """
    if not rows:
        return "(empty scoreboard)"
    name_w = max(len(r.name) for r in rows)
    lines = [f"scoreboard on {metric} (► leader, * resolved at 95 %, "
             "~ unresolved)"]
    for r in rows:
        mark = "►" if r.rank == 1 else ("*" if r.significant_vs_leader else "~")
        if r.summary.n == 0 or math.isnan(r.summary.mean):
            body = "no sample"
        else:
            body = f"{r.summary.mean:12.2f} ± {r.summary.ci95:<8.2f}"
            if r.rank > 1 and not math.isnan(r.delta_vs_leader):
                body += f"  Δ={r.delta_vs_leader:+.2f}"
        extras = "  ".join(
            f"{m}={s.mean:.3g}" for m, s in r.extras.items()
            if s.n > 0 and not math.isnan(s.mean))
        line = f"  {r.rank}. {mark} {r.name:<{name_w}}  {body}"
        if extras:
            line += f"  [{extras}]"
        lines.append(line)
    return "\n".join(lines)
