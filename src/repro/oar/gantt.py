"""Per-node allocation timeline (the scheduler's Gantt chart).

Each node has a sorted list of ``(start, end, job_id)`` reservations.  The
scheduler asks two questions:

* is a node free over ``[t, t+d)``?
* what candidate start times after ``t`` are worth trying? (interval ends)

Conservative backfilling emerges naturally: reservations of
earlier-submitted jobs stay in the Gantt, and later jobs simply search for
the earliest window that fits around them.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..util.errors import SchedulingError

__all__ = ["Reservation", "NodeTimeline", "Gantt"]


@dataclass(frozen=True)
class Reservation:
    start: float
    end: float
    job_id: int


class NodeTimeline:
    """Sorted, non-overlapping reservations for one node."""

    __slots__ = ("_starts", "_reservations")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._reservations: list[Reservation] = []

    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self):
        return iter(self._reservations)

    def is_free(self, start: float, end: float) -> bool:
        """True if no reservation overlaps [start, end)."""
        if end <= start:
            raise SchedulingError(f"empty interval [{start}, {end})")
        idx = bisect.bisect_right(self._starts, start)
        if idx > 0 and self._reservations[idx - 1].end > start:
            return False
        if idx < len(self._reservations) and self._reservations[idx].start < end:
            return False
        return True

    def add(self, reservation: Reservation) -> None:
        if not self.is_free(reservation.start, reservation.end):
            raise SchedulingError(
                f"overlapping reservation {reservation} on busy timeline"
            )
        idx = bisect.bisect_right(self._starts, reservation.start)
        self._starts.insert(idx, reservation.start)
        self._reservations.insert(idx, reservation)

    def remove_job(self, job_id: int) -> int:
        """Drop all reservations of one job; returns how many were removed."""
        keep = [(s, r) for s, r in zip(self._starts, self._reservations)
                if r.job_id != job_id]
        removed = len(self._reservations) - len(keep)
        self._starts = [s for s, _ in keep]
        self._reservations = [r for _, r in keep]
        return removed

    def truncate_job(self, job_id: int, end: float) -> None:
        """Shorten a running job's reservation (early release).

        Truncating to at/before the reservation's start drops the entry
        entirely — a zero-length ``[start, start)`` residue would linger in
        ``_starts`` and distort ``release_points``/``candidate_starts``
        until the next purge.
        """
        for i, r in enumerate(self._reservations):
            if r.job_id == job_id and r.end > end:
                if end <= r.start:
                    del self._starts[i]
                    del self._reservations[i]
                else:
                    self._reservations[i] = Reservation(r.start, end, job_id)
                return

    def busy_until(self, t: float) -> float:
        """End of the reservation covering ``t`` (or ``t`` if free)."""
        idx = bisect.bisect_right(self._starts, t)
        if idx > 0 and self._reservations[idx - 1].end > t:
            return self._reservations[idx - 1].end
        return t

    def release_points(self, after: float) -> list[float]:
        """Reservation end times > ``after`` (candidate start times)."""
        return sorted({r.end for r in self._reservations if r.end > after})

    def free_intervals(self, after: float) -> list[tuple[float, float]]:
        """Maximal free windows from ``after`` on (last one is unbounded)."""
        out = []
        prev = after
        for r in self._reservations:
            if r.end <= after:
                continue
            if r.start > prev:
                out.append((prev, r.start))
            prev = max(prev, r.end)
        out.append((prev, math.inf))
        return out

    def purge_before(self, t: float) -> None:
        """Forget reservations that ended before ``t`` (memory hygiene on
        long campaigns)."""
        keep = [(s, r) for s, r in zip(self._starts, self._reservations) if r.end >= t]
        self._starts = [s for s, _ in keep]
        self._reservations = [r for _, r in keep]


class Gantt:
    """Timelines for a set of nodes."""

    def __init__(self, node_uids: Iterable[str]):
        self._timelines: dict[str, NodeTimeline] = {uid: NodeTimeline() for uid in node_uids}

    def timeline(self, uid: str) -> NodeTimeline:
        return self._timelines[uid]

    def is_free(self, uid: str, start: float, end: float) -> bool:
        return self._timelines[uid].is_free(start, end)

    def free_nodes(self, uids: Iterable[str], start: float, end: float) -> list[str]:
        return [u for u in uids if self._timelines[u].is_free(start, end)]

    def reserve(self, uids: Iterable[str], start: float, end: float, job_id: int) -> None:
        reserved = []
        try:
            for uid in uids:
                self._timelines[uid].add(Reservation(start, end, job_id))
                reserved.append(uid)
        except SchedulingError:
            for uid in reserved:  # roll back the partial reservation
                self._timelines[uid].remove_job(job_id)
            raise

    def release(self, uids: Iterable[str], job_id: int) -> None:
        for uid in uids:
            self._timelines[uid].remove_job(job_id)

    def truncate(self, uids: Iterable[str], job_id: int, end: float) -> None:
        for uid in uids:
            self._timelines[uid].truncate_job(job_id, end)

    def candidate_starts(self, uids: Iterable[str], after: float) -> list[float]:
        """`after` plus every release point on the candidate nodes."""
        times = {after}
        for uid in uids:
            times.update(self._timelines[uid].release_points(after))
        return sorted(times)

    def earliest_start(self, uids: Iterable[str], after: float,
                       duration: float, k: int) -> Optional[float]:
        """Earliest ``t >= after`` when ``k`` of the nodes are simultaneously
        free over ``[t, t + duration)``.

        Interval sweep: each free window ``[s, e)`` long enough for
        ``duration`` lets its node host a start anywhere in ``[s, e -
        duration]``; the answer is the first sweep point where at least
        ``k`` host intervals overlap.  This is O(R log R) in the number of
        reservations — the candidate-start scan it replaces was quadratic
        in queue depth and dominated month-long campaigns.
        """
        if duration <= 0:
            raise SchedulingError(f"non-positive duration: {duration}")
        uids = list(uids)
        if k < 1 or k > len(uids):
            return None
        events: list[tuple[float, int]] = []
        for uid in uids:
            for s, e in self._timelines[uid].free_intervals(after):
                if e - s >= duration:
                    events.append((s, 0))  # +1: can host starts from s on
                    if math.isfinite(e):
                        events.append((e - duration, 1))  # -1 after this point
        events.sort()
        count = 0
        for coord, kind in events:
            if kind == 0:
                count += 1
                if count >= k:
                    return coord
            else:
                count -= 1
        return None

    def purge_before(self, t: float) -> None:
        for timeline in self._timelines.values():
            timeline.purge_before(t)
