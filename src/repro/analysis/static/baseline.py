"""Committed JSON baseline of grandfathered detlint findings.

The baseline is the escape hatch that lets the CI gate land on an
imperfect codebase without a flag day: existing findings are recorded
(fingerprinted by rule + path + line content, with a count per
fingerprint so identical lines are budgeted, not blanket-allowed) and
only *new* findings fail the gate.  The update protocol mirrors the
golden-hash one: regenerate with ``repro-lint --update-baseline``, eyeball
the diff, and justify it in the PR.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

__all__ = ["load_baseline", "save_baseline", "apply_baseline",
           "baseline_from_findings"]

_VERSION = 1


def baseline_from_findings(findings: Iterable[Finding]) -> dict:
    """Build a baseline document from the current findings."""
    entries: Dict[str, dict] = {}
    for f in sorted(findings):
        entry = entries.get(f.fingerprint)
        if entry is None:
            entries[f.fingerprint] = {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "line_text": f.line_text,
                "count": 1,
            }
        else:
            entry["count"] += 1
    return {
        "version": _VERSION,
        "tool": "detlint",
        "findings": sorted(entries.values(),
                           key=lambda e: (e["path"], e["rule"],
                                          e["fingerprint"])),
    }


def save_baseline(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("version") != _VERSION or "findings" not in doc:
        raise ValueError(f"{path}: not a detlint v{_VERSION} baseline")
    return doc


def apply_baseline(findings: Iterable[Finding], doc: dict,
                   ) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split findings into (new, baselined); also return stale entries.

    Each baseline fingerprint carries a count budget; findings beyond the
    budget (a grandfathered line was duplicated) count as new.  Stale
    entries — fingerprints with leftover budget — signal the offending
    line was fixed or edited and the baseline deserves a regeneration.
    """
    budget: Dict[str, int] = {}
    entries: Dict[str, dict] = {}
    for entry in doc.get("findings", []):
        fp = entry["fingerprint"]
        budget[fp] = budget.get(fp, 0) + int(entry.get("count", 1))
        entries[fp] = entry
    new: List[Finding] = []
    baselined: List[Finding] = []
    for f in sorted(findings):
        fp = f.fingerprint
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            baselined.append(f)
        else:
            new.append(f)
    stale = [entries[fp] for fp, left in sorted(budget.items())
             if left > 0]
    return new, baselined, stale
