"""Tests for the OAR properties database."""

import pytest

from repro.faults import ServiceHealth
from repro.oar import OarDatabase, parse_expression, properties_from_description
from repro.testbed import ReferenceApi


@pytest.fixture()
def db(fresh_testbed):
    return OarDatabase(ReferenceApi(fresh_testbed), ServiceHealth())


def test_row_per_node(db, fresh_testbed):
    assert len(db.node_uids()) == fresh_testbed.node_count


def test_properties_from_description(fresh_testbed):
    props = properties_from_description(fresh_testbed.node("grele-1"))
    assert props["cluster"] == "grele"
    assert props["site"] == "nancy"
    assert props["gpu"] == "YES"
    assert props["gpucount"] == 2
    assert props["eth10g"] == "Y"
    assert props["ib"] == "FDR"
    assert props["memnode"] == 128 * 1024
    assert props["deploy"] == "YES"


def test_ib_property_names(fresh_testbed):
    assert properties_from_description(fresh_testbed.node("graphene-1"))["ib"] == "DDR"
    assert properties_from_description(fresh_testbed.node("parapide-1"))["ib"] == "QDR"
    assert properties_from_description(fresh_testbed.node("azur-1"))["ib"] == "NO"


def test_matching_by_cluster(db, fresh_testbed):
    uids = db.matching(parse_expression("cluster='grisou'"))
    assert len(uids) == fresh_testbed.cluster("grisou").node_count
    assert all(u.startswith("grisou-") for u in uids)


def test_matching_gpu_nodes(db, fresh_testbed):
    uids = db.matching(parse_expression("gpu='YES'"))
    expected = sum(c.node_count for c in fresh_testbed.iter_clusters() if c.has_gpu)
    assert len(uids) == expected


def test_matching_compound_expression(db):
    uids = db.matching(parse_expression("site='nancy' and eth10g='Y' and ib='FDR'"))
    clusters = {u.rsplit("-", 1)[0] for u in uids}
    assert clusters == {"grimoire", "graoully", "grele"}


def test_matching_none_returns_all(db, fresh_testbed):
    assert len(db.matching(None)) == fresh_testbed.node_count


def test_matching_with_candidates(db):
    uids = db.matching(parse_expression("cluster='grisou'"),
                       candidates=["grisou-1", "grisou-2", "paravance-1"])
    assert uids == ["grisou-1", "grisou-2"]


def test_drift_corrupts_served_row(db):
    db.services.oar_property_drift["grisou-5"] = {"memnode"}
    clean = db.clean_properties("grisou-5")
    served = db.properties("grisou-5")
    assert served["memnode"] == clean["memnode"] // 2
    assert served["cluster"] == clean["cluster"]  # untouched fields intact


def test_drift_eth10g_flips(db):
    db.services.oar_property_drift["grisou-5"] = {"eth10g"}
    assert db.properties("grisou-5")["eth10g"] == "N"


def test_drift_disktype(db):
    db.services.oar_property_drift["grisou-5"] = {"disktype"}
    assert db.properties("grisou-5")["disktype"] == "UNKNOWN"


def test_drift_affects_matching(db):
    expr = parse_expression("cluster='grisou' and eth10g='Y'")
    before = db.matching(expr)
    db.services.oar_property_drift["grisou-5"] = {"eth10g"}
    after = db.matching(expr)
    assert "grisou-5" in before and "grisou-5" not in after


def test_sync_keeps_drift_until_fault_fixed(db):
    db.services.oar_property_drift["grisou-5"] = {"memnode"}
    db.sync_from_refapi()
    clean = db.clean_properties("grisou-5")
    assert db.properties("grisou-5")["memnode"] == clean["memnode"] // 2
    # once the fault is reverted (drift removed), serving is clean again
    db.services.oar_property_drift.clear()
    assert db.properties("grisou-5") == clean


def test_sync_picks_up_refapi_changes(db):
    import dataclasses

    node = db.refapi.node("grisou-5")
    db.refapi.update_node(dataclasses.replace(node, ram_gb=256),
                          timestamp=10.0, message="RAM upgrade")
    assert db.properties("grisou-5")["memnode"] == 128 * 1024  # not yet synced
    db.sync_from_refapi()
    assert db.properties("grisou-5")["memnode"] == 256 * 1024
