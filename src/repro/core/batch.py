"""Multi-seed, multi-scenario campaign batches.

The paper's testbed earns trust by running *many* scenarios *often*; the
single-seed serial :func:`~repro.core.campaign.run_campaign` loop cannot
keep up with a seed × scenario sweep.  :func:`run_campaigns` fans the
matrix across ``multiprocessing`` workers (each world is an independent
simulation — embarrassingly parallel) and :func:`aggregate_runs` collapses
the per-seed reports into mean ± 95 % CI per metric.

Specs travel to workers as their JSON documents (``ScenarioSpec`` is fully
serializable), so the fan-out works with any start method and the exact
scenario a worker ran is what its report records.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..scenarios import get as get_preset
from ..scenarios.spec import ScenarioSpec
from .campaign import CampaignReport, run_scenario

__all__ = ["CampaignRun", "MetricSummary", "run_campaigns",
           "aggregate_runs", "summarize_runs"]

#: Scalar CampaignReport fields worth aggregating across seeds.
SCALAR_METRICS: tuple[str, ...] = (
    "bugs_filed",
    "bugs_fixed",
    "bugs_open",
    "bugs_unexplained",
    "faults_injected",
    "faults_detected",
    "faults_active_end",
    "detection_latency_days_median",
    "fix_time_days_median",
    "first_month_success",
    "last_month_success",
    "total_builds",
    "unstable_builds",
)


@dataclass(frozen=True)
class CampaignRun:
    """One (scenario, seed) cell of the batch matrix."""

    scenario: str
    seed: int
    report: CampaignReport


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± 95 % confidence interval of one metric across seeds."""

    mean: float
    std: float
    ci95: float  # half-width; the interval is mean ± ci95
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci95:.2f} (n={self.n})"


#: Two-sided 95 % Student-t critical values by degrees of freedom.  Seed
#: sweeps are small (n of 3-10), where the normal z=1.96 understates the
#: interval badly (t(3)=3.182); beyond 30 dof the normal approximation
#: is within 2 %.
_T95: tuple[float, ...] = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t95(dof: int) -> float:
    if dof <= 0:
        return float("nan")
    if dof <= len(_T95):
        return _T95[dof - 1]
    return 1.96


def _run_cell(payload: tuple[dict, int, Optional[float]]) -> CampaignReport:
    """Worker entry point (top-level so it pickles under 'spawn' too)."""
    spec_doc, seed, months = payload
    spec = ScenarioSpec.from_dict(spec_doc)
    _, report = run_scenario(spec, seed=seed, months=months)
    return report


def run_campaigns(
    specs: Sequence[Union[ScenarioSpec, str]],
    seeds: Iterable[int],
    workers: Optional[int] = None,
    months: Optional[float] = None,
) -> list[CampaignRun]:
    """Run every scenario × seed combination; returns one run per cell.

    ``specs`` may mix :class:`ScenarioSpec` values and preset names
    (resolved via :func:`repro.scenarios.get`).  ``workers`` defaults to
    ``min(len(matrix), cpu_count)``; ``workers=1`` runs serially in
    process (useful for debugging and for determinism tests).  ``months``
    optionally overrides every spec's horizon.

    Results are deterministic per cell and come back in matrix order
    (scenario-major, seed-minor) regardless of worker count.
    """
    resolved = [get_preset(s) if isinstance(s, str) else s for s in specs]
    seed_list = list(seeds)
    matrix = [(spec, seed) for spec in resolved for seed in seed_list]
    if not matrix:
        return []
    payloads = [(spec.to_dict(), seed, months) for spec, seed in matrix]
    if workers is None:
        workers = min(len(matrix), os.cpu_count() or 1)
    if workers <= 1:
        reports = [_run_cell(p) for p in payloads]
    else:
        with multiprocessing.Pool(processes=min(workers, len(matrix))) as pool:
            reports = pool.map(_run_cell, payloads)
    return [CampaignRun(scenario=spec.name, seed=seed, report=report)
            for (spec, seed), report in zip(matrix, reports)]


def aggregate_runs(
    runs: Sequence[CampaignRun],
) -> dict[str, dict[str, MetricSummary]]:
    """Per-scenario mean ± 95 % CI for every scalar metric.

    NaN metric values (e.g. the median detection latency of a campaign
    that detected nothing) are dropped from that metric's sample.
    """
    by_scenario: dict[str, list[CampaignRun]] = {}
    for run in runs:
        by_scenario.setdefault(run.scenario, []).append(run)
    out: dict[str, dict[str, MetricSummary]] = {}
    for scenario, cell_runs in by_scenario.items():
        metrics: dict[str, MetricSummary] = {}
        for name in SCALAR_METRICS:
            values = [float(getattr(r.report, name)) for r in cell_runs]
            values = [v for v in values if not math.isnan(v)]
            if not values:
                metrics[name] = MetricSummary(float("nan"), float("nan"),
                                              float("nan"), 0)
                continue
            n = len(values)
            mean = sum(values) / n
            var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
            std = math.sqrt(var)
            ci95 = _t95(n - 1) * std / math.sqrt(n) if n > 1 else 0.0
            metrics[name] = MetricSummary(mean=mean, std=std, ci95=ci95, n=n)
        out[scenario] = metrics
    return out


def summarize_runs(runs: Sequence[CampaignRun],
                   metrics: Sequence[str] = ("bugs_filed", "bugs_fixed",
                                             "faults_detected",
                                             "last_month_success",
                                             "total_builds")) -> str:
    """Human-readable aggregate table (one block per scenario)."""
    aggregated = aggregate_runs(runs)
    lines = []
    for scenario in sorted(aggregated):
        seeds = sorted(r.seed for r in runs if r.scenario == scenario)
        lines.append(f"{scenario}  (seeds: {', '.join(map(str, seeds))})")
        for name in metrics:
            lines.append(f"  {name:<32} {aggregated[scenario][name]}")
    return "\n".join(lines)
