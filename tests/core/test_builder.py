"""FrameworkBuilder: registry plumbing, wiring, shim equivalence."""

import pytest

from repro.core import FrameworkBuilder, SubsystemRegistry, build_framework
from repro.core.builder import SUBSYSTEM_ORDER, default_registry
from repro.checksuite import family_by_name
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec
from repro.testbed import CLUSTER_SPECS
from repro.util import DAY

SMALL = ("grisou", "grimoire", "graoully")


def small_spec(**overrides):
    defaults = dict(
        name="builder-test",
        seed=31,
        clusters=SMALL,
        families=("refapi", "oarstate"),
        workload=WorkloadConfig(target_utilization=0.25),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def test_builder_wires_everything():
    fw = FrameworkBuilder(small_spec()).build()
    assert fw.scheduler is not None
    assert fw.scheduler.cells  # families expanded into cells
    assert set(fw.api.list_jobs()) == {"test_refapi", "test_oarstate"}
    assert fw.testbed.cluster_count == len(SMALL)


def test_scheduler_never_a_placeholder():
    """The framework comes out immutable-complete: no post-construction
    mutation of the scheduler slot."""
    fw = FrameworkBuilder(small_spec()).build()
    assert fw.scheduler.jenkins is fw.jenkins
    assert fw.scheduler.oar is fw.oar
    assert fw.scheduler.policy == small_spec().policy


def test_pernode_spec_wraps_hardware_families():
    spec = small_spec(families=("multireboot", "refapi"), pernode=True)
    fw = FrameworkBuilder(spec).build()
    names = {f.name for f in fw.families}
    assert "multireboot-pernode" in names
    assert "refapi" in names  # software families untouched


def test_subsystem_override_swaps_backend():
    calls = []

    def recording_monitoring(build):
        calls.append("monitoring")
        from repro.core.builder import _build_monitoring
        _build_monitoring(build)

    fw = (FrameworkBuilder(small_spec())
          .with_subsystem("monitoring", recording_monitoring)
          .build())
    assert calls == ["monitoring"]
    assert fw.kwapi is not None and fw.ganglia is not None


def test_registry_rejects_unknown_stage():
    registry = SubsystemRegistry()
    with pytest.raises(ValueError, match="unknown subsystem"):
        registry.register("blockchain", lambda build: None)


def test_registry_copy_isolated():
    base = default_registry()
    copy = base.copy()
    copy.register("monitoring", lambda build: None)
    assert base.factory("monitoring") is not copy.factory("monitoring")
    assert set(SUBSYSTEM_ORDER) == {
        "testbed", "oar", "kadeploy", "kavlan", "monitoring", "faults",
        "ci", "scheduling"}


def test_with_families_override_beats_spec():
    fw = (FrameworkBuilder(small_spec())
          .with_families([family_by_name("console")])
          .build())
    assert [f.name for f in fw.families] == ["console"]


def test_with_cluster_specs_override_beats_spec():
    specs = [s for s in CLUSTER_SPECS if s.name == "nova"]
    fw = FrameworkBuilder(small_spec()).with_cluster_specs(specs).build()
    assert fw.testbed.cluster_count == 1


def test_shim_equals_builder():
    """build_framework() must be a pure delegation to the builder."""
    spec_objs = [s for s in CLUSTER_SPECS if s.name in SMALL]
    shim = build_framework(
        seed=31, specs=spec_objs,
        families=[family_by_name("refapi"), family_by_name("oarstate")],
        workload_config=WorkloadConfig(target_utilization=0.25),
    )
    direct = FrameworkBuilder(
        small_spec(workload=WorkloadConfig(target_utilization=0.25))).build()
    shim.start(faults=False)
    direct.start(faults=False)
    shim.run_until(3 * DAY)
    direct.run_until(3 * DAY)
    assert len(shim.history.records) == len(direct.history.records)
    assert [r.status for r in shim.history.records] == \
        [r.status for r in direct.history.records]
