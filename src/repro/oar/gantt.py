"""Per-node allocation timeline (the scheduler's Gantt chart).

Each node has a sorted list of ``(start, end, job_id)`` reservations.  The
scheduler asks two questions:

* is a node free over ``[t, t+d)``?
* what candidate start times after ``t`` are worth trying? (interval ends)

Conservative backfilling emerges naturally: reservations of
earlier-submitted jobs stay in the Gantt, and later jobs simply search for
the earliest window that fits around them.

Two representations coexist:

* ``NodeTimeline`` — the per-node source of truth (sorted reservations).
* ``ResourceProfile`` — a derived park-wide availability index: a step
  function from time to the *bitmask of free nodes*, maintained
  incrementally by :meth:`Gantt.reserve`/:meth:`Gantt.release`/
  :meth:`Gantt.truncate` and rebuilt lazily after anything else touches a
  timeline.  Placement queries (``earliest_start``, free-set probes)
  bisect the profile instead of scanning every candidate timeline, which
  turns the per-job placement cost from O(nodes x reservations) into
  O(log steps + steps-in-window) — the difference between thousand-job
  and million-job campaigns.  ``Gantt.use_profile = False`` pins every
  query back to the direct timeline scans (kept verbatim as the
  differential-test oracle and the A/B baseline for ``bench_k2_scale``).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..util.errors import SchedulingError

__all__ = ["Reservation", "NodeTimeline", "ResourceProfile", "Gantt"]

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class Reservation:
    start: float
    end: float
    job_id: int


class NodeTimeline:
    """Sorted, non-overlapping reservations for one node."""

    __slots__ = ("_starts", "_reservations")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._reservations: list[Reservation] = []

    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._reservations)

    def is_free(self, start: float, end: float) -> bool:
        """True if no reservation overlaps [start, end)."""
        if end <= start:
            raise SchedulingError(f"empty interval [{start}, {end})")
        idx = bisect.bisect_right(self._starts, start)
        if idx > 0 and self._reservations[idx - 1].end > start:
            return False
        if idx < len(self._reservations) and self._reservations[idx].start < end:
            return False
        return True

    def add(self, reservation: Reservation) -> None:
        if not self.is_free(reservation.start, reservation.end):
            raise SchedulingError(
                f"overlapping reservation {reservation} on busy timeline"
            )
        idx = bisect.bisect_right(self._starts, reservation.start)
        self._starts.insert(idx, reservation.start)
        self._reservations.insert(idx, reservation)

    def pop_job(self, job_id: int, start: Optional[float] = None) -> list[Reservation]:
        """Drop all reservations of one job; returns the removed entries.

        ``start`` is the scheduler's hint of where the job's reservation
        sits (a job holds at most one interval per node, and two intervals
        on one timeline can never share a start): with it the removal is a
        bisect + single deletion instead of a full-list rebuild — releases
        run once per node per completed job, which made the rebuild one of
        the hottest allocations of a campaign.  A stale hint (the
        reservation was truncated away, or never existed) falls back to the
        full scan, so the hint can never drop the wrong job's entry.
        """
        starts = self._starts
        reservations = self._reservations
        if start is not None:
            idx = bisect.bisect_left(starts, start)
            if idx < len(reservations) and reservations[idx].job_id == job_id \
                    and starts[idx] == start:
                hit = reservations[idx]
                del starts[idx]
                del reservations[idx]
                return [hit]
            # Hint missed (e.g. the reservation was truncated): fall through.
        removed: list[Reservation] = []
        for i in range(len(reservations) - 1, -1, -1):
            if reservations[i].job_id == job_id:
                removed.append(reservations[i])
                del starts[i]
                del reservations[i]
        removed.reverse()
        return removed

    def remove_job(self, job_id: int, start: Optional[float] = None) -> int:
        """Drop all reservations of one job; returns how many were removed."""
        return len(self.pop_job(job_id, start))

    def truncate_job(self, job_id: int, end: float) -> Optional[Tuple[float, float]]:
        """Shorten a job's reservation (early release); returns the freed
        ``(start, end)`` interval, or None if nothing changed.

        Truncating to at/before the reservation's start drops the entry
        entirely — a zero-length ``[start, start)`` residue would linger in
        ``_starts`` and distort ``release_points``/``candidate_starts``
        until the next purge.

        Bisects to the reservation covering ``end`` first (the running-job
        shape: every scheduler truncation cuts a reservation that started
        at or before now), scanning forward only for the rare
        entirely-in-the-future entry; reservations strictly before the
        bisect point end at or before ``end`` and can never match.
        """
        starts = self._starts
        reservations = self._reservations
        idx = bisect.bisect_right(starts, end) - 1
        for i in range(max(idx, 0), len(reservations)):
            r = reservations[i]
            if r.job_id == job_id and r.end > end:
                if end <= r.start:
                    del starts[i]
                    del reservations[i]
                    return (r.start, r.end)
                reservations[i] = Reservation(r.start, end, job_id)
                return (end, r.end)
        return None

    def busy_until(self, t: float) -> float:
        """End of the reservation covering ``t`` (or ``t`` if free)."""
        idx = bisect.bisect_right(self._starts, t)
        if idx > 0 and self._reservations[idx - 1].end > t:
            return self._reservations[idx - 1].end
        return t

    def next_fit(self, after: float, duration: float) -> float:
        """Earliest ``s >= after`` with ``[s, s + duration)`` free.

        Always finite (the timeline's tail is an unbounded free window).
        Bisects to the first relevant reservation instead of walking the
        whole list — the building block of the whole-cluster search.
        """
        reservations = self._reservations
        idx = bisect.bisect_right(self._starts, after)
        t = after
        if idx > 0 and reservations[idx - 1].end > t:
            t = reservations[idx - 1].end
        while idx < len(reservations):
            r = reservations[idx]
            if r.start - t >= duration:
                return t
            if r.end > t:
                t = r.end
            idx += 1
        return t

    def hole_around(self, t: float) -> Tuple[float, float]:
        """Free window containing ``t`` — ``(t, t)`` when ``t`` is inside a
        reservation.  Bounds the freed region for the incremental
        replanner."""
        starts = self._starts
        reservations = self._reservations
        idx = bisect.bisect_right(starts, t)
        lo = _NEG_INF
        if idx > 0:
            prev = reservations[idx - 1]
            if prev.end > t:
                return (t, t)
            lo = prev.end
        hi = reservations[idx].start if idx < len(reservations) else math.inf
        return (lo, hi)

    def release_points(self, after: float) -> list[float]:
        """Reservation end times > ``after`` (candidate start times)."""
        return sorted({r.end for r in self._reservations if r.end > after})

    def free_intervals(self, after: float) -> list[tuple[float, float]]:
        """Maximal free windows from ``after`` on (last one is unbounded).

        Bisects past reservations that ended before ``after`` instead of
        walking the whole history — on long campaigns the hot searches sit
        at the tail of deep timelines.
        """
        reservations = self._reservations
        idx = bisect.bisect_right(self._starts, after)
        prev = after
        if idx > 0 and reservations[idx - 1].end > after:
            prev = reservations[idx - 1].end
        out: list[tuple[float, float]] = []
        for i in range(idx, len(reservations)):
            r = reservations[i]
            if r.start > prev:
                out.append((prev, r.start))
            if r.end > prev:
                prev = r.end
        out.append((prev, math.inf))
        return out

    def purge_before(self, t: float) -> None:
        """Forget reservations that ended before ``t`` (memory hygiene on
        long campaigns)."""
        keep = [(s, r) for s, r in zip(self._starts, self._reservations) if r.end >= t]
        self._starts = [s for s, _ in keep]
        self._reservations = [r for _, r in keep]


class ResourceProfile:
    """Park-wide availability index: a step function of free-node bitmasks.

    ``_times[i]`` opens step ``i``, which covers ``[_times[i],
    _times[i+1])`` (the final step is unbounded); ``_masks[i]`` has bit
    ``b`` set iff the node holding bit ``b`` is reservation-free
    throughout the step.  The uid -> bit mapping is fixed at construction
    in the order given (the OAR database's sorted node order), so masks
    from different queries compose with plain ``&``/``|`` and the lowest
    set bits of a free mask are exactly the first free nodes in database
    order.  Adjacent steps never share a mask (every update re-coalesces
    its touched range), keeping the step count proportional to the number
    of distinct reservation boundaries.

    Queries replicate the retired per-node interval sweep bit for bit: a
    node is eligible to host a start at ``t`` iff its free window ``[s,
    e)`` satisfies ``s <= t`` and ``e - duration >= t`` — :meth:`earliest`
    finds the window-end boundary by bisecting on ``times[j] - duration >=
    t``, the very subtraction the sweep used for its event coordinates, so
    golden report hashes survive the refactor unchanged.
    """

    __slots__ = ("_uids", "_bits", "_full", "_times", "_masks")

    def __init__(self, node_uids: Iterable[str]) -> None:
        self._uids: List[str] = list(node_uids)
        self._bits: Dict[str, int] = {u: i for i, u in enumerate(self._uids)}
        self._full: int = (1 << len(self._uids)) - 1
        self._times: List[float] = [_NEG_INF]
        self._masks: List[int] = [self._full]

    def __len__(self) -> int:
        return len(self._times)

    # -- bit bookkeeping ---------------------------------------------------------

    @property
    def full_mask(self) -> int:
        return self._full

    def bit(self, uid: str) -> int:
        return self._bits[uid]

    def mask_for(self, uids: Iterable[str]) -> int:
        bits = self._bits
        mask = 0
        for uid in uids:
            mask |= 1 << bits[uid]
        return mask

    def uids_from_mask(self, mask: int, limit: Optional[int] = None) -> List[str]:
        """Set bits -> node uids, lowest bit (database order) first."""
        out: List[str] = []
        uids = self._uids
        while mask and (limit is None or len(out) < limit):
            low = mask & -mask
            out.append(uids[low.bit_length() - 1])
            mask ^= low
        return out

    # -- maintenance -------------------------------------------------------------

    def rebuild(self, busy: Iterable[Tuple[float, float, int]]) -> None:
        """Reload from scratch out of ``(start, end, mask)`` busy intervals.

        One sweep over the sorted boundary set; a bit both released and
        re-acquired at the same instant (back-to-back reservations) stays
        busy across the boundary, which the coalescing then erases.
        """
        acquire: Dict[float, int] = {}
        release: Dict[float, int] = {}
        for start, end, mask in busy:
            if end <= start or mask == 0:
                continue
            acquire[start] = acquire.get(start, 0) | mask
            release[end] = release.get(end, 0) | mask
        times: List[float] = [_NEG_INF]
        masks: List[int] = [self._full]
        current = self._full
        for t in sorted(set(acquire) | set(release)):
            nxt = (current | release.get(t, 0)) & ~acquire.get(t, 0)
            if nxt != current:
                times.append(t)
                masks.append(nxt)
                current = nxt
        self._times = times
        self._masks = masks

    def _boundary(self, t: float) -> int:
        """Index of the step opening exactly at ``t``, splitting if needed."""
        times = self._times
        idx = bisect.bisect_right(times, t) - 1
        if times[idx] != t:
            idx += 1
            times.insert(idx, t)
            self._masks.insert(idx, self._masks[idx - 1])
        return idx

    def set_busy(self, mask: int, start: float, end: float) -> None:
        self._apply(mask, start, end, busy=True)

    def set_free(self, mask: int, start: float, end: float) -> None:
        self._apply(mask, start, end, busy=False)

    def _apply(self, mask: int, start: float, end: float, busy: bool) -> None:
        if mask == 0 or end <= start:
            return
        i = self._boundary(start)
        j = self._boundary(end)
        masks = self._masks
        if busy:
            inv = ~mask
            for s in range(i, j):
                masks[s] &= inv
        else:
            for s in range(i, j):
                masks[s] |= mask
        # Re-coalesce the touched range: freeing can erase the distinction
        # between neighbouring steps (and the split boundaries themselves
        # may have become redundant).
        times = self._times
        k = min(j, len(times) - 1)
        lo = max(i, 1)
        while k >= lo:
            if masks[k] == masks[k - 1]:
                del times[k]
                del masks[k]
            k -= 1

    # -- queries -----------------------------------------------------------------

    def free_mask(self, mask: int, start: float, end: float) -> int:
        """Bits of ``mask`` free throughout ``[start, end)``."""
        times = self._times
        masks = self._masks
        i = bisect.bisect_right(times, start) - 1
        j = bisect.bisect_left(times, end, i + 1)
        out = masks[i] & mask
        for s in range(i + 1, j):
            if not out:
                break
            out &= masks[s]
        return out

    def free_count(self, mask: int, start: float, end: float) -> int:
        return self.free_mask(mask, start, end).bit_count()

    def _window_hits(self, avail: int, i: int, j: int, k: int) -> bool:
        """Do ``k`` bits of ``avail`` survive intersecting steps (i, j)?"""
        masks = self._masks
        for s in range(i + 1, j):
            avail &= masks[s]
            if avail.bit_count() < k:
                return False
        return True

    def earliest(self, mask: int, after: float, duration: float,
                 k: int) -> Optional[float]:
        """Earliest ``t >= after`` when ``k`` bits of ``mask`` are
        simultaneously free over ``[t, t + duration)``.

        Walks candidate starts (``after`` plus every later step boundary —
        a superset of the reservation-end release points, so no earlier
        feasible start can be skipped); each candidate costs one bisect
        plus a mask intersection over the steps its window covers.  The
        final step's mask is always the full park (reservations are
        finite), so the walk terminates whenever ``k <=
        mask.bit_count()``.

        Float compatibility with the retired sweep, candidate by
        candidate: the sweep's fits-now shortcut admitted ``after`` when
        a window end satisfied ``fl(end - after) >= duration``, while its
        event coordinates encode ``fl(end - duration) >= t`` — identical
        in exact arithmetic, divergent at sub-ULP scales.  ``after``
        therefore wins here if *either* form reaches ``k`` (exactly the
        old control flow); later candidates use the event form only.
        """
        if k < 1:
            return None
        times = self._times
        n = len(times)
        i = bisect.bisect_right(times, after) - 1
        avail = self._masks[i] & mask
        if avail.bit_count() >= k:
            j = bisect.bisect_left(times, duration, i + 1, n,
                                   key=lambda b: b - after)
            if self._window_hits(avail, i, j, k):
                return after
            j = bisect.bisect_left(times, after, i + 1, n,
                                   key=lambda b: b - duration)
            if self._window_hits(avail, i, j, k):
                return after
        while True:
            i += 1
            if i >= n:
                return None
            t = times[i]
            avail = self._masks[i] & mask
            if avail.bit_count() >= k:
                j = bisect.bisect_left(times, t, i + 1, n,
                                       key=lambda b: b - duration)
                if self._window_hits(avail, i, j, k):
                    return t


class Gantt:
    """Timelines for a set of nodes, indexed by a park-wide profile.

    ``NodeTimeline`` objects stay the per-node source of truth; the
    :class:`ResourceProfile` is a derived index kept in lockstep by the
    mutators below.  Handing out a raw timeline via :meth:`timeline` marks
    the index dirty (tests mutate timelines directly); it is then rebuilt
    lazily on the next profile query.
    """

    def __init__(self, node_uids: Iterable[str]) -> None:
        uid_list = list(node_uids)
        self._timelines: dict[str, NodeTimeline] = {
            uid: NodeTimeline() for uid in uid_list
        }
        #: ``False`` pins every query to the direct timeline scans (the
        #: pre-profile algorithms below, kept verbatim) — the differential
        #: oracle and the A/B baseline for ``bench_k2_scale``.
        self.use_profile: bool = True
        self._profile = ResourceProfile(uid_list)
        self._profile_dirty = False

    # -- profile plumbing --------------------------------------------------------

    @property
    def profile(self) -> ResourceProfile:
        """The availability index, rebuilt first if something stale-marked it."""
        if self._profile_dirty:
            self._rebuild_profile()
        return self._profile

    def _rebuild_profile(self) -> None:
        prof = self._profile
        prof.rebuild(
            (r.start, r.end, 1 << prof.bit(uid))
            for uid, tl in self._timelines.items()
            for r in tl
        )
        self._profile_dirty = False

    @property
    def full_mask(self) -> int:
        return self._profile.full_mask

    def bit(self, uid: str) -> int:
        return self._profile.bit(uid)

    def mask_for(self, uids: Iterable[str]) -> int:
        """Bitmask of a uid set (stable across profile rebuilds)."""
        return self._profile.mask_for(uids)

    def uids_from_mask(self, mask: int, limit: Optional[int] = None) -> list[str]:
        return self._profile.uids_from_mask(mask, limit)

    def profile_earliest(self, mask: int, after: float, duration: float,
                         k: int) -> Optional[float]:
        """Mask-native :meth:`earliest_start` (hot-path form: callers keep
        cached candidate masks instead of node lists)."""
        if duration <= 0:
            raise SchedulingError(f"non-positive duration: {duration}")
        return self.profile.earliest(mask, after, duration, k)

    def profile_free_mask(self, mask: int, start: float, end: float) -> int:
        return self.profile.free_mask(mask, start, end)

    def free_uids(self, mask: int, start: float, end: float,
                  limit: Optional[int] = None) -> list[str]:
        """First ``limit`` free nodes of ``mask`` over ``[start, end)``, in
        database order (identical to filtering the candidate list through
        ``is_free`` and slicing)."""
        prof = self.profile
        return prof.uids_from_mask(prof.free_mask(mask, start, end), limit)

    # -- timeline access ---------------------------------------------------------

    def timeline(self, uid: str) -> NodeTimeline:
        """Hand out a mutable timeline; the profile index goes stale."""
        self._profile_dirty = True
        return self._timelines[uid]

    def hole_around(self, uid: str, t: float) -> tuple[float, float]:
        """Free window of ``uid`` containing ``t`` (read-only probe)."""
        return self._timelines[uid].hole_around(t)

    def is_free(self, uid: str, start: float, end: float) -> bool:
        return self._timelines[uid].is_free(start, end)

    def free_nodes(self, uids: Iterable[str], start: float, end: float) -> list[str]:
        return [u for u in uids if self._timelines[u].is_free(start, end)]

    # -- mutators (timelines + profile in lockstep) ------------------------------

    def reserve(self, uids: Iterable[str], start: float, end: float, job_id: int) -> None:
        uids = list(uids)
        reserved = []
        try:
            for uid in uids:
                self._timelines[uid].add(Reservation(start, end, job_id))
                reserved.append(uid)
        except SchedulingError:
            for uid in reserved:  # roll back the partial reservation
                self._timelines[uid].remove_job(job_id, start)
            raise
        if not self._profile_dirty:
            self._profile.set_busy(self._profile.mask_for(uids), start, end)

    def release(self, uids: Iterable[str], job_id: int,
                start: Optional[float] = None) -> None:
        timelines = self._timelines
        prof = self._profile
        live = not self._profile_dirty
        freed: dict[tuple[float, float], int] = {}
        for uid in uids:
            removed = timelines[uid].pop_job(job_id, start)
            if live:
                for r in removed:
                    key = (r.start, r.end)
                    freed[key] = freed.get(key, 0) | (1 << prof.bit(uid))
        for (s, e), mask in freed.items():
            prof.set_free(mask, s, e)

    def truncate(self, uids: Iterable[str], job_id: int, end: float) -> None:
        prof = self._profile
        live = not self._profile_dirty
        freed: dict[tuple[float, float], int] = {}
        for uid in uids:
            interval = self._timelines[uid].truncate_job(job_id, end)
            if live and interval is not None:
                freed[interval] = freed.get(interval, 0) | (1 << prof.bit(uid))
        for (s, e), mask in freed.items():
            prof.set_free(mask, s, e)

    def purge_before(self, t: float) -> None:
        for timeline in self._timelines.values():
            timeline.purge_before(t)
        # History that a purge forgets was all in the past; rebuilding the
        # profile from the surviving reservations keeps every query about
        # the present and future identical.
        self._profile_dirty = True

    # -- placement queries -------------------------------------------------------

    def candidate_starts(self, uids: Iterable[str], after: float) -> list[float]:
        """`after` plus every release point on the candidate nodes."""
        times = {after}
        for uid in uids:
            times.update(self._timelines[uid].release_points(after))
        return sorted(times)

    def earliest_start(self, uids: Iterable[str], after: float,
                       duration: float, k: int,
                       intervals_cache: Optional[
                           dict[str, list[tuple[float, float]]]] = None,
                       ) -> Optional[float]:
        """Earliest ``t >= after`` when ``k`` of the nodes are simultaneously
        free over ``[t, t + duration)``.

        Routed through the :class:`ResourceProfile` (one bisect walk over
        the park-wide step function) unless ``use_profile`` is off, in
        which case the original per-node interval sweep
        (:meth:`_linear_earliest_start`) runs; both return identical
        answers — a property-tested invariant.  ``intervals_cache`` (uid ->
        free interval list) is the linear path's per-pass memoisation and
        is ignored by the profile path, which needs no per-call caching.

        Whole-set requests (``k == len(uids)``) keep the fixpoint walk
        over the candidate timelines on both paths: every node must be
        probed anyway, and its float arithmetic is golden-pinned.
        """
        if duration <= 0:
            raise SchedulingError(f"non-positive duration: {duration}")
        uids = list(uids)
        n = len(uids)
        if k < 1 or k > n:
            return None
        if not self.use_profile:
            return self._linear_earliest_start(uids, after, duration, k,
                                               intervals_cache)
        if k == n:
            return self._whole_set_start(uids, after, duration)
        prof = self.profile
        return prof.earliest(prof.mask_for(uids), after, duration, k)

    def _whole_set_start(self, uids: list[str], after: float,
                         duration: float) -> float:
        """Whole-set request: the answer is the fixpoint of "advance to
        every node's next window".  Each pass re-queries only the nodes
        that still conflict (via bisect), instead of building the full
        interval-overlap event list across every timeline."""
        timelines = [self._timelines[u] for u in uids]
        t = after
        while True:
            worst = t
            for tl in timelines:
                s = tl.next_fit(t, duration)
                if s > worst:
                    worst = s
            if worst == t:
                return t
            t = worst

    def _linear_earliest_start(self, uids: list[str], after: float,
                               duration: float, k: int,
                               intervals_cache: Optional[
                                   dict[str, list[tuple[float, float]]]] = None,
                               ) -> Optional[float]:
        """The pre-profile algorithm (PR 5), kept verbatim as the
        differential-test oracle and the A/B benchmark baseline.

        Interval sweep: each free window ``[s, e)`` long enough for
        ``duration`` lets its node host a start anywhere in ``[s, e -
        duration]``; the answer is the first sweep point where at least
        ``k`` host intervals overlap.  This is O(R log R) in the number of
        reservations — linear in the candidate set size per query, which
        the profile path replaces with one park-wide bisect walk.

        ``intervals_cache`` (uid -> free interval list) lets one
        scheduling pass share the per-timeline interval computation across
        every queued job it places: free intervals depend only on the
        timeline and ``after`` (not on the job's walltime), so the caller
        may reuse the dict for many searches at one instant, dropping the
        entries of any node it reserves in between.
        """
        timelines = [self._timelines[u] for u in uids]
        n = len(timelines)
        # Empty timelines (idle nodes with no future reservations — the
        # common case on a lightly loaded cluster) can all host a start at
        # `after`; prune them from the sweep entirely.
        idle = sum(1 for tl in timelines if not tl._reservations)
        if idle >= k:
            return after
        if k == n:
            return self._whole_set_start(uids, after, duration)
        interval_lists: list[list[tuple[float, float]]] = []
        fits_now = idle
        for uid, tl in zip(uids, timelines):
            if not tl._reservations:
                continue  # accounted for in the idle baseline
            if intervals_cache is None:
                intervals = tl.free_intervals(after)
            else:
                intervals = intervals_cache.get(uid)
                if intervals is None:
                    intervals = tl.free_intervals(after)
                    intervals_cache[uid] = intervals
            interval_lists.append(intervals)
            s0, e0 = intervals[0]
            if s0 == after and e0 - after >= duration:
                fits_now += 1
        if fits_now >= k:
            # Enough nodes are free at `after` itself — the sweep would
            # return `after` after building and sorting the full event
            # list; skip it (the common shape on replanning passes).
            return after
        events: list[tuple[float, int]] = []
        for intervals in interval_lists:
            for s, e in intervals:
                if e - s >= duration:
                    events.append((s, 0))  # +1: can host starts from s on
                    if math.isfinite(e):
                        events.append((e - duration, 1))  # -1 after this point
        events.sort()
        count = idle
        for coord, kind in events:
            if kind == 0:
                count += 1
                if count >= k:
                    return coord
            else:
                count -= 1
        return None
