"""M1 — malleable vs rigid scheduling: the elastic A/B headline.

Runs the ``elastic-burst`` preset (the bursty trace replay widened to
0.5x..2x elastic ranges) under the rigid ``easy-backfill`` baseline and
the two malleable policies at identical contention — same trace, same
seed, same testbed — and asserts the PR's headline claim: malleability
alone improves mean user-job turnaround.  Also measures scheduling
throughput (completed user jobs per wall-clock second) for the perf gate.
Numbers land in ``benchmarks/results/BENCH_m1_elastic.json``.
"""

import time

from repro import run_scenario, scenarios

from conftest import paper_row, print_table
from perf import write_results

_MONTHS = 0.12  # the horizon the bundled trace was recorded over
_STRATEGIES = ("easy-backfill", "common-pool", "steal-agreement")


def _timed_run(spec, strategy, seed=0):
    t0 = time.perf_counter()
    _, report = run_scenario(spec.derive(strategy=strategy),
                             seed=seed, months=_MONTHS)
    return report, time.perf_counter() - t0


def bench_m1_elastic(benchmark):
    spec = scenarios.get("elastic-burst")

    reports, walls = {}, {}
    reports["easy-backfill"], walls["easy-backfill"] = benchmark.pedantic(
        lambda: _timed_run(spec, "easy-backfill"), rounds=1, iterations=1)
    for strategy in _STRATEGIES[1:]:
        reports[strategy], walls[strategy] = _timed_run(spec, strategy)

    rigid = reports["easy-backfill"]
    rows = []
    for strategy in _STRATEGIES:
        rep = reports[strategy]
        speedup = rigid.turnaround_mean_s / rep.turnaround_mean_s
        rows.append(paper_row(
            f"{strategy}: mean turnaround (s)", "-",
            f"{rep.turnaround_mean_s:.0f} ({speedup:.2f}x rigid)"))
    rows.append(paper_row(
        "jobs completed (rigid/pool/steal)", "-",
        "/".join(str(reports[s].jobs_completed) for s in _STRATEGIES)))
    rows.append(paper_row(
        "resizes (grow+shrink, pool/steal)", "-",
        "/".join(str(reports[s].grow_events + reports[s].shrink_events)
                 for s in _STRATEGIES[1:])))
    print_table("M1: malleable vs rigid scheduling", rows)

    rigid_jps = rigid.jobs_completed / max(walls["easy-backfill"], 1e-9)
    elastic_jps = (reports["steal-agreement"].jobs_completed
                   / max(walls["steal-agreement"], 1e-9))
    metrics = {
        "rigid_jobs_per_s": round(rigid_jps, 1),
        "elastic_jobs_per_s": round(elastic_jps, 1),
    }
    for strategy in _STRATEGIES:
        rep = reports[strategy]
        key = strategy.replace("-", "_")
        metrics[f"{key}_turnaround_mean_s"] = round(rep.turnaround_mean_s, 1)
        metrics[f"{key}_jobs_completed"] = rep.jobs_completed
        metrics[f"{key}_node_utilization"] = round(rep.node_utilization, 4)
    write_results("m1_elastic", metrics)

    # the headline: at equal contention, malleability improves turnaround
    # and never serves fewer jobs than the rigid baseline
    assert rigid.grow_events == 0 and rigid.shrink_events == 0
    for strategy in _STRATEGIES[1:]:
        rep = reports[strategy]
        assert rep.grow_events > 0 and rep.shrink_events > 0
        assert rep.turnaround_mean_s < rigid.turnaround_mean_s
        assert rep.jobs_completed >= rigid.jobs_completed
