"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on environments where pip falls back to it) use the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
