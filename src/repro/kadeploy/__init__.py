"""Kadeploy-shaped OS deployment: images, chain broadcast, 3-phase deploys."""

from .deployment import DeploymentResult, Kadeploy, NodeDeployOutcome
from .images import REFERENCE_IMAGES, STD_ENV, EnvironmentImage, image_by_name
from .kascade import broadcast_time_s

__all__ = [
    "EnvironmentImage",
    "REFERENCE_IMAGES",
    "STD_ENV",
    "image_by_name",
    "broadcast_time_s",
    "Kadeploy",
    "DeploymentResult",
    "NodeDeployOutcome",
]
