#!/usr/bin/env python
"""The external status page (slides 18-19).

Runs the framework for two simulated weeks with a handful of injected
faults, then renders the per-test x per-cluster grid and the historical
success trend — the views the paper's requirements call for.

Run:  python examples/status_page.py
"""

from repro import FrameworkBuilder
from repro.analysis import StatusPage
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec
from repro.util import WEEK


def main() -> None:
    spec = ScenarioSpec(name="status-page", seed=3, workload=WorkloadConfig(),
                        fault_mean_interarrival_s=86_400.0)
    fw = FrameworkBuilder(spec).build()
    for _ in range(12):  # an unhealthy testbed makes an interesting page
        fw.injector.inject()
    fw.start()
    print("simulating two weeks of continuous testing...")
    fw.run_until(2 * WEEK)

    page = StatusPage(fw.history, fw.testbed)
    print()
    print(page.render(now=fw.sim.now))
    print()
    print(page.render_trend(until=fw.sim.now))
    print()
    print(f"bugs filed so far: {fw.tracker.filed_count} "
          f"(fixed: {fw.tracker.fixed_count})")


if __name__ == "__main__":
    main()
