"""Tests for scheduler policies and backoff."""

import pytest

from repro.scheduling import Backoff, SchedulerPolicy
from repro.util import DAY, HOUR


def test_backoff_grows_exponentially():
    backoff = Backoff(SchedulerPolicy())
    delays = [backoff.next_delay() for _ in range(5)]
    assert delays[0] == HOUR
    assert delays[1] == 2 * HOUR
    assert delays[2] == 4 * HOUR
    assert delays[4] == 16 * HOUR
    assert backoff.attempts == 5


def test_backoff_caps_at_max():
    backoff = Backoff(SchedulerPolicy())
    for _ in range(20):
        delay = backoff.next_delay()
    assert delay == 4 * DAY


def test_backoff_reset():
    backoff = Backoff(SchedulerPolicy())
    for _ in range(6):
        backoff.next_delay()
    backoff.reset()
    assert backoff.next_delay() == HOUR
    assert backoff.attempts == 1


def test_custom_backoff_parameters():
    policy = SchedulerPolicy(backoff_initial_s=60.0, backoff_factor=3.0,
                             backoff_max_s=600.0)
    backoff = Backoff(policy)
    assert backoff.next_delay() == 60.0
    assert backoff.next_delay() == 180.0
    assert backoff.next_delay() == 540.0
    assert backoff.next_delay() == 600.0  # capped


def test_hardware_avoids_peak_hours():
    policy = SchedulerPolicy()
    wednesday_noon = 12 * HOUR
    wednesday_night = 2 * HOUR
    assert not policy.allows_now("hardware", wednesday_noon)
    assert policy.allows_now("hardware", wednesday_night)
    assert policy.allows_now("software", wednesday_noon)


def test_peak_hours_policy_can_be_disabled():
    policy = SchedulerPolicy(avoid_peak_hours_for_hardware=False)
    assert policy.allows_now("hardware", 12 * HOUR)


# -- strategy layer -----------------------------------------------------------


def test_registry_knows_builtin_strategies():
    from repro.scheduling import (DefaultStrategy, get_strategy,
                                  strategy_names)
    import repro.service  # noqa: F401  (registers external-protocol)
    assert get_strategy("default") is DefaultStrategy
    names = strategy_names()
    assert "default" in names and "external-protocol" in names


def test_unknown_strategy_error_lists_known_names():
    from repro.scheduling import get_strategy
    with pytest.raises(KeyError, match="default"):
        get_strategy("no-such-strategy")


def test_register_rejects_abstract_names():
    from repro.scheduling import SchedulingStrategy, register_strategy

    class Nameless(SchedulingStrategy):
        pass

    with pytest.raises(ValueError):
        register_strategy(Nameless)


def test_explicit_default_strategy_is_behaviour_identical():
    """The strategy extraction is a pure refactor: injecting
    DefaultStrategy through the builder extra produces the byte-identical
    report of the implicit default."""
    import hashlib
    import json

    from repro import run_scenario, scenarios
    from repro.scheduling import DefaultStrategy

    def report_hash(report):
        doc = json.dumps(report.to_dict(), sort_keys=True,
                         separators=(",", ":"))
        return hashlib.sha256(doc.encode()).hexdigest()

    spec = scenarios.get("tiny-smoke")
    _, implicit = run_scenario(spec, seed=5, months=0.05)
    _, explicit = run_scenario(
        spec, seed=5, months=0.05,
        on_builder=lambda b: b.with_extra(
            "scheduling_strategy", lambda policy: DefaultStrategy(policy)))
    assert report_hash(implicit) == report_hash(explicit)
