"""``python -m repro.analysis.static`` — same as the ``repro-lint`` script."""

import sys

from .cli import main

sys.exit(main())
