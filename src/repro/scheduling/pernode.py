"""Per-node scheduling variant — the paper's closing open question.

Slide 23: *"Job scheduling: requiring the availability of all nodes of a
cluster is not very realistic.  Move to per-node scheduling?"*

:class:`PerNodeVariant` wraps a hardware-centric family (multireboot,
paralleldeploy, multideploy) into a software-centric one that exercises
**one node per run**, rotating through the cluster.  Any single free node
suffices, so runs happen far more often — at the cost of never observing
whole-cluster behaviour (chain broadcast at scale, simultaneous boots) and
needing many runs to cover a cluster.  The A1 ablation bench quantifies
this trade-off.

Availability is probed through the wrapping
:class:`~repro.scheduling.launcher.ExternalScheduler`, whose free-node
counts ride the Gantt availability profile (one indexed query per target
set) rather than per-node timeline scans — per-node cells stay cheap even
on a 10k-node park.
"""

from __future__ import annotations

from typing import Any

from ..checksuite.base import CheckContext, CheckFamily, Finding
from ..checksuite.deploy_checks import _deploy_findings
from ..faults.catalog import FaultKind
from ..kadeploy.images import STD_ENV
from .launcher import ExternalScheduler

__all__ = ["PerNodeVariant", "make_pernode_scheduler"]


class PerNodeVariant(CheckFamily):
    """Single-node rewrite of a hardware-centric family."""

    def __init__(self, base: CheckFamily):
        if base.kind != "hardware":
            raise ValueError(f"{base.name} is not a hardware-centric family")
        self.base = base
        self.name = f"{base.name}-pernode"
        self.kind = "software"
        self.nodes_needed = 1
        self.walltime_s = 3600.0
        #: cluster -> index of the next node to test (rotation state).
        self._cursor: dict[str, int] = {}

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()]

    def _next_node(self, ctx: CheckContext, cluster: str) -> str:
        nodes = ctx.testbed.cluster(cluster).nodes
        idx = self._cursor.get(cluster, 0) % len(nodes)
        self._cursor[cluster] = idx + 1
        return nodes[idx].uid

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = config["cluster"]
        node_uid = self._next_node(ctx, cluster)
        outcome.config = dict(config, node=node_uid)
        job = yield from self.reserve(
            ctx, f"network_address='{node_uid}.{ctx.testbed.cluster(cluster).site}"
                 ".grid5000.fr'/nodes=1,walltime=1")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            mean_boot = ctx.testbed.cluster(cluster).boot_time_s
            rounds = getattr(self.base, "rounds", 1)
            if self.base.name == "multireboot":
                for _ in range(rounds):
                    start = ctx.sim.now
                    up = yield ctx.sim.process(ctx.kadeploy.reboot([node_uid]))
                    if not up[node_uid]:
                        outcome.findings.append(self._flaky_finding(node_uid))
                    elif ctx.sim.now - start > mean_boot * 1.45 + 60.0:
                        outcome.findings.append(self._race_finding(cluster))
            else:  # paralleldeploy / multideploy, one node at a time
                for _ in range(rounds):
                    start = ctx.sim.now
                    result = yield ctx.sim.process(
                        ctx.kadeploy.deploy([node_uid], STD_ENV))
                    outcome.findings.extend(
                        _deploy_findings(result, cluster, STD_ENV,
                                         degraded_threshold=1.0))
                    if ctx.sim.now - start > mean_boot * 2.4 + 180.0:
                        outcome.findings.append(self._race_finding(cluster))
        finally:
            self.release(ctx, job)
        self._dedupe(outcome)
        outcome.passed = not outcome.findings
        return outcome

    @staticmethod
    def _flaky_finding(node_uid: str) -> Finding:
        return Finding(FaultKind.RANDOM_REBOOTS, node_uid,
                       "node failed to come back from a reboot")

    @staticmethod
    def _race_finding(cluster: str) -> Finding:
        return Finding(FaultKind.KERNEL_BOOT_RACE, cluster,
                       "boot abnormally slow on this node")

    @staticmethod
    def _dedupe(outcome) -> None:
        seen = set()
        unique = []
        for f in outcome.findings:
            key = (f.kind_hint, f.target)
            if key not in seen:
                seen.add(key)
                unique.append(f)
        outcome.findings = unique


def make_pernode_scheduler(sim, jenkins, oar, testbed, families, policy,
                           **kwargs) -> ExternalScheduler:
    """Build an ExternalScheduler where hardware families are replaced by
    their per-node variants (the slide-23 alternative design)."""
    replaced = [PerNodeVariant(f) if f.kind == "hardware" else f
                for f in families]
    return ExternalScheduler(sim, jenkins, oar, testbed, replaced,
                             policy=policy, **kwargs)
