"""Tests for Ganglia and kwapi probes."""

import numpy as np
import pytest

from repro.faults import FaultContext, FaultKind, ServiceHealth, apply_fault
from repro.monitoring import Ganglia, Kwapi
from repro.nodes import MachinePark
from repro.util import RngStreams, Simulator


@pytest.fixture()
def world(fresh_testbed):
    sim = Simulator()
    services = ServiceHealth()
    park = MachinePark.from_testbed(sim, fresh_testbed, RngStreams(seed=8))
    return sim, services, park, fresh_testbed


def test_ganglia_on_demand_sample(world):
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park)
    park["grisou-1"].cpu_load = 0.5
    sample = ganglia.sample_node("grisou-1")
    assert sample["cpu_load"] == 0.5
    assert sample["up"] == 1.0
    assert ganglia.store.last("grisou-1.cpu_load") == (0.0, 0.5)


def test_ganglia_sees_crash(world):
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park)
    park["grisou-1"].crash()
    assert ganglia.sample_node("grisou-1")["up"] == 0.0


def test_ganglia_periodic_sampling(world):
    sim, _, park, _ = world
    ganglia = Ganglia(sim, park, period_s=30.0)
    ganglia.start(node_uids=["grisou-1"])
    sim.run(until=301.0)
    ganglia.stop()
    t, _ = ganglia.store.window("grisou-1.cpu_load", 0.0, 1e9)
    assert len(t) == 11  # t=0,30,...,300


def test_kwapi_reports_documented_outlet(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    value = kwapi.node_power_watts("grisou-1")
    assert value == pytest.approx(park["grisou-1"].power_draw_watts())


def test_kwapi_cable_swap_reports_wrong_node(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    ctx = FaultContext.build(park, services, ("debian8-std",))
    rng = np.random.default_rng(3)
    inst = apply_fault(FaultKind.PDU_CABLE_SWAP, ctx, rng, 1, 0.0)
    a, b = inst.details["nodes"]
    park[a].cpu_load = 1.0  # distinct loads so the swap is observable
    park[b].cpu_load = 0.0
    assert kwapi.node_power_watts(a) == pytest.approx(kwapi.true_power_watts(b))
    assert kwapi.node_power_watts(b) == pytest.approx(kwapi.true_power_watts(a))
    assert kwapi.node_power_watts(a) != pytest.approx(kwapi.true_power_watts(a))


def test_kwapi_down_site_returns_none(world):
    sim, services, park, testbed = world
    services.kwapi_down.add("nancy")
    kwapi = Kwapi(sim, park, testbed, services)
    assert kwapi.node_power_watts("grisou-1") is None
    assert kwapi.node_power_watts("paravance-1") is not None  # rennes fine


def test_kwapi_unknown_node(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    assert kwapi.node_power_watts("ghost-1") is None


def test_kwapi_records_series(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    kwapi.node_power_watts("grisou-2")
    assert kwapi.store.has_series("grisou-2.power_w")


def test_power_reflects_load(world):
    sim, services, park, testbed = world
    kwapi = Kwapi(sim, park, testbed, services)
    idle = kwapi.node_power_watts("grisou-3")
    park["grisou-3"].cpu_load = 1.0
    busy = kwapi.node_power_watts("grisou-3")
    assert busy > idle
