"""Shared fixture: a small wired world for exercising test families."""

import pytest

from repro.core import build_framework
from repro.oar import WorkloadConfig
from repro.testbed import CLUSTER_SPECS

#: Two sites, five clusters (145 nodes): nancy has IB + Dell + disk-testable
#: clusters, lyon brings a GPU cluster — enough to give every family cells.
SMALL_CLUSTERS = ("grisou", "grimoire", "graoully", "taurus", "nova")


@pytest.fixture()
def world():
    specs = [s for s in CLUSTER_SPECS if s.name in SMALL_CLUSTERS]
    fw = build_framework(
        seed=11,
        specs=specs,
        workload_config=WorkloadConfig(target_utilization=0.3),
    )
    return fw


def run_family(fw, family, config):
    """Drive one family run to completion; returns the outcome."""
    holder = {}

    def driver():
        holder["outcome"] = yield fw.sim.process(family.run(fw.checkctx, config))

    fw.sim.process(driver())
    fw.sim.run()
    return holder["outcome"]
