"""Tests for the build history store and success-rate metrics."""

import math

import pytest

from repro.analysis import BuildHistory
from repro.analysis.history import BuildRecord
from repro.util import DAY, WEEK


def rec(t, family="refapi", site="nancy", cluster="grisou", status="SUCCESS",
        key=None):
    return BuildRecord(finished_at=t, family=family, site=site, cluster=cluster,
                       config_key=key or f"cluster={cluster}", status=status,
                       duration_s=60.0)


@pytest.fixture()
def history():
    h = BuildHistory()
    h.records.extend([
        rec(1 * DAY),
        rec(2 * DAY, status="FAILURE"),
        rec(3 * DAY, status="UNSTABLE"),
        rec(8 * DAY),
        rec(9 * DAY, family="disk", cluster="grimoire", status="FAILURE",
            key="cluster=grimoire"),
    ])
    return h


def test_select_by_family(history):
    assert len(history.select(family="refapi")) == 4
    assert len(history.select(family="disk")) == 1


def test_select_by_window(history):
    assert len(history.select(since=2 * DAY, until=8 * DAY)) == 2


def test_select_by_cluster(history):
    assert len(history.select(cluster="grimoire")) == 1


def test_success_rate_excludes_unstable_by_default(history):
    # 4 non-unstable records, 2 SUCCESS
    assert history.success_rate() == pytest.approx(2 / 4)


def test_success_rate_can_count_unstable(history):
    assert history.success_rate(count_unstable=True) == pytest.approx(2 / 5)


def test_success_rate_empty_window_is_nan(history):
    assert math.isnan(history.success_rate(since=100 * DAY))


def test_weekly_series(history):
    series = history.weekly_success_series(until=2 * WEEK)
    assert len(series) == 2
    (w1, r1), (w2, r2) = series
    assert (w1, w2) == (0.0, WEEK)
    assert r1 == pytest.approx(1 / 2)  # SUCCESS + FAILURE (unstable dropped)
    assert r2 == pytest.approx(1 / 2)


def test_latest_per_cell(history):
    latest = history.latest_per_cell()
    assert latest[("refapi", "cluster=grisou")].finished_at == 8 * DAY
    assert latest[("disk", "cluster=grimoire")].status == "FAILURE"


def test_record_from_scheduler_shapes():
    """record() adapts (cell, build) pairs from the external scheduler."""
    from repro.ci.job import Build, BuildStatus

    class FakeFamily:
        name = "refapi"

    class FakeCell:
        family = FakeFamily()
        site = "nancy"
        cluster = "grisou"
        config = {"cluster": "grisou"}

    build = Build(number=1, job_name="test_refapi",
                  parameters={"cluster": "grisou"}, cause="x", queued_at=0.0)
    build.started_at = 1.0
    build.finished_at = 61.0
    build.status = BuildStatus.SUCCESS
    h = BuildHistory()
    h.record(FakeCell(), build)
    assert len(h) == 1
    assert h.records[0].config_key == "cluster=grisou"
    assert h.records[0].duration_s == 60.0
