"""Tests for the synthetic user workload generator."""

from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import OarDatabase, OarServer, WorkloadConfig, WorkloadGenerator
from repro.testbed import CLUSTER_SPECS, ReferenceApi, build_grid5000
from repro.util import DAY, HOUR, RngStreams, Simulator


def make_world(seed=6, clusters=("grisou", "paravance"), config=WorkloadConfig()):
    specs = [s for s in CLUSTER_SPECS if s.name in clusters]
    testbed = build_grid5000(specs)
    sim = Simulator()
    rngs = RngStreams(seed=seed)
    park = MachinePark.from_testbed(sim, testbed, rngs)
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()), park)
    gen = WorkloadGenerator(sim, oar, testbed, rngs, config)
    return sim, oar, gen, testbed


def test_submit_one_produces_valid_job():
    sim, oar, gen, testbed = make_world()
    job = gen.submit_one()
    assert job.job_id in oar.jobs
    cluster = job.request.parts[0].expr
    assert cluster is not None
    assert 0.25 * HOUR <= job.request.walltime_s <= 24 * HOUR
    assert job.auto_duration <= job.request.walltime_s


def test_job_size_never_exceeds_cluster():
    sim, oar, gen, testbed = make_world(clusters=("grimoire",))  # 8 nodes
    for _ in range(50):
        job = gen.submit_one()
        assert job.request.parts[0].count <= 8


def test_generator_sustains_target_utilization():
    sim, oar, gen, _ = make_world(config=WorkloadConfig(target_utilization=0.6))
    gen.start()
    sim.run(until=3 * DAY)
    # sample utilization across the last day
    samples = []

    def sampler():
        while sim.now < 4 * DAY:
            samples.append(oar.utilization())
            yield sim.timeout(HOUR)

    sim.process(sampler())
    sim.run(until=4 * DAY)
    mean_util = sum(samples) / len(samples)
    assert 0.3 < mean_util < 0.95  # loaded, but not wedged


def test_rate_modulation_peak_vs_weekend():
    sim, oar, gen, _ = make_world()
    weekday_peak = gen.rate_factor(12 * HOUR)  # Wed noon
    weekday_night = gen.rate_factor(2 * HOUR)
    weekend = gen.rate_factor(3 * DAY + 12 * HOUR)  # Sat noon
    assert weekday_peak > weekday_night > weekend


def test_workload_reproducible():
    def trace(seed):
        sim, oar, gen, _ = make_world(seed=seed)
        gen.start()
        sim.run(until=12 * HOUR)
        return [(j.job_id, str(j.request), j.submitted_at) for j in oar.jobs.values()]

    assert trace(9) == trace(9)
    assert trace(9) != trace(10)


def test_stop_halts_arrivals():
    sim, oar, gen, _ = make_world()
    gen.start()
    sim.run(until=6 * HOUR)
    count = gen.submitted
    gen.stop()
    sim.run(until=2 * DAY)
    # prompt shutdown: not even one more job sneaks out of the pending draw
    assert gen.submitted == count


def test_stop_kills_the_process_immediately():
    sim, oar, gen, _ = make_world()
    gen.start()
    sim.run(until=6 * HOUR)
    proc = gen._proc
    assert proc is not None and proc.alive
    gen.stop()
    sim.run(until=sim.now)  # only the zero-delay interrupt runs
    assert not proc.alive
    gen.start()  # restartable after a prompt stop
    assert gen._proc is not None and gen._proc.alive


def test_most_small_jobs_start_quickly():
    sim, oar, gen, _ = make_world(config=WorkloadConfig(target_utilization=0.5))
    gen.start()
    sim.run(until=2 * DAY)
    waits = [j.wait_time_s for j in oar.jobs.values()
             if j.started_at is not None and len(j.assigned_nodes) == 1]
    assert waits, "no single-node jobs completed"
    quick = sum(1 for w in waits if w < 60.0)
    assert quick / len(waits) > 0.6
