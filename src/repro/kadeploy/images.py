"""Environment image registry.

The paper's matrix job tests **14 reference images** on 32 clusters
(slide 15: "test_environments: 14 images x 32 clusters = 448
configurations").  Images are built with Kameleon for traceability
(slide 8); here each image carries the attributes the deployment timing
model needs (size) plus a content hash standing in for the Kameleon recipe
provenance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.serialization import content_hash

__all__ = ["EnvironmentImage", "REFERENCE_IMAGES", "STD_ENV", "image_by_name"]


@dataclass(frozen=True)
class EnvironmentImage:
    """One deployable system image."""

    name: str
    os: str
    version: str
    variant: str  # "min" (bare), "std" (tools), "big" (full), "nfs", "xen"
    size_mb: int
    kernel: str

    @property
    def recipe_hash(self) -> str:
        """Stands in for the Kameleon recipe provenance hash."""
        return content_hash({"name": self.name, "kernel": self.kernel,
                             "size": self.size_mb})


#: The std environment every node runs by default (stdenv test family).
STD_ENV = "debian8-std"

#: Exactly 14 reference images -> 14 x 32 = 448 matrix configurations.
REFERENCE_IMAGES: tuple[EnvironmentImage, ...] = (
    EnvironmentImage("debian8-min", "debian", "8", "min", 450, "3.16.0-4"),
    EnvironmentImage("debian8-base", "debian", "8", "base", 700, "3.16.0-4"),
    EnvironmentImage("debian8-std", "debian", "8", "std", 1200, "3.16.0-4"),
    EnvironmentImage("debian8-big", "debian", "8", "big", 2300, "3.16.0-4"),
    EnvironmentImage("debian8-nfs", "debian", "8", "nfs", 1300, "3.16.0-4"),
    EnvironmentImage("debian8-xen", "debian", "8", "xen", 1500, "3.16.0-4-xen"),
    EnvironmentImage("debian9-min", "debian", "9", "min", 500, "4.9.0-2"),
    EnvironmentImage("debian9-base", "debian", "9", "base", 750, "4.9.0-2"),
    EnvironmentImage("debian9-std", "debian", "9", "std", 1250, "4.9.0-2"),
    EnvironmentImage("ubuntu1404-min", "ubuntu", "14.04", "min", 550, "3.13.0-24"),
    EnvironmentImage("ubuntu1604-min", "ubuntu", "16.04", "min", 600, "4.4.0-21"),
    EnvironmentImage("centos7-min", "centos", "7", "min", 650, "3.10.0-514"),
    EnvironmentImage("fedora25-min", "fedora", "25", "min", 700, "4.8.6-300"),
    EnvironmentImage("freebsd11-min", "freebsd", "11", "min", 800, "11.0-RELEASE"),
)

_BY_NAME = {img.name: img for img in REFERENCE_IMAGES}


def image_by_name(name: str) -> EnvironmentImage:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown environment image: {name!r}") from None
