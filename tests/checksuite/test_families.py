"""End-to-end tests: every family passes on a healthy testbed and detects
its fault kinds on a broken one."""

import pytest

from repro.checksuite import family_by_name
from repro.faults import FaultKind



# -- healthy testbed: everything passes ---------------------------------------


@pytest.mark.parametrize("name,config", [
    ("refapi", {"cluster": "grisou"}),
    ("oarproperties", {"cluster": "grimoire"}),
    ("dellbios", {"cluster": "graoully"}),
    ("oarstate", {"site": "nancy"}),
    ("cmdline", {"site": "nancy"}),
    ("sidapi", {"site": "lyon"}),
    ("environments", {"image": "debian9-min", "cluster": "grisou"}),
    ("stdenv", {"cluster": "graoully"}),
    ("console", {"cluster": "nova"}),
    ("kavlan", {"site": "nancy"}),
    ("kwapi", {"site": "nancy"}),
    ("mpigraph", {"cluster": "graoully"}),
    ("disk", {"cluster": "grimoire"}),
])
def test_family_passes_on_healthy_testbed(world, run_family, name, config):
    outcome = run_family(world, family_by_name(name), config)
    assert outcome.passed, [str(f) for f in outcome.findings]
    assert not outcome.resources_blocked


@pytest.mark.parametrize("name", ["paralleldeploy", "multireboot", "multideploy"])
def test_hardware_family_passes_on_healthy_cluster(world, run_family, name):
    outcome = run_family(world, family_by_name(name), {"cluster": "grimoire"})
    assert outcome.passed, [str(f) for f in outcome.findings]


# -- broken testbed: the right family catches the right fault ------------------


def _inject(world, kind):
    inst = world.injector.inject(kind)
    assert inst is not None
    return inst


def test_refapi_catches_cstates_drift(world, run_family):
    # grisou-1 sorts first, so the 1-node reservation picks it on an idle
    # testbed — the faulty node is deterministically the one checked.
    world.machines["grisou-1"].actual.bios.c_states = True
    outcome = run_family(world, family_by_name("refapi"), {"cluster": "grisou"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.CPU_CSTATES for f in outcome.findings)


def test_oarproperties_catches_drift(world, run_family):
    inst = _inject(world, FaultKind.OAR_PROPERTY_DRIFT)
    outcome = run_family(world, family_by_name("oarproperties"),
                         {"cluster": inst.target})
    assert not outcome.passed
    assert all(f.kind_hint == FaultKind.OAR_PROPERTY_DRIFT
               for f in outcome.findings)


def test_dellbios_catches_skew(world, run_family):
    inst = None
    while inst is None or not world.testbed.cluster(inst.target).is_dell:
        if inst is not None:
            world.injector.fix(inst)
        inst = _inject(world, FaultKind.BIOS_VERSION_SKEW)
    outcome = run_family(world, family_by_name("dellbios"),
                         {"cluster": inst.target})
    assert not outcome.passed
    assert outcome.findings[0].kind_hint == FaultKind.BIOS_VERSION_SKEW


def test_oarstate_reports_suspected_node(world, run_family):
    world.machines["nova-3"].crash()
    outcome = run_family(world, family_by_name("oarstate"), {"site": "lyon"})
    assert not outcome.passed
    assert any(f.target == "nova-3" for f in outcome.findings)


def test_cmdline_catches_broken_tools(world, run_family):
    world.services.cmdline_failure_prob["nancy"] = 0.95
    outcome = run_family(world, family_by_name("cmdline"), {"site": "nancy"})
    assert not outcome.passed
    assert outcome.findings[0].kind_hint == FaultKind.CMDLINE_BROKEN


def test_sidapi_catches_flaky_api(world, run_family):
    world.services.api_failure_prob["lyon"] = 0.9
    outcome = run_family(world, family_by_name("sidapi"), {"site": "lyon"})
    assert not outcome.passed
    assert outcome.findings[0].kind_hint == FaultKind.API_FLAKY


def test_environments_catches_broken_image(world, run_family):
    world.services.broken_images.add(("centos7-min", "grisou"))
    outcome = run_family(world, family_by_name("environments"),
                         {"image": "centos7-min", "cluster": "grisou"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.ENV_IMAGE_BROKEN
               and f.target == "centos7-min@grisou" for f in outcome.findings)


def test_console_catches_dead_console(world, run_family):
    world.machines["taurus-2"].actual.console_ok = False
    outcome = run_family(world, family_by_name("console"), {"cluster": "taurus"})
    assert not outcome.passed
    assert outcome.findings[0].target == "taurus-2"


def test_kavlan_catches_misconfig(world, run_family):
    world.services.kavlan_broken.add("nancy")
    outcome = run_family(world, family_by_name("kavlan"), {"site": "nancy"})
    assert not outcome.passed
    assert outcome.findings[0].kind_hint == FaultKind.KAVLAN_MISCONFIG


def test_kwapi_catches_kwapi_down(world, run_family):
    world.services.kwapi_down.add("lyon")
    outcome = run_family(world, family_by_name("kwapi"), {"site": "lyon"})
    assert not outcome.passed
    assert outcome.findings[0].kind_hint == FaultKind.KWAPI_DOWN


def test_kwapi_catches_cable_swap(world, run_family):
    # swap the wiring of the two nodes the site reservation will pick
    # (nova-1/nova-10 sort first among lyon's alive nodes)
    a, b = world.machines["nova-1"], world.machines["nova-10"]
    a_wiring = (a.actual.pdu_uid, a.actual.pdu_port)
    a.actual.pdu_uid, a.actual.pdu_port = b.actual.pdu_uid, b.actual.pdu_port
    b.actual.pdu_uid, b.actual.pdu_port = a_wiring
    outcome = run_family(world, family_by_name("kwapi"), {"site": "lyon"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.PDU_CABLE_SWAP for f in outcome.findings)


def test_mpigraph_catches_ofed_failure(world, run_family):
    world.machines["graoully-1"].actual.infiniband.stack_ok = False
    outcome = run_family(world, family_by_name("mpigraph"),
                         {"cluster": "graoully"})
    assert not outcome.passed
    assert outcome.findings[0].kind_hint == FaultKind.IB_OFED_FAILURE


def test_disk_catches_write_cache(world, run_family):
    world.machines["grimoire-1"].find_disk("sdb").write_cache = False
    outcome = run_family(world, family_by_name("disk"), {"cluster": "grimoire"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.DISK_WRITE_CACHE for f in outcome.findings)


def test_disk_catches_firmware_skew(world, run_family):
    world.machines["grimoire-1"].find_disk("sdb").firmware = "FL1A"
    outcome = run_family(world, family_by_name("disk"), {"cluster": "grimoire"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.DISK_FIRMWARE_SKEW for f in outcome.findings)


def test_disk_catches_dead_disk(world, run_family):
    world.machines["grimoire-1"].find_disk("sdc").healthy = False
    outcome = run_family(world, family_by_name("disk"), {"cluster": "grimoire"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.DISK_DEAD for f in outcome.findings)


def test_multireboot_catches_flaky_node(world, run_family):
    world.machines["grimoire-2"].boot_failure_prob = 0.95
    outcome = run_family(world, family_by_name("multireboot"),
                         {"cluster": "grimoire"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.RANDOM_REBOOTS
               and f.target == "grimoire-2" for f in outcome.findings)


def test_multideploy_catches_boot_race(world, run_family):
    for m in world.machines.of_cluster("grimoire"):
        m.boot_race_delay_s = 500.0
    outcome = run_family(world, family_by_name("multideploy"),
                         {"cluster": "grimoire"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.KERNEL_BOOT_RACE for f in outcome.findings)


def test_paralleldeploy_catches_degradation(world, run_family):
    world.services.deploy_degradation["grisou"] = 0.6
    outcome = run_family(world, family_by_name("paralleldeploy"),
                         {"cluster": "grisou"})
    assert not outcome.passed
    assert any(f.kind_hint == FaultKind.DEPLOY_DEGRADED for f in outcome.findings)


# -- resource blocking -> UNSTABLE path ----------------------------------------


def test_blocked_resources_reported(world, run_family):
    n = world.testbed.cluster("taurus").node_count
    world.oar.submit(f"cluster='taurus'/nodes={n},walltime=12", auto_duration=None)
    world.sim.run(until=1.0)
    outcome = run_family(world, family_by_name("stdenv"), {"cluster": "taurus"})
    assert outcome.resources_blocked
    assert not outcome.passed
