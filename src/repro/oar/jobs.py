"""OAR job objects and lifecycle states."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..util.events import Event
from .request import JobRequest

__all__ = ["JobState", "Job"]


class JobState(enum.Enum):
    WAITING = "Waiting"  # submitted, no reservation yet
    SCHEDULED = "Scheduled"  # has a (possibly future) reservation
    RUNNING = "Running"
    TERMINATED = "Terminated"
    ERROR = "Error"
    CANCELLED = "Cancelled"  # immediate job that could not start at once


@dataclass(eq=False)
class Job:
    """One OAR job.

    ``auto_duration`` is how long the workload actually runs (user jobs
    finish before their walltime); ``None`` means the job runs until the
    holder calls :meth:`repro.oar.server.OarServer.release` or the walltime
    kill fires (test jobs are driven this way).
    """

    job_id: int
    user: str
    request: JobRequest
    submitted_at: float
    immediate: bool = False
    auto_duration: Optional[float] = None
    state: JobState = JobState.WAITING
    scheduled_start: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Node uids per request part, filled when scheduled.
    assignment: tuple[tuple[str, ...], ...] = ()
    killed_by_walltime: bool = False
    #: Triggered when the job actually starts (value: the job).
    started_event: Optional[Event] = None
    #: Triggered when the job ends in any way (value: the job).
    done_event: Optional[Event] = None
    #: Monotonic generation counter guarding stale timer callbacks.
    generation: int = field(default=0)
    #: Remaining work in node-seconds at ``mass_accrued_at`` — populated on
    #: the first grow/shrink of a running job with an ``auto_duration``
    #: (rigid jobs never track mass, keeping their timers byte-identical).
    mass_remaining: Optional[float] = None
    mass_accrued_at: Optional[float] = None
    #: Times this job was grown / shrunk by a malleable policy.
    grow_count: int = 0
    shrink_count: int = 0

    @property
    def assigned_nodes(self) -> list[str]:
        return [uid for part in self.assignment for uid in part]

    # -- malleability ----------------------------------------------------------

    @property
    def malleable(self) -> bool:
        """True for single-part jobs declaring a real width range.

        Grow/shrink operate on single-part integer-width requests — the
        overwhelmingly common shape, and the only one with an unambiguous
        "current width".
        """
        parts = self.request.parts
        return len(parts) == 1 and parts[0].malleable

    @property
    def min_nodes(self) -> int:
        """Smallest width the job may shrink to (its width when rigid)."""
        if len(self.request.parts) == 1 \
                and isinstance(self.request.parts[0].min_nodes, int):
            return self.request.parts[0].min_nodes
        return self.width

    @property
    def max_nodes(self) -> int:
        """Largest width the job may grow to (its width when rigid)."""
        if len(self.request.parts) == 1 \
                and isinstance(self.request.parts[0].max_nodes, int):
            return self.request.parts[0].max_nodes
        return self.width

    @property
    def width(self) -> int:
        """Current allocated width (preferred width before assignment)."""
        if self.assignment:
            return sum(len(part) for part in self.assignment)
        return sum(part.count for part in self.request.parts
                   if isinstance(part.count, int))

    @property
    def walltime_s(self) -> float:
        return self.request.walltime_s

    @property
    def wait_time_s(self) -> Optional[float]:
        return None if self.started_at is None else self.started_at - self.submitted_at

    @property
    def run_time_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def finished(self) -> bool:
        return self.state in (JobState.TERMINATED, JobState.ERROR, JobState.CANCELLED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.state.value} {self.request}>"
