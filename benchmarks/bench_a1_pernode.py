"""A1 — ablation of slide 23's open question: cluster-granularity vs
per-node scheduling for hardware-centric tests.

On a contended testbed, whole-cluster multireboot cells rarely find all
nodes free, while the per-node variant runs constantly (one free node is
enough) at the price of partial cluster views.  The bench reports run
counts and node-coverage over two weeks for both designs.
"""

from repro import FrameworkBuilder
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec
from repro.scheduling import SchedulerPolicy
from repro.util import WEEK

from conftest import paper_row, print_table

_SPEC = ScenarioSpec(
    name="a1-pernode",
    seed=7,
    clusters=("paravance", "grisou", "graoully"),
    families=("multireboot",),
    policy=SchedulerPolicy(hardware_period_s=2 * 86400.0,
                           software_period_s=2 * 86400.0),
    workload=WorkloadConfig(target_utilization=0.65),
)


def _run(pernode: bool):
    fw = FrameworkBuilder(_SPEC.derive(pernode=pernode)).build()
    fw.start(faults=False)
    fw.run_until(2 * WEEK)
    runs = len([r for r in fw.history.records if r.status != "UNSTABLE"])
    covered_nodes = set()
    for outcome in fw.outcomes:
        if outcome.resources_blocked:
            continue
        if "node" in outcome.config:
            covered_nodes.add(outcome.config["node"])
        else:
            covered_nodes.update(
                n.uid for n in fw.testbed.cluster(outcome.config["cluster"]).nodes)
    return runs, len(covered_nodes), fw.testbed.node_count


def bench_a1_pernode(benchmark):
    cluster_runs, cluster_cov, total = _run(pernode=False)
    pernode_runs, pernode_cov, _ = benchmark.pedantic(
        lambda: _run(pernode=True), rounds=1, iterations=1)
    rows = [
        paper_row("whole-cluster: completed runs / 2 weeks", "-", cluster_runs),
        paper_row("whole-cluster: nodes covered", f"/{total}", cluster_cov),
        paper_row("per-node: completed runs / 2 weeks", "-", pernode_runs),
        paper_row("per-node: nodes covered", f"/{total}", pernode_cov),
    ]
    print_table("A1: whole-cluster vs per-node scheduling (slide 23)", rows)
    # shape: per-node runs much more often on a busy testbed...
    assert pernode_runs > cluster_runs
    # ...but each run only sees one node
    assert pernode_cov <= pernode_runs
