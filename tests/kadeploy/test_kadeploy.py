"""Tests for the Kadeploy deployment simulator."""

import pytest

from repro.faults import ServiceHealth
from repro.kadeploy import (
    REFERENCE_IMAGES,
    STD_ENV,
    Kadeploy,
    broadcast_time_s,
    image_by_name,
)
from repro.nodes import MachinePark, PowerState
from repro.testbed import CLUSTER_SPECS, build_grid5000
from repro.util import MINUTE, DeploymentError, RngStreams, Simulator


def make_world(seed=7, clusters=("paravance", "grisou")):
    specs = [s for s in CLUSTER_SPECS if s.name in clusters]
    testbed = build_grid5000(specs)
    sim = Simulator()
    services = ServiceHealth()
    park = MachinePark.from_testbed(sim, testbed, RngStreams(seed=seed))
    kadeploy = Kadeploy(sim, park, services, RngStreams(seed=seed))
    return sim, park, services, kadeploy, testbed


def run_deploy(sim, kadeploy, uids, image):
    holder = {}

    def driver():
        holder["result"] = yield sim.process(kadeploy.deploy(uids, image))

    sim.process(driver())
    sim.run()
    return holder["result"]


# -- images -----------------------------------------------------------------


def test_exactly_14_reference_images():
    """Slide 15: 14 images x 32 clusters = 448 configurations."""
    assert len(REFERENCE_IMAGES) == 14


def test_image_names_unique():
    names = [img.name for img in REFERENCE_IMAGES]
    assert len(set(names)) == 14


def test_std_env_is_a_reference_image():
    assert image_by_name(STD_ENV).variant == "std"


def test_unknown_image_raises():
    with pytest.raises(KeyError):
        image_by_name("windows315")


def test_recipe_hash_stable():
    img = image_by_name("debian9-min")
    assert img.recipe_hash == image_by_name("debian9-min").recipe_hash


# -- broadcast model ---------------------------------------------------------


def test_broadcast_nearly_flat_in_node_count():
    t10 = broadcast_time_s(1200, 10, 1250, 120)
    t200 = broadcast_time_s(1200, 200, 1250, 120)
    assert t200 < t10 * 4  # chain: far from linear scaling
    assert t200 - t10 == pytest.approx(0.35 * 190)


def test_broadcast_bottleneck_is_disk():
    slow_disk = broadcast_time_s(1200, 50, 1250, 60)
    fast_disk = broadcast_time_s(1200, 50, 1250, 400)
    assert slow_disk > fast_disk


def test_broadcast_invalid_args():
    with pytest.raises(ValueError):
        broadcast_time_s(1200, 0, 1250, 120)
    with pytest.raises(ValueError):
        broadcast_time_s(-1, 5, 1250, 120)


# -- deployments ---------------------------------------------------------------


def test_deploy_small_group_succeeds():
    sim, park, _, kadeploy, _ = make_world()
    uids = [f"paravance-{i}" for i in range(1, 9)]
    result = run_deploy(sim, kadeploy, uids, "debian9-min")
    assert result.success_rate == 1.0
    for uid in uids:
        assert park[uid].deployed_env == "debian9-min"
        assert park[uid].state == PowerState.ON


def test_paper_claim_200_nodes_in_about_5_minutes():
    """Slide 8: '200 nodes deployed in ~5 minutes'."""
    sim, park, _, kadeploy, testbed = make_world(clusters=("paravance", "grisou",
                                                           "parasilo", "ecotype",
                                                           "nova", "econome"))
    uids = [n.uid for n in testbed.iter_nodes()][:200]
    assert len(uids) == 200
    result = run_deploy(sim, kadeploy, uids, "debian9-min")
    # Paper: ~5 minutes.  Our simulated boot times land in the same band.
    assert 3 * MINUTE < result.duration_s < 10 * MINUTE
    assert result.success_rate > 0.95


def test_empty_node_list_raises():
    sim, _, _, kadeploy, _ = make_world()
    with pytest.raises(DeploymentError):
        next(kadeploy.deploy([], "debian9-min"))


def test_broken_image_fails_sanity_on_that_cluster():
    sim, park, services, kadeploy, _ = make_world()
    services.broken_images.add(("debian9-min", "grisou"))
    uids = ["grisou-1", "grisou-2", "paravance-1"]
    result = run_deploy(sim, kadeploy, uids, "debian9-min")
    assert result.outcomes["grisou-1"].failed_phase == "sanity"
    assert result.outcomes["grisou-2"].failed_phase == "sanity"
    assert result.outcomes["paravance-1"].ok


def test_degraded_cluster_fails_more():
    failures = []
    for degraded in (False, True):
        sim, park, services, kadeploy, _ = make_world(seed=13)
        if degraded:
            services.deploy_degradation["grisou"] = 0.4
        uids = [f"grisou-{i}" for i in range(1, 41)]
        result = run_deploy(sim, kadeploy, uids, "debian8-std")
        failures.append(len(result.failed))
    assert failures[1] > failures[0]


def test_random_reboot_node_often_fails_deploy():
    ok = 0
    for seed in range(12):
        sim, park, _, kadeploy, _ = make_world(seed=seed)
        park["grisou-1"].boot_failure_prob = 0.5
        result = run_deploy(sim, kadeploy, ["grisou-1"], "debian8-min")
        ok += result.outcomes["grisou-1"].ok
    assert ok < 12  # with retry, some still fail (p_fail ~ (.5)^2 per phase pair)


def test_retry_flag_set_on_failed_then_recovered_node():
    sim, park, _, kadeploy, _ = make_world(seed=3)
    park["grisou-2"].boot_failure_prob = 0.9
    result = run_deploy(sim, kadeploy, ["grisou-2"], "debian8-min")
    outcome = result.outcomes["grisou-2"]
    if outcome.ok:
        assert outcome.retried
    else:
        assert outcome.failed_phase in {"minenv", "broadcast", "boot"}


def test_plain_reboot():
    sim, park, _, kadeploy, _ = make_world()
    uids = ["paravance-1", "paravance-2"]
    holder = {}

    def driver():
        holder["up"] = yield sim.process(kadeploy.reboot(uids))

    sim.process(driver())
    sim.run()
    assert holder["up"] == {u: True for u in uids}
    assert all(park[u].boot_count == 1 for u in uids)


def test_deployment_reproducible():
    def trace(seed):
        sim, _, _, kadeploy, _ = make_world(seed=seed)
        uids = [f"paravance-{i}" for i in range(1, 21)]
        result = run_deploy(sim, kadeploy, uids, "debian8-big")
        return (result.duration_s, tuple(result.deployed))

    assert trace(21) == trace(21)


def test_bigger_image_takes_longer():
    durations = []
    for image in ("debian8-min", "debian8-big"):
        sim, _, _, kadeploy, _ = make_world(seed=5)
        result = run_deploy(sim, kadeploy, [f"grisou-{i}" for i in range(1, 11)], image)
        durations.append(result.duration_s)
    assert durations[1] > durations[0]
