"""KRN101 fixture: kernel yield-protocol positives and negatives."""


def broken_process(sim):
    yield sim.timeout(1.0)
    yield  # EXPECT(KRN101)
    yield 5  # EXPECT(KRN101)
    yield "done"  # EXPECT(KRN101)
    yield [sim.timeout(1.0)]  # EXPECT(KRN101) — a list is not an Event
    yield sim.event()  # negative: kernel factory


def clean_process(sim, server):
    yield sim.timeout(0)  # negative: the sanctioned cede-the-turn idiom
    req = server.executors.request()
    yield req  # negative: a name can hold an Event; not judged
    done = yield sim.all_of([sim.timeout(1), sim.timeout(2)])
    return done


def data_generator(records):
    # negative: never yields a kernel factory call, so literal yields are
    # fine — this is an ordinary iterator, not a sim process.
    yield 1
    yield
    for rec in records:
        yield rec


def nested_scopes(sim):
    def inner():
        yield 1  # negative: the nested generator is its own (data) scope

    yield sim.timeout(1.0)
    yield inner()  # negative: a call may return an Event-like process
