"""Build-result history: the data behind the status page and trends.

The paper's requirements (slide 18): per-test status across all
sites/clusters, per-site/per-cluster status across tests, and a
*historical perspective* — the 85 % → 93 % reliability trend of slide 23
is computed from exactly this record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..util.simclock import WEEK

__all__ = ["BuildRecord", "BuildHistory"]


@dataclass(frozen=True)
class BuildRecord:
    finished_at: float
    family: str
    site: str
    cluster: Optional[str]
    config_key: str  # canonical cell key, e.g. "cluster=grisou" or "image=...|cluster=..."
    status: str  # SUCCESS / UNSTABLE / FAILURE / ABORTED
    duration_s: Optional[float]


def _config_key(config: dict) -> str:
    return "|".join(f"{k}={config[k]}" for k in sorted(config))


class BuildHistory:
    """Append-only store of finished framework builds."""

    def __init__(self) -> None:
        self.records: list[BuildRecord] = []

    def record(self, cell, build) -> None:
        """Callback wired to the external scheduler's on_build_done."""
        self.records.append(BuildRecord(
            finished_at=build.finished_at,
            family=cell.family.name,
            site=cell.site,
            cluster=cell.cluster,
            config_key=_config_key(cell.config),
            status=build.status.value,
            duration_s=build.duration_s,
        ))

    def __len__(self) -> int:
        return len(self.records)

    # -- selections ------------------------------------------------------------

    def select(self, family: Optional[str] = None, site: Optional[str] = None,
               cluster: Optional[str] = None, since: float = 0.0,
               until: float = float("inf")) -> list[BuildRecord]:
        return [
            r for r in self.records
            if (family is None or r.family == family)
            and (site is None or r.site == site)
            and (cluster is None or r.cluster == cluster)
            and since <= r.finished_at < until
        ]

    def latest_per_cell(self, since: float = 0.0) -> dict[tuple[str, str], BuildRecord]:
        """Most recent record per (family, config) cell."""
        latest: dict[tuple[str, str], BuildRecord] = {}
        for r in self.records:
            if r.finished_at < since:
                continue
            key = (r.family, r.config_key)
            if key not in latest or r.finished_at > latest[key].finished_at:
                latest[key] = r
        return latest

    # -- the headline metric -------------------------------------------------------

    @staticmethod
    def _rate(records: list[BuildRecord], count_unstable: bool) -> float:
        considered = [r for r in records
                      if count_unstable or r.status != "UNSTABLE"]
        if not considered:
            return float("nan")
        ok = sum(1 for r in considered if r.status == "SUCCESS")
        return ok / len(considered)

    def success_rate(self, since: float = 0.0, until: float = float("inf"),
                     count_unstable: bool = False, **filters) -> float:
        """Fraction of successful test runs in a window.

        UNSTABLE builds (could not get resources) are excluded by default:
        they say nothing about testbed health, only about contention.
        """
        return self._rate(self.select(since=since, until=until, **filters),
                          count_unstable)

    def weekly_success_series(self, until: float,
                              count_unstable: bool = False
                              ) -> list[tuple[float, float]]:
        """(week start, success rate) series — the slide-23 trend."""
        series = []
        start = 0.0
        while start < until:
            rate = self.success_rate(since=start, until=min(start + WEEK, until),
                                     count_unstable=count_unstable)
            if not np.isnan(rate):
                series.append((start, rate))
            start += WEEK
        return series
