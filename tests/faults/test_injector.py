"""Tests for the Poisson fault injector and ground truth registry."""

import pytest

from repro.faults import FaultContext, FaultInjector, FaultKind, ServiceHealth
from repro.nodes import MachinePark
from repro.util import DAY, RngStreams, Simulator

IMAGES = ("debian8-std", "debian9-min")


@pytest.fixture()
def world(fresh_testbed):
    sim = Simulator()
    rngs = RngStreams(seed=11)
    park = MachinePark.from_testbed(sim, fresh_testbed, rngs)
    ctx = FaultContext.build(park, ServiceHealth(), IMAGES)
    return sim, ctx, rngs


def test_inject_specific_kind(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs)
    inst = injector.inject(FaultKind.CPU_TURBO)
    assert inst is not None
    assert inst.kind == FaultKind.CPU_TURBO
    assert injector.ground_truth.all == (inst,)


def test_inject_random_kind_uses_weights(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs)
    kinds = {injector.inject().kind for _ in range(60)}
    assert len(kinds) > 5  # variety across the catalog


def test_background_process_injects_over_time(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs, mean_interarrival_s=6 * 3600.0)
    injector.start()
    sim.run(until=30 * DAY)
    count = len(injector.ground_truth.all)
    # ~120 expected; Poisson noise bounds
    assert 70 < count < 180


def test_injection_rate_scales(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs, mean_interarrival_s=DAY)
    injector.start()
    sim.run(until=30 * DAY)
    assert 10 < len(injector.ground_truth.all) < 60


def test_stop_halts_injection(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs, mean_interarrival_s=3600.0)
    injector.start()
    sim.run(until=2 * DAY)
    count = len(injector.ground_truth.all)
    injector.stop()
    sim.run(until=10 * DAY)
    assert len(injector.ground_truth.all) <= count + 1  # at most one in-flight


def test_fix_reverts_and_timestamps(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs)
    inst = injector.inject(FaultKind.DISK_WRITE_CACHE)
    sim.run(until=5000.0)
    injector.fix(inst)
    assert not inst.active
    assert inst.fixed_at == 5000.0
    disk = ctx.machines[inst.target].find_disk(inst.details["device"])
    assert disk.write_cache


def test_ground_truth_queries(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs)
    a = injector.inject(FaultKind.CPU_CSTATES)
    b = injector.inject(FaultKind.API_FLAKY)
    gt = injector.ground_truth
    assert set(gt.active()) == {a, b}
    assert gt.active_matching(FaultKind.CPU_CSTATES, a.target) is a
    assert gt.active_matching(FaultKind.CPU_CSTATES, "other") is None
    assert gt.active_on_site(b.site)
    assert a in gt.active_on_cluster(a.cluster)
    gt.mark_detected(a, when=100.0, by="refapi")
    assert a.detected and a.detected_by == "refapi"
    assert gt.detected() == [a]
    assert gt.undetected_active() == [b]
    assert gt.detection_latencies() == [100.0 - a.injected_at]


def test_mark_detected_keeps_first_detection(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs)
    inst = injector.inject(FaultKind.CONSOLE_BROKEN)
    gt = injector.ground_truth
    gt.mark_detected(inst, 10.0, "console")
    gt.mark_detected(inst, 99.0, "refapi")
    assert inst.detected_at == 10.0
    assert inst.detected_by == "console"


def test_injection_reproducible(fresh_testbed):
    def run(seed):
        sim = Simulator()
        rngs = RngStreams(seed=seed)
        park = MachinePark.from_testbed(sim, fresh_testbed, rngs)
        ctx = FaultContext.build(park, ServiceHealth(), IMAGES)
        injector = FaultInjector(sim, ctx, rngs, mean_interarrival_s=3600.0)
        injector.start()
        sim.run(until=5 * DAY)
        return [(f.kind, f.target, f.injected_at) for f in injector.ground_truth.all]

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_on_inject_callback(world):
    sim, ctx, rngs = world
    seen = []
    injector = FaultInjector(sim, ctx, rngs, on_inject=seen.append)
    inst = injector.inject(FaultKind.KWAPI_DOWN)
    assert seen == [inst]


def test_restricted_kinds(world):
    sim, ctx, rngs = world
    injector = FaultInjector(sim, ctx, rngs, kinds=[FaultKind.CPU_TURBO])
    for _ in range(10):
        inst = injector.inject()
        if inst is None:
            break
        assert inst.kind == FaultKind.CPU_TURBO
