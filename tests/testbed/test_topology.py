"""Tests for the physical network topology."""

import pytest

from repro.testbed import build_grid5000, build_topology


def test_every_compute_node_in_graph(testbed, topology):
    for node in testbed.iter_nodes():
        assert topology.kind(node.uid) == "node"


def test_one_router_per_site(testbed, topology):
    assert topology.router_count == testbed.site_count


def test_switch_count_matches_48_port_racks(testbed, topology):
    expected = sum((c.node_count + 47) // 48 for c in testbed.iter_clusters())
    assert topology.switch_count == expected


def test_every_node_has_exactly_one_switch(testbed, topology):
    for node in testbed.iter_nodes():
        sw = topology.switch_of(node.uid)
        assert topology.kind(sw) == "switch"


def test_same_cluster_small_is_same_switch(topology):
    # orion has 4 nodes -> single switch
    assert topology.same_switch("orion-1", "orion-4")


def test_large_cluster_spans_switches(topology):
    # graphene has 90 nodes -> 2 switches
    assert not topology.same_switch("graphene-1", "graphene-90")


def test_nodes_on_switch_partition_cluster(testbed, topology):
    cluster = testbed.cluster("graphene")
    switches = {topology.switch_of(n.uid) for n in cluster.nodes}
    members = []
    for sw in switches:
        members.extend(topology.nodes_on_switch(sw))
    assert sorted(members) == sorted(n.uid for n in cluster.nodes)


def test_intra_switch_path_is_two_hops(topology):
    assert topology.hop_count("orion-1", "orion-2") == 2


def test_cross_site_path_traverses_routers(topology):
    path = topology.path("graphene-1", "paravance-1")
    kinds = [topology.kind(x) for x in path]
    assert kinds[0] == "node" and kinds[-1] == "node"
    assert "router" in kinds
    assert kinds.count("router") == 2  # nancy gw + rennes gw


def test_cross_site_bandwidth_bounded_by_1g_nic(topology):
    # graphene primary NIC is 1 Gbps -> bottleneck is the NIC
    assert topology.path_bandwidth_gbps("graphene-1", "paravance-1") == 1.0


def test_cross_site_bandwidth_10g_nodes_limited_by_backbone(topology):
    # both ends 10G, backbone 10G -> 10 Gbps end to end
    assert topology.path_bandwidth_gbps("grisou-1", "paravance-1") == 10.0


def test_intra_switch_bandwidth_is_nic_rate(topology):
    assert topology.path_bandwidth_gbps("grisou-1", "grisou-2") == 10.0
    assert topology.path_bandwidth_gbps("azur-1", "azur-2") == 1.0


def test_graph_is_connected(topology):
    import networkx as nx

    assert nx.is_connected(topology.graph)


def test_switch_of_router_raises(topology):
    with pytest.raises(KeyError):
        topology.switch_of("gw-nancy")


def test_topology_deterministic():
    t = build_grid5000()
    a = build_topology(t)
    b = build_topology(t)
    assert sorted(a.graph.nodes) == sorted(b.graph.nodes)
    assert sorted(map(tuple, map(sorted, a.graph.edges))) == sorted(
        map(tuple, map(sorted, b.graph.edges))
    )
