"""ScenarioSpec: validation, derivation, JSON round-trip fidelity."""

import json

import pytest

from repro import scenarios
from repro.oar import WorkloadConfig
from repro.scenarios import ScenarioSpec
from repro.scheduling import SchedulerPolicy
from repro.util import content_hash


def test_defaults_are_the_paper_campaign():
    spec = ScenarioSpec()
    assert spec.months == 5.0
    assert spec.backlog_faults == 50
    assert spec.clusters is None and spec.families is None


def test_unknown_cluster_rejected():
    with pytest.raises(ValueError, match="unknown cluster"):
        ScenarioSpec(clusters=("grisou", "atlantis"))


def test_unknown_family_rejected():
    with pytest.raises(KeyError, match="unknown test family"):
        ScenarioSpec(families=("refapi", "nosuchfamily"))


def test_nonpositive_scale_rejected():
    with pytest.raises(ValueError, match="scale"):
        ScenarioSpec(scale=0.0)


def test_derive_overrides_and_keeps_rest():
    base = scenarios.get("tiny-smoke")
    derived = base.derive(seed=99, months=1.0)
    assert derived.seed == 99 and derived.months == 1.0
    assert derived.clusters == base.clusters
    assert derived.workload == base.workload
    assert base.seed != 99  # presets stay immutable


@pytest.mark.parametrize("name", [
    "paper-baseline", "a2-no-framework", "pernode", "flaky-services",
    "understaffed-ops", "double-scale", "tiny-smoke", "high-churn",
])
def test_every_preset_json_round_trips(name):
    spec = scenarios.get(name)
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_round_trip_preserves_types():
    spec = ScenarioSpec(clusters=("grisou", "nova"), families=("refapi",),
                        workload=WorkloadConfig(target_utilization=0.4),
                        policy=SchedulerPolicy(backoff_factor=3.0))
    again = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert isinstance(again.clusters, tuple)
    assert isinstance(again.families, tuple)
    assert isinstance(again.policy, SchedulerPolicy)
    assert isinstance(again.workload, WorkloadConfig)
    assert again == spec


def test_to_json_is_canonical_and_hashable():
    spec = scenarios.get("paper-baseline")
    assert content_hash(spec.to_dict()) == \
        content_hash(ScenarioSpec.from_json(spec.to_json()).to_dict())


def test_from_dict_rejects_unknown_keys():
    doc = scenarios.get("tiny-smoke").to_dict()
    doc["warp_speed"] = True
    with pytest.raises(ValueError, match="warp_speed"):
        ScenarioSpec.from_dict(doc)


def test_resolve_families_defaults_to_all_sixteen():
    assert len(ScenarioSpec().resolve_families()) == 16
    assert [f.name for f in
            ScenarioSpec(families=("disk", "refapi")).resolve_families()] == \
        ["disk", "refapi"]
