"""``ExternalProtocolStrategy``: the wire protocol as a scheduling policy.

This is the bridge between the deterministic event kernel and a remote
scheduler.  It registers in the ordinary strategy registry, so from the
simulator's point of view a remote client is just another
:class:`~repro.scheduling.policies.SchedulingStrategy` — the launcher,
builder and campaign code are oblivious to the socket underneath.

Determinism argument, spelled out once:

* ``on_tick`` runs inside the scheduler's tick callback.  The blocking
  protocol exchange happens *before* the callback returns, so no other
  simulation event can fire while the client deliberates — the simulated
  clock is frozen exactly as it is for the in-process strategy.
* ``view.launch``/``view.defer`` are applied in message-arrival order.
  A client that decides cells in the presented (JOBN) order therefore
  reproduces the in-process decision sequence bit for bit.
* Launching a build only enqueues instant-queue work processed after the
  tick returns; availability numbers snapshotted into the JOBN lines
  stay valid for the whole round.

Build completions are buffered here and flushed as ``JCPL`` lines at the
start of the next round — they are informational (the scheduler's own
bookkeeping already handled backoff and cadence) and so may lag without
affecting behaviour.
"""

from __future__ import annotations

from ..scheduling.policies import (
    SchedulerPolicy,
    SchedulingStrategy,
    register_strategy,
)

__all__ = ["ExternalProtocolStrategy"]


@register_strategy
class ExternalProtocolStrategy(SchedulingStrategy):
    """Delegate every tick's decisions to a protocol session."""

    name = "external-protocol"

    def __init__(self, policy: SchedulerPolicy, session):
        self.policy = policy
        self.session = session
        self._scheduler = None
        #: (completion time, cell id, build status) since the last round.
        self._completions: list[tuple[float, int, str]] = []

    def bind(self, scheduler) -> None:
        self._scheduler = scheduler

    def on_tick(self, view) -> None:
        due = view.due_cells()
        if not due:
            # Nothing to decide: skip the round-trip entirely.  Ticks with
            # no due cells are no-ops for every strategy, so eliding them
            # cannot change behaviour — only wire traffic.
            return
        completions, self._completions = self._completions, []
        self.session.decision_round(view, due, completions)

    def on_build_done(self, cell, build) -> None:
        self._completions.append((
            self._scheduler.sim.now,
            self._scheduler.cell_ids[id(cell)],
            build.status.name,
        ))
