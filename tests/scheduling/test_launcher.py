"""Tests for the external scheduler (availability-aware build launcher)."""

import pytest

from repro.checksuite import family_by_name
from repro.core import build_framework
from repro.oar import WorkloadConfig
from repro.scheduling import PerNodeVariant, SchedulerPolicy
from repro.testbed import CLUSTER_SPECS
from repro.util import DAY, HOUR

SMALL = ("grisou", "grimoire", "graoully")


def make_world(seed=13, families=("oarstate", "refapi"), policy=None, **kwargs):
    specs = [s for s in CLUSTER_SPECS if s.name in SMALL]
    fw = build_framework(
        seed=seed,
        specs=specs,
        families=[family_by_name(n) for n in families],
        policy=policy or SchedulerPolicy(),
        workload_config=WorkloadConfig(target_utilization=0.2),
        **kwargs,
    )
    return fw


def test_cells_cover_all_configurations():
    fw = make_world()
    # oarstate: 1 site (nancy), refapi: 3 clusters
    assert len(fw.scheduler.cells) == 1 + 3


def test_scheduler_launches_builds():
    fw = make_world()
    fw.start(workload=False, faults=False)
    fw.run_until(6 * HOUR)
    assert len(fw.history.records) >= 4
    assert all(r.status == "SUCCESS" for r in fw.history.records)


def test_stop_interrupts_tick_sleep_promptly():
    fw = make_world()
    fw.scheduler.start()
    fw.sim.run(until=10 * 60.0)
    proc = fw.scheduler._proc
    assert proc is not None and proc.alive
    fw.scheduler.stop()
    fw.sim.run(until=fw.sim.now)  # only the zero-delay interrupt runs
    assert not proc.alive
    # restartable after a prompt stop
    fw.scheduler.start()
    assert fw.scheduler._proc is not None and fw.scheduler._proc.alive


def test_cadence_respected():
    fw = make_world(families=("oarstate",),
                    policy=SchedulerPolicy(software_period_s=DAY))
    fw.start(workload=False, faults=False)
    fw.run_until(5 * DAY)
    runs = fw.history.select(family="oarstate")
    assert 4 <= len(runs) <= 6  # ~daily


def test_site_concurrency_limit():
    fw = make_world(families=("refapi",))  # 3 cells, all nancy
    fw.start(workload=False, faults=False)
    fw.run_until(10 * 60.0)
    # with max 1 in flight per site, at most 1 build may run at once:
    # builds must not overlap in time
    job = fw.jenkins.job("test_refapi")
    spans = sorted((b.started_at, b.finished_at) for b in job.builds if b.finished)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_resources_checked_before_trigger():
    fw = make_world(families=("refapi",))
    # saturate grisou so its refapi cell cannot get a node
    n = fw.testbed.cluster("grisou").node_count
    fw.oar.submit(f"cluster='grisou'/nodes={n},walltime=12", auto_duration=None)
    fw.sim.run(until=1.0)
    fw.start(workload=False, faults=False)
    fw.run_until(4 * HOUR)
    grisou_cell = next(c for c in fw.scheduler.cells
                       if c.config.get("cluster") == "grisou")
    assert grisou_cell.runs == 0
    assert grisou_cell.blocked_attempts >= 1
    assert grisou_cell.backoff.attempts >= 1
    # the other clusters ran fine
    other = [c for c in fw.scheduler.cells if c.config.get("cluster") != "grisou"]
    assert all(c.runs >= 1 for c in other)


def test_without_resource_check_builds_go_unstable():
    """Slide 17: builds whose testbed job cannot start are UNSTABLE."""
    fw = make_world(families=("refapi",),
                    policy=SchedulerPolicy(check_resources_first=False,
                                           max_concurrent_per_site=4))
    n = fw.testbed.cluster("grisou").node_count
    fw.oar.submit(f"cluster='grisou'/nodes={n},walltime=12", auto_duration=None)
    fw.sim.run(until=1.0)
    fw.start(workload=False, faults=False)
    fw.run_until(2 * HOUR)
    unstable = [r for r in fw.history.records
                if r.status == "UNSTABLE" and "grisou" in r.config_key]
    assert unstable  # wasted a Jenkins worker, marked unstable


def test_backoff_after_unstable():
    fw = make_world(families=("refapi",),
                    policy=SchedulerPolicy(check_resources_first=False,
                                           max_concurrent_per_site=4))
    n = fw.testbed.cluster("grisou").node_count
    fw.oar.submit(f"cluster='grisou'/nodes={n},walltime=48", auto_duration=None)
    fw.sim.run(until=1.0)
    fw.start(workload=False, faults=False)
    fw.run_until(DAY)
    grisou_cell = next(c for c in fw.scheduler.cells
                       if c.config.get("cluster") == "grisou")
    # exponential backoff: far fewer runs than the 5-minute tick would allow
    assert grisou_cell.runs <= 6
    assert grisou_cell.backoff.attempts >= 2


def test_hardware_family_waits_for_offpeak():
    fw = make_world(families=("multireboot",))
    fw.start(workload=False, faults=False)
    # campaign starts Wednesday 00:00 (off-peak): builds run immediately;
    # during peak hours (9-19) no hardware build may *start*
    fw.run_until(DAY)
    job = fw.jenkins.job("test_multireboot")
    for build in job.builds:
        if build.started_at is None:
            continue
        hour = (build.queued_at % DAY) / HOUR
        assert not (9.0 <= hour < 19.0), f"hardware build queued at {hour:.1f}h"


def test_failure_keeps_regular_cadence():
    fw = make_world(families=("oarstate",),
                    policy=SchedulerPolicy(software_period_s=6 * HOUR))
    # oarstate will FAIL (suspected node); the janitor's reboots never
    # succeed, so the node stays Suspected for the whole day
    fw.machines["grisou-1"].boot_failure_prob = 1.0
    fw.machines["grisou-1"].crash()
    fw.start(workload=False, faults=False)
    fw.run_until(DAY)
    records = fw.history.select(family="oarstate")
    assert len(records) >= 3  # failures re-run on the normal cadence
    assert all(r.status == "FAILURE" for r in records)


def test_stats_shape():
    fw = make_world()
    fw.start(workload=False, faults=False)
    fw.run_until(HOUR)
    stats = fw.scheduler.stats()
    assert stats["cells"] == 4
    assert stats["total_runs"] >= 1


def test_pernode_variant_replaces_hardware_families():
    fw = make_world(families=("multireboot",), pernode=True)
    names = {c.family.name for c in fw.scheduler.cells}
    assert names == {"multireboot-pernode"}
    assert all(c.family.nodes_needed == 1 for c in fw.scheduler.cells)


def test_pernode_variant_rotates_nodes():
    fw = make_world(families=("multireboot",), pernode=True,
                    policy=SchedulerPolicy(software_period_s=HOUR))
    fw.start(workload=False, faults=False)
    fw.run_until(2 * DAY)
    outcomes = [o for o in fw.outcomes if o.family == "multireboot-pernode"
                and o.config.get("cluster") == "grimoire"]
    nodes = [o.config["node"] for o in outcomes if "node" in o.config]
    assert len(set(nodes)) > 1  # rotation across the cluster


def test_pernode_requires_hardware_family():
    with pytest.raises(ValueError):
        PerNodeVariant(family_by_name("refapi"))
