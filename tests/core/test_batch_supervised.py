"""Supervised campaign execution: watchdog, retries, quarantine, resume.

The acceptance scenario of the resilience PR: a matrix containing one
cell that hangs (months far past any reasonable wall-clock budget) and
one that crashes on every attempt completes anyway — the hung cell is
killed by the watchdog and quarantined, the crasher exhausts its retries
and is quarantined, the healthy cells are untouched — and a resumed
sweep serves both poison cells from the store instead of looping on
them.
"""

from repro import scenarios
from repro.core.batch import run_campaigns
from repro.core.store import CampaignStore
from repro.oar.traces import TraceReplayConfig

BASE = scenarios.get("tiny-smoke")
HEALTHY = BASE.derive(name="healthy", months=0.03)
#: A deterministic hang: the simulation itself is fine, it just needs
#: geological wall-clock time — exactly what the watchdog is for.
HUNG = BASE.derive(name="hung-cell", months=1e9)
#: Crashes in the worker on every attempt: the trace file cannot exist.
CRASHER = BASE.derive(
    name="crasher",
    workload=TraceReplayConfig(path="/nonexistent/chaos-trace.swf"))


def test_hung_and_crashing_cells_are_contained(tmp_path):
    store = CampaignStore(str(tmp_path / "store.jsonl"))
    runs = run_campaigns([HEALTHY, HUNG, CRASHER], seeds=[0],
                         workers=2, store=store, resume=True,
                         cell_timeout_s=2.0, max_cell_attempts=2,
                         retry_backoff_s=0.01)
    by = {r.scenario: r for r in runs}
    assert by["healthy"].ok and not by["healthy"].quarantined

    hung = by["hung-cell"]
    assert not hung.ok and hung.quarantined
    assert "timed out" in hung.error and "replaced" in hung.error

    crash = by["crasher"]
    assert not crash.ok and crash.quarantined
    assert "chaos-trace.swf" in crash.error

    # every verdict was durably recorded
    stored = {c.scenario: c for c in store.cells()}
    assert stored["healthy"].ok
    assert stored["hung-cell"].quarantined
    assert stored["crasher"].quarantined

    # a resumed sweep serves all three from the store: quarantine means
    # "final", so neither poison cell runs (or hangs) again
    cached_flags = []
    rerun = run_campaigns([HEALTHY, HUNG, CRASHER], seeds=[0],
                          workers=2, store=CampaignStore(store.path),
                          resume=True, cell_timeout_s=2.0,
                          max_cell_attempts=2, retry_backoff_s=0.01,
                          on_cell=lambda run, cached: cached_flags.append(
                              (run.scenario, cached)))
    assert sorted(cached_flags) == [("crasher", True), ("healthy", True),
                                    ("hung-cell", True)]
    assert {r.scenario: r.quarantined for r in rerun} == {
        "healthy": False, "hung-cell": True, "crasher": True}


def test_single_attempt_crash_is_an_ordinary_failure(tmp_path):
    """Without retries configured a crash is recorded but NOT quarantined
    — resume still heals it by re-running the cell."""
    store = CampaignStore(str(tmp_path / "store.jsonl"))
    (run,) = run_campaigns([CRASHER], seeds=[0], workers=1, store=store,
                           resume=True, cell_timeout_s=30.0)
    assert not run.ok and not run.quarantined
    cached_flags = []
    run_campaigns([CRASHER], seeds=[0], workers=1,
                  store=CampaignStore(store.path), resume=True,
                  cell_timeout_s=30.0,
                  on_cell=lambda r, cached: cached_flags.append(cached))
    assert cached_flags == [False], "an ordinary failure must be retried"


def test_supervision_off_keeps_the_fast_paths(tmp_path):
    """Default knobs (no timeout, one attempt) use the unsupervised
    executors — and still record a crash as a plain failure."""
    store = CampaignStore(str(tmp_path / "store.jsonl"))
    runs = run_campaigns([HEALTHY, CRASHER], seeds=[0], workers=1,
                         store=store, resume=True)
    by = {r.scenario: r for r in runs}
    assert by["healthy"].ok
    assert not by["crasher"].ok and not by["crasher"].quarantined
