"""Batch campaign runner: matrix shape, determinism, aggregation."""

import math

import pytest

from repro import scenarios
from repro.core import (
    CampaignRun,
    aggregate_runs,
    run_campaigns,
    run_scenario,
    summarize_runs,
)
from repro.core.batch import SCALAR_METRICS
from repro.oar import WorkloadConfig


def report_doc(report):
    """NaN-tolerant equality proxy (NaN != NaN under dataclass ==)."""
    import dataclasses

    from repro.util import canonical_json
    return canonical_json(dataclasses.asdict(report))


def fast_spec(name="batch-fast", **overrides):
    defaults = dict(
        name=name,
        months=0.15,
        clusters=("grisou", "nova", "taurus"),
        families=("refapi", "oarstate", "console"),
        backlog_faults=4,
        workload=WorkloadConfig(target_utilization=0.25),
    )
    defaults.update(overrides)
    return scenarios.ScenarioSpec(**defaults)


def test_matrix_shape_and_order():
    runs = run_campaigns([fast_spec("m-a"), fast_spec("m-b")],
                         seeds=[3, 5], workers=1)
    assert [(r.scenario, r.seed) for r in runs] == [
        ("m-a", 3), ("m-a", 5), ("m-b", 3), ("m-b", 5)]
    assert all(isinstance(r, CampaignRun) for r in runs)
    assert all(r.report.scenario == r.scenario and r.report.seed == r.seed
               for r in runs)


def test_accepts_preset_names():
    runs = run_campaigns(["tiny-smoke"], seeds=[1], workers=1, months=0.15)
    assert len(runs) == 1
    assert runs[0].scenario == "tiny-smoke"
    assert runs[0].report.months == 0.15


def test_same_seed_same_report():
    a = run_campaigns([fast_spec()], seeds=[7], workers=1)
    b = run_campaigns([fast_spec()], seeds=[7], workers=1)
    assert report_doc(a[0].report) == report_doc(b[0].report)


def test_workers_do_not_change_results():
    spec = fast_spec()
    serial = run_campaigns([spec], seeds=[0, 1], workers=1)
    parallel = run_campaigns([spec], seeds=[0, 1], workers=2)
    assert [report_doc(r.report) for r in serial] == \
        [report_doc(r.report) for r in parallel]


def test_batch_matches_run_scenario():
    spec = fast_spec()
    (run,) = run_campaigns([spec], seeds=[11], workers=1)
    _, direct = run_scenario(spec, seed=11)
    assert report_doc(run.report) == report_doc(direct)


def test_empty_matrix():
    assert run_campaigns([], seeds=[0]) == []
    assert run_campaigns([fast_spec()], seeds=[]) == []


def test_aggregate_mean_and_ci():
    runs = run_campaigns([fast_spec()], seeds=[0, 1, 2], workers=1)
    agg = aggregate_runs(runs)
    metrics = agg["batch-fast"]
    assert set(metrics) == set(SCALAR_METRICS)
    builds = metrics["total_builds"]
    values = [r.report.total_builds for r in runs]
    assert builds.n == 3
    assert builds.mean == pytest.approx(sum(values) / 3)
    assert builds.ci95 >= 0.0
    # mean must sit inside the observed range
    assert min(values) <= builds.mean <= max(values)


def test_aggregate_drops_nan_samples():
    # framework off -> nothing detected -> detection latency is NaN
    off = fast_spec("batch-off", framework_enabled=False)
    runs = run_campaigns([off], seeds=[0, 1], workers=1)
    lat = aggregate_runs(runs)["batch-off"]["detection_latency_days_median"]
    assert lat.n == 0 and math.isnan(lat.mean)
    bugs = aggregate_runs(runs)["batch-off"]["bugs_filed"]
    assert bugs.n == 2 and bugs.mean == 0.0


def test_summarize_runs_renders():
    runs = run_campaigns([fast_spec()], seeds=[0, 1], workers=1)
    text = summarize_runs(runs)
    assert "batch-fast" in text
    assert "bugs_filed" in text
    assert "n=2" in text
