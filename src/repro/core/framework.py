"""The testbed testing framework handle.

:class:`TestingFramework` is the fully-wired simulated world of the paper:
the testbed substrate, the user-facing services (OAR + synthetic workload,
Kadeploy, KaVLAN, monitoring), the fault injector that silently breaks
things, and Jenkins + the external scheduler + the bug tracker/operator
team that close the loop ("test-driven operations", slide 23).

Assembly lives in :mod:`repro.core.builder` (declarative
:class:`~repro.scenarios.ScenarioSpec` + pluggable subsystem registry);
:func:`build_framework` remains as a thin keyword-argument shim over it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..checksuite.base import CheckContext, CheckFamily, TestOutcome
from ..ci.api import JenkinsApi
from ..ci.job import BuildStatus
from ..ci.server import JenkinsServer
from ..faults.catalog import FaultContext
from ..faults.injector import FaultInjector
from ..faults.services import ServiceHealth
from ..kadeploy.deployment import Kadeploy
from ..kavlan.manager import KavlanManager
from ..monitoring.probes import Ganglia, Kwapi
from ..nodes.machine import MachinePark, PowerState
from ..oar.database import OarDatabase
from ..oar.server import OarServer
from ..oar.workload import WorkloadConfig, WorkloadSource
from ..scenarios.spec import ScenarioSpec
from ..scheduling.launcher import ExternalScheduler
from ..scheduling.policies import SchedulerPolicy
from ..testbed.description import TestbedDescription
from ..testbed.generator import ClusterSpec
from ..testbed.refapi import ReferenceApi
from ..util.events import Simulator
from ..util.rng import RngStreams
from ..analysis.history import BuildHistory
from .bugtracker import BugTracker, OperatorTeam
from .builder import FrameworkBuilder

__all__ = ["TestingFramework", "build_framework"]

#: Janitor sweep period (reboot crashed, unallocated nodes).
_JANITOR_PERIOD_S = 1200.0
#: Gremlin sweep period (spontaneous crashes for faulty machines).
_GREMLIN_PERIOD_S = 1800.0
#: Daily housekeeping (Gantt purge).
_HOUSEKEEPING_PERIOD_S = 86_400.0


@dataclass
class TestingFramework:
    """Handle on the fully-wired simulated world."""

    sim: Simulator
    rngs: RngStreams
    testbed: TestbedDescription
    refapi: ReferenceApi
    machines: MachinePark
    services: ServiceHealth
    oardb: OarDatabase
    oar: OarServer
    workload: WorkloadSource
    kadeploy: Kadeploy
    kavlan: KavlanManager
    kwapi: Kwapi
    ganglia: Ganglia
    fault_ctx: FaultContext
    injector: FaultInjector
    jenkins: JenkinsServer
    api: JenkinsApi
    tracker: BugTracker
    operators: OperatorTeam
    scheduler: ExternalScheduler
    checkctx: CheckContext
    families: list[CheckFamily]
    history: BuildHistory
    outcomes: list[TestOutcome] = field(default_factory=list)
    _started: bool = False

    @property
    def ground_truth(self):
        return self.injector.ground_truth

    # -- lifecycle ------------------------------------------------------------

    def start(self, workload: bool = True, faults: bool = True,
              testing: bool = True) -> None:
        """Start all background processes (idempotent)."""
        if self._started:
            return
        self._started = True
        if workload:
            self.workload.start()
        if faults:
            self.injector.start()
        if testing:
            self.scheduler.start()
        self.sim.process(self._janitor(), name="janitor")
        self.sim.process(self._gremlin(), name="gremlin")
        self.sim.process(self._housekeeping(), name="housekeeping")

    def run_until(self, t: float) -> None:
        self.sim.run(until=t)

    # -- background operations ----------------------------------------------------

    def _janitor(self):
        """Operators' phoenix: reboot crashed nodes not held by a job."""
        rng = self.rngs.stream("janitor")
        while True:
            yield self.sim.timeout(_JANITOR_PERIOD_S * float(rng.uniform(0.9, 1.1)))
            busy = {u for j in self.oar.running_jobs() for u in j.assigned_nodes}
            for machine in self.machines.machines.values():
                if machine.state == PowerState.CRASHED and machine.uid not in busy:
                    self.sim.process(machine.boot())

    def _gremlin(self):
        """Spontaneous crashes on machines with an active random-reboot
        fault (crash_mtbf_s set)."""
        rng = self.rngs.stream("gremlin")
        while True:
            yield self.sim.timeout(_GREMLIN_PERIOD_S)
            for machine in self.machines.machines.values():
                mtbf = machine.crash_mtbf_s
                if mtbf is None or machine.state != PowerState.ON:
                    continue
                p_crash = 1.0 - math.exp(-_GREMLIN_PERIOD_S / mtbf)
                if float(rng.random()) < p_crash:
                    machine.crash()

    def _housekeeping(self):
        while True:
            yield self.sim.timeout(_HOUSEKEEPING_PERIOD_S)
            self.oar.housekeeping()
            self.refapi.commit(self.sim.now, "daily archive snapshot")

    # -- Jenkins wiring ------------------------------------------------------------

    def _make_runner(self, family: CheckFamily):
        def runner(build):
            outcome = yield self.sim.process(
                family.run(self.checkctx, dict(build.parameters)))
            self.outcomes.append(outcome)
            for line in outcome.log:
                build.log_line(self.sim.now, line)
            if outcome.resources_blocked:
                build.log_line(self.sim.now,
                               "testbed job not schedulable now -> UNSTABLE")
                return BuildStatus.UNSTABLE
            if outcome.passed:
                return BuildStatus.SUCCESS
            for finding in outcome.findings:
                build.log_line(self.sim.now, str(finding))
            self.tracker.file_from_outcome(outcome)
            return BuildStatus.FAILURE

        return runner

    def register_family_jobs(self) -> None:
        for family in self.families:
            self.jenkins.register_job(
                f"test_{family.name}", self._make_runner(family),
                description=family.__class__.__doc__ or family.name,
            )


def build_framework(
    seed: int = 0,
    specs: Optional[Sequence[ClusterSpec]] = None,
    families: Optional[Sequence[CheckFamily]] = None,
    policy: Optional[SchedulerPolicy] = None,
    workload_config: Optional[WorkloadConfig] = None,
    executors: int = 16,
    fault_mean_interarrival_s: float = 86_400.0,
    operator_speedup: float = 1.0,
    pernode: bool = False,
) -> TestingFramework:
    """Assemble (but do not start) the whole simulated world.

    Back-compat shim: folds the keyword arguments into a
    :class:`~repro.scenarios.ScenarioSpec` and delegates to
    :class:`~repro.core.builder.FrameworkBuilder`.  New code should build
    a spec (or fetch a preset from :mod:`repro.scenarios`) directly.
    """
    spec = ScenarioSpec(
        name="adhoc",
        seed=seed,
        policy=policy if policy is not None else SchedulerPolicy(),
        workload=workload_config if workload_config is not None
        else WorkloadConfig(),
        executors=executors,
        fault_mean_interarrival_s=fault_mean_interarrival_s,
        operator_speedup=operator_speedup,
        pernode=pernode,
    )
    builder = FrameworkBuilder(spec)
    if specs is not None:
        builder.with_cluster_specs(specs)
    if families is not None:
        builder.with_families(families)
    return builder.build()
