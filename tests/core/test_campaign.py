"""Campaign-loop tests on a small testbed (fast closed-loop runs)."""

import pytest

from repro.core import CampaignConfig, CampaignReport, run_campaign
from repro.oar import WorkloadConfig
from repro.testbed import CLUSTER_SPECS

SMALL = ("grisou", "grimoire", "graoully", "nova", "taurus")


def small_config(**overrides):
    defaults = dict(
        seed=17,
        months=0.5,
        specs=[s for s in CLUSTER_SPECS if s.name in SMALL],
        backlog_faults=8,
        fault_mean_interarrival_s=86_400.0,
        workload=WorkloadConfig(target_utilization=0.3),
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(small_config())


def test_report_counts_consistent(campaign):
    _, report = campaign
    assert report.bugs_filed >= report.bugs_fixed + report.bugs_open - \
        report.bugs_unexplained  # closed-unexplained make up the rest
    assert report.faults_detected <= report.faults_injected
    assert report.faults_injected >= 8  # at least the backlog


def test_framework_detects_some_backlog(campaign):
    _, report = campaign
    assert report.faults_detected > 0
    assert report.bugs_filed > 0


def test_weekly_series_lengths(campaign):
    _, report = campaign
    assert len(report.weekly_active_faults) >= 2
    assert report.weekly_success_rates  # at least one week with builds


def test_builds_ran(campaign):
    _, report = campaign
    assert report.total_builds > 20


def test_summary_renders(campaign):
    _, report = campaign
    text = report.summary()
    assert "bugs filed" in text
    assert "success rate" in text


def test_campaign_reproducible():
    _, a = run_campaign(small_config(months=0.25))
    _, b = run_campaign(small_config(months=0.25))
    assert a.bugs_filed == b.bugs_filed
    assert a.faults_injected == b.faults_injected
    assert a.weekly_success_rates == b.weekly_success_rates


def test_framework_off_detects_nothing():
    _, report = run_campaign(small_config(months=0.25, framework_enabled=False))
    assert report.faults_detected == 0
    assert report.bugs_filed == 0
    assert report.total_builds == 0
    assert report.faults_active_end > 0  # nothing gets fixed either


def test_pernode_campaign_runs():
    _, report = run_campaign(small_config(months=0.25, pernode=True))
    assert isinstance(report, CampaignReport)
    assert report.total_builds > 0


# -- declarative path <-> legacy shim -----------------------------------------


def test_shim_matches_scenario_path():
    """run_campaign(CampaignConfig(...)) must reproduce run_scenario(spec)
    byte-for-byte at the same seed."""
    import dataclasses

    from repro import run_scenario, scenarios
    from repro.util import canonical_json

    spec = scenarios.get("paper-baseline").derive(
        name="shim-check", seed=17, months=0.25,
        clusters=SMALL, backlog_faults=8,
        fault_mean_interarrival_s=86_400.0,
        workload=WorkloadConfig(target_utilization=0.3))
    _, via_spec = run_scenario(spec)
    _, via_shim = run_campaign(small_config(months=0.25))

    def doc(report):
        d = dataclasses.asdict(report)
        d.pop("scenario"), d.pop("seed")  # provenance labels differ
        return canonical_json(d)

    assert doc(via_spec) == doc(via_shim)
