"""Tests for the malleable policy family and the A/B scoreboard plumbing.

The mechanism layer (grow/shrink/evict on the OAR server) is covered in
``tests/oar/test_grow_shrink.py``; here we drive whole campaigns through
the registered strategies and check the policy-level contracts: the rigid
baseline is byte-identical to ``default``, the malleable policies actually
resize jobs and improve turnaround at identical contention, and everything
stays deterministic.
"""

import hashlib
import json

import pytest

from repro import run_scenario, scenarios
from repro.scheduling import get_strategy, strategy_names
from repro.scheduling.elastic import (
    CommonPoolStrategy,
    EasyBackfillStrategy,
    StealAgreementStrategy,
)


def report_hash(report) -> str:
    doc = json.dumps(report.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode()).hexdigest()


# -- registry ------------------------------------------------------------------


def test_strategy_names_are_sorted():
    names = strategy_names()
    assert names == sorted(names)
    assert {"default", "easy-backfill", "common-pool",
            "steal-agreement"} <= set(names)


def test_elastic_strategies_resolve_by_name():
    assert get_strategy("easy-backfill") is EasyBackfillStrategy
    assert get_strategy("common-pool") is CommonPoolStrategy
    assert get_strategy("steal-agreement") is StealAgreementStrategy


def test_unknown_strategy_lists_names_sorted():
    with pytest.raises(KeyError) as err:
        get_strategy("no-such-policy")
    msg = str(err.value)
    listed = [n for n in strategy_names() if n in msg]
    assert listed == sorted(listed) and len(listed) >= 4


def test_spec_strategy_is_resolved_at_build_time():
    """An unknown name in the spec surfaces as the registry's KeyError on
    build, not at spec-construction time (presets must stay importable)."""
    spec = scenarios.get("tiny-smoke").derive(strategy="not-registered")
    with pytest.raises(KeyError, match="not-registered"):
        run_scenario(spec, seed=0, months=0.01)


# -- policy behaviour ----------------------------------------------------------


def test_easy_backfill_matches_default_byte_for_byte():
    """The rigid baseline ignores width ranges entirely: same placements,
    same report — only the strategy label differs."""
    spec = scenarios.get("elastic-burst")
    _, default = run_scenario(spec.derive(strategy="default"),
                              seed=0, months=0.05)
    _, easy = run_scenario(spec.derive(strategy="easy-backfill"),
                           seed=0, months=0.05)
    d_doc, e_doc = default.to_dict(), easy.to_dict()
    assert d_doc.pop("strategy") == "default"
    assert e_doc.pop("strategy") == "easy-backfill"
    assert d_doc == e_doc
    assert easy.grow_events == 0 and easy.shrink_events == 0


def test_common_pool_expands_and_reclaims():
    spec = scenarios.get("elastic-burst")
    _, report = run_scenario(spec, seed=0, months=0.05)  # preset default
    assert report.strategy == "common-pool"
    assert report.grow_events > 0
    assert report.shrink_events > 0


def test_malleable_policies_beat_rigid_turnaround():
    """The PR's headline claim at identical contention: same trace, same
    seed, same testbed — malleability alone improves mean turnaround."""
    spec = scenarios.get("elastic-burst")
    reports = {}
    for strat in ("easy-backfill", "common-pool", "steal-agreement"):
        _, reports[strat] = run_scenario(spec.derive(strategy=strat),
                                         seed=0, months=0.05)
    rigid = reports["easy-backfill"].turnaround_mean_s
    assert reports["common-pool"].turnaround_mean_s < rigid
    assert reports["steal-agreement"].turnaround_mean_s < rigid
    # Everyone served at least the rigid baseline's completed jobs.
    for rep in reports.values():
        assert rep.jobs_completed >= reports["easy-backfill"].jobs_completed


def test_elastic_campaign_is_deterministic():
    spec = scenarios.get("elastic-burst").derive(strategy="steal-agreement")
    _, first = run_scenario(spec, seed=3, months=0.05)
    _, second = run_scenario(spec, seed=3, months=0.05)
    assert report_hash(first) == report_hash(second)


def test_strategy_rides_spec_serialization():
    spec = scenarios.get("elastic-burst")
    assert spec.strategy == "common-pool"
    back = scenarios.ScenarioSpec.from_json(spec.to_json())
    assert back == spec
    assert back.strategy == "common-pool"
    # Different strategies are different worlds: distinct content hashes.
    assert spec.derive(strategy="steal-agreement").content_hash() \
        != spec.content_hash()
