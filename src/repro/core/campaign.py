"""Closed-loop campaign: months of simulated testbed operation.

This produces the paper's headline numbers:

* slide 22 — "118 bugs filed (inc. 84 already fixed)";
* slide 23 — "testbed reliability improving (85 % of tests successful in
  February ⇒ 93 % today, despite the addition of new tests)".

The loop: faults arrive (plus a pre-existing *backlog* — February started
with an unhealthy testbed), tests detect them, bugs get filed, operators
fix them, success rates climb.  The A2 ablation disables the framework and
watches faults accumulate instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..oar.workload import WorkloadConfig
from ..scheduling.policies import SchedulerPolicy
from ..testbed.generator import ClusterSpec
from ..util.simclock import DAY, MONTH, WEEK
from .framework import TestingFramework, build_framework

__all__ = ["CampaignConfig", "CampaignReport", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    seed: int = 0
    months: float = 5.0
    specs: Optional[Sequence[ClusterSpec]] = None
    #: Latent faults present before testing starts (February's backlog —
    #: the testbed was visibly unhealthy when systematic testing began).
    backlog_faults: int = 50
    #: ~0.45 faults/day + the backlog lands the five-month bug count in the
    #: slide-22 band (118 filed) while letting fixes outpace arrivals — the
    #: regime behind the paper's improving reliability.
    fault_mean_interarrival_s: float = 2.2 * DAY
    policy: SchedulerPolicy = SchedulerPolicy()
    workload: WorkloadConfig = WorkloadConfig(target_utilization=0.6)
    operator_speedup: float = 1.0
    #: A2 ablation: with the framework off, nothing detects or fixes faults.
    framework_enabled: bool = True
    pernode: bool = False
    executors: int = 16


@dataclass
class CampaignReport:
    months: float
    # slide-22 numbers
    bugs_filed: int
    bugs_fixed: int
    bugs_open: int
    bugs_unexplained: int
    faults_injected: int
    faults_detected: int
    faults_active_end: int
    detection_latency_days_median: float
    fix_time_days_median: float
    # slide-23 trend
    weekly_success_rates: list[tuple[float, float]]
    first_month_success: float
    last_month_success: float
    # load/scheduler behaviour
    total_builds: int
    unstable_builds: int
    weekly_active_faults: list[tuple[float, int]] = field(default_factory=list)
    bugs_by_family: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"campaign over {self.months:.1f} months:",
            f"  bugs filed: {self.bugs_filed} (fixed: {self.bugs_fixed}, "
            f"open: {self.bugs_open}, unexplained: {self.bugs_unexplained})",
            f"  ground truth: {self.faults_injected} faults injected, "
            f"{self.faults_detected} detected, {self.faults_active_end} still active",
            f"  detection latency (median): "
            f"{self.detection_latency_days_median:.1f} days",
            f"  success rate: {self.first_month_success:.0%} (first month) "
            f"-> {self.last_month_success:.0%} (last month)",
            f"  builds: {self.total_builds} total, "
            f"{self.unstable_builds} unstable (no resources)",
        ]
        return "\n".join(lines)


def run_campaign(config: CampaignConfig = CampaignConfig()
                 ) -> tuple[TestingFramework, CampaignReport]:
    """Run one campaign; returns the world and the report."""
    fw = build_framework(
        seed=config.seed,
        specs=config.specs,
        policy=config.policy,
        workload_config=config.workload,
        executors=config.executors,
        fault_mean_interarrival_s=config.fault_mean_interarrival_s,
        operator_speedup=config.operator_speedup,
        pernode=config.pernode,
    )
    # February's backlog: the testbed is already unhealthy when testing starts.
    for _ in range(config.backlog_faults):
        fw.injector.inject()
    fw.start(workload=True, faults=True, testing=config.framework_enabled)

    horizon = config.months * MONTH
    weekly_active: list[tuple[float, int]] = []
    t = 0.0
    while t < horizon:
        t = min(t + WEEK, horizon)
        fw.run_until(t)
        weekly_active.append((t, len(fw.ground_truth.active())))

    report = _build_report(fw, config, weekly_active)
    return fw, report


def _median_days(values: list[float]) -> float:
    if not values:
        return float("nan")
    return float(np.median(values)) / DAY


def _build_report(fw: TestingFramework, config: CampaignConfig,
                  weekly_active: list[tuple[float, int]]) -> CampaignReport:
    horizon = config.months * MONTH
    gt = fw.ground_truth
    tracker = fw.tracker
    history = fw.history
    weekly = history.weekly_success_series(until=horizon)
    first_month = history.success_rate(since=0.0, until=min(MONTH, horizon))
    last_month = history.success_rate(since=max(0.0, horizon - MONTH),
                                      until=horizon)
    bugs_by_family: dict[str, int] = {}
    for bug in tracker.bugs:
        bugs_by_family[bug.family] = bugs_by_family.get(bug.family, 0) + 1
    unstable = sum(1 for r in history.records if r.status == "UNSTABLE")
    return CampaignReport(
        months=config.months,
        bugs_filed=tracker.filed_count,
        bugs_fixed=tracker.fixed_count,
        bugs_open=tracker.open_count,
        bugs_unexplained=tracker.unexplained_count,
        faults_injected=len(gt.all),
        faults_detected=len(gt.detected()),
        faults_active_end=len(gt.active()),
        detection_latency_days_median=_median_days(gt.detection_latencies()),
        fix_time_days_median=_median_days(tracker.time_to_fix()),
        weekly_success_rates=weekly,
        first_month_success=first_month,
        last_month_success=last_month,
        total_builds=len(history.records),
        unstable_builds=unstable,
        weekly_active_faults=weekly_active,
        bugs_by_family=bugs_by_family,
    )
