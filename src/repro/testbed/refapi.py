"""The Reference API: versioned, archived resource descriptions.

Slide 7: descriptions are *archived* ("State of testbed 6 months ago?"),
verified by g5k-checks, and feed the OAR properties database.  This module
implements that store:

* every :meth:`ReferenceApi.commit` snapshots the whole testbed document
  under a content hash, with a timestamp and message (git-like history);
* :meth:`ReferenceApi.at_time` answers "what did the testbed look like at
  time T" — the archival property the paper calls out;
* node descriptions can be updated in place (what operators do when a bug
  report shows the description is wrong) and re-committed;
* :meth:`ReferenceApi.diff` exposes structural differences between any two
  versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..util.errors import ReferenceApiError
from ..util.serialization import DiffEntry, content_hash, deep_diff
from .description import NodeDescription, TestbedDescription

__all__ = ["RefApiVersion", "ReferenceApi"]


@dataclass(frozen=True)
class RefApiVersion:
    """One committed snapshot of the testbed description."""

    version: str  # content hash
    timestamp: float
    message: str
    doc: dict[str, Any]


class ReferenceApi:
    """Versioned store of :class:`TestbedDescription` documents."""

    def __init__(self, testbed: TestbedDescription, timestamp: float = 0.0):
        self._testbed = testbed
        self._history: list[RefApiVersion] = []
        self.commit(timestamp, "initial import")

    # -- current state ---------------------------------------------------------

    @property
    def testbed(self) -> TestbedDescription:
        """The live (HEAD) description object."""
        return self._testbed

    @property
    def head(self) -> RefApiVersion:
        return self._history[-1]

    def node(self, uid: str) -> NodeDescription:
        """Current description of one node (raises ReferenceApiError if unknown)."""
        try:
            return self._testbed.node(uid)
        except KeyError as e:
            raise ReferenceApiError(str(e)) from None

    def update_node(self, node: NodeDescription, timestamp: float, message: str) -> str:
        """Replace a node's description and commit the change.

        This is the operator action taken when a bug report shows the
        *description* (not the hardware) was wrong.
        """
        try:
            self._testbed.replace_node(node)
        except KeyError as e:
            raise ReferenceApiError(str(e)) from None
        return self.commit(timestamp, message)

    # -- history ---------------------------------------------------------------

    def commit(self, timestamp: float, message: str) -> str:
        """Snapshot the current description; returns the version hash.

        Committing an unchanged document is a no-op returning the HEAD
        version (descriptions are content-addressed).
        """
        if self._history and timestamp < self._history[-1].timestamp:
            raise ReferenceApiError(
                f"commit at {timestamp} is before HEAD ({self._history[-1].timestamp})"
            )
        doc = self._testbed.to_doc()
        version = content_hash(doc)
        if self._history and self._history[-1].version == version:
            return version
        self._history.append(RefApiVersion(version, timestamp, message, doc))
        return version

    @property
    def history(self) -> tuple[RefApiVersion, ...]:
        return tuple(self._history)

    def get_version(self, version: str) -> RefApiVersion:
        for v in self._history:
            if v.version == version:
                return v
        raise ReferenceApiError(f"unknown version: {version}")

    def at_time(self, timestamp: float) -> RefApiVersion:
        """The snapshot in force at ``timestamp`` (archival lookup)."""
        candidate: Optional[RefApiVersion] = None
        for v in self._history:
            if v.timestamp <= timestamp:
                candidate = v
        if candidate is None:
            raise ReferenceApiError(f"no snapshot at or before t={timestamp}")
        return candidate

    def diff(self, old_version: str, new_version: str) -> list[DiffEntry]:
        """Structural differences between two committed versions."""
        old = self.get_version(old_version)
        new = self.get_version(new_version)
        return deep_diff(old.doc, new.doc)
