"""Tests for KaVLAN allocation, reconfiguration and isolation semantics."""

import pytest

from repro.faults import ServiceHealth
from repro.kavlan import RECONFIG_S_PER_SWITCH, KavlanManager, VlanType
from repro.testbed import SITE_NAMES
from repro.util import Simulator, VlanError


@pytest.fixture()
def kavlan(testbed, topology):
    sim = Simulator()
    services = ServiceHealth()
    return sim, services, KavlanManager(sim, topology, services, list(SITE_NAMES))


def run_proc(sim, gen):
    holder = {}

    def driver():
        holder["value"] = yield sim.process(gen)

    sim.process(driver())
    sim.run()
    return holder["value"]


def test_nodes_start_on_default_vlan(kavlan):
    _, _, mgr = kavlan
    assert mgr.vlan_of("grisou-1").type == VlanType.DEFAULT


def test_default_routing_between_sites(kavlan):
    _, _, mgr = kavlan
    assert mgr.reachable("grisou-1", "paravance-1")  # nancy <-> rennes


def test_allocate_local_vlan(kavlan):
    _, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.LOCAL, "nancy")
    assert vlan.type == VlanType.LOCAL
    assert vlan.vlan_id >= 101


def test_pool_exhaustion(kavlan):
    _, _, mgr = kavlan
    for _ in range(3):
        mgr.allocate(VlanType.LOCAL, "nancy")
    with pytest.raises(VlanError):
        mgr.allocate(VlanType.LOCAL, "nancy")


def test_unknown_site_rejected(kavlan):
    _, _, mgr = kavlan
    with pytest.raises(VlanError):
        mgr.allocate(VlanType.LOCAL, "atlantis")


def test_default_vlan_not_allocatable(kavlan):
    _, _, mgr = kavlan
    with pytest.raises(VlanError):
        mgr.allocate(VlanType.DEFAULT, "nancy")


def test_set_nodes_moves_membership(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.LOCAL, "nancy")
    applied = run_proc(sim, mgr.set_nodes(vlan, ["grisou-1", "grisou-2"]))
    assert applied == {"grisou-1", "grisou-2"}
    assert mgr.vlan_of("grisou-1") is vlan


def test_reconfiguration_cost_scales_with_switches(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.LOCAL, "nancy")
    t0 = sim.now
    # graphene-1 and graphene-50 are on different ToR switches (48-port racks)
    run_proc(sim, mgr.set_nodes(vlan, ["graphene-1", "graphene-2", "graphene-50"]))
    assert sim.now - t0 == pytest.approx(2 * RECONFIG_S_PER_SWITCH)


def test_local_vlan_isolated_from_outside(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.LOCAL, "nancy")
    run_proc(sim, mgr.set_nodes(vlan, ["grisou-1", "grisou-2"]))
    assert mgr.reachable("grisou-1", "grisou-2")  # inside
    assert not mgr.reachable("grisou-1", "grisou-3")  # outside, same cluster
    assert not mgr.reachable("paravance-1", "grisou-1")  # from another site
    assert mgr.reachable("grisou-1", "grisou-3", via_gateway=True)  # SSH gw


def test_isolation_violations_empty_when_healthy(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.LOCAL, "nancy")
    run_proc(sim, mgr.set_nodes(vlan, ["grisou-1", "grisou-2"]))
    assert mgr.isolation_violations(vlan, ["grisou-3", "paravance-1"]) == []


def test_broken_kavlan_leaks(kavlan):
    sim, services, mgr = kavlan
    services.kavlan_broken.add("nancy")
    vlan = mgr.allocate(VlanType.LOCAL, "nancy")
    applied = run_proc(sim, mgr.set_nodes(vlan, ["grisou-1", "grisou-2"]))
    assert applied == set()  # ports silently unchanged
    violations = mgr.isolation_violations(vlan, ["grisou-3"])
    assert ("grisou-1", "grisou-3") in violations


def test_isolation_check_requires_local(kavlan):
    _, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.ROUTED, "nancy")
    with pytest.raises(VlanError):
        mgr.isolation_violations(vlan, [])


def test_routed_vlan_reachable_from_default(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.ROUTED, "lyon")
    run_proc(sim, mgr.set_nodes(vlan, ["nova-1", "nova-2"]))
    assert mgr.reachable("nova-1", "nova-3")  # routed <-> default
    assert mgr.reachable("grisou-1", "nova-1")


def test_global_vlan_spans_sites_at_l2(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.GLOBAL, "nancy")
    run_proc(sim, mgr.set_nodes(vlan, ["grisou-1", "paravance-1"]))
    assert mgr.reachable("grisou-1", "paravance-1")  # same global L2
    assert not mgr.reachable("grisou-1", "grisou-2")  # global is its own world


def test_release_returns_nodes_to_default(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.LOCAL, "nancy")
    run_proc(sim, mgr.set_nodes(vlan, ["grisou-1"]))
    run_proc(sim, mgr.release(vlan))
    assert mgr.vlan_of("grisou-1").type == VlanType.DEFAULT
    # pool slot is back
    for _ in range(3):
        mgr.allocate(VlanType.LOCAL, "nancy")


def test_release_twice_raises(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.ROUTED, "nancy")
    run_proc(sim, mgr.release(vlan))
    with pytest.raises(VlanError):
        run_proc(sim, mgr.release(vlan))


def test_set_nodes_on_released_vlan_raises(kavlan):
    sim, _, mgr = kavlan
    vlan = mgr.allocate(VlanType.ROUTED, "nancy")
    run_proc(sim, mgr.release(vlan))
    with pytest.raises(VlanError):
        next(mgr.set_nodes(vlan, ["grisou-1"]))


def test_reachability_reflexive(kavlan):
    _, _, mgr = kavlan
    assert mgr.reachable("grisou-1", "grisou-1")
