"""Bug tracker and operator team model.

Slide 11's problem is that *users* rarely report bugs; the framework files
them instead, and "testbed operators would be well positioned" to fix
them.  Here:

* :class:`BugTracker` turns failing test outcomes into deduplicated bug
  reports.  A finding is matched against the ground-truth fault registry
  (same root-cause kind, target on the same node/cluster/site); findings
  with no matching fault become *unexplained* reports — transient noise
  that operators investigate and close without a fix;
* :class:`OperatorTeam` models test-driven operations (slide 23): every
  new bug gets an investigation+fix latency drawn from a long-tailed
  lognormal (hardware RMAs take weeks); fixing a bug reverts the fault.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..checksuite.base import Finding, TestOutcome
from ..faults.catalog import FaultContext, FaultInstance, FaultKind, Severity
from ..faults.injector import FaultInjector, GroundTruth
from ..util.events import Simulator
from ..util.rng import RngStreams
from ..util.simclock import DAY

__all__ = ["BugStatus", "Bug", "BugTracker", "OperatorTeam"]


class BugStatus(enum.Enum):
    OPEN = "open"
    FIXED = "fixed"
    #: Investigated, no root cause found (transient / test noise).
    CLOSED_UNEXPLAINED = "closed-unexplained"


@dataclass(eq=False)
class Bug:
    bug_id: int
    filed_at: float
    family: str
    finding: Finding
    fault: Optional[FaultInstance]
    status: BugStatus = BugStatus.OPEN
    closed_at: Optional[float] = None

    @property
    def is_open(self) -> bool:
        return self.status == BugStatus.OPEN

    @property
    def explained(self) -> bool:
        return self.fault is not None


class BugTracker:
    """Deduplicating bug filing over ground truth."""

    def __init__(self, sim: Simulator, ground_truth: GroundTruth,
                 fault_ctx: FaultContext,
                 on_filed: Optional[Callable[[Bug], None]] = None):
        self.sim = sim
        self.ground_truth = ground_truth
        self.ctx = fault_ctx
        self.bugs: list[Bug] = []
        self.on_filed = on_filed
        self._next_id = 1
        self._open_fault_bugs: dict[int, Bug] = {}  # fault_id -> open bug
        self._open_unexplained: dict[tuple, Bug] = {}

    # -- filing ---------------------------------------------------------------

    def file_from_outcome(self, outcome: TestOutcome) -> list[Bug]:
        """File (deduplicated) bugs for every finding of a failed test."""
        filed = []
        for finding in outcome.findings:
            bug = self._file_one(outcome.family, finding)
            if bug is not None:
                filed.append(bug)
        return filed

    def _file_one(self, family: str, finding: Finding) -> Optional[Bug]:
        fault = self._match(finding)
        if fault is not None:
            self.ground_truth.mark_detected(fault, self.sim.now, family)
            if fault.fault_id in self._open_fault_bugs:
                return None  # already filed, still open
            bug = self._new_bug(family, finding, fault)
            self._open_fault_bugs[fault.fault_id] = bug
            return bug
        key = (finding.kind_hint, finding.target)
        if key in self._open_unexplained:
            return None
        bug = self._new_bug(family, finding, None)
        self._open_unexplained[key] = bug
        return bug

    def _new_bug(self, family: str, finding: Finding,
                 fault: Optional[FaultInstance]) -> Bug:
        bug = Bug(bug_id=self._next_id, filed_at=self.sim.now, family=family,
                  finding=finding, fault=fault)
        self._next_id += 1
        self.bugs.append(bug)
        if self.on_filed is not None:
            self.on_filed(bug)
        return bug

    #: A symptom of the key kind can be caused by any of the value kinds
    #: (the operator's investigation finds the deeper root cause): a node
    #: that fails a reboot/deployment may be flaky itself, but also the
    #: victim of a degraded deployment service or a kernel boot race.
    _RELATED_KINDS = {
        FaultKind.RANDOM_REBOOTS: (FaultKind.DEPLOY_DEGRADED,
                                   FaultKind.KERNEL_BOOT_RACE),
        FaultKind.DEPLOY_DEGRADED: (FaultKind.KERNEL_BOOT_RACE,),
    }

    def _match(self, finding: Finding) -> Optional[FaultInstance]:
        """Find the active fault a finding points at.

        A hint of kind K on target T matches an active fault of kind K —
        or a related root-cause kind — whose target is T itself, T's
        cluster, or T's site: test scripts report the symptom location,
        faults may be scoped wider.
        """
        if finding.kind_hint is None:
            return None
        targets = [finding.target]
        if finding.target in self.ctx.machines:
            machine = self.ctx.machines[finding.target]
            targets += [machine.cluster_uid, machine.site_uid]
        elif finding.target in self.ctx.clusters:
            targets.append(self.ctx.site_of_cluster(finding.target))
        kinds = (finding.kind_hint,) + self._RELATED_KINDS.get(finding.kind_hint, ())
        for kind in kinds:
            for target in targets:
                fault = self.ground_truth.active_matching(kind, target)
                if fault is not None:
                    return fault
        return None

    # -- closing -----------------------------------------------------------------

    def close(self, bug: Bug, status: BugStatus) -> None:
        if not bug.is_open:
            return
        bug.status = status
        bug.closed_at = self.sim.now
        if bug.fault is not None:
            self._open_fault_bugs.pop(bug.fault.fault_id, None)
        else:
            self._open_unexplained.pop(
                (bug.finding.kind_hint, bug.finding.target), None)

    # -- statistics ---------------------------------------------------------------

    @property
    def filed_count(self) -> int:
        return len(self.bugs)

    @property
    def fixed_count(self) -> int:
        return sum(1 for b in self.bugs if b.status == BugStatus.FIXED)

    @property
    def open_count(self) -> int:
        return sum(1 for b in self.bugs if b.is_open)

    @property
    def unexplained_count(self) -> int:
        return sum(1 for b in self.bugs if not b.explained)

    def time_to_fix(self) -> list[float]:
        return [b.closed_at - b.filed_at for b in self.bugs
                if b.status == BugStatus.FIXED]


#: Investigation+fix latency medians by severity (operators triage).
_FIX_MEDIAN_DAYS = {
    Severity.AVAILABILITY: 4.0,
    Severity.CORRECTNESS: 6.0,
    Severity.SERVICE: 6.0,
    Severity.PERFORMANCE: 10.0,  # needs vendor calls, BIOS updates, RMAs
}

#: Long-tailed latencies: sigma of the lognormal (in log space).
_FIX_SIGMA = 0.9

#: Unexplained reports are investigated and closed quickly.
_UNEXPLAINED_CLOSE_DAYS = 2.0


class OperatorTeam:
    """Fixes bugs after a severity-dependent latency."""

    def __init__(self, sim: Simulator, tracker: BugTracker,
                 injector: FaultInjector, rng_streams: RngStreams,
                 speedup: float = 1.0):
        self.sim = sim
        self.tracker = tracker
        self.injector = injector
        self._rng = rng_streams.stream("operators")
        #: >1 = faster fixes (test-driven operations improve over time).
        self.speedup = speedup
        tracker.on_filed = self.handle_new_bug

    def handle_new_bug(self, bug: Bug) -> None:
        if bug.fault is None:
            delay = float(self._rng.exponential(_UNEXPLAINED_CLOSE_DAYS * DAY))
            self.sim.call_in(delay, self._close_unexplained, bug)
            return
        median_days = _FIX_MEDIAN_DAYS[bug.fault.severity] / self.speedup
        delay = float(self._rng.lognormal(np.log(median_days * DAY), _FIX_SIGMA))
        self.sim.call_in(delay, self._fix, bug)

    def _close_unexplained(self, bug: Bug) -> None:
        self.tracker.close(bug, BugStatus.CLOSED_UNEXPLAINED)

    def _fix(self, bug: Bug) -> None:
        if not bug.is_open:
            return
        if bug.fault is not None and bug.fault.active:
            self.injector.fix(bug.fault)
        self.tracker.close(bug, BugStatus.FIXED)
