"""Parser for the ``oarsub -l`` resource-request mini-language.

Slide 7 shows the selection syntax users (and the testing framework) use::

    oarsub -l "cluster='a' and gpu='YES'/nodes=1+cluster='b' and
               eth10g='Y'/nodes=2,walltime=2"

A request is ``part ('+' part)* (',' 'walltime=' time)?`` where each part is
``[property_expression '/'] 'nodes=' count``.  ``count`` is ``int``, ``ALL``,
or an elastic width range:

* ``nodes=4`` — rigid, exactly four nodes;
* ``nodes=2..8`` — malleable, preferred (and placed at) 2, growable to 8;
* ``nodes=2..4..8`` — malleable, minimum 2, preferred 4, maximum 8.

Rigid is the ``min == preferred == max`` degenerate case; placement always
happens at the *preferred* width, so a request with a range schedules
byte-identically to its rigid counterpart until a malleable policy calls
``grow``/``shrink``.  Property expressions support ``and``/``or``/``not``,
parentheses, and the comparison operators ``= != < <= > >=`` over quoted
strings and numbers.

The parser is a hand-written tokenizer + recursive-descent (precedence:
``or`` < ``and`` < ``not`` < comparison), producing an AST whose nodes
evaluate against a property dict and render back to canonical text
(``str(expr)`` re-parses to an equivalent AST — property-tested).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..util.errors import ParseError
from ..util.simclock import HOUR, MINUTE

__all__ = [
    "PropExpr",
    "Comparison",
    "BoolOp",
    "NotOp",
    "RequestPart",
    "JobRequest",
    "ALL_NODES",
    "parse_expression",
    "parse_request",
    "format_walltime",
]

#: Sentinel for ``nodes=ALL`` (hardware-centric tests take whole clusters).
ALL_NODES = "ALL"


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class PropExpr:
    """Base class for property-expression AST nodes."""

    def evaluate(self, props: dict[str, Any]) -> bool:  # pragma: no cover
        raise NotImplementedError


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(PropExpr):
    name: str
    op: str
    value: Union[str, int, float]

    def evaluate(self, props: dict[str, Any]) -> bool:
        if self.name not in props:
            return False
        actual = props[self.name]
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False  # comparing number with string -> no match

    def __str__(self) -> str:
        value = f"'{self.value}'" if isinstance(self.value, str) else str(self.value)
        return f"{self.name}{self.op}{value}"


@dataclass(frozen=True)
class BoolOp(PropExpr):
    op: str  # "and" | "or"
    left: PropExpr
    right: PropExpr

    def evaluate(self, props: dict[str, Any]) -> bool:
        if self.op == "and":
            return self.left.evaluate(props) and self.right.evaluate(props)
        return self.left.evaluate(props) or self.right.evaluate(props)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotOp(PropExpr):
    operand: PropExpr

    def evaluate(self, props: dict[str, Any]) -> bool:
        return not self.operand.evaluate(props)

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class RequestPart:
    """One resource group: ``expr/nodes=count``.

    ``count`` is the *preferred* width — the one the scheduler places the
    job at.  ``min_count``/``max_count`` bound a malleable job's width
    (``None`` on both means rigid: the job runs at exactly ``count``).
    """

    expr: Optional[PropExpr]
    count: Union[int, str]  # int or ALL_NODES
    min_count: Optional[int] = None
    max_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_count is None and self.max_count is None:
            return
        if not isinstance(self.count, int):
            raise ValueError("elastic width ranges need an integer count, "
                             f"not {self.count!r}")
        lo = self.count if self.min_count is None else self.min_count
        hi = self.count if self.max_count is None else self.max_count
        if not 1 <= lo <= self.count <= hi:
            raise ValueError(
                f"invalid elastic width {lo}..{self.count}..{hi}: "
                "need 1 <= min <= preferred <= max")

    @property
    def min_nodes(self) -> Union[int, str]:
        """Smallest width the job can run at (== ``count`` when rigid)."""
        return self.count if self.min_count is None else self.min_count

    @property
    def max_nodes(self) -> Union[int, str]:
        """Largest width the job may grow to (== ``count`` when rigid)."""
        return self.count if self.max_count is None else self.max_count

    @property
    def malleable(self) -> bool:
        """True when the width range is wider than a single point."""
        return (isinstance(self.count, int)
                and (self.min_nodes < self.count
                     or self.max_nodes > self.count))

    def __str__(self) -> str:
        if self.malleable:
            lo, hi = self.min_nodes, self.max_nodes
            if lo == self.count:
                nodes = f"nodes={lo}..{hi}"
            else:
                nodes = f"nodes={lo}..{self.count}..{hi}"
        else:
            nodes = f"nodes={self.count}"
        return f"{self.expr}/{nodes}" if self.expr is not None else nodes


@dataclass(frozen=True)
class JobRequest:
    """A full ``-l`` argument: resource parts plus a walltime."""

    parts: tuple[RequestPart, ...]
    walltime_s: float

    def __str__(self) -> str:
        parts = "+".join(str(p) for p in self.parts)
        return f"{parts},walltime={format_walltime(self.walltime_s)}"


def format_walltime(seconds: float) -> str:
    total = int(round(seconds))
    h, rem = divmod(total, int(HOUR))
    m, s = divmod(rem, int(MINUTE))
    return f"{h}:{m:02d}:{s:02d}"


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<op><=|>=|!=|=|<|>)
      | (?P<range>\.\.)
      | (?P<punct>[()/+,:])
      | (?P<string>'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip() == "":
                break
            raise ParseError("unexpected character", text, pos)
        for kind in ("op", "range", "punct", "string", "number", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start(kind)))
                break
        pos = match.end()
    return tokens


# ---------------------------------------------------------------------------
# Recursive-descent parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise ParseError(f"expected {text or kind}, got {tok.text!r}",
                             self.text, tok.pos)
        return tok

    def at_word(self, *words: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == "word" and tok.text.lower() in words

    def at_punct(self, *chars: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == "punct" and tok.text in chars

    # -- expression grammar ----------------------------------------------------

    def parse_or(self) -> PropExpr:
        left = self.parse_and()
        while self.at_word("or"):
            self.next()
            left = BoolOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> PropExpr:
        left = self.parse_not()
        while self.at_word("and"):
            self.next()
            left = BoolOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> PropExpr:
        if self.at_word("not"):
            self.next()
            return NotOp(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> PropExpr:
        if self.at_punct("("):
            self.next()
            expr = self.parse_or()
            self.expect("punct", ")")
            return expr
        name_tok = self.expect("word")
        op_tok = self.expect("op")
        value_tok = self.next()
        value: Union[str, int, float]
        if value_tok.kind == "string":
            value = value_tok.text[1:-1]
        elif value_tok.kind == "number":
            value = float(value_tok.text) if "." in value_tok.text else int(value_tok.text)
        else:
            raise ParseError(f"expected a value, got {value_tok.text!r}",
                             self.text, value_tok.pos)
        return Comparison(name_tok.text, op_tok.text, value)

    # -- request grammar ----------------------------------------------------------

    def parse_part(self) -> RequestPart:
        """``[expr /] nodes=count`` — needs lookahead because both branches
        start with a word."""
        # `nodes` is a reserved word: a part starting with it is the bare
        # `nodes=count` form, never a property comparison.
        if self.at_word("nodes"):
            self.next()
            self.expect("op", "=")
            return RequestPart(None, *self._parse_count_spec())
        expr = self.parse_or()
        self.expect("punct", "/")
        self.expect("word", "nodes")
        self.expect("op", "=")
        return RequestPart(expr, *self._parse_count_spec())

    def _parse_count(self) -> Union[int, str]:
        tok = self.next()
        if tok.kind == "number" and "." not in tok.text and int(tok.text) > 0:
            return int(tok.text)
        if tok.kind == "word" and tok.text.upper() == ALL_NODES:
            return ALL_NODES
        raise ParseError(f"invalid node count {tok.text!r}", self.text, tok.pos)

    def at_range(self) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == "range"

    def _parse_count_spec(
            self) -> tuple[Union[int, str], Optional[int], Optional[int]]:
        """``count``, ``min..max`` or ``min..preferred..max``.

        Two values mean "place at the minimum, growable to the maximum";
        three spell the preferred width out.  Returns
        ``(count, min_count, max_count)`` with ``(count, None, None)`` for
        the rigid single-value form.
        """
        first = self.next()
        self.index -= 1  # re-read via _parse_count for the shared validation
        count = self._parse_count()
        if not self.at_range():
            return count, None, None
        if count == ALL_NODES or first.kind != "number":
            raise ParseError("ALL cannot anchor an elastic width range",
                             self.text, first.pos)
        values = [count]
        while self.at_range():
            self.next()
            tok = self.peek()
            values.append(self._parse_count())
            if values[-1] == ALL_NODES:
                raise ParseError("ALL cannot appear in an elastic width "
                                 "range", self.text,
                                 tok.pos if tok is not None else 0)
        if len(values) == 2:
            lo, hi = values
            preferred = lo
        elif len(values) == 3:
            lo, preferred, hi = values
        else:
            raise ParseError(
                "elastic width takes min..max or min..preferred..max, "
                f"got {len(values)} values", self.text, first.pos)
        if not lo <= preferred <= hi:
            raise ParseError(
                f"invalid elastic width {lo}..{preferred}..{hi}: need "
                "min <= preferred <= max", self.text, first.pos)
        if lo == hi:
            return preferred, None, None  # degenerate range: plain rigid
        return preferred, lo, hi

    def parse_request(self) -> JobRequest:
        parts = [self.parse_part()]
        while self.at_punct("+"):
            self.next()
            parts.append(self.parse_part())
        walltime_s = HOUR  # OAR's default walltime
        if self.at_punct(","):
            self.next()
            self.expect("word", "walltime")
            self.expect("op", "=")
            walltime_s = self._parse_time_value()
        tok = self.peek()
        if tok is not None:
            raise ParseError(f"trailing input {tok.text!r}", self.text, tok.pos)
        return JobRequest(tuple(parts), walltime_s)

    def _parse_time_value(self) -> float:
        """``H``, ``H:MM`` or ``H:MM:SS`` (also fractional hours ``1.5``)."""
        h = self.expect("number")
        if "." in h.text:
            return float(h.text) * HOUR
        seconds = int(h.text) * HOUR
        for unit in (MINUTE, 1):
            if not self.at_punct(":"):
                break
            self.next()
            tok = self.expect("number")
            seconds += int(tok.text) * unit
        return float(seconds)


def parse_expression(text: str) -> PropExpr:
    """Parse a bare property expression, e.g. ``"gpu='YES' and memnode>=64"``."""
    parser = _Parser(text)
    expr = parser.parse_or()
    tok = parser.peek()
    if tok is not None:
        raise ParseError(f"trailing input {tok.text!r}", text, tok.pos)
    return expr


def parse_request(text: str) -> JobRequest:
    """Parse a full ``-l`` request string.

    >>> req = parse_request("cluster='grisou'/nodes=2,walltime=2:30:00")
    >>> req.parts[0].count, req.walltime_s
    (2, 9000.0)
    """
    return _Parser(text).parse_request()
