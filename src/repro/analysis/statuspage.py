"""The external status page (slides 18-19).

Renders the grid the paper shows: rows = test families, columns = clusters
(or sites for site-scoped families), one glyph per cell for the latest
result, plus per-test and per-cluster rollups and the historical trend.
Built exclusively on :class:`~repro.analysis.history.BuildHistory` (which
is fed from Jenkins results), mirroring "external status page that uses
Jenkins' REST API".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..testbed.description import TestbedDescription
from ..util.simclock import format_time
from .history import BuildHistory

__all__ = ["CellStatus", "StatusPage"]

_GLYPHS = {
    "SUCCESS": "O",
    "FAILURE": "X",
    "UNSTABLE": "~",
    "ABORTED": "!",
    None: ".",
}


@dataclass(frozen=True)
class CellStatus:
    family: str
    column: str  # cluster or site uid
    status: Optional[str]  # latest result, None = never ran
    finished_at: Optional[float]


class StatusPage:
    """Aggregated views over the build history."""

    def __init__(self, history: BuildHistory, testbed: TestbedDescription):
        self.history = history
        self.testbed = testbed

    # -- grids ------------------------------------------------------------------

    def grid(self, since: float = 0.0) -> dict[str, dict[str, CellStatus]]:
        """family -> column (cluster/site) -> latest cell status.

        A family touching several cells in one column (environments has 14
        images per cluster) rolls up pessimistically: any FAILURE beats
        UNSTABLE beats SUCCESS.
        """
        severity = {"FAILURE": 3, "ABORTED": 2, "UNSTABLE": 1, "SUCCESS": 0}
        out: dict[str, dict[str, CellStatus]] = {}
        for (family, _key), record in self.history.latest_per_cell(since).items():
            column = record.cluster if record.cluster is not None else record.site
            row = out.setdefault(family, {})
            cell = row.get(column)
            if cell is None or severity[record.status] > severity.get(cell.status, -1):
                row[column] = CellStatus(family, column, record.status,
                                         record.finished_at)
        return out

    def per_family_status(self, family: str, since: float = 0.0
                          ) -> dict[str, Optional[str]]:
        """One test across all sites/clusters (requirement 1 of slide 18)."""
        return {col: cell.status
                for col, cell in self.grid(since).get(family, {}).items()}

    def per_cluster_status(self, cluster: str, since: float = 0.0
                           ) -> dict[str, Optional[str]]:
        """All tests for one cluster (requirement 2 of slide 18)."""
        site = self.testbed.cluster(cluster).site
        out = {}
        for family, row in self.grid(since).items():
            if cluster in row:
                out[family] = row[cluster].status
            elif site in row:  # site-scoped families cover the cluster too
                out[family] = row[site].status
        return out

    # -- rendering ----------------------------------------------------------------

    def render(self, since: float = 0.0, now: Optional[float] = None) -> str:
        """ASCII version of the slide-19 grid."""
        grid = self.grid(since)
        families = sorted(grid)
        columns = [c.uid for c in self.testbed.iter_clusters()] + \
                  [s.uid for s in self.testbed.sites]
        used_columns = [c for c in columns
                        if any(c in grid[f] for f in families)]
        name_width = max((len(f) for f in families), default=8)
        lines = []
        if now is not None:
            lines.append(f"Status page @ {format_time(now)}")
        header = " " * name_width + " " + " ".join(c[:8].ljust(8) for c in used_columns)
        lines.append(header)
        for family in families:
            row = grid[family]
            glyphs = []
            for column in used_columns:
                cell = row.get(column)
                glyphs.append(_GLYPHS[cell.status if cell else None].ljust(8))
            lines.append(family.ljust(name_width) + " " + " ".join(glyphs))
        lines.append("")
        lines.append("legend: O=success  X=failure  ~=unstable(no resources)  "
                     "!=aborted  .=never ran")
        return "\n".join(lines)

    def render_trend(self, until: float) -> str:
        """Weekly success-rate bars (the historical perspective)."""
        lines = ["weekly success rate:"]
        for week_start, rate in self.history.weekly_success_series(until):
            bar = "#" * int(round(rate * 40))
            lines.append(f"  {format_time(week_start)[:6]}  {rate:6.1%} {bar}")
        return "\n".join(lines)
