"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.util import Interrupt, SimulationError, Simulator


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_time_starts_at_custom_origin():
    assert Simulator(start=100.0).now == 100.0


def test_call_in_advances_clock():
    sim = Simulator()
    seen = []
    sim.call_in(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


def test_call_at_absolute_time():
    sim = Simulator(start=10.0)
    seen = []
    sim.call_at(25.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [25.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1.0, lambda: None)


def test_equal_time_events_run_in_insertion_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.call_in(3.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.call_in(100.0, lambda: None)
    sim.run(until=40.0)
    assert sim.now == 40.0
    sim.run(until=200.0)
    assert sim.now == 200.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=50.0)
    with pytest.raises(SimulationError):
        sim.run(until=10.0)


def test_run_until_executes_boundary_events():
    sim = Simulator()
    seen = []
    sim.call_in(10.0, seen.append, "x")
    sim.run(until=10.0)
    assert seen == ["x"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.call_in(7.0, lambda: None)
    assert sim.peek() == 7.0


def test_process_timeout_sequence():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield sim.timeout(2.0)
        trace.append(sim.now)
        yield sim.timeout(3.0)
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 2.0, 5.0]


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent(results):
        value = yield sim.process(child())
        results.append(value)

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == [42]


def test_event_value_delivered_to_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    sim.process(waiter())
    sim.call_in(4.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    sim.process(waiter())
    sim.call_in(1.0, ev.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_callback_on_already_triggered_event_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["late"]


def test_any_of_triggers_on_first():
    sim = Simulator()
    results = []

    def proc():
        winner = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(2.0, "fast")])
        results.append((sim.now, list(winner.values())))

    sim.process(proc())
    sim.run()
    assert results == [(2.0, ["fast"])]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    times = []

    def proc():
        yield sim.all_of([sim.timeout(5.0), sim.timeout(2.0), sim.timeout(9.0)])
        times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times == [9.0]


def test_any_of_child_failure_raises_in_waiter():
    sim = Simulator()
    bad = sim.event()
    caught = []

    def proc():
        try:
            yield sim.any_of([bad, sim.timeout(2.0)])
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    sim.process(proc())
    sim.call_in(1.0, bad.fail, RuntimeError("child died"))
    sim.run()
    assert caught == [(1.0, "child died")]


def test_any_of_success_value_excludes_failed_children():
    sim = Simulator()
    ok = sim.event()
    bad = sim.event()
    results = []

    def proc():
        value = yield sim.any_of([ok, bad])
        results.append(dict(value))

    sim.process(proc())
    # Both trigger at t=1; the success lands first, so AnyOf succeeds —
    # but the failed sibling must not leak its exception into the dict.
    sim.call_in(1.0, ok.succeed, "fine")
    sim.call_in(1.0, bad.fail, RuntimeError("too late to matter"))
    sim.run()
    assert results == [{ok: "fine"}]


def test_all_of_first_failure_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def proc():
        try:
            yield sim.all_of([sim.timeout(1.0), ev, sim.timeout(9.0)])
        except ValueError as exc:
            caught.append((sim.now, str(exc)))

    sim.process(proc())
    sim.call_in(3.0, ev.fail, ValueError("phase exploded"))
    sim.run()
    # Fails at the child's failure time, without waiting for the slow child.
    assert caught == [(3.0, "phase exploded")]


def test_all_of_ignores_children_after_failure():
    sim = Simulator()
    bad1 = sim.event()
    bad2 = sim.event()
    caught = []

    def proc():
        try:
            yield sim.all_of([bad1, bad2, sim.timeout(5.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.call_in(1.0, bad1.fail, RuntimeError("first"))
    sim.call_in(2.0, bad2.fail, RuntimeError("second"))
    sim.run()  # the second failure must not re-trigger the combinator
    assert caught == ["first"]


def test_all_of_failure_then_completion_is_quiet():
    sim = Simulator()
    ev = sim.event()
    combo_holder = []

    def proc():
        combo = sim.all_of([ev, sim.timeout(1.0)])
        combo_holder.append(combo)
        try:
            yield combo
        except RuntimeError:
            pass

    sim.process(proc())
    sim.call_in(0.5, ev.fail, RuntimeError("early"))
    sim.run()  # the timeout still triggers at t=1 into the failed combinator
    assert combo_holder[0].triggered and not combo_holder[0].ok


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            trace.append("finished")
        except Interrupt as itr:
            trace.append(("interrupted", sim.now, itr.cause))

    proc = sim.process(sleeper())
    sim.call_in(3.0, proc.interrupt, "stop now")
    sim.run()
    assert trace == [("interrupted", 3.0, "stop now")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.call_in(5.0, proc.interrupt)
    sim.run()
    assert proc.triggered


def test_stale_timeout_after_interrupt_does_not_double_resume():
    sim = Simulator()
    wakeups = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            wakeups.append("timeout")
        except Interrupt:
            wakeups.append("interrupt")
            yield sim.timeout(50.0)
            wakeups.append("second sleep done")

    proc = sim.process(sleeper())
    sim.call_in(2.0, proc.interrupt)
    sim.run()
    # the original 10s timeout must NOT wake the process a second time
    assert wakeups == ["interrupt", "second sleep done"]
    assert sim.now == 52.0


def test_unhandled_interrupt_kills_process():
    sim = Simulator()

    def stubborn():
        yield sim.timeout(10.0)

    proc = sim.process(stubborn())
    sim.call_in(1.0, proc.interrupt)
    sim.run()
    assert proc.triggered
    assert not proc.alive


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 123

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_resource_serializes_access():
    sim = Simulator()
    res = sim.resource(capacity=1)
    spans = []

    def user(name, hold):
        req = res.request()
        yield req
        start = sim.now
        yield sim.timeout(hold)
        res.release(req)
        spans.append((name, start, sim.now))

    sim.process(user("a", 5.0))
    sim.process(user("b", 3.0))
    sim.run()
    assert spans == [("a", 0.0, 5.0), ("b", 5.0, 8.0)]


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    res = sim.resource(capacity=2)
    done = []

    def user(name):
        req = res.request()
        yield req
        yield sim.timeout(4.0)
        res.release(req)
        done.append((name, sim.now))

    for name in "abc":
        sim.process(user(name))
    sim.run()
    assert done == [("a", 4.0), ("b", 4.0), ("c", 8.0)]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = sim.resource(capacity=1)
    with pytest.raises(SimulationError):
        res.release(sim.event())  # never requested, holds no slot
    # a queued-but-not-granted request cannot be released either
    res.request()
    queued = res.request()
    with pytest.raises(SimulationError):
        res.release(queued)


def test_resource_cancel_after_release_is_noop():
    # Regression: cancel() used to call release() for any triggered
    # request, so cancelling a request whose holder already released
    # handed out a phantom slot and permanently inflated capacity.
    sim = Simulator()
    res = sim.resource(capacity=1)
    req = res.request()
    assert res.in_use == 1
    res.release(req)
    assert res.in_use == 0
    res.cancel(req)  # holder already gave the slot back: must be a no-op
    assert res.in_use == 0
    assert res.available == 1
    # capacity is not inflated: two holders still serialize
    a, b = res.request(), res.request()
    assert a.triggered and not b.triggered


def test_resource_cancel_is_idempotent():
    sim = Simulator()
    res = sim.resource(capacity=1)
    req = res.request()
    res.cancel(req)
    res.cancel(req)
    assert res.in_use == 0 and res.available == 1


def test_resource_double_release_with_request_raises():
    sim = Simulator()
    res = sim.resource(capacity=2)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)
    # and releasing a cancelled request is equally loud
    other = res.request()
    res.cancel(other)
    with pytest.raises(SimulationError):
        res.release(other)


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = sim.resource(capacity=1)
    holder = res.request()
    queued = res.request()
    assert res.queue_length == 1
    res.cancel(queued)  # just un-queues; the slot is untouched
    assert res.queue_length == 0
    assert res.in_use == 1
    res.release(holder)
    assert res.available == 1


def test_resource_cancel_granted_hands_slot_to_waiter():
    sim = Simulator()
    res = sim.resource(capacity=1)
    holder = res.request()
    waiter = res.request()
    res.cancel(holder)  # granted but unused: slot goes to the waiter
    sim.run()
    assert waiter.triggered
    assert res.in_use == 1


def test_resource_counters():
    sim = Simulator()
    res = sim.resource(capacity=2)
    first = res.request()
    assert res.available == 1
    res.request()
    assert res.available == 0
    res.request()  # queued
    assert res.queue_length == 1
    res.release(first)
    sim.run()
    assert res.queue_length == 0
    assert res.available == 0


def test_many_processes_complete():
    sim = Simulator()
    count = []

    def proc(i):
        yield sim.timeout(float(i % 17))
        count.append(i)

    for i in range(500):
        sim.process(proc(i))
    sim.run()
    assert len(count) == 500


# -- timeout fast path & lazy cancellation ------------------------------------


def test_fast_path_preserves_order_with_same_time_callbacks():
    # A process waiting on a timeout and a call_in callback landing at the
    # same instant: the callback was scheduled *after* the timeout, but the
    # process resume consumes a fresh (time, seq) slot at fire time, so the
    # callback must still run first — exactly as the pre-fast-path kernel
    # ordered it.
    sim = Simulator()
    order = []

    def sleeper():
        yield sim.timeout(5.0)
        order.append("process")

    sim.process(sleeper())
    sim.call_in(5.0, order.append, "callback")
    sim.run()
    assert order == ["callback", "process"]


def test_fast_path_resumes_processes_in_creation_order():
    sim = Simulator()
    order = []

    def sleeper(name):
        yield sim.timeout(2.0)
        order.append(name)

    for name in "abc":
        sim.process(sleeper(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_timeout_with_external_callback_and_waiter_keeps_order():
    # Registration order must survive the fast path being demoted: the
    # process fast-registers first (at t=0), the external callback arrives
    # at t=1 and demotes the registration — the process must still resume
    # before the callback runs, exactly as the generic path ordered it.
    sim = Simulator()
    order = []

    def waiter(t):
        got = yield t
        order.append(("process", got))

    t = sim.timeout(3.0, "val")
    sim.process(waiter(t))
    sim.call_in(1.0, t.add_callback,
                lambda ev: order.append(("callback", ev.value)))
    sim.run()
    assert order == [("process", "val"), ("callback", "val")]


def test_timeout_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    t = sim.timeout(10.0, "x")
    t.add_callback(lambda ev: fired.append(ev.value))
    t.cancel()
    sim.run()
    assert fired == []
    assert not t.triggered


def test_timeout_cancel_after_fire_is_noop():
    sim = Simulator()
    t = sim.timeout(1.0, "x")
    sim.run()
    assert t.triggered
    t.cancel()  # must not raise or corrupt anything
    sim.call_in(1.0, lambda: None)
    sim.run()


def test_timeout_cancel_while_process_waits_is_loud():
    sim = Simulator()

    def sleeper(holder):
        holder.append(sim.timeout(10.0))
        yield holder[0]

    holder = []
    sim.process(sleeper(holder))
    sim.run(until=1.0)  # let the process register on the timeout
    with pytest.raises(SimulationError):
        holder[0].cancel()


def test_interrupt_lazily_cancels_pending_timeout():
    # An interrupted hour-long sleep must not leave its heap entry behind:
    # the simulation ends at the interrupt, not at the dead timer.
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(3600.0)
        except Interrupt:
            pass

    proc = sim.process(sleeper())
    sim.call_in(2.0, proc.interrupt)
    end = sim.run()
    assert end == 2.0  # pre-cancellation kernels dragged this to 3600


def test_cancelled_watchdogs_do_not_accumulate_in_heap():
    # The CI-server pattern: fast work raced against a long watchdog which
    # is cancelled each round.  Lazy cancellation + compaction must keep
    # the heap flat instead of hoarding one dead timer per round.
    sim = Simulator()

    def loop():
        for _ in range(500):
            work = sim.timeout(1.0, "done")
            watchdog = sim.timeout(10_000.0, "timeout")
            got = yield sim.any_of([work, watchdog])
            assert "done" in got.values()
            watchdog.cancel()

    sim.process(loop())
    peak = 0

    def probe():
        nonlocal peak
        peak = max(peak, len(sim._heap))
        if sim.now < 499.0:
            sim.call_in(7.0, probe)

    sim.call_in(3.0, probe)
    sim.run()
    # every watchdog was cancelled: the run ends when the real work does,
    # instead of coasting to the last dead timer's fire time
    assert sim.now == 500.0
    assert peak < 128


def test_cancelled_and_live_timeouts_interleave_correctly():
    sim = Simulator()
    seen = []
    keep = [sim.timeout(float(i), i) for i in range(1, 11)]
    drop = [sim.timeout(float(i) + 0.5, -i) for i in range(1, 11)]
    for t in keep:
        t.add_callback(lambda ev: seen.append(ev.value))
    for t in drop:
        t.add_callback(lambda ev: seen.append(ev.value))
        t.cancel()
    sim.run()
    assert seen == list(range(1, 11))


def test_peek_sees_instant_queue():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("now")  # schedules the (empty) callback delivery instantly
    ev.add_callback(lambda e: None)
    assert sim.peek() == sim.now
    sim.run()
    assert sim.peek() == float("inf")


def test_step_drains_instant_entries_before_advancing():
    sim = Simulator()
    order = []
    sim.call_in(0.0, order.append, "instant")
    sim.call_in(1.0, order.append, "future")
    assert sim.step()
    assert order == ["instant"]
    assert sim.now == 0.0
    assert sim.step()
    assert order == ["instant", "future"]
    assert sim.now == 1.0


def test_zero_delay_timeout_still_fires():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(0.0)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [0.0]


def test_interrupt_between_fire_and_resume_wins():
    # The timeout fires and the interrupt lands in the same instant, after
    # the fire: the queued resume is stale and the interrupt must win.
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(1.0)
            trace.append("timeout")
        except Interrupt:
            trace.append("interrupt")

    proc = sim.process(sleeper())

    def fire_interrupt():
        # runs at t=1.0 *before* the timeout's queued resume drains
        proc.interrupt()

    sim.call_in(1.0, fire_interrupt)
    sim.run()
    assert trace == ["interrupt"]


def test_cancel_zero_delay_timeout_prevents_fire():
    sim = Simulator()
    fired = []
    t = sim.timeout(0.0, "x")
    t.add_callback(lambda ev: fired.append(ev.value))
    t.cancel()
    sim.run()
    assert fired == []
    assert not t.triggered


def test_waiting_on_cancelled_timeout_is_loud():
    sim = Simulator()
    t = sim.timeout(10.0)
    t.cancel()
    with pytest.raises(SimulationError):
        t.add_callback(lambda ev: None)


def test_rewaiting_timeout_killed_by_interrupt_is_loud():
    # Interrupting a fast-waiting process retires its timeout; a second
    # process trying to wait on that timeout later must fail loudly
    # instead of sleeping forever on a fire that will never come.
    sim = Simulator()

    def first(t):
        try:
            yield t
        except Interrupt:
            pass

    def second(t):
        yield t

    t = sim.timeout(10.0)
    proc = sim.process(first(t))
    sim.call_in(1.0, proc.interrupt)

    def late_wait():
        sim.process(second(t))

    sim.call_in(2.0, late_wait)
    with pytest.raises(SimulationError):
        sim.run()
