"""Round-trip and semantics tests for the description schema."""

import pytest

from repro.testbed import (
    BiosSettings,
    NodeDescription,
    TestbedDescription,
)


def test_node_doc_round_trip(testbed):
    node = testbed.node("grimoire-3")
    doc = node.to_doc()
    assert NodeDescription.from_doc(doc) == node


def test_node_doc_round_trip_without_optionals(testbed):
    node = testbed.node("sagittaire-1")  # no IB, no GPU
    assert node.infiniband is None and node.gpu is None
    assert NodeDescription.from_doc(node.to_doc()) == node


def test_testbed_doc_round_trip(testbed):
    doc = testbed.to_doc()
    rebuilt = TestbedDescription.from_doc(doc)
    assert rebuilt.to_doc() == doc
    assert rebuilt.node_count == testbed.node_count
    assert rebuilt.total_cores == testbed.total_cores


def test_doc_is_json_serializable(testbed):
    import json

    text = json.dumps(testbed.node("paravance-1").to_doc())
    assert "paravance-1" in text


def test_with_bios_returns_new_object(testbed):
    node = testbed.node("grisou-1")
    changed = node.with_bios(BiosSettings(hyperthreading=True))
    assert changed is not node
    assert changed.bios.hyperthreading
    assert not node.bios.hyperthreading  # original untouched


def test_primary_nic_and_10g(testbed):
    grimoire = testbed.node("grimoire-1")
    assert grimoire.primary_nic.device == "eth0"
    assert grimoire.has_10g
    azur = testbed.node("azur-1")
    assert not azur.has_10g


def test_replace_node_updates_in_place(fresh_testbed):
    node = fresh_testbed.node("grisou-5")
    updated = node.with_bios(BiosSettings(turbo_boost=True))
    fresh_testbed.replace_node(updated)
    assert fresh_testbed.node("grisou-5").bios.turbo_boost


def test_replace_unknown_node_raises(fresh_testbed):
    node = fresh_testbed.node("grisou-5")
    import dataclasses

    ghost = dataclasses.replace(node, uid="grisou-999")
    with pytest.raises(KeyError):
        fresh_testbed.replace_node(ghost)


def test_cluster_aggregates(testbed):
    cluster = testbed.cluster("graphene")
    assert cluster.node_count == 90
    assert cluster.total_cores == 90 * 4
    assert cluster.has_infiniband
    assert not cluster.has_gpu
    assert not cluster.is_dell


def test_site_aggregates(testbed):
    nancy = testbed.site("nancy")
    assert len(nancy.clusters) == 6
    assert nancy.node_count == sum(c.node_count for c in nancy.clusters)


def test_disk_spec_cache_defaults(testbed):
    for disk in testbed.node("parasilo-1").disks:
        assert disk.write_cache and disk.read_ahead


def test_bios_defaults_are_reproducible_profile():
    bios = BiosSettings()
    assert not bios.c_states
    assert not bios.hyperthreading
    assert not bios.turbo_boost
    assert bios.power_profile == "performance"
