#!/usr/bin/env python
"""External-scheduler policies on a contended testbed (slides 16-17).

Compares, over two simulated weeks on a busy testbed:

* the paper's scheduler (availability check first, exponential backoff);
* a naive variant that triggers blindly (burns Jenkins workers on
  UNSTABLE builds);
* the per-node alternative of slide 23's open question.

Run:  python examples/scheduler_policies.py
"""

from repro.checksuite import family_by_name
from repro.core import build_framework
from repro.oar import WorkloadConfig
from repro.scheduling import SchedulerPolicy
from repro.testbed import CLUSTER_SPECS
from repro.util import WEEK

CLUSTERS = ("grisou", "grimoire", "graoully", "paravance", "parasilo")
FAMILIES = ("multireboot", "refapi")


def run(label: str, policy: SchedulerPolicy, pernode: bool = False) -> None:
    specs = [s for s in CLUSTER_SPECS if s.name in CLUSTERS]
    fw = build_framework(
        seed=5,
        specs=specs,
        families=[family_by_name(n) for n in FAMILIES],
        policy=policy,
        pernode=pernode,
        workload_config=WorkloadConfig(target_utilization=0.7),
    )
    fw.start(faults=False)
    fw.run_until(2 * WEEK)
    records = fw.history.records
    unstable = sum(1 for r in records if r.status == "UNSTABLE")
    hardware = [r for r in records if r.family.startswith("multireboot")]
    print(f"{label:<28} builds={len(records):>4}  unstable={unstable:>3}  "
          f"hardware-runs={len(hardware):>3}")


def main() -> None:
    print("two weeks on a 70%-utilized testbed:\n")
    run("paper scheduler", SchedulerPolicy())
    run("no availability check",
        SchedulerPolicy(check_resources_first=False, max_concurrent_per_site=4))
    run("per-node scheduling", SchedulerPolicy(), pernode=True)
    print("\nthe paper scheduler avoids wasted (UNSTABLE) builds; per-node")
    print("scheduling runs hardware tests far more often, one node at a time.")


if __name__ == "__main__":
    main()
