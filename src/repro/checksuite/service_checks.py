"""Service-facing families: oarstate, cmdline, sidapi.

Slide 21: "Testbed status (oarstate)" and "Basic functionality of
command-line tools, REST API (cmdline, sidapi)".
"""

from __future__ import annotations

from typing import Any

from ..faults.catalog import FaultKind
from .base import CheckContext, CheckFamily, Finding

__all__ = ["OarStateCheck", "CmdlineCheck", "SidApiCheck"]


class OarStateCheck(CheckFamily):
    """Per-site sweep of OAR node states: report Suspected nodes."""

    name = "oarstate"
    kind = "software"
    walltime_s = 600.0

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"site": s.uid} for s in testbed.sites]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        yield ctx.sim.timeout(20.0)  # oarnodes query
        for cluster in ctx.testbed.site(config["site"]).clusters:
            for node in cluster.nodes:
                state = ctx.oar.node_state(node.uid)
                if state == "Suspected":
                    outcome.findings.append(Finding(
                        FaultKind.RANDOM_REBOOTS, node.uid,
                        "node is Suspected (crashed and not recovered)"))
        outcome.passed = not outcome.findings
        return outcome


class CmdlineCheck(CheckFamily):
    """Run the user-facing command-line tools a few times per site."""

    name = "cmdline"
    kind = "software"
    walltime_s = 600.0
    invocations = 5

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"site": s.uid} for s in testbed.sites]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        site = config["site"]
        rng = ctx.rng(self.name)
        failures = 0
        for i in range(self.invocations):
            yield ctx.sim.timeout(15.0)
            if not ctx.services.cmdline_ok(site, float(rng.random())):
                failures += 1
                outcome.note(f"invocation {i + 1} failed")
        if failures >= 2:
            outcome.findings.append(Finding(
                FaultKind.CMDLINE_BROKEN, site,
                f"{failures}/{self.invocations} tool invocations failed"))
        outcome.passed = not outcome.findings
        return outcome


class SidApiCheck(CheckFamily):
    """Exercise the per-site REST API with a burst of calls."""

    name = "sidapi"
    kind = "software"
    walltime_s = 600.0
    calls = 10

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"site": s.uid} for s in testbed.sites]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        site = config["site"]
        rng = ctx.rng(self.name)
        failures = 0
        for i in range(self.calls):
            yield ctx.sim.timeout(3.0)
            if not ctx.services.api_ok(site, float(rng.random())):
                failures += 1
                outcome.note(f"API call {i + 1} returned 5xx")
        if failures >= 2:
            outcome.findings.append(Finding(
                FaultKind.API_FLAKY, site,
                f"{failures}/{self.calls} REST API calls failed"))
        outcome.passed = not outcome.findings
        return outcome
