"""OAR job objects and lifecycle states."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..util.events import Event
from .request import JobRequest

__all__ = ["JobState", "Job"]


class JobState(enum.Enum):
    WAITING = "Waiting"  # submitted, no reservation yet
    SCHEDULED = "Scheduled"  # has a (possibly future) reservation
    RUNNING = "Running"
    TERMINATED = "Terminated"
    ERROR = "Error"
    CANCELLED = "Cancelled"  # immediate job that could not start at once


@dataclass(eq=False)
class Job:
    """One OAR job.

    ``auto_duration`` is how long the workload actually runs (user jobs
    finish before their walltime); ``None`` means the job runs until the
    holder calls :meth:`repro.oar.server.OarServer.release` or the walltime
    kill fires (test jobs are driven this way).
    """

    job_id: int
    user: str
    request: JobRequest
    submitted_at: float
    immediate: bool = False
    auto_duration: Optional[float] = None
    state: JobState = JobState.WAITING
    scheduled_start: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Node uids per request part, filled when scheduled.
    assignment: tuple[tuple[str, ...], ...] = ()
    killed_by_walltime: bool = False
    #: Triggered when the job actually starts (value: the job).
    started_event: Optional[Event] = None
    #: Triggered when the job ends in any way (value: the job).
    done_event: Optional[Event] = None
    #: Monotonic generation counter guarding stale timer callbacks.
    generation: int = field(default=0)

    @property
    def assigned_nodes(self) -> list[str]:
        return [uid for part in self.assignment for uid in part]

    @property
    def walltime_s(self) -> float:
        return self.request.walltime_s

    @property
    def wait_time_s(self) -> Optional[float]:
        return None if self.started_at is None else self.started_at - self.submitted_at

    @property
    def run_time_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def finished(self) -> bool:
        return self.state in (JobState.TERMINATED, JobState.ERROR, JobState.CANCELLED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.state.value} {self.request}>"
