"""``repro-campaign``: run named scenario presets from the shell.

Examples::

    repro-campaign --list
    repro-campaign tiny-smoke
    repro-campaign paper-baseline --months 1
    repro-campaign tiny-smoke flaky-services --seeds 0,1,2,3 --workers 4
    repro-campaign tiny-smoke --json > report.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from . import scenarios
from .core.batch import run_campaigns, summarize_runs

__all__ = ["main"]


def _parse_seeds(text: str) -> list[int]:
    """Comma-separated seed list: '0,1,2' -> [0, 1, 2]."""
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be a comma-separated integer list, got {text!r}")
    if not seeds:
        raise argparse.ArgumentTypeError("empty seed list")
    return seeds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run closed-loop testbed campaigns from named scenario "
                    "presets (see --list).",
    )
    parser.add_argument("scenario", nargs="*", default=["tiny-smoke"],
                        help="preset name(s); default: tiny-smoke")
    parser.add_argument("--seeds", type=_parse_seeds, default=[0],
                        metavar="a,b,c",
                        help="comma-separated seed list (default: 0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: min(jobs, cpus))")
    parser.add_argument("--months", type=float, default=None,
                        help="override every scenario's horizon")
    parser.add_argument("--json", action="store_true",
                        help="emit the full reports as JSON on stdout")
    parser.add_argument("--list", action="store_true", dest="list_presets",
                        help="list available presets and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_presets:
        for spec in scenarios.all_presets():
            print(f"{spec.name:<18} {spec.description}")
        return 0
    try:
        runs = run_campaigns(args.scenario, seeds=args.seeds,
                             workers=args.workers, months=args.months)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([dataclasses.asdict(r.report) for r in runs],
                         sort_keys=True, indent=2))
        return 0
    for run in runs:
        print(run.report.summary())
        print()
    if len(runs) > 1:
        print("aggregate (mean ± 95% CI across seeds):")
        print(summarize_runs(runs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
