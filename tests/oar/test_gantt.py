"""Tests for the Gantt reservation timeline (unit + property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oar import Gantt, NodeTimeline, Reservation
from repro.util import SchedulingError


def test_empty_timeline_is_free():
    tl = NodeTimeline()
    assert tl.is_free(0.0, 100.0)


def test_reservation_blocks_interval():
    tl = NodeTimeline()
    tl.add(Reservation(10.0, 20.0, 1))
    assert not tl.is_free(10.0, 20.0)
    assert not tl.is_free(15.0, 16.0)
    assert not tl.is_free(5.0, 11.0)
    assert not tl.is_free(19.0, 30.0)


def test_adjacent_intervals_are_free():
    tl = NodeTimeline()
    tl.add(Reservation(10.0, 20.0, 1))
    assert tl.is_free(0.0, 10.0)
    assert tl.is_free(20.0, 30.0)


def test_overlapping_add_raises():
    tl = NodeTimeline()
    tl.add(Reservation(10.0, 20.0, 1))
    with pytest.raises(SchedulingError):
        tl.add(Reservation(15.0, 25.0, 2))


def test_empty_interval_rejected():
    tl = NodeTimeline()
    with pytest.raises(SchedulingError):
        tl.is_free(5.0, 5.0)


def test_remove_job():
    tl = NodeTimeline()
    tl.add(Reservation(0.0, 10.0, 1))
    tl.add(Reservation(10.0, 20.0, 2))
    assert tl.remove_job(1) == 1
    assert tl.is_free(0.0, 10.0)
    assert not tl.is_free(10.0, 20.0)


def test_truncate_job_frees_tail():
    tl = NodeTimeline()
    tl.add(Reservation(0.0, 100.0, 1))
    tl.truncate_job(1, 30.0)
    assert tl.is_free(30.0, 100.0)
    assert not tl.is_free(0.0, 30.0)


def test_truncate_at_or_before_start_drops_reservation():
    # Regression: a job released at/before its scheduled start used to
    # leave a zero-length [start, start) residue whose stale entry in
    # _starts distorted release_points/candidate_starts until purge.
    tl = NodeTimeline()
    tl.add(Reservation(50.0, 100.0, 7))
    tl.truncate_job(7, 50.0)  # released exactly at start
    assert len(tl) == 0
    assert tl.is_free(0.0, 200.0)
    assert tl.release_points(0.0) == []

    tl.add(Reservation(50.0, 100.0, 8))
    tl.truncate_job(8, 10.0)  # released before start
    assert len(tl) == 0
    assert tl.release_points(0.0) == []
    # the slot is genuinely reusable
    tl.add(Reservation(50.0, 100.0, 9))
    assert not tl.is_free(50.0, 100.0)


def test_truncate_keeps_other_jobs_intact():
    tl = NodeTimeline()
    tl.add(Reservation(0.0, 10.0, 1))
    tl.add(Reservation(10.0, 20.0, 2))
    tl.truncate_job(1, 0.0)  # drops job 1 entirely
    assert tl.release_points(0.0) == [20.0]
    assert [r.job_id for r in tl] == [2]


def test_busy_until():
    tl = NodeTimeline()
    tl.add(Reservation(10.0, 20.0, 1))
    assert tl.busy_until(15.0) == 20.0
    assert tl.busy_until(5.0) == 5.0
    assert tl.busy_until(20.0) == 20.0  # end is exclusive


def test_release_points():
    tl = NodeTimeline()
    tl.add(Reservation(0.0, 10.0, 1))
    tl.add(Reservation(10.0, 25.0, 2))
    assert tl.release_points(after=0.0) == [10.0, 25.0]
    assert tl.release_points(after=10.0) == [25.0]


def test_purge_before():
    tl = NodeTimeline()
    tl.add(Reservation(0.0, 10.0, 1))
    tl.add(Reservation(50.0, 60.0, 2))
    tl.purge_before(20.0)
    assert len(tl) == 1
    assert tl.is_free(0.0, 10.0)


def test_gantt_reserve_and_release():
    g = Gantt(["a", "b", "c"])
    g.reserve(["a", "b"], 0.0, 10.0, job_id=1)
    assert g.free_nodes(["a", "b", "c"], 0.0, 10.0) == ["c"]
    g.release(["a", "b"], job_id=1)
    assert g.free_nodes(["a", "b", "c"], 0.0, 10.0) == ["a", "b", "c"]


def test_gantt_reserve_rolls_back_on_conflict():
    g = Gantt(["a", "b"])
    g.reserve(["b"], 0.0, 10.0, job_id=1)
    with pytest.raises(SchedulingError):
        g.reserve(["a", "b"], 5.0, 15.0, job_id=2)
    # "a" must not be left half-reserved by job 2
    assert g.is_free("a", 0.0, 100.0)


def test_gantt_candidate_starts():
    g = Gantt(["a", "b"])
    g.reserve(["a"], 0.0, 10.0, job_id=1)
    g.reserve(["b"], 5.0, 12.0, job_id=2)
    assert g.candidate_starts(["a", "b"], after=0.0) == [0.0, 10.0, 12.0]


# -- property-based invariants -------------------------------------------------

_intervals = st.lists(
    st.tuples(st.floats(0, 1000, allow_nan=False), st.floats(1, 100, allow_nan=False)),
    min_size=1,
    max_size=30,
)


@given(_intervals)
def test_timeline_never_overlaps(raw):
    """Whatever insertion order, accepted reservations never overlap."""
    tl = NodeTimeline()
    accepted = []
    for i, (start, length) in enumerate(raw):
        end = start + length
        try:
            tl.add(Reservation(start, end, i))
            accepted.append((start, end))
        except SchedulingError:
            pass
    accepted.sort()
    for (s1, e1), (s2, e2) in zip(accepted, accepted[1:]):
        assert e1 <= s2


@given(_intervals)
def test_is_free_consistent_with_add(raw):
    """is_free(x) == add(x) succeeds — checked by trying both."""
    tl = NodeTimeline()
    for i, (start, length) in enumerate(raw):
        end = start + length
        free = tl.is_free(start, end)
        try:
            tl.add(Reservation(start, end, i))
            added = True
        except SchedulingError:
            added = False
        assert free == added


@given(_intervals, st.floats(0, 1200, allow_nan=False))
def test_remove_restores_freedom(raw, probe):
    tl = NodeTimeline()
    for i, (start, length) in enumerate(raw):
        try:
            tl.add(Reservation(start, start + length, i))
        except SchedulingError:
            pass
    for i in range(len(raw)):
        tl.remove_job(i)
    assert tl.is_free(probe, probe + 1.0)


# -- next_fit ------------------------------------------------------------------


def test_next_fit_on_empty_timeline_is_after():
    assert NodeTimeline().next_fit(5.0, 10.0) == 5.0


def test_next_fit_skips_covering_and_dense_reservations():
    tl = NodeTimeline()
    tl.add(Reservation(0.0, 10.0, 1))
    tl.add(Reservation(12.0, 20.0, 2))   # 2-wide gap, too small for 5
    tl.add(Reservation(26.0, 30.0, 3))   # 6-wide gap, fits 5
    assert tl.next_fit(5.0, 5.0) == 20.0
    assert tl.next_fit(5.0, 2.0) == 10.0  # the small gap fits 2
    assert tl.next_fit(5.0, 7.0) == 30.0  # only the unbounded tail fits 7
    assert tl.next_fit(21.0, 5.0) == 21.0


def test_next_fit_agrees_with_free_intervals():
    tl = NodeTimeline()
    for start, end, jid in ((3.0, 7.0, 1), (9.0, 14.0, 2), (20.0, 21.0, 3)):
        tl.add(Reservation(start, end, jid))
    for after in (0.0, 3.0, 6.5, 8.0, 15.0, 30.0):
        for duration in (0.5, 2.0, 10.0):
            want = min(s for s, e in tl.free_intervals(after)
                       if e - s >= duration)
            assert tl.next_fit(after, duration) == want, (after, duration)


def test_free_intervals_ignores_ancient_history():
    tl = NodeTimeline()
    for i in range(10):
        tl.add(Reservation(i * 10.0, i * 10.0 + 5.0, i + 1))
    assert tl.free_intervals(73.0) == [(75.0, 80.0), (85.0, 90.0),
                                       (95.0, float("inf"))]
    # `after` inside a reservation: the window opens at its end
    assert tl.free_intervals(91.0) == [(95.0, float("inf"))]


# -- hinted removal ------------------------------------------------------------


def test_remove_job_with_start_hint():
    tl = NodeTimeline()
    tl.add(Reservation(0.0, 5.0, 1))
    tl.add(Reservation(10.0, 15.0, 2))
    tl.add(Reservation(20.0, 25.0, 3))
    assert tl.remove_job(2, start=10.0) == 1
    assert [r.job_id for r in tl] == [1, 3]
    assert tl.is_free(10.0, 15.0)


def test_remove_job_with_stale_hint_falls_back_to_scan():
    tl = NodeTimeline()
    tl.add(Reservation(10.0, 15.0, 2))
    # wrong hint (e.g. caller's bookkeeping drifted): still removed
    assert tl.remove_job(2, start=11.0) == 1
    assert len(tl) == 0
    # missing job: both forms report 0
    assert tl.remove_job(9, start=3.0) == 0
    assert tl.remove_job(9) == 0


def test_gantt_release_with_hint_matches_plain_release():
    g1, g2 = Gantt(["a", "b"]), Gantt(["a", "b"])
    for g in (g1, g2):
        g.reserve(["a", "b"], 10.0, 20.0, 1)
        g.reserve(["a"], 30.0, 40.0, 2)
    g1.release(["a", "b"], 1, start=10.0)
    g2.release(["a", "b"], 1)
    for uid in ("a", "b"):
        assert list(g1.timeline(uid)) == list(g2.timeline(uid))


# -- profile invalidation under stale hints ------------------------------------
#
# Regression: Gantt.release once invalidated the availability profile from
# the caller's ``start`` hint.  A stale hint (the reservation had been
# truncated, or the job never landed on that node) then freed the wrong
# window in the profile while the scan fallback removed the real one from
# the timeline — the two sources of truth disagreed until the next rebuild.
# The fix invalidates from the intervals ``pop_job`` actually removed.


def _profile_agrees_with_timelines(g, probes):
    """Every profile answer must match the timeline-scan answer."""
    uids = sorted(g._timelines)
    mask = g.mask_for(uids)
    for start, end in probes:
        want = g.free_nodes(uids, start, end)
        assert g.free_uids(mask, start, end) == want, (start, end)


_PROBES = [(0.0, 5.0), (5.0, 15.0), (10.0, 20.0), (12.0, 28.0),
           (20.0, 30.0), (30.0, 40.0), (0.0, 100.0)]


def test_gantt_release_with_stale_hint_frees_actual_interval():
    g = Gantt(["a", "b"])
    g.reserve(["a", "b"], 10.0, 20.0, 1)
    g.reserve(["a"], 30.0, 40.0, 2)
    # Hint points nowhere (bookkeeping drift): scan fallback removes the
    # real [10, 20) entries and the profile must free exactly that window.
    g.release(["a", "b"], 1, start=12.0)
    assert g.is_free("a", 10.0, 20.0) and g.is_free("b", 10.0, 20.0)
    assert not g.is_free("a", 30.0, 40.0)
    _profile_agrees_with_timelines(g, _PROBES)


def test_gantt_truncate_then_hinted_release_keeps_profile_consistent():
    g = Gantt(["a", "b"])
    g.reserve(["a", "b"], 10.0, 30.0, 1)
    # Early release shortens the reservation to [10, 15)...
    g.truncate(["a", "b"], 1, end=15.0)
    # ...so the original-start hint now names a different interval than
    # the caller believes; only [10, 15) may be freed, and it is.
    g.release(["a", "b"], 1, start=10.0)
    _profile_agrees_with_timelines(g, _PROBES)
    g.reserve(["a"], 10.0, 30.0, 3)  # the slot is genuinely reusable
    _profile_agrees_with_timelines(g, _PROBES)


def test_gantt_truncate_at_start_drops_reservation_in_profile():
    g = Gantt(["a"])
    g.reserve(["a"], 50.0, 100.0, 7)
    g.truncate(["a"], 7, end=50.0)  # released at its scheduled start
    assert g.is_free("a", 0.0, 200.0)
    assert g.free_uids(g.mask_for(["a"]), 0.0, 200.0) == ["a"]
    # A hinted release of the already-dropped job must be a no-op.
    g.release(["a"], 7, start=50.0)
    _profile_agrees_with_timelines(g, [(0.0, 200.0), (50.0, 100.0)])
