"""Tests for the metric ring-buffer store."""

import numpy as np
import pytest

from repro.monitoring import MetricStore, RingBuffer
from repro.util import MonitoringError


def test_ring_append_and_last():
    ring = RingBuffer(4)
    ring.append(1.0, 10.0)
    ring.append(2.0, 20.0)
    assert len(ring) == 2
    assert ring.last() == (2.0, 20.0)


def test_ring_empty_last_raises():
    with pytest.raises(MonitoringError):
        RingBuffer(4).last()


def test_ring_wraps_and_keeps_latest():
    ring = RingBuffer(3)
    for i in range(10):
        ring.append(float(i), float(i * 100))
    assert len(ring) == 3
    t, v = ring.window(0.0, 100.0)
    assert list(t) == [7.0, 8.0, 9.0]
    assert list(v) == [700.0, 800.0, 900.0]


def test_ring_window_bounds():
    ring = RingBuffer(10)
    for i in range(5):
        ring.append(float(i), float(i))
    t, _ = ring.window(1.0, 3.0)  # [from, to)
    assert list(t) == [1.0, 2.0]


def test_ring_capacity_validation():
    with pytest.raises(MonitoringError):
        RingBuffer(0)


def test_store_record_and_stats():
    store = MetricStore()
    for i in range(10):
        store.record("node.power_w", float(i), 100.0 + i)
    stats = store.stats("node.power_w", 0.0, 10.0)
    assert stats.count == 10
    assert stats.mean == pytest.approx(104.5)
    assert stats.minimum == 100.0
    assert stats.maximum == 109.0


def test_store_stats_empty_window():
    store = MetricStore()
    store.record("s", 0.0, 1.0)
    stats = store.stats("s", 100.0, 200.0)
    assert stats.count == 0
    assert np.isnan(stats.mean)


def test_store_unknown_series_raises():
    with pytest.raises(MonitoringError):
        MetricStore().last("ghost")


def test_store_series_names_and_has():
    store = MetricStore()
    store.record("b", 0.0, 1.0)
    store.record("a", 0.0, 1.0)
    assert store.series_names() == ["a", "b"]
    assert store.has_series("a") and not store.has_series("c")


def test_store_bounded_memory():
    store = MetricStore(capacity_per_series=16)
    for i in range(10_000):
        store.record("s", float(i), 0.0)
    t, _ = store.window("s", 0.0, 1e9)
    assert len(t) == 16
