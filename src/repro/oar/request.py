"""Parser for the ``oarsub -l`` resource-request mini-language.

Slide 7 shows the selection syntax users (and the testing framework) use::

    oarsub -l "cluster='a' and gpu='YES'/nodes=1+cluster='b' and
               eth10g='Y'/nodes=2,walltime=2"

A request is ``part ('+' part)* (',' 'walltime=' time)?`` where each part is
``[property_expression '/'] 'nodes=' (int | ALL)``.  Property expressions
support ``and``/``or``/``not``, parentheses, and the comparison operators
``= != < <= > >=`` over quoted strings and numbers.

The parser is a hand-written tokenizer + recursive-descent (precedence:
``or`` < ``and`` < ``not`` < comparison), producing an AST whose nodes
evaluate against a property dict and render back to canonical text
(``str(expr)`` re-parses to an equivalent AST — property-tested).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..util.errors import ParseError
from ..util.simclock import HOUR, MINUTE

__all__ = [
    "PropExpr",
    "Comparison",
    "BoolOp",
    "NotOp",
    "RequestPart",
    "JobRequest",
    "ALL_NODES",
    "parse_expression",
    "parse_request",
    "format_walltime",
]

#: Sentinel for ``nodes=ALL`` (hardware-centric tests take whole clusters).
ALL_NODES = "ALL"


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class PropExpr:
    """Base class for property-expression AST nodes."""

    def evaluate(self, props: dict[str, Any]) -> bool:  # pragma: no cover
        raise NotImplementedError


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(PropExpr):
    name: str
    op: str
    value: Union[str, int, float]

    def evaluate(self, props: dict[str, Any]) -> bool:
        if self.name not in props:
            return False
        actual = props[self.name]
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False  # comparing number with string -> no match

    def __str__(self) -> str:
        value = f"'{self.value}'" if isinstance(self.value, str) else str(self.value)
        return f"{self.name}{self.op}{value}"


@dataclass(frozen=True)
class BoolOp(PropExpr):
    op: str  # "and" | "or"
    left: PropExpr
    right: PropExpr

    def evaluate(self, props: dict[str, Any]) -> bool:
        if self.op == "and":
            return self.left.evaluate(props) and self.right.evaluate(props)
        return self.left.evaluate(props) or self.right.evaluate(props)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotOp(PropExpr):
    operand: PropExpr

    def evaluate(self, props: dict[str, Any]) -> bool:
        return not self.operand.evaluate(props)

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class RequestPart:
    """One resource group: ``expr/nodes=count``."""

    expr: Optional[PropExpr]
    count: Union[int, str]  # int or ALL_NODES

    def __str__(self) -> str:
        nodes = f"nodes={self.count}"
        return f"{self.expr}/{nodes}" if self.expr is not None else nodes


@dataclass(frozen=True)
class JobRequest:
    """A full ``-l`` argument: resource parts plus a walltime."""

    parts: tuple[RequestPart, ...]
    walltime_s: float

    def __str__(self) -> str:
        parts = "+".join(str(p) for p in self.parts)
        return f"{parts},walltime={format_walltime(self.walltime_s)}"


def format_walltime(seconds: float) -> str:
    total = int(round(seconds))
    h, rem = divmod(total, int(HOUR))
    m, s = divmod(rem, int(MINUTE))
    return f"{h}:{m:02d}:{s:02d}"


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<op><=|>=|!=|=|<|>)
      | (?P<punct>[()/+,:])
      | (?P<string>'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip() == "":
                break
            raise ParseError("unexpected character", text, pos)
        for kind in ("op", "punct", "string", "number", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start(kind)))
                break
        pos = match.end()
    return tokens


# ---------------------------------------------------------------------------
# Recursive-descent parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise ParseError(f"expected {text or kind}, got {tok.text!r}",
                             self.text, tok.pos)
        return tok

    def at_word(self, *words: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == "word" and tok.text.lower() in words

    def at_punct(self, *chars: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == "punct" and tok.text in chars

    # -- expression grammar ----------------------------------------------------

    def parse_or(self) -> PropExpr:
        left = self.parse_and()
        while self.at_word("or"):
            self.next()
            left = BoolOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> PropExpr:
        left = self.parse_not()
        while self.at_word("and"):
            self.next()
            left = BoolOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> PropExpr:
        if self.at_word("not"):
            self.next()
            return NotOp(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> PropExpr:
        if self.at_punct("("):
            self.next()
            expr = self.parse_or()
            self.expect("punct", ")")
            return expr
        name_tok = self.expect("word")
        op_tok = self.expect("op")
        value_tok = self.next()
        value: Union[str, int, float]
        if value_tok.kind == "string":
            value = value_tok.text[1:-1]
        elif value_tok.kind == "number":
            value = float(value_tok.text) if "." in value_tok.text else int(value_tok.text)
        else:
            raise ParseError(f"expected a value, got {value_tok.text!r}",
                             self.text, value_tok.pos)
        return Comparison(name_tok.text, op_tok.text, value)

    # -- request grammar ----------------------------------------------------------

    def parse_part(self) -> RequestPart:
        """``[expr /] nodes=count`` — needs lookahead because both branches
        start with a word."""
        # `nodes` is a reserved word: a part starting with it is the bare
        # `nodes=count` form, never a property comparison.
        if self.at_word("nodes"):
            self.next()
            self.expect("op", "=")
            return RequestPart(None, self._parse_count())
        expr = self.parse_or()
        self.expect("punct", "/")
        self.expect("word", "nodes")
        self.expect("op", "=")
        return RequestPart(expr, self._parse_count())

    def _parse_count(self) -> Union[int, str]:
        tok = self.next()
        if tok.kind == "number" and "." not in tok.text and int(tok.text) > 0:
            return int(tok.text)
        if tok.kind == "word" and tok.text.upper() == ALL_NODES:
            return ALL_NODES
        raise ParseError(f"invalid node count {tok.text!r}", self.text, tok.pos)

    def parse_request(self) -> JobRequest:
        parts = [self.parse_part()]
        while self.at_punct("+"):
            self.next()
            parts.append(self.parse_part())
        walltime_s = HOUR  # OAR's default walltime
        if self.at_punct(","):
            self.next()
            self.expect("word", "walltime")
            self.expect("op", "=")
            walltime_s = self._parse_time_value()
        tok = self.peek()
        if tok is not None:
            raise ParseError(f"trailing input {tok.text!r}", self.text, tok.pos)
        return JobRequest(tuple(parts), walltime_s)

    def _parse_time_value(self) -> float:
        """``H``, ``H:MM`` or ``H:MM:SS`` (also fractional hours ``1.5``)."""
        h = self.expect("number")
        if "." in h.text:
            return float(h.text) * HOUR
        seconds = int(h.text) * HOUR
        for unit in (MINUTE, 1):
            if not self.at_punct(":"):
                break
            self.next()
            tok = self.expect("number")
            seconds += int(tok.text) * unit
        return float(seconds)


def parse_expression(text: str) -> PropExpr:
    """Parse a bare property expression, e.g. ``"gpu='YES' and memnode>=64"``."""
    parser = _Parser(text)
    expr = parser.parse_or()
    tok = parser.peek()
    if tok is not None:
        raise ParseError(f"trailing input {tok.text!r}", text, tok.pos)
    return expr


def parse_request(text: str) -> JobRequest:
    """Parse a full ``-l`` request string.

    >>> req = parse_request("cluster='grisou'/nodes=2,walltime=2:30:00")
    >>> req.parts[0].count, req.walltime_s
    (2, 9000.0)
    """
    return _Parser(text).parse_request()
