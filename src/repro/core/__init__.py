"""The paper's contribution: the testing framework and campaign loop."""

from .batch import (
    CampaignRun,
    MetricSummary,
    aggregate_runs,
    run_campaigns,
    summarize_runs,
)
from .bugtracker import Bug, BugStatus, BugTracker, OperatorTeam
from .builder import (
    FrameworkBuild,
    FrameworkBuilder,
    SubsystemRegistry,
    SUBSYSTEM_ORDER,
    default_registry,
    register_subsystem,
)
from .campaign import CampaignConfig, CampaignReport, run_campaign, run_scenario
from .framework import TestingFramework, build_framework
from .store import CampaignStore, StoredCell, cell_hash, cell_key

__all__ = [
    "Bug",
    "BugStatus",
    "BugTracker",
    "OperatorTeam",
    "TestingFramework",
    "build_framework",
    "FrameworkBuild",
    "FrameworkBuilder",
    "SubsystemRegistry",
    "SUBSYSTEM_ORDER",
    "default_registry",
    "register_subsystem",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRun",
    "CampaignStore",
    "StoredCell",
    "cell_hash",
    "cell_key",
    "MetricSummary",
    "run_campaign",
    "run_scenario",
    "run_campaigns",
    "aggregate_runs",
    "summarize_runs",
]
