"""detlint: determinism & kernel-protocol static analysis.

The repo's headline guarantee is byte-for-byte determinism; this package
turns the coding rules behind that guarantee (no wall clocks, no stray
randomness, no unordered iteration in scheduling paths, kernel yield
protocol, no shared mutable dataclass defaults) into an enforceable CI
gate.  See ``repro-lint --list-rules`` for the catalogue.
"""

from .baseline import (apply_baseline, baseline_from_findings, load_baseline,
                       save_baseline)
from .engine import analyze_file, analyze_paths, analyze_source
from .findings import Finding
from .rules import RULES, Rule, RuleContext, register

__all__ = [
    "Finding",
    "Rule",
    "RuleContext",
    "RULES",
    "register",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "baseline_from_findings",
]
