"""The bundled reference client: the paper's policy over the wire.

This client speaks *only* the line protocol — it never imports simulator
internals, and its scheduling arithmetic is self-contained, so it doubles
as executable documentation for a client in any language.  It mirrors
:class:`~repro.scheduling.policies.DefaultStrategy` exactly:

* fetch the policy knobs once (``GETS policy``);
* for every ``TICK``, walk the ``JOBN`` cells **in presentation order**:
  skip hardware cells during peak hours, skip cells whose site already
  carries the concurrency cap (tick-start count from the JOBN line plus
  this round's own launches), ``DEFR`` cells whose resources do not fit,
  ``SCHD`` the rest (best fit is trivial here: the cell pins its target
  cluster/site, so fitting equals launching — the ds-sim client's
  first-fit-capable loop reduces to the availability test);
* ``REDY`` when the round is decided.

Following presentation order is the client half of the determinism
contract; the server half freezes simulated time during the round.  The
resulting report is byte-identical to an in-process run at the same seed
(``verify_hash`` checks the sha256 the server advertises).
"""

from __future__ import annotations

import hashlib
import json
import socket
from typing import Optional

from .protocol import MAX_LINE_BYTES, PROTOCOL_VERSION, Message, decode, encode

__all__ = ["ReferenceClient", "ClientError"]

_DAY = 86400.0
_HOUR = 3600.0
#: t=0 is Wednesday 2017-02-01 (mirrors repro.util.simclock).
_EPOCH_WEEKDAY = 2


def _is_peak_hours(t: float) -> bool:
    """Self-contained mirror of ``repro.util.simclock.is_peak_hours``."""
    dow = (int(t // _DAY) + _EPOCH_WEEKDAY) % 7
    hod = (t % _DAY) / _HOUR
    return dow < 5 and 9.0 <= hod < 19.0


class ClientError(Exception):
    """The server answered ERR (or broke protocol)."""


class _Job:
    """One JOBN line, parsed."""

    __slots__ = ("cell", "kind", "site", "cluster", "need", "site_inflight",
                 "alive", "free", "runs", "blocked")

    def __init__(self, args: tuple):
        (self.cell, self.kind, self.site, cluster, self.need,
         site_inflight, alive, free, runs, blocked) = args
        self.cluster = None if cluster == "-" else cluster
        self.site_inflight = int(site_inflight)
        self.alive = int(alive)
        self.free = int(free)
        self.runs = int(runs)
        self.blocked = int(blocked)

    def fits(self) -> bool:
        if self.need == "0":
            return True
        if self.need == "ALL":
            return self.alive > 0 and self.free == self.alive
        return self.free >= int(self.need)


class ReferenceClient:
    """Drive campaigns over a socket; context-manager friendly."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 name: str = "refclient", timeout_s: float = 300.0):
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        try:
            # Mirror the server: tiny lines must not sit in Nagle's buffer
            # waiting for the peer's delayed ACK.
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._rfile = self.sock.makefile("rb")
        self.policy: Optional[dict] = None
        self._send("HELO", PROTOCOL_VERSION, name)
        self._expect("OK")

    # -- wire plumbing ---------------------------------------------------------

    def _send(self, verb: str, *args: object) -> None:
        self.sock.sendall(encode(verb, *args).encode("utf-8") + b"\n")

    def _recv(self) -> Message:
        raw = self._rfile.readline(MAX_LINE_BYTES + 2)
        if not raw:
            raise ClientError("server closed the connection")
        return decode(raw.decode("utf-8").rstrip("\r\n"))

    def _expect(self, verb: str) -> Message:
        msg = self._recv()
        if msg.verb == "ERR":
            raise ClientError(" ".join(msg.args))
        if msg.verb != verb:
            raise ClientError(f"expected {verb}, got {msg.verb}")
        return msg

    def _read_data_block(self) -> list[str]:
        header = self._expect("DATA")
        count = int(header.args[0])
        lines = []
        for _ in range(count):
            raw = self._rfile.readline(MAX_LINE_BYTES + 2)
            if not raw:
                raise ClientError("EOF inside DATA block")
            lines.append(raw.decode("utf-8").rstrip("\r\n"))
        self._expect(".")
        return lines

    # -- the scheduling loop ---------------------------------------------------

    def run_scenario(self, scenario: str, seed: int = 0,
                     months: Optional[float] = None) -> dict:
        """Drive one campaign; returns ``{"sha256":…, "report":…, …}``."""
        self._send("RUN", scenario, seed,
                   repr(float(months)) if months is not None else "-")
        ticks = completions = 0
        while True:
            msg = self._recv()
            if msg.verb == "TICK":
                ticks += 1
                completions += self._round(msg)
            elif msg.verb == "DONE":
                break
            elif msg.verb == "ERR":
                raise ClientError(" ".join(msg.args))
            else:
                raise ClientError(f"unexpected {msg.verb} during run")
        sha, report = self.fetch_report()
        return {"scenario": scenario, "seed": seed, "months": months,
                "ticks": ticks, "completions": completions,
                "sha256": sha, "report": report}

    def _round(self, tick: Message) -> int:
        now = float(tick.args[0])
        n_jcpl, n_jobn = int(tick.args[1]), int(tick.args[2])
        for _ in range(n_jcpl):
            self._expect("JCPL")
        jobs = [_Job(self._expect("JOBN").args) for _ in range(n_jobn)]
        if self.policy is None:
            self._send("GETS", "policy")
            self.policy = json.loads(self._read_data_block()[0])
        launched: dict[str, int] = {}  # this round's own launches per site
        sent = 0
        for job in jobs:
            action = self._decide(now, job, launched)
            if action is not None:
                self._send(action, job.cell)
                sent += 1
        self._send("REDY")
        for _ in range(sent + 1):  # pipelined: one OK per decision + REDY's
            self._expect("OK")
        return n_jcpl

    def _decide(self, now: float, job: _Job,
                launched: dict) -> Optional[str]:
        """DefaultStrategy, reconstructed from wire data alone."""
        policy = self.policy
        if (job.kind == "hardware"
                and policy["avoid_peak_hours_for_hardware"]
                and _is_peak_hours(now)):
            return None  # calendar gate: retry next tick, no backoff
        if (job.site_inflight + launched.get(job.site, 0)
                >= policy["max_concurrent_per_site"]):
            return None
        if policy["check_resources_first"] and not job.fits():
            return "DEFR"
        launched[job.site] = launched.get(job.site, 0) + 1
        return "SCHD"

    # -- results + campaigns ---------------------------------------------------

    def fetch_report(self) -> tuple[str, dict]:
        """RPRT: the last run's report, hash-verified end to end."""
        self._send("RPRT")
        advertised = self._expect("RPRT").args[0]
        body = self._read_data_block()[0]
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if digest != advertised:
            raise ClientError(
                f"report hash mismatch: server said {advertised}, "
                f"body hashes to {digest}")
        return digest, json.loads(body)

    def submit_campaign(self, scenarios: list, seeds: list,
                        months: Optional[float] = None,
                        workers: int = 1) -> list[tuple]:
        """SUBM a matrix; returns ``(scenario, seed, status)`` per cell."""
        doc = {"scenarios": scenarios, "seeds": seeds, "workers": workers}
        if months is not None:
            doc["months"] = months
        self._send("SUBM", json.dumps(doc))
        cells = []
        while True:
            msg = self._recv()
            if msg.verb == "CELL":
                scenario, seed, status, _, _ = msg.args
                cells.append((scenario, int(seed), status))
            elif msg.verb == "DONE":
                return cells
            elif msg.verb == "ERR":
                raise ClientError(" ".join(msg.args))
            else:
                raise ClientError(f"unexpected {msg.verb} during SUBM")

    def compare(self, baseline: str) -> dict:
        """CMPR: per-metric deltas of stored scenarios vs a baseline."""
        self._send("CMPR", baseline)
        return json.loads(self._read_data_block()[0])

    def close(self) -> None:
        try:
            self._send("QUIT")
            self._expect("OK")
        except (OSError, ClientError):
            pass
        finally:
            self._rfile.close()
            self.sock.close()

    def __enter__(self) -> "ReferenceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
