"""Calendar helpers over raw simulated seconds.

Simulated time is a float number of seconds.  The campaign epoch (t=0) is
anchored at **Wednesday 2017-02-01 00:00**, matching the paper's "85 % of
tests successful in February" baseline.  All helpers here are pure functions
of a timestamp so they can be used from any process.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "MONTH",
    "SimDate",
    "sim_date",
    "hour_of_day",
    "day_of_week",
    "is_weekend",
    "is_peak_hours",
    "format_time",
    "format_duration",
]

MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
#: Calendar-agnostic 30-day month used for campaign lengths.
MONTH = 30 * DAY

#: t=0 is a Wednesday (2017-02-01); day_of_week uses Monday=0.
_EPOCH_WEEKDAY = 2

#: Integer counterparts of the float durations, hoisted once: sim_date and
#: format_duration run per formatted sample/log line, and the per-call
#: ``int(DAY)``/``int(HOUR)``/``int(MINUTE)`` conversions showed up in
#: campaign profiles.
_MINUTE_I = int(MINUTE)
_HOUR_I = int(HOUR)
_DAY_I = int(DAY)
_MONTH_I = int(MONTH)

_MONTH_NAMES = [
    "Feb", "Mar", "Apr", "May", "Jun", "Jul",
    "Aug", "Sep", "Oct", "Nov", "Dec", "Jan",
]


@dataclass(frozen=True)
class SimDate:
    """Broken-down simulated date (30-day months starting February 2017)."""

    month_index: int  #: 0-based month since epoch
    day: int  #: 1-based day within month
    hour: int
    minute: int
    second: int

    @property
    def month_name(self) -> str:
        return _MONTH_NAMES[self.month_index % 12]

    def __str__(self) -> str:
        return (
            f"{self.month_name} {self.day:02d} "
            f"{self.hour:02d}:{self.minute:02d}:{self.second:02d}"
        )


def sim_date(t: float) -> SimDate:
    """Break a timestamp into the simulated calendar."""
    if t < 0:
        raise ValueError(f"negative simulated time: {t}")
    total = int(t)
    month, rem = divmod(total, _MONTH_I)
    day, rem = divmod(rem, _DAY_I)
    hour, rem = divmod(rem, _HOUR_I)
    minute, second = divmod(rem, _MINUTE_I)
    return SimDate(month, day + 1, hour, minute, second)


def hour_of_day(t: float) -> float:
    """Hour within the day, in [0, 24)."""
    return (t % DAY) / HOUR


def day_of_week(t: float) -> int:
    """Day of the week, Monday=0 ... Sunday=6."""
    return (int(t // DAY) + _EPOCH_WEEKDAY) % 7


def is_weekend(t: float) -> bool:
    return day_of_week(t) >= 5


def is_peak_hours(t: float) -> bool:
    """Working hours on working days: 09:00-19:00 Monday-Friday.

    The paper's external scheduler avoids launching resource-hungry test
    jobs during peak hours so as not to compete with real users.
    """
    return (not is_weekend(t)) and 9.0 <= hour_of_day(t) < 19.0


def format_time(t: float) -> str:
    """Human-readable absolute timestamp, e.g. ``'Feb 03 14:05:00'``."""
    return str(sim_date(t))


def format_duration(seconds: float) -> str:
    """Compact duration rendering, e.g. ``'2d 03:15:00'`` or ``'45s'``."""
    if seconds < 0:
        rendered = format_duration(-seconds)
        # avoid "-0s" when the magnitude rounds away to nothing
        return rendered if rendered == "0s" else "-" + rendered
    total = int(round(seconds))
    if total < 60:
        return f"{total}s"
    days, rem = divmod(total, _DAY_I)
    hours, rem = divmod(rem, _HOUR_I)
    minutes, secs = divmod(rem, _MINUTE_I)
    if days:
        return f"{days}d {hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"
