"""Mutable health state of the testbed's *software* services.

Hardware faults live inside each :class:`~repro.nodes.machine.SimulatedNode`;
service-level problems (a flaky REST API, a broken environment image, a
degraded deployment service, a misconfigured KaVLAN, stale OAR properties)
live here.  Both the fault injector (which breaks things) and the service
simulators / check scripts (which observe the breakage) share this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceHealth"]


@dataclass
class ServiceHealth:
    """All service-level degradations currently in force."""

    #: site -> probability that one REST API call fails (sidapi family).
    api_failure_prob: dict[str, float] = field(default_factory=dict)
    #: site -> probability that a command-line tool invocation fails.
    cmdline_failure_prob: dict[str, float] = field(default_factory=dict)
    #: (environment image, cluster) pairs whose deployment produces a
    #: broken system (environments family).
    broken_images: set[tuple[str, str]] = field(default_factory=set)
    #: cluster -> extra per-node deployment failure probability
    #: (paralleldeploy / multideploy families).
    deploy_degradation: dict[str, float] = field(default_factory=dict)
    #: sites whose KaVLAN switch reconfiguration is broken.
    kavlan_broken: set[str] = field(default_factory=set)
    #: sites whose kwapi service has stopped recording (kwapi family).
    kwapi_down: set[str] = field(default_factory=set)
    #: node uid -> properties whose OAR-database value drifted from the
    #: Reference API (oarproperties family).
    oar_property_drift: dict[str, set[str]] = field(default_factory=dict)

    def api_ok(self, site: str, draw: float) -> bool:
        """Whether one API call succeeds, given a uniform draw in [0,1)."""
        return draw >= self.api_failure_prob.get(site, 0.0)

    def cmdline_ok(self, site: str, draw: float) -> bool:
        return draw >= self.cmdline_failure_prob.get(site, 0.0)

    def image_ok(self, image: str, cluster: str) -> bool:
        return (image, cluster) not in self.broken_images

    def deploy_extra_failure_prob(self, cluster: str) -> float:
        return self.deploy_degradation.get(cluster, 0.0)
