"""Infrastructure-service families: console, kavlan, kwapi.

Slide 21: "Other important services (console, kavlan, kwapi)".
"""

from __future__ import annotations

from typing import Any

from ..faults.catalog import FaultKind
from ..kavlan.manager import VlanType
from .base import CheckContext, CheckFamily, Finding

__all__ = ["ConsoleCheck", "KavlanCheck", "KwapiCheck"]


class ConsoleCheck(CheckFamily):
    """Open the serial console of every node of a cluster (out-of-band)."""

    name = "console"
    kind = "software"
    walltime_s = 600.0

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"cluster": c.uid} for c in testbed.iter_clusters()]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        cluster = ctx.testbed.cluster(config["cluster"])
        yield ctx.sim.timeout(2.0 * cluster.node_count)
        for node in cluster.nodes:
            if not ctx.machines[node.uid].actual.console_ok:
                outcome.findings.append(Finding(
                    FaultKind.CONSOLE_BROKEN, node.uid,
                    "no output on the serial console"))
        outcome.passed = not outcome.findings
        return outcome


class KavlanCheck(CheckFamily):
    """Allocate a local VLAN, move two reserved nodes into it, and verify
    the isolation contract end to end."""

    name = "kavlan"
    kind = "software"
    walltime_s = 1800.0
    nodes_needed = 2

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"site": s.uid} for s in testbed.sites]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        site = config["site"]
        job = yield from self.reserve(ctx, f"site='{site}'/nodes=2,walltime=0:30")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        vlan = None
        try:
            vlan = ctx.kavlan.allocate(VlanType.LOCAL, site)
            members = job.assigned_nodes
            yield ctx.sim.process(ctx.kavlan.set_nodes(vlan, members))
            probe = self._pick_probe(ctx, site, set(members))
            yield ctx.sim.timeout(60.0)  # connectivity probes
            if probe is not None:
                violations = ctx.kavlan.isolation_violations(vlan, [probe])
                if violations:
                    outcome.findings.append(Finding(
                        FaultKind.KAVLAN_MISCONFIG, site,
                        f"isolation violated: {violations[0][0]} can reach "
                        f"{violations[0][1]} outside the VLAN"))
            # members must still reach each other inside the VLAN
            if not ctx.kavlan.reachable(members[0], members[1]):
                outcome.findings.append(Finding(
                    FaultKind.KAVLAN_MISCONFIG, site,
                    "VLAN members cannot reach each other"))
        finally:
            if vlan is not None:
                yield ctx.sim.process(ctx.kavlan.release(vlan))
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome

    @staticmethod
    def _pick_probe(ctx: CheckContext, site: str, exclude: set[str]):
        for cluster in ctx.testbed.site(site).clusters:
            for node in cluster.nodes:
                if node.uid not in exclude and ctx.machines[node.uid].available:
                    return node.uid
        return None


class KwapiCheck(CheckFamily):
    """Verify that the power-monitoring service tracks the load we apply
    to nodes we own — the check that catches swapped power cables."""

    name = "kwapi"
    kind = "software"
    walltime_s = 1800.0
    nodes_needed = 2
    #: Minimum expected watt increase when a node goes from idle to busy.
    min_delta_w = 40.0

    def configurations(self, testbed) -> list[dict[str, Any]]:
        return [{"site": s.uid} for s in testbed.sites]

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        outcome = self._outcome(config)
        site = config["site"]
        job = yield from self.reserve(ctx, f"site='{site}'/nodes=2,walltime=0:30")
        if job is None:
            outcome.resources_blocked = True
            outcome.passed = False
            return outcome
        try:
            for uid in job.assigned_nodes:
                machine = ctx.machines[uid]
                machine.cpu_load = 0.0
                yield ctx.sim.timeout(30.0)
                idle = ctx.kwapi.node_power_watts(uid)
                machine.cpu_load = 1.0
                yield ctx.sim.timeout(30.0)
                busy = ctx.kwapi.node_power_watts(uid)
                machine.cpu_load = 0.75  # back to allocated-job load
                if idle is None or busy is None:
                    outcome.findings.append(Finding(
                        FaultKind.KWAPI_DOWN, site,
                        f"no power measurement for {uid}"))
                elif busy - idle < self.min_delta_w:
                    outcome.findings.append(Finding(
                        FaultKind.PDU_CABLE_SWAP, machine.cluster_uid,
                        f"{uid}: power did not follow load "
                        f"(idle {idle:.0f}W, busy {busy:.0f}W) — wiring?"))
        finally:
            self.release(ctx, job)
        outcome.passed = not outcome.findings
        return outcome
