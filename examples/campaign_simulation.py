#!/usr/bin/env python
"""Closed-loop campaign: reproduce the paper's headline results.

Simulates months of testbed operation with the testing framework on:
faults arrive, the 751 test configurations detect them, bugs get filed and
fixed, reliability climbs — slide 22 ("118 bugs filed, inc. 84 already
fixed") and slide 23 ("85 % of tests successful in February -> 93 %").

The world is the ``paper-baseline`` scenario preset; the horizon is the
only thing overridden here.

Run:  python examples/campaign_simulation.py [months]
      (default 2 months to stay quick; the E5/E6 benches run 5)
"""

import sys

from repro import run_scenario, scenarios
from repro.util import WEEK


def main() -> None:
    months = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    print(f"running a {months:.0f}-month campaign (simulated)...")
    fw, report = run_scenario(scenarios.get("paper-baseline"),
                              seed=1, months=months)
    print()
    print(report.summary())
    print("\nweekly success rate (the slide-23 trend):")
    for week_start, rate in report.weekly_success_rates:
        bar = "#" * int(round(rate * 40))
        print(f"  week {int(week_start // WEEK) + 1:>2}  {rate:6.1%} {bar}")
    print("\nbugs per test family:")
    for family, count in sorted(report.bugs_by_family.items(),
                                key=lambda kv: -kv[1]):
        print(f"  {family:<16} {count}")


if __name__ == "__main__":
    main()
