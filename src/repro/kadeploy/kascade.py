"""Chain-broadcast timing model (Kastafior/Kascade).

Kadeploy broadcasts the image over a pipelined chain through the nodes:
every node receives from its predecessor and forwards to its successor,
so total time is roughly *transfer time of one copy* plus a small
per-node pipeline latency — which is what makes "200 nodes deployed in
~5 minutes" possible (slide 8) and keeps the scalability curve almost
flat in the node count.
"""

from __future__ import annotations

__all__ = ["broadcast_time_s", "CHAIN_SETUP_S", "PER_NODE_PIPELINE_S"]

#: Fixed cost to build the chain and start the transfer.
CHAIN_SETUP_S = 12.0

#: Pipeline latency added per node in the chain.
PER_NODE_PIPELINE_S = 0.35


def broadcast_time_s(size_mb: float, n_nodes: int,
                     network_mbps: float, disk_write_mbps: float) -> float:
    """Time to broadcast ``size_mb`` to ``n_nodes`` over a chain.

    The bottleneck is the slower of the network and the disks the image is
    written to; the chain adds ``PER_NODE_PIPELINE_S`` per hop.
    """
    if n_nodes < 1:
        raise ValueError("broadcast needs at least one node")
    if size_mb <= 0 or network_mbps <= 0 or disk_write_mbps <= 0:
        raise ValueError("sizes and rates must be positive")
    bottleneck_mbps = min(network_mbps, disk_write_mbps)
    return CHAIN_SETUP_S + size_mb / bottleneck_mbps + PER_NODE_PIPELINE_S * n_nodes
