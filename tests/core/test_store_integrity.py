"""Store integrity under torn tails, mid-file corruption, and fsck.

Satellite of the resilience PR: whatever byte-level damage a JSONL
archive takes — truncation at or inside any record boundary, flipped
bytes in any record — loading never crashes, every surviving record is
intact, and the loss is *counted* (``corrupt_records`` for checksum
failures, ``damaged_records`` for everything torn or malformed).
``fsck_store`` classifies the same damage offline and ``--repair``
rewrites the archive atomically, retrofitting checksums onto legacy
records.
"""

import json

import pytest

from repro import run_scenario, scenarios
from repro.core.store import CampaignStore, StoreFormatError, fsck_store

MONTHS = 0.03
SPEC = scenarios.get("tiny-smoke")


@pytest.fixture(scope="module")
def report():
    _, rep = run_scenario(SPEC, seed=0, months=MONTHS)
    return rep


@pytest.fixture()
def store_path(tmp_path, report):
    """Three finished cells: a success, a failure, a quarantined cell."""
    path = tmp_path / "store.jsonl"
    store = CampaignStore(str(path))
    store.record_success(SPEC, 0, report, months=MONTHS)
    store.record_failure(SPEC, 1, "boom", months=MONTHS)
    store.record_failure(SPEC, 2, "hung past watchdog", months=MONTHS,
                         quarantined=True)
    return path


def _line_spans(data: bytes) -> list:
    """(start, end) byte offsets of every line, end including newline."""
    spans, start = [], 0
    while start < len(data):
        end = data.index(b"\n", start) + 1
        spans.append((start, end))
        start = end
    return spans


def test_truncation_at_and_inside_every_record_boundary(store_path):
    """Cutting the file anywhere loses at most the cut record."""
    data = store_path.read_bytes()
    spans = _line_spans(data)
    assert len(spans) == 3
    for i, (start, end) in enumerate(spans):
        length = end - start
        cuts = {
            start: (i, 0),                   # clean boundary
            start + 1: (i, 1),               # 1 byte of a torn record
            start + length // 2: (i, 1),     # torn mid-record
            end - 1: (i + 1, 0),             # newline-less: still parses
        }
        for offset, (whole, torn) in cuts.items():
            store_path.write_bytes(data[:offset])
            store = CampaignStore(str(store_path))
            assert len(store) == whole, f"cut at byte {offset}"
            assert store.corrupt_records == 0
            assert store.damaged_records == torn, f"cut at byte {offset}"
    # full file sanity: everything loads, nothing counted
    store_path.write_bytes(data)
    store = CampaignStore(str(store_path))
    assert len(store) == 3
    assert store.corrupt_records == 0 and store.damaged_records == 0


def test_byte_flip_in_any_record_loses_only_that_record(store_path):
    data = store_path.read_bytes()
    spans = _line_spans(data)
    for start, end in spans:
        mid = start + (end - start) // 2
        flipped = data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]
        store_path.write_bytes(flipped)
        store = CampaignStore(str(store_path))
        assert len(store) == 2, f"flip at byte {mid}"
        # a flip either breaks the JSON (damaged) or survives parsing and
        # fails the checksum (corrupt) — either way it is counted once
        assert store.corrupt_records + store.damaged_records == 1
        surviving = {c.seed for c in store.cells()}
        assert len(surviving) == 2 and surviving < {0, 1, 2}


def test_mid_file_corruption_after_a_sealing_append(store_path, report):
    """Damage in the middle of the archive, with intact records after."""
    data = store_path.read_bytes()
    start, end = _line_spans(data)[1]
    mid = start + (end - start) // 2
    store_path.write_bytes(data[:mid] + bytes([data[mid] ^ 0xFF])
                           + data[mid + 1:])
    # a later append must not be confused by earlier damage
    CampaignStore(str(store_path)).record_success(
        SPEC, 7, report, months=MONTHS)
    store = CampaignStore(str(store_path))
    assert {c.seed for c in store.cells()} == {0, 2, 7}
    assert store.corrupt_records + store.damaged_records == 1


def test_checksum_mismatch_is_counted_as_corrupt(store_path):
    """A hand-edited record (valid JSON, stale sum) is provably rotten."""
    lines = store_path.read_text().splitlines()
    doc = json.loads(lines[1])
    doc["error"] = "tampered"
    lines[1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    store_path.write_text("\n".join(lines) + "\n")
    store = CampaignStore(str(store_path))
    assert store.corrupt_records == 1 and store.damaged_records == 0
    assert {c.seed for c in store.cells()} == {0, 2}


def test_legacy_records_are_grandfathered_and_repair_retrofits(store_path):
    lines = store_path.read_text().splitlines()
    doc = json.loads(lines[0])
    del doc["sum"]  # pre-checksum era record
    lines[0] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    store_path.write_text("\n".join(lines) + "\n")
    store = CampaignStore(str(store_path))
    assert len(store) == 3, "legacy records still load"
    assert store.corrupt_records == 0 and store.damaged_records == 0
    audit = fsck_store(store_path)
    assert audit.clean and audit.legacy == 1 and audit.valid == 3
    fixed = fsck_store(store_path, repair=True)
    assert fixed.repaired
    after = fsck_store(store_path)
    assert after.clean and after.legacy == 0 and after.valid == 3


def test_fsck_classifies_and_repair_drops_only_damage(store_path):
    data = store_path.read_bytes()
    spans = _line_spans(data)
    start, end = spans[1]
    mid = start + (end - start) // 2
    body = (data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]
            + b"{torn and never sealed"
            + b"\n[1,2,3]\n"
            + b'{"v": 99, "from": "the future"}\n')
    store_path.write_bytes(body)
    audit = fsck_store(store_path)
    assert not audit.clean
    assert audit.total_lines == 6
    assert audit.valid == 2
    # the flip lands on either side of the parse/checksum divide
    assert audit.torn + audit.checksum_failed == 2
    assert audit.malformed == 1
    assert audit.version_skew == 1
    fixed = fsck_store(store_path, repair=True)
    assert fixed.repaired
    after = fsck_store(store_path)
    assert after.clean and after.valid == 2 and after.version_skew == 1
    # the foreign (version-skew) record is preserved verbatim — and the
    # current-format loader still refuses it loudly (silent drop of a
    # newer tool's records would be data loss, not resilience)
    assert '{"v": 99, "from": "the future"}' in store_path.read_text()
    with pytest.raises(StoreFormatError):
        CampaignStore(str(store_path))


def test_repair_preserves_reports_and_quarantine_bit(store_path):
    before = {c.seed: c for c in CampaignStore(str(store_path)).cells()}
    fsck_store(store_path, repair=True)  # no-op rewrite path guard
    # append a torn tail, then repair for real
    with open(store_path, "ab") as fh:
        fh.write(b'{"half a rec')
    assert fsck_store(store_path, repair=True).repaired
    after = {c.seed: c for c in CampaignStore(str(store_path)).cells()}
    assert set(after) == set(before)
    assert after[0].report.to_dict() == before[0].report.to_dict()
    assert after[2].quarantined and after[2].error == "hung past watchdog"
    assert not after[1].quarantined and after[1].error == "boom"
