"""E7 — slides 16-17: scheduling on a heavily-used testbed.

Regenerates the motivating observation: on a contended testbed, a 1-node
job starts almost immediately while a whole-cluster (nodes=ALL) request
waits orders of magnitude longer — "waiting for all nodes of a given
cluster to be available can take weeks".  Also demonstrates the
immediate-or-cancel contract the external scheduler relies on, and guards
the replan hot path (``_replan_future_jobs``) against perf regressions.
"""

import time

from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import JobState, OarDatabase, OarServer, WorkloadConfig, WorkloadGenerator
from repro.testbed import CLUSTER_SPECS, ReferenceApi, build_grid5000
from repro.util import DAY, HOUR, RngStreams, Simulator

from conftest import paper_row, print_table

_CLUSTERS = ("paravance", "grisou", "parasilo")


def _contended_world(seed=3, utilization=0.75):
    specs = [s for s in CLUSTER_SPECS if s.name in _CLUSTERS]
    testbed = build_grid5000(specs)
    sim = Simulator()
    rngs = RngStreams(seed=seed)
    park = MachinePark.from_testbed(sim, testbed, rngs)
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()), park)
    workload = WorkloadGenerator(
        sim, oar, testbed, rngs,
        WorkloadConfig(target_utilization=utilization))
    workload.start()
    sim.run(until=2 * DAY)  # warm the queue up
    return sim, oar


def _scenario():
    sim, oar = _contended_world()
    single = oar.submit("cluster='paravance'/nodes=1,walltime=1",
                        auto_duration=600.0)
    whole = oar.submit("cluster='paravance'/nodes=ALL,walltime=2",
                       auto_duration=600.0)
    immediate = oar.submit("cluster='paravance'/nodes=ALL,walltime=2",
                           immediate=True)
    sim.run(until=sim.now + 21 * DAY)
    return single, whole, immediate


def bench_e7_scheduler(benchmark):
    single, whole, immediate = benchmark.pedantic(_scenario, rounds=1,
                                                  iterations=1)
    single_wait = single.wait_time_s if single.wait_time_s is not None else float("inf")
    whole_wait = whole.wait_time_s if whole.wait_time_s is not None else float("inf")
    rows = [
        paper_row("1-node job wait", "~immediate",
                  f"{single_wait / HOUR:.2f}h"),
        paper_row("whole-cluster (ALL) job wait", "days-weeks",
                  f"{whole_wait / DAY:.1f}d"),
        paper_row("immediate-or-cancel on busy cluster", "cancelled",
                  immediate.state.value),
    ]
    print_table("E7: scheduling on a heavily-used testbed (slides 16-17)", rows)
    # shape: whole-cluster requests wait far longer than single-node ones
    assert whole_wait > 4 * single_wait
    assert whole_wait > 12 * HOUR
    assert immediate.state == JobState.CANCELLED


def _deep_queue_world(jobs=800):
    """A tiny cluster with a deep queue of future reservations: the state
    every completion-triggered replanning pass operates on."""
    specs = [s for s in CLUSTER_SPECS if s.name == "grimoire"]  # 8 nodes
    testbed = build_grid5000(specs)
    sim = Simulator()
    park = MachinePark.from_testbed(sim, testbed, RngStreams(seed=1))
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()), park)
    for _ in range(jobs):
        oar.submit("cluster='grimoire'/nodes=1,walltime=3",
                   auto_duration=3 * HOUR)
    sim.run(until=1.0)  # start the first wave, settle the reservations
    return sim, oar


def bench_e7_replan_hotpath(benchmark):
    """Perf-regression guard: a full replanning pass over a deep scheduled
    queue must stay linear-ish in queue depth (the quadratic
    ``set(replanned)``-per-job filtering this bench was added against
    would blow the budget at this scale)."""
    sim, oar = _deep_queue_world()
    depth = len(oar._scheduled)
    assert depth > 700  # 8 running, the rest stacked into the future

    def replan():
        oar._replan_future_jobs()
        return len(oar._scheduled)

    t0 = time.perf_counter()
    after = benchmark.pedantic(replan, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - t0) / 3.0

    per_job_ms = 1000.0 * elapsed / depth
    rows = [
        paper_row("scheduled queue depth", "-", depth),
        paper_row("full replan wall time", "-", f"{elapsed * 1000:.0f}ms"),
        paper_row("per scheduled job", "< 5ms", f"{per_job_ms:.2f}ms"),
    ]
    print_table("E7b: replan hot path on a deep queue", rows)
    assert after == depth  # replan is placement-stable on an idle queue
    # generous ceiling (measured ~0.5ms/job): trips on a reintroduced
    # quadratic pass long before it trips on machine noise
    assert per_job_ms < 5.0
