"""Composable construction of the simulated world.

The old ``build_framework()`` was a 200-line monolith: every subsystem
hard-wired, nine ad-hoc kwargs, and a ``scheduler=None`` placeholder
mutated after the fact.  This module replaces it with:

* a **subsystem registry** — each stage of the world (testbed, oar,
  kadeploy, kavlan, monitoring, faults, ci, scheduling) is a named factory
  operating on a shared :class:`FrameworkBuild` state, so an alternate
  backend (a stub OAR, a recording monitoring layer, a different
  scheduler) swaps in without touching this file;
* a :class:`FrameworkBuilder` that assembles a
  :class:`~repro.core.framework.TestingFramework` from a declarative
  :class:`~repro.scenarios.ScenarioSpec`, with override hooks for the few
  things that are live objects rather than data (custom ``ClusterSpec``
  lists, pre-built ``CheckFamily`` instances, factory swaps).

The framework comes out fully wired — the external scheduler is
constructed *before* the (immutable) ``TestingFramework``, never patched
in afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..analysis.history import BuildHistory
from ..checksuite.base import CheckContext, CheckFamily
from ..ci.api import JenkinsApi
from ..ci.server import JenkinsServer
from ..faults.catalog import FaultContext
from ..faults.injector import FaultInjector
from ..faults.services import ServiceHealth
from ..kadeploy.deployment import Kadeploy
from ..kadeploy.images import REFERENCE_IMAGES
from ..kavlan.manager import KavlanManager
from ..monitoring.probes import Ganglia, Kwapi
from ..nodes.machine import MachinePark
from ..oar.database import OarDatabase
from ..oar.server import OarServer
from ..oar.traces import TraceReplayConfig, TraceReplayGenerator
from ..oar.workload import WorkloadGenerator
from ..scenarios.spec import ScenarioSpec
from ..scheduling.launcher import ExternalScheduler
from ..scheduling.pernode import PerNodeVariant
from ..scheduling.policies import get_strategy
from ..testbed.generator import ClusterSpec, build_grid5000
from ..testbed.refapi import ReferenceApi
from ..testbed.topology import build_topology
from ..util.events import Simulator
from ..util.rng import RngStreams
from .bugtracker import BugTracker, OperatorTeam

__all__ = [
    "FrameworkBuild",
    "FrameworkBuilder",
    "SubsystemRegistry",
    "SUBSYSTEM_ORDER",
    "default_registry",
    "register_subsystem",
]


@dataclass
class FrameworkBuild:
    """Mutable state threaded through the subsystem factories.

    Factories read what earlier stages produced and assign their own
    products; :meth:`FrameworkBuilder.build` turns the finished state into
    the immutable :class:`TestingFramework`.
    """

    spec: ScenarioSpec
    sim: Simulator
    rngs: RngStreams
    cluster_specs: Sequence[ClusterSpec]
    families: list[CheckFamily]
    # products, stage by stage (filled in SUBSYSTEM_ORDER)
    testbed: object = None
    refapi: object = None
    machines: object = None
    services: object = None
    topology: object = None
    oardb: object = None
    oar: object = None
    workload: object = None
    kadeploy: object = None
    kavlan: object = None
    kwapi: object = None
    ganglia: object = None
    fault_ctx: object = None
    injector: object = None
    jenkins: object = None
    api: object = None
    tracker: object = None
    operators: object = None
    history: object = None
    checkctx: object = None
    scheduler: object = None
    extras: dict = field(default_factory=dict)


SubsystemFactory = Callable[[FrameworkBuild], None]

#: Assembly order — later stages may depend on any earlier product.
SUBSYSTEM_ORDER: tuple[str, ...] = (
    "testbed",
    "oar",
    "kadeploy",
    "kavlan",
    "monitoring",
    "faults",
    "ci",
    "scheduling",
)


class SubsystemRegistry:
    """Name -> factory mapping with copy-on-customize semantics."""

    def __init__(self, factories: Optional[dict[str, SubsystemFactory]] = None):
        self._factories: dict[str, SubsystemFactory] = dict(factories or {})

    def register(self, name: str, factory: SubsystemFactory) -> None:
        if name not in SUBSYSTEM_ORDER:
            raise ValueError(
                f"unknown subsystem {name!r}; stages are {SUBSYSTEM_ORDER}")
        self._factories[name] = factory

    def factory(self, name: str) -> SubsystemFactory:
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(f"no factory registered for subsystem {name!r}") \
                from None

    def copy(self) -> "SubsystemRegistry":
        return SubsystemRegistry(self._factories)


# -- default factories (the world of the paper) --------------------------------


def _build_testbed(b: FrameworkBuild) -> None:
    """Substrate: descriptions, Reference API, machines, network, services."""
    b.testbed = build_grid5000(b.cluster_specs)
    b.refapi = ReferenceApi(b.testbed)
    b.machines = MachinePark.from_testbed(b.sim, b.testbed, b.rngs)
    b.services = ServiceHealth()
    b.topology = build_topology(b.testbed)


def _build_oar(b: FrameworkBuild) -> None:
    """Resource manager + the user workload that contends with tests.

    The spec's ``workload`` variant picks the source: a
    :class:`WorkloadConfig` builds the synthetic Poisson generator, a
    :class:`TraceReplayConfig` replays a recorded trace at its timestamps.
    """
    b.oardb = OarDatabase(b.refapi, b.services)
    b.oar = OarServer(b.sim, b.oardb, b.machines)
    if isinstance(b.spec.workload, TraceReplayConfig):
        b.workload = TraceReplayGenerator.from_config(
            b.sim, b.oar, b.spec.workload, testbed=b.testbed)
    else:
        b.workload = WorkloadGenerator(b.sim, b.oar, b.testbed, b.rngs,
                                       b.spec.workload)


def _build_kadeploy(b: FrameworkBuild) -> None:
    b.kadeploy = Kadeploy(b.sim, b.machines, b.services, b.rngs)


def _build_kavlan(b: FrameworkBuild) -> None:
    b.kavlan = KavlanManager(b.sim, b.topology, b.services,
                             [s.uid for s in b.testbed.sites])


def _build_monitoring(b: FrameworkBuild) -> None:
    b.kwapi = Kwapi(b.sim, b.machines, b.testbed, b.services)
    b.ganglia = Ganglia(b.sim, b.machines)


def _build_faults(b: FrameworkBuild) -> None:
    image_names = tuple(img.name for img in REFERENCE_IMAGES)
    b.fault_ctx = FaultContext.build(b.machines, b.services, image_names)
    b.injector = FaultInjector(
        b.sim, b.fault_ctx, b.rngs,
        mean_interarrival_s=b.spec.fault_mean_interarrival_s)


def _build_ci(b: FrameworkBuild) -> None:
    """Jenkins, its API, and the bug-filing/fixing loop behind it."""
    b.jenkins = JenkinsServer(b.sim, executors=b.spec.executors)
    b.api = JenkinsApi(b.jenkins)
    b.tracker = BugTracker(b.sim, b.injector.ground_truth, b.fault_ctx)
    b.operators = OperatorTeam(b.sim, b.tracker, b.injector, b.rngs,
                               speedup=b.spec.operator_speedup)
    b.history = BuildHistory()


def _build_scheduling(b: FrameworkBuild) -> None:
    """Check context + the availability-aware external scheduler."""
    b.checkctx = CheckContext(
        sim=b.sim, testbed=b.testbed, refapi=b.refapi, machines=b.machines,
        services=b.services, oar=b.oar, oardb=b.oardb, kadeploy=b.kadeploy,
        kavlan=b.kavlan, kwapi=b.kwapi, ganglia=b.ganglia,
        topology=b.topology, rngs=b.rngs,
    )
    history = b.history
    strategy_factory = b.extras.get("scheduling_strategy")
    if strategy_factory is not None:
        strategy = strategy_factory(b.spec.policy)
    else:
        # Resolve the spec's strategy name against the registry.  Only
        # `(policy)`-constructible strategies are name-addressable; ones
        # needing live collaborators (e.g. the wire-protocol bridge) ride
        # in via the extras factory above.
        strategy = get_strategy(b.spec.strategy)(b.spec.policy)
    b.scheduler = ExternalScheduler(
        b.sim, b.jenkins, b.oar, b.testbed, b.families, policy=b.spec.policy,
        on_build_done=lambda cell, build: history.record(cell, build),
        strategy=strategy,
    )


_DEFAULT = SubsystemRegistry()
for _name, _factory in (
    ("testbed", _build_testbed),
    ("oar", _build_oar),
    ("kadeploy", _build_kadeploy),
    ("kavlan", _build_kavlan),
    ("monitoring", _build_monitoring),
    ("faults", _build_faults),
    ("ci", _build_ci),
    ("scheduling", _build_scheduling),
):
    _DEFAULT.register(_name, _factory)


def default_registry() -> SubsystemRegistry:
    """A private copy of the default subsystem factories."""
    return _DEFAULT.copy()


def register_subsystem(name: str, factory: SubsystemFactory) -> None:
    """Globally replace a default subsystem backend (affects new builders)."""
    _DEFAULT.register(name, factory)


# -- the builder ---------------------------------------------------------------


class FrameworkBuilder:
    """Assemble a :class:`TestingFramework` from a :class:`ScenarioSpec`.

    >>> from repro import scenarios
    >>> fw = FrameworkBuilder(scenarios.get("tiny-smoke")).build()
    >>> fw.scheduler is not None
    True

    Fluent overrides cover the non-declarative escape hatches::

        fw = (FrameworkBuilder(spec)
              .with_seed(7)
              .with_families([family_by_name("refapi")])
              .with_subsystem("monitoring", my_recording_monitoring)
              .build())
    """

    def __init__(self, spec: Optional[ScenarioSpec] = None,
                 registry: Optional[SubsystemRegistry] = None):
        self._spec = spec if spec is not None else ScenarioSpec()
        self._registry = (registry if registry is not None
                          else _DEFAULT).copy()
        self._cluster_specs: Optional[Sequence[ClusterSpec]] = None
        self._families: Optional[Sequence[CheckFamily]] = None
        self._extras: dict = {}

    # -- fluent configuration --------------------------------------------------

    def with_spec(self, spec: ScenarioSpec) -> "FrameworkBuilder":
        self._spec = spec
        return self

    def with_seed(self, seed: int) -> "FrameworkBuilder":
        self._spec = self._spec.derive(seed=seed)
        return self

    def with_cluster_specs(
            self, specs: Sequence[ClusterSpec]) -> "FrameworkBuilder":
        """Explicit cluster recipes (bypasses the spec's name-based selection)."""
        self._cluster_specs = specs
        return self

    def with_families(
            self, families: Sequence[CheckFamily]) -> "FrameworkBuilder":
        """Pre-built family instances (bypasses the spec's name list)."""
        self._families = families
        return self

    def with_subsystem(self, name: str,
                       factory: SubsystemFactory) -> "FrameworkBuilder":
        """Swap one subsystem backend for this builder only."""
        self._registry.register(name, factory)
        return self

    def with_extra(self, name: str, value) -> "FrameworkBuilder":
        """Seed a ``FrameworkBuild.extras`` entry for the factories to read
        (e.g. ``scheduling_strategy``: a ``policy -> SchedulingStrategy``
        factory consumed by the default scheduling stage)."""
        self._extras[name] = value
        return self

    # -- assembly --------------------------------------------------------------

    def build(self):
        """Run every subsystem factory and return the wired framework."""
        from .framework import TestingFramework  # cycle: framework's shim uses us

        spec = self._spec
        sim = Simulator()
        rngs = RngStreams(seed=spec.seed)
        cluster_specs = (self._cluster_specs if self._cluster_specs is not None
                         else spec.resolve_cluster_specs())
        families = (list(self._families) if self._families is not None
                    else spec.resolve_families())
        if spec.pernode:
            families = [PerNodeVariant(f) if f.kind == "hardware" else f
                        for f in families]
        build = FrameworkBuild(spec=spec, sim=sim, rngs=rngs,
                               cluster_specs=cluster_specs, families=families,
                               extras=dict(self._extras))
        for name in SUBSYSTEM_ORDER:
            self._registry.factory(name)(build)
        framework = TestingFramework(
            sim=sim, rngs=rngs, testbed=build.testbed, refapi=build.refapi,
            machines=build.machines, services=build.services,
            oardb=build.oardb, oar=build.oar, workload=build.workload,
            kadeploy=build.kadeploy, kavlan=build.kavlan, kwapi=build.kwapi,
            ganglia=build.ganglia, fault_ctx=build.fault_ctx,
            injector=build.injector, jenkins=build.jenkins, api=build.api,
            tracker=build.tracker, operators=build.operators,
            scheduler=build.scheduler, checkctx=build.checkctx,
            families=build.families, history=build.history,
        )
        framework.register_family_jobs()
        return framework
