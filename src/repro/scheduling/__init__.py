"""External test scheduler: availability-aware triggering with policies."""

from .elastic import (
    CommonPoolStrategy,
    EasyBackfillStrategy,
    StealAgreementStrategy,
)
from .launcher import ExternalScheduler, TestCell, TickView
from .pernode import PerNodeVariant, make_pernode_scheduler
from .policies import (
    Backoff,
    DefaultStrategy,
    SchedulerPolicy,
    SchedulingStrategy,
    get_strategy,
    register_strategy,
    strategy_names,
)

__all__ = [
    "SchedulerPolicy",
    "Backoff",
    "TestCell",
    "TickView",
    "ExternalScheduler",
    "SchedulingStrategy",
    "DefaultStrategy",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "EasyBackfillStrategy",
    "CommonPoolStrategy",
    "StealAgreementStrategy",
    "PerNodeVariant",
    "make_pernode_scheduler",
]
