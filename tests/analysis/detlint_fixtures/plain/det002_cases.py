"""DET002 fixture: wall-clock positives and negatives."""

import time
from datetime import date, datetime
from time import monotonic


def stamp_everything():
    a = time.time()  # EXPECT(DET002)
    b = time.monotonic()  # EXPECT(DET002)
    c = monotonic()  # EXPECT(DET002)
    d = time.perf_counter()  # EXPECT(DET002)
    e = datetime.now()  # EXPECT(DET002)
    f = datetime.utcnow()  # EXPECT(DET002)
    g = date.today()  # EXPECT(DET002)
    return a, b, c, d, e, f, g


def negatives(sim):
    now = sim.now  # negative: simulated clock
    time.sleep(0)  # negative: not in the banned call list
    parsed = datetime.fromisoformat("2017-01-01")  # negative: no clock read
    return now, parsed


def justified():
    # negative: justified, suppressed host-side use
    return time.monotonic()  # detlint: disable=DET002 — host readiness poll
