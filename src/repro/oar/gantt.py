"""Per-node allocation timeline (the scheduler's Gantt chart).

Each node has a sorted list of ``(start, end, job_id)`` reservations.  The
scheduler asks two questions:

* is a node free over ``[t, t+d)``?
* what candidate start times after ``t`` are worth trying? (interval ends)

Conservative backfilling emerges naturally: reservations of
earlier-submitted jobs stay in the Gantt, and later jobs simply search for
the earliest window that fits around them.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..util.errors import SchedulingError

__all__ = ["Reservation", "NodeTimeline", "Gantt"]


@dataclass(frozen=True)
class Reservation:
    start: float
    end: float
    job_id: int


class NodeTimeline:
    """Sorted, non-overlapping reservations for one node."""

    __slots__ = ("_starts", "_reservations")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._reservations: list[Reservation] = []

    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._reservations)

    def is_free(self, start: float, end: float) -> bool:
        """True if no reservation overlaps [start, end)."""
        if end <= start:
            raise SchedulingError(f"empty interval [{start}, {end})")
        idx = bisect.bisect_right(self._starts, start)
        if idx > 0 and self._reservations[idx - 1].end > start:
            return False
        if idx < len(self._reservations) and self._reservations[idx].start < end:
            return False
        return True

    def add(self, reservation: Reservation) -> None:
        if not self.is_free(reservation.start, reservation.end):
            raise SchedulingError(
                f"overlapping reservation {reservation} on busy timeline"
            )
        idx = bisect.bisect_right(self._starts, reservation.start)
        self._starts.insert(idx, reservation.start)
        self._reservations.insert(idx, reservation)

    def remove_job(self, job_id: int, start: Optional[float] = None) -> int:
        """Drop all reservations of one job; returns how many were removed.

        ``start`` is the scheduler's hint of where the job's reservation
        sits (a job holds at most one interval per node, and two intervals
        on one timeline can never share a start): with it the removal is a
        bisect + single deletion instead of a full-list rebuild — releases
        run once per node per completed job, which made the rebuild one of
        the hottest allocations of a campaign.
        """
        starts = self._starts
        reservations = self._reservations
        if start is not None:
            idx = bisect.bisect_left(starts, start)
            if idx < len(reservations) and reservations[idx].job_id == job_id \
                    and starts[idx] == start:
                del starts[idx]
                del reservations[idx]
                return 1
            # Hint missed (e.g. the reservation was truncated): fall through.
        removed = 0
        for i in range(len(reservations) - 1, -1, -1):
            if reservations[i].job_id == job_id:
                del starts[i]
                del reservations[i]
                removed += 1
        return removed

    def truncate_job(self, job_id: int, end: float) -> None:
        """Shorten a running job's reservation (early release).

        Truncating to at/before the reservation's start drops the entry
        entirely — a zero-length ``[start, start)`` residue would linger in
        ``_starts`` and distort ``release_points``/``candidate_starts``
        until the next purge.
        """
        for i, r in enumerate(self._reservations):
            if r.job_id == job_id and r.end > end:
                if end <= r.start:
                    del self._starts[i]
                    del self._reservations[i]
                else:
                    self._reservations[i] = Reservation(r.start, end, job_id)
                return

    def busy_until(self, t: float) -> float:
        """End of the reservation covering ``t`` (or ``t`` if free)."""
        idx = bisect.bisect_right(self._starts, t)
        if idx > 0 and self._reservations[idx - 1].end > t:
            return self._reservations[idx - 1].end
        return t

    def next_fit(self, after: float, duration: float) -> float:
        """Earliest ``s >= after`` with ``[s, s + duration)`` free.

        Always finite (the timeline's tail is an unbounded free window).
        Bisects to the first relevant reservation instead of walking the
        whole list — the building block of the whole-cluster search.
        """
        reservations = self._reservations
        idx = bisect.bisect_right(self._starts, after)
        t = after
        if idx > 0 and reservations[idx - 1].end > t:
            t = reservations[idx - 1].end
        while idx < len(reservations):
            r = reservations[idx]
            if r.start - t >= duration:
                return t
            if r.end > t:
                t = r.end
            idx += 1
        return t

    def release_points(self, after: float) -> list[float]:
        """Reservation end times > ``after`` (candidate start times)."""
        return sorted({r.end for r in self._reservations if r.end > after})

    def free_intervals(self, after: float) -> list[tuple[float, float]]:
        """Maximal free windows from ``after`` on (last one is unbounded).

        Bisects past reservations that ended before ``after`` instead of
        walking the whole history — on long campaigns the hot searches sit
        at the tail of deep timelines.
        """
        reservations = self._reservations
        idx = bisect.bisect_right(self._starts, after)
        prev = after
        if idx > 0 and reservations[idx - 1].end > after:
            prev = reservations[idx - 1].end
        out: list[tuple[float, float]] = []
        for i in range(idx, len(reservations)):
            r = reservations[i]
            if r.start > prev:
                out.append((prev, r.start))
            if r.end > prev:
                prev = r.end
        out.append((prev, math.inf))
        return out

    def purge_before(self, t: float) -> None:
        """Forget reservations that ended before ``t`` (memory hygiene on
        long campaigns)."""
        keep = [(s, r) for s, r in zip(self._starts, self._reservations) if r.end >= t]
        self._starts = [s for s, _ in keep]
        self._reservations = [r for _, r in keep]


class Gantt:
    """Timelines for a set of nodes."""

    def __init__(self, node_uids: Iterable[str]) -> None:
        self._timelines: dict[str, NodeTimeline] = {uid: NodeTimeline() for uid in node_uids}

    def timeline(self, uid: str) -> NodeTimeline:
        return self._timelines[uid]

    def is_free(self, uid: str, start: float, end: float) -> bool:
        return self._timelines[uid].is_free(start, end)

    def free_nodes(self, uids: Iterable[str], start: float, end: float) -> list[str]:
        return [u for u in uids if self._timelines[u].is_free(start, end)]

    def reserve(self, uids: Iterable[str], start: float, end: float, job_id: int) -> None:
        reserved = []
        try:
            for uid in uids:
                self._timelines[uid].add(Reservation(start, end, job_id))
                reserved.append(uid)
        except SchedulingError:
            for uid in reserved:  # roll back the partial reservation
                self._timelines[uid].remove_job(job_id, start)
            raise

    def release(self, uids: Iterable[str], job_id: int,
                start: Optional[float] = None) -> None:
        timelines = self._timelines
        for uid in uids:
            timelines[uid].remove_job(job_id, start)

    def truncate(self, uids: Iterable[str], job_id: int, end: float) -> None:
        for uid in uids:
            self._timelines[uid].truncate_job(job_id, end)

    def candidate_starts(self, uids: Iterable[str], after: float) -> list[float]:
        """`after` plus every release point on the candidate nodes."""
        times = {after}
        for uid in uids:
            times.update(self._timelines[uid].release_points(after))
        return sorted(times)

    def earliest_start(self, uids: Iterable[str], after: float,
                       duration: float, k: int,
                       intervals_cache: Optional[
                           dict[str, list[tuple[float, float]]]] = None,
                       ) -> Optional[float]:
        """Earliest ``t >= after`` when ``k`` of the nodes are simultaneously
        free over ``[t, t + duration)``.

        Interval sweep: each free window ``[s, e)`` long enough for
        ``duration`` lets its node host a start anywhere in ``[s, e -
        duration]``; the answer is the first sweep point where at least
        ``k`` host intervals overlap.  This is O(R log R) in the number of
        reservations — the candidate-start scan it replaces was quadratic
        in queue depth and dominated month-long campaigns.

        ``intervals_cache`` (uid -> free interval list) lets one
        scheduling pass share the per-timeline interval computation across
        every queued job it places: free intervals depend only on the
        timeline and ``after`` (not on the job's walltime), so the caller
        may reuse the dict for many searches at one instant, dropping the
        entries of any node it reserves in between.
        """
        if duration <= 0:
            raise SchedulingError(f"non-positive duration: {duration}")
        uids = list(uids)
        timelines = [self._timelines[u] for u in uids]
        n = len(timelines)
        if k < 1 or k > n:
            return None
        # Empty timelines (idle nodes with no future reservations — the
        # common case on a lightly loaded cluster) can all host a start at
        # `after`; prune them from the sweep entirely.
        idle = sum(1 for tl in timelines if not tl._reservations)
        if idle >= k:
            return after
        if k == n:
            # Whole-cluster request: the answer is the fixpoint of "advance
            # to every node's next window".  Each pass re-queries only the
            # nodes that still conflict (via bisect), instead of building
            # the full interval-overlap event list across every timeline.
            t = after
            while True:
                worst = t
                for tl in timelines:
                    s = tl.next_fit(t, duration)
                    if s > worst:
                        worst = s
                if worst == t:
                    return t
                t = worst
        interval_lists: list[list[tuple[float, float]]] = []
        fits_now = idle
        for uid, tl in zip(uids, timelines):
            if not tl._reservations:
                continue  # accounted for in the idle baseline
            if intervals_cache is None:
                intervals = tl.free_intervals(after)
            else:
                intervals = intervals_cache.get(uid)
                if intervals is None:
                    intervals = tl.free_intervals(after)
                    intervals_cache[uid] = intervals
            interval_lists.append(intervals)
            s0, e0 = intervals[0]
            if s0 == after and e0 - after >= duration:
                fits_now += 1
        if fits_now >= k:
            # Enough nodes are free at `after` itself — the sweep would
            # return `after` after building and sorting the full event
            # list; skip it (the common shape on replanning passes).
            return after
        events: list[tuple[float, int]] = []
        for intervals in interval_lists:
            for s, e in intervals:
                if e - s >= duration:
                    events.append((s, 0))  # +1: can host starts from s on
                    if math.isfinite(e):
                        events.append((e - duration, 1))  # -1 after this point
        events.sort()
        count = idle
        for coord, kind in events:
            if kind == 0:
                count += 1
                if count >= k:
                    return coord
            else:
                count -= 1
        return None

    def purge_before(self, t: float) -> None:
        for timeline in self._timelines.values():
            timeline.purge_before(t)
