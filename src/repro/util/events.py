"""Minimal deterministic discrete-event simulation kernel.

This is the substrate everything in :mod:`repro` runs on: the OAR batch
scheduler, Kadeploy deployments, the Jenkins-shaped CI server, the external
test scheduler and the fault injector are all processes driven by one
:class:`Simulator`.

The design follows the classic event-heap + generator-process model (a small
subset of SimPy, reimplemented here because the environment is offline):

* :class:`Simulator` owns a heap of ``(time, sequence, callback)`` entries.
  The sequence number makes execution order fully deterministic for equal
  timestamps (insertion order), which matters for reproducible campaigns.
* :class:`Event` is a one-shot occurrence that callbacks and processes can
  wait on.
* :class:`Process` wraps a generator; the generator ``yield``\\ s events
  (typically :meth:`Simulator.timeout`) and is resumed when they trigger.
  A process is itself an event that triggers when the generator returns,
  so processes can join each other.
* :class:`AnyOf` / :class:`AllOf` combine events.
* :class:`Resource` is a capacity-limited FIFO resource (used e.g. for
  Jenkins executors).

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(proc(sim, "a", 2.0))
>>> _ = sim.process(proc(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Resource",
    "Simulator",
]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    ``cause`` carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` triggers it
    exactly once, delivering ``value`` to every registered callback.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "value", "_is_error")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._triggered = False
        self.value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        """True once the event has occurred (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._triggered and not self._is_error

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to waiters."""
        self._trigger(value, is_error=False)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure; waiters receive the exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() needs an exception instance")
        self._trigger(exception, is_error=True)
        return self

    def _trigger(self, value: Any, is_error: bool) -> None:
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.value = value
        self._is_error = is_error
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            self.sim._schedule_call(0.0, cb, self)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if past)."""
        if self._triggered:
            self.sim._schedule_call(0.0, fn, self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule_call(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    ``value`` is a dict mapping the already-successful events to their
    values at the instant of first trigger.  A child that *fails* first
    fails the combinator with its exception — burying the failure inside
    the value dict would silently swallow it, since waiters only get
    exceptions thrown into them via :meth:`Event.fail`.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self.succeed({e: e.value for e in self.events if e.triggered and e.ok})


class AllOf(Event):
    """Triggers when all of ``events`` have triggered.

    ``value`` is a dict mapping each event to its value.  The first child
    failure fails the combinator immediately (the exception propagates to
    waiters instead of hiding in the value dict); later child triggers are
    then ignored.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            raise SimulationError("AllOf needs at least one event")
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class Process(Event):
    """A running generator-based process.

    The wrapped generator yields :class:`Event` instances and is resumed
    with the event's value when it triggers (or has the event's exception
    thrown into it if the event failed).  The process is itself an event
    that succeeds with the generator's return value.
    """

    __slots__ = ("gen", "name", "_wait_token", "_alive")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._wait_token = 0
        self._alive = True
        sim._schedule_call(0.0, self._resume, self._wait_token, None, None)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a silent no-op; interrupting a
        waiting process cancels the wait (the awaited event's later trigger
        is ignored by this process).
        """
        if not self._alive:
            return
        self._wait_token += 1  # invalidate any pending wait resume
        self.sim._schedule_call(
            0.0, self._resume, self._wait_token, None, Interrupt(cause)
        )

    # -- internal machinery -------------------------------------------------

    def _resume(self, token: int, value: Any, exc: Optional[BaseException]) -> None:
        if token != self._wait_token or not self._alive:
            return  # stale wake-up (process was interrupted meanwhile)
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            # Generator chose not to handle the interrupt: treat as death.
            self._alive = False
            self.succeed(None)
            return
        if not isinstance(target, Event):
            self._alive = False
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self.fail(err)
            raise err
        self._wait_token += 1
        token = self._wait_token
        target.add_callback(lambda ev: self._on_wait_done(token, ev))

    def _on_wait_done(self, token: int, ev: Event) -> None:
        if ev.ok:
            self._resume(token, ev.value, None)
        else:
            self._resume(token, None, ev.value)


class Resource:
    """A capacity-limited FIFO resource.

    ``request()`` returns an event that succeeds once a slot is available;
    the holder must call ``release(request)`` exactly once.  The request
    event is the grant token: the resource tracks exactly which requests
    hold slots, so double releases are a loud error and :meth:`cancel` is
    safe to call regardless of whether the holder already released.
    """

    __slots__ = ("sim", "capacity", "in_use", "_waiters", "_granted")

    def __init__(self, sim: "Simulator", capacity: int):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: list[Event] = []
        self._granted: set[Event] = set()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            self._granted.add(ev)
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self, request_event: Event) -> None:
        """Give the slot of ``request_event`` back (or hand it straight to
        the next waiter).

        The release is checked against grant state: releasing a request
        that holds no slot (double release, a still-queued request, or a
        request that was cancelled) raises instead of corrupting the
        capacity accounting.
        """
        if request_event not in self._granted:
            raise SimulationError(
                "release() of a request that holds no slot "
                "(double release or cancelled request?)")
        self._granted.discard(request_event)
        if self._waiters:
            ev = self._waiters.pop(0)
            self._granted.add(ev)
            ev.succeed(self)  # slot handed over directly
        else:
            self.in_use -= 1

    def cancel(self, request_event: Event) -> None:
        """Withdraw a request: un-queue it, or release the slot if it was
        granted and not yet released.  Idempotent — cancelling a request
        whose holder already released (or cancelling twice) is a no-op
        rather than a phantom release that would inflate capacity."""
        if request_event in self._waiters:
            self._waiters.remove(request_event)
        elif request_event in self._granted:
            self.release(request_event)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial simulated time, in seconds.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling primitives ----------------------------------------------

    def _schedule_call(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Invoke ``fn(*args)`` at absolute simulated time ``when``."""
        self._schedule_call(when - self._now, fn, *args)

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Invoke ``fn(*args)`` after ``delay`` simulated seconds."""
        self._schedule_call(delay, fn, *args)

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if none left."""
        if not self._heap:
            return False
        when, _seq, fn, args = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap corrupted: time went backwards")
        self._now = when
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fired earlier.
        """
        if until is None:
            while self.step():
                pass
            return self._now
        if until < self._now:
            raise SimulationError(f"run(until={until}) is in the past ({self._now})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled callback, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
