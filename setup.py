"""Packaging for the repro reproduction.

Metadata lives here (there is no pyproject.toml): the offline environment
ships setuptools without the ``wheel`` package, so PEP 517 builds (which
build a wheel) fail; the legacy ``setup.py develop`` path works everywhere
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description="Reproduction of 'Towards Trustworthy Testbeds thanks to "
                "Throughout Testing' (Nussbaum, REPPAR @ IPDPS 2017)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.oar": ["builtin_traces/*.jsonl"]},
    include_package_data=True,
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-campaign = repro.cli:main",
            "repro-lint = repro.analysis.static.cli:main",
        ],
    },
)
