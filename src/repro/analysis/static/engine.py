"""detlint engine: file walking, suppression comments, rule dispatch.

Suppression syntax (mirrors the usual linter idiom):

* ``# detlint: disable=DET002`` at the end of a line suppresses the named
  rule(s) (comma-separated) on that line only.
* ``# detlint: disable`` with no ``=`` suppresses every rule on the line.
* ``# detlint: skip-file`` anywhere in the first ten lines skips the file.

Suppressions are deliberate, reviewable markers — the expectation is a
short justification in the same comment, e.g.
``# detlint: disable=DET002 — host-side readiness poll, not sim time``.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .rules import RULES, Rule, RuleContext

__all__ = ["analyze_source", "analyze_file", "analyze_paths",
           "iter_python_files", "parse_suppressions"]

_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+))?")
_SKIP_FILE_RE = re.compile(r"#\s*detlint:\s*skip-file")
_SKIP_FILE_WINDOW = 10


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule ids (None = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        raw = m.group("rules")
        if raw is None:
            out[i] = None
        else:
            out[i] = {r.strip().upper() for r in raw.split(",") if r.strip()}
    return out


_NO_MARKER = frozenset()


def _is_suppressed(finding: Finding,
                   suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    rules = suppressions.get(finding.line, _NO_MARKER)
    if rules is _NO_MARKER:  # no marker on this line
        return False
    return rules is None or finding.rule in rules


def analyze_source(source: str, path: str,
                   rules: Optional[Iterable[Rule]] = None,
                   ) -> Tuple[List[Finding], int]:
    """Lint one source blob; returns (findings, suppressed_count)."""
    lines = source.splitlines()
    if any(_SKIP_FILE_RE.search(line)
           for line in lines[:_SKIP_FILE_WINDOW]):
        return [], 0
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        bad = Finding(path=path, line=exc.lineno or 1,
                      col=(exc.offset or 0) + 1, rule="SYNTAX",
                      message=f"file does not parse: {exc.msg}",
                      line_text="")
        return [bad], 0
    suppressions = parse_suppressions(lines)
    ctx = RuleContext(path, lines)
    active = list(RULES.values()) if rules is None else list(rules)
    findings: List[Finding] = []
    suppressed = 0
    for rule in active:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(tree, ctx):
            if _is_suppressed(finding, suppressions):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort()
    return findings, suppressed


def analyze_file(path: str,
                 rules: Optional[Iterable[Rule]] = None,
                 ) -> Tuple[List[Finding], int]:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return analyze_source(source, _normalize(path), rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic sorted file list."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def _normalize(path: str) -> str:
    """Posix, cwd-relative when possible — fingerprints must not depend on
    the machine's absolute checkout location."""
    rel = os.path.relpath(path)
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def analyze_paths(paths: Iterable[str],
                  rules: Optional[Iterable[Rule]] = None,
                  ) -> Tuple[List[Finding], int]:
    """Lint files and directories; returns (findings, suppressed_count)."""
    findings: List[Finding] = []
    suppressed = 0
    for file_path in iter_python_files(paths):
        found, skipped = analyze_file(file_path, rules)
        findings.extend(found)
        suppressed += skipped
    findings.sort()
    return findings, suppressed
