"""E7 — slides 16-17: scheduling on a heavily-used testbed.

Regenerates the motivating observation: on a contended testbed, a 1-node
job starts almost immediately while a whole-cluster (nodes=ALL) request
waits orders of magnitude longer — "waiting for all nodes of a given
cluster to be available can take weeks".  Also demonstrates the
immediate-or-cancel contract the external scheduler relies on, and guards
the replan hot path (``_replan_future_jobs``) against perf regressions.
"""

import time

from repro.faults import ServiceHealth
from repro.nodes import MachinePark
from repro.oar import JobState, OarDatabase, OarServer, WorkloadConfig, WorkloadGenerator
from repro.testbed import CLUSTER_SPECS, ReferenceApi, build_grid5000
from repro.util import DAY, HOUR, RngStreams, Simulator

from conftest import paper_row, print_table

_CLUSTERS = ("paravance", "grisou", "parasilo")


def _contended_world(seed=3, utilization=0.75):
    specs = [s for s in CLUSTER_SPECS if s.name in _CLUSTERS]
    testbed = build_grid5000(specs)
    sim = Simulator()
    rngs = RngStreams(seed=seed)
    park = MachinePark.from_testbed(sim, testbed, rngs)
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()), park)
    workload = WorkloadGenerator(
        sim, oar, testbed, rngs,
        WorkloadConfig(target_utilization=utilization))
    workload.start()
    sim.run(until=2 * DAY)  # warm the queue up
    return sim, oar


def _scenario():
    sim, oar = _contended_world()
    single = oar.submit("cluster='paravance'/nodes=1,walltime=1",
                        auto_duration=600.0)
    whole = oar.submit("cluster='paravance'/nodes=ALL,walltime=2",
                       auto_duration=600.0)
    immediate = oar.submit("cluster='paravance'/nodes=ALL,walltime=2",
                           immediate=True)
    sim.run(until=sim.now + 21 * DAY)
    return single, whole, immediate


def bench_e7_scheduler(benchmark):
    single, whole, immediate = benchmark.pedantic(_scenario, rounds=1,
                                                  iterations=1)
    single_wait = single.wait_time_s if single.wait_time_s is not None else float("inf")
    whole_wait = whole.wait_time_s if whole.wait_time_s is not None else float("inf")
    rows = [
        paper_row("1-node job wait", "~immediate",
                  f"{single_wait / HOUR:.2f}h"),
        paper_row("whole-cluster (ALL) job wait", "days-weeks",
                  f"{whole_wait / DAY:.1f}d"),
        paper_row("immediate-or-cancel on busy cluster", "cancelled",
                  immediate.state.value),
    ]
    print_table("E7: scheduling on a heavily-used testbed (slides 16-17)", rows)
    # shape: whole-cluster requests wait far longer than single-node ones
    assert whole_wait > 4 * single_wait
    assert whole_wait > 12 * HOUR
    assert immediate.state == JobState.CANCELLED


def _deep_queue_world(jobs=800):
    """A tiny cluster with a deep queue of future reservations: the state
    every completion-triggered replanning pass operates on."""
    specs = [s for s in CLUSTER_SPECS if s.name == "grimoire"]  # 8 nodes
    testbed = build_grid5000(specs)
    sim = Simulator()
    park = MachinePark.from_testbed(sim, testbed, RngStreams(seed=1))
    oar = OarServer(sim, OarDatabase(ReferenceApi(testbed), ServiceHealth()), park)
    for _ in range(jobs):
        oar.submit("cluster='grimoire'/nodes=1,walltime=3",
                   auto_duration=3 * HOUR)
    sim.run(until=1.0)  # start the first wave, settle the reservations
    return sim, oar


def bench_e7_replan_hotpath(benchmark):
    """Perf-regression guard: a full replanning pass over a deep scheduled
    queue must stay linear-ish in queue depth (the quadratic
    ``set(replanned)``-per-job filtering this bench was added against
    would blow the budget at this scale)."""
    sim, oar = _deep_queue_world()
    depth = len(oar._scheduled)
    assert depth > 700  # 8 running, the rest stacked into the future

    def replan():
        oar._replan_future_jobs()
        return len(oar._scheduled)

    t0 = time.perf_counter()
    after = benchmark.pedantic(replan, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - t0) / 3.0

    per_job_ms = 1000.0 * elapsed / depth
    rows = [
        paper_row("scheduled queue depth", "-", depth),
        paper_row("full replan wall time", "-", f"{elapsed * 1000:.0f}ms"),
        paper_row("per scheduled job", "< 5ms", f"{per_job_ms:.2f}ms"),
    ]
    print_table("E7b: replan hot path on a deep queue", rows)
    assert after == depth  # replan is placement-stable on an idle queue
    # generous ceiling (measured ~0.5ms/job): trips on a reintroduced
    # quadratic pass long before it trips on machine noise
    assert per_job_ms < 5.0


def _completion_replan_cost(jobs: int):
    """Cost of one completion-triggered replan at a given queue depth:
    (full-sweep seconds, dirty-window seconds, actual depth)."""
    sim, oar = _deep_queue_world(jobs)
    depth = len(oar._scheduled)

    t0 = time.perf_counter()
    oar._replan_future_jobs()
    full = time.perf_counter() - t0

    # The windows filter, fed the exact dirty windows a completion leaves
    # behind (release -> _mark_freed); the batched _do_replan would pass
    # the same dict.
    oar.replan_filter = "windows"
    oar.release(oar.running_jobs()[0])
    windows = dict(oar._dirty_windows)
    oar._dirty_windows.clear()
    t0 = time.perf_counter()
    oar._replan_future_jobs(windows)
    incremental = time.perf_counter() - t0
    return full, incremental, depth


def bench_e7_replan_incremental(benchmark):
    """The PR-9 claim behind ``replan_filter="windows"``: the expensive
    part of a completion-triggered replan (tearing down and re-placing
    reservations) must no longer scale with queue depth.  The full sweep
    re-places every scheduled job, so its cost grows linearly as the
    queue deepens; the dirty-window pass only pays a cheap per-job window
    check plus re-placement of the jobs the freed hole can actually help,
    and stays a small fraction of the sweep at every depth."""

    def measure():
        return _completion_replan_cost(400), _completion_replan_cost(1600)

    (full_a, inc_a, depth_a), (full_b, inc_b, depth_b) = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    rows = [
        paper_row(f"full replan @ depth {depth_a}", "-",
                  f"{full_a * 1000:.1f}ms"),
        paper_row(f"full replan @ depth {depth_b}", "grows ~linearly",
                  f"{full_b * 1000:.1f}ms"),
        paper_row(f"windowed replan @ depth {depth_a}", "-",
                  f"{inc_a * 1000:.2f}ms"),
        paper_row(f"windowed replan @ depth {depth_b}", "stays near-flat",
                  f"{inc_b * 1000:.2f}ms"),
        paper_row("windowed / full @ deep queue", "< 1/8",
                  f"1/{full_b / inc_b:.0f}"),
    ]
    print_table("E7c: incremental replan vs queue depth", rows)

    # The sweep is the linear one: 4x the queue costs clearly more.
    assert full_b > 2.0 * full_a
    # The windowed pass stays a small fraction of the sweep at both
    # depths (measured ~1/20 on a laptop; 1/8 leaves noise headroom).
    assert inc_a < full_a / 8.0
    assert inc_b < full_b / 8.0
    # Absolute per-job ceiling on the window check (measured ~1us/job).
    assert 1000.0 * inc_b / depth_b < 0.1  # ms/job
