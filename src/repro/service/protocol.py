"""The ``repro-sim`` wire protocol: a versioned, line-based codec.

Modeled on the ds-sim scheduler protocol (HELO/GETS/SCHD verbs over a
plain socket), so that an external scheduler written in any language can
drive one simulated campaign.  Every message is one UTF-8 text line::

    VERB arg1 arg2 ...\\n

Multi-record answers travel as a ``DATA <n>`` header, ``n`` payload
lines, and a lone ``.`` terminator (SMTP-style).  The codec layer is
symmetric — both peers encode and decode through the same table — and
validates verbs and arities, so the session layer above only ever sees
well-formed :class:`Message` values or a typed :class:`ProtocolError` it
can answer with ``ERR``.

Client → server verbs
    ``HELO`` version [name] · ``RUN`` scenario seed months · ``RESM``
    run-token · ``GETS`` what · ``SCHD`` cell · ``DEFR`` cell · ``REDY``
    · ``SUBM`` json · ``RPRT`` · ``CMPR`` baseline · ``QUIT``

Server → client verbs
    ``OK`` · ``ERR`` code reason · ``PING`` [t] · ``TICK`` t n_jcpl
    n_jobn · ``JCPL`` t cell status · ``JOBN`` cell kind site cluster
    need inflight alive free runs blocked · ``DATA`` n · ``CELL``
    scenario seed status i total · ``DONE`` detail · ``RPRT`` sha256 ·
    ``.``

Timestamps are serialized with :func:`repr` so the float round-trips
exactly — the determinism contract depends on both peers computing
calendar predicates (peak hours) on the identical value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PROTOCOL_VERSION", "MAX_LINE_BYTES", "Message", "ProtocolError",
           "encode", "decode", "format_time_arg", "parse_time_arg"]

#: Bumped on any incompatible verb/field change; HELO negotiates it.
PROTOCOL_VERSION = "repro-sim-1"

#: Hard cap on one line (a SUBM matrix document is the largest message).
MAX_LINE_BYTES = 65536

#: ``ERR`` code vocabulary (first ERR argument).  ``toobig`` is the
#: dedicated answer for a line over :data:`MAX_LINE_BYTES` — a client
#: seeing it knows the peer is about to drop the connection rather than
#: attempt to resynchronize inside the oversized line.
ERR_CODES = ("proto", "verb", "arity", "arg", "state", "run", "toobig",
             "internal")

#: verb -> (min_args, max_args | None for unbounded, rawtail).
#: ``rawtail`` verbs take everything after the verb as one argument that
#: may contain spaces (JSON payloads).
_VERBS: dict[str, tuple[int, Optional[int], bool]] = {
    # client -> server
    "HELO": (1, 2, False),
    "RUN": (3, 3, False),
    "RESM": (1, 1, False),
    "GETS": (1, 1, False),
    "SCHD": (1, 1, False),
    "DEFR": (1, 1, False),
    "REDY": (0, 0, False),
    "SUBM": (1, 1, True),
    "RPRT": (0, 1, False),
    "CMPR": (1, 1, False),
    "QUIT": (0, 0, False),
    # server -> client
    "OK": (0, None, False),
    "ERR": (1, None, False),
    "PING": (0, 1, False),
    "TICK": (3, 3, False),
    "JCPL": (3, 3, False),
    "JOBN": (10, 10, False),
    "DATA": (1, 1, False),
    "CELL": (5, 5, False),
    "DONE": (0, None, False),
    ".": (0, 0, False),
}


class ProtocolError(Exception):
    """A malformed or ill-timed message; ``code`` is one of ERR_CODES."""

    def __init__(self, code: str, message: str):
        assert code in ERR_CODES, code
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Message:
    """One decoded protocol line."""

    verb: str
    args: tuple[str, ...]

    def __str__(self) -> str:
        return encode(self.verb, *self.args)


def format_time_arg(t: float) -> str:
    """Exact float serialization (``repr`` round-trips every IEEE double)."""
    return repr(float(t))


def parse_time_arg(text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ProtocolError("arg", f"bad timestamp {text!r}") from None


def encode(verb: str, *args: object) -> str:
    """Render one message line (without the trailing newline)."""
    spec = _VERBS.get(verb)
    if spec is None:
        raise ProtocolError("verb", f"unknown verb {verb!r}")
    lo, hi, rawtail = spec
    if len(args) < lo or (hi is not None and len(args) > hi):
        raise ProtocolError("arity", f"{verb} takes {lo}"
                            + (f"..{hi}" if hi != lo else "")
                            + f" args, got {len(args)}")
    parts = [verb]
    for arg in args:
        text = str(arg)
        if "\n" in text or "\r" in text:
            raise ProtocolError("arg", f"newline inside {verb} argument")
        if not rawtail and (" " in text or text == ""):
            raise ProtocolError("arg",
                                f"space/empty in non-tail {verb} argument")
        parts.append(text)
    line = " ".join(parts)
    if len(line.encode("utf-8")) > MAX_LINE_BYTES:
        raise ProtocolError("toobig",
                            f"{verb} line exceeds {MAX_LINE_BYTES}B")
    return line


def decode(line: str) -> Message:
    """Parse one received line (newline already stripped)."""
    if len(line.encode("utf-8", errors="replace")) > MAX_LINE_BYTES:
        raise ProtocolError("toobig",
                            f"line exceeds {MAX_LINE_BYTES} bytes")
    line = line.strip()
    if not line:
        raise ProtocolError("proto", "empty line")
    verb, _, tail = line.partition(" ")
    spec = _VERBS.get(verb)
    if spec is None:
        raise ProtocolError("verb", f"unknown verb {verb!r}")
    lo, hi, rawtail = spec
    if rawtail:
        tail = tail.strip()
        args: tuple[str, ...] = (tail,) if tail else ()
    else:
        args = tuple(tail.split())
    if len(args) < lo or (hi is not None and len(args) > hi):
        raise ProtocolError("arity", f"{verb} takes {lo}"
                            + (f"..{hi}" if hi != lo else "")
                            + f" args, got {len(args)}")
    return Message(verb, args)
