"""Tests for the versioned Reference API store."""

import pytest

from repro.testbed import BiosSettings, ReferenceApi
from repro.util import HOUR, ReferenceApiError


def test_initial_commit_exists(refapi):
    assert len(refapi.history) == 1
    assert refapi.head.message == "initial import"


def test_node_lookup(refapi):
    assert refapi.node("graphene-1").cluster == "graphene"


def test_node_lookup_unknown_raises(refapi):
    with pytest.raises(ReferenceApiError):
        refapi.node("ghost-1")


def test_update_node_creates_version(refapi):
    node = refapi.node("grisou-1").with_bios(BiosSettings(c_states=True))
    v2 = refapi.update_node(node, timestamp=HOUR, message="enable c-states (wrong!)")
    assert len(refapi.history) == 2
    assert refapi.head.version == v2
    assert refapi.node("grisou-1").bios.c_states


def test_commit_unchanged_is_noop(refapi):
    v1 = refapi.head.version
    v2 = refapi.commit(HOUR, "nothing changed")
    assert v1 == v2
    assert len(refapi.history) == 1


def test_commit_in_past_raises(refapi):
    node = refapi.node("grisou-1").with_bios(BiosSettings(turbo_boost=True))
    refapi.update_node(node, timestamp=10 * HOUR, message="later change")
    with pytest.raises(ReferenceApiError):
        refapi.commit(5 * HOUR, "time travel")


def test_at_time_returns_archived_snapshot(refapi):
    v1 = refapi.head.version
    node = refapi.node("grisou-1").with_bios(BiosSettings(turbo_boost=True))
    v2 = refapi.update_node(node, timestamp=6 * HOUR, message="change")
    assert refapi.at_time(3 * HOUR).version == v1
    assert refapi.at_time(6 * HOUR).version == v2
    assert refapi.at_time(100 * HOUR).version == v2


def test_at_time_before_history_raises(fresh_testbed):
    api = ReferenceApi(fresh_testbed, timestamp=50.0)
    with pytest.raises(ReferenceApiError):
        api.at_time(10.0)


def test_diff_between_versions_pinpoints_change(refapi):
    import dataclasses

    v1 = refapi.head.version
    node = refapi.node("grisou-1")
    node = node.with_bios(dataclasses.replace(node.bios, hyperthreading=True))
    v2 = refapi.update_node(node, timestamp=HOUR, message="HT flipped")
    entries = refapi.diff(v1, v2)
    assert len(entries) == 1
    assert entries[0].path.endswith("bios.hyperthreading")
    assert entries[0].old is False and entries[0].new is True


def test_diff_unknown_version_raises(refapi):
    with pytest.raises(ReferenceApiError):
        refapi.diff(refapi.head.version, "deadbeef")


def test_get_version(refapi):
    v = refapi.head.version
    assert refapi.get_version(v).version == v


def test_update_unknown_node_raises(refapi):
    import dataclasses

    ghost = dataclasses.replace(refapi.node("grisou-1"), uid="grisou-999")
    with pytest.raises(ReferenceApiError):
        refapi.update_node(ghost, timestamp=HOUR, message="ghost")


def test_archived_docs_are_snapshots_not_views(refapi):
    """Mutating the live testbed after commit must not alter history."""
    v1_doc_nodes = refapi.head.doc["sites"][0]["clusters"][0]["nodes"]
    first_uid = v1_doc_nodes[0]["uid"]
    node = refapi.node(first_uid).with_bios(BiosSettings(c_states=True))
    refapi.update_node(node, timestamp=HOUR, message="drift")
    old = refapi.history[0]
    assert old.doc["sites"][0]["clusters"][0]["nodes"][0]["bios"]["c_states"] is False
