"""Resource descriptions: the schema of the Reference API.

The paper (slide 7) stresses that Grid'5000 describes all its resources —
nodes, network equipment, topology — in a *machine-parsable format (JSON)*
so that scripts (and OAR, and g5k-checks) can consume them.  This module
defines the dataclasses for those descriptions plus lossless ``to_doc`` /
``from_doc`` JSON conversion.

A *description* is what the testbed claims about a resource.  The *actual*
hardware state of a simulated machine lives in :mod:`repro.nodes` and may
silently diverge from the description — that divergence is exactly what
g5k-checks (:mod:`repro.checks`) is designed to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional

__all__ = [
    "BiosSettings",
    "CpuSpec",
    "DiskSpec",
    "NicSpec",
    "InfinibandSpec",
    "GpuSpec",
    "PduPort",
    "NodeDescription",
    "ClusterDescription",
    "SiteDescription",
    "TestbedDescription",
]


@dataclass(frozen=True)
class BiosSettings:
    """BIOS-level knobs whose silent drift caused real bugs (slide 13).

    ``c_states`` / ``hyperthreading`` / ``turbo_boost`` toggles and the
    power profile all change measured performance by a few percent —
    enough to invalidate experiments without being obviously broken.
    """

    version: str = "1.0.0"
    c_states: bool = False
    hyperthreading: bool = False
    turbo_boost: bool = False
    power_profile: str = "performance"  # or "balanced", "powersave"

    def to_doc(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "c_states": self.c_states,
            "hyperthreading": self.hyperthreading,
            "turbo_boost": self.turbo_boost,
            "power_profile": self.power_profile,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "BiosSettings":
        return cls(**doc)


@dataclass(frozen=True)
class CpuSpec:
    """One CPU package (a node has ``NodeDescription.cpu_count`` of them)."""

    model: str
    vendor: str
    microarchitecture: str
    cores: int
    threads_per_core: int
    clock_ghz: float
    ht_capable: bool
    turbo_capable: bool

    def to_doc(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "vendor": self.vendor,
            "microarchitecture": self.microarchitecture,
            "cores": self.cores,
            "threads_per_core": self.threads_per_core,
            "clock_ghz": self.clock_ghz,
            "ht_capable": self.ht_capable,
            "turbo_capable": self.turbo_capable,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "CpuSpec":
        return cls(**doc)


@dataclass(frozen=True)
class DiskSpec:
    """One block device.

    ``firmware`` and the cache toggles reproduce the paper's real bugs:
    "different disk performance due to different disk firmware versions"
    and "disk drives configuration (R/W caching)".
    """

    device: str  # e.g. "sda"
    vendor: str
    model: str
    size_gb: int
    interface: str  # "SATA", "SAS", "NVMe"
    storage_type: str  # "HDD" or "SSD"
    firmware: str
    write_cache: bool = True
    read_ahead: bool = True

    def to_doc(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "vendor": self.vendor,
            "model": self.model,
            "size_gb": self.size_gb,
            "interface": self.interface,
            "storage_type": self.storage_type,
            "firmware": self.firmware,
            "write_cache": self.write_cache,
            "read_ahead": self.read_ahead,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "DiskSpec":
        return cls(**doc)


@dataclass(frozen=True)
class NicSpec:
    """One Ethernet interface."""

    device: str  # e.g. "eth0"
    model: str
    driver: str
    rate_gbps: float
    mac: str
    mountable: bool = True  # wired to a switch and usable by experiments
    interface: str = "Ethernet"

    def to_doc(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "model": self.model,
            "driver": self.driver,
            "rate_gbps": self.rate_gbps,
            "mac": self.mac,
            "mountable": self.mountable,
            "interface": self.interface,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "NicSpec":
        return cls(**doc)


@dataclass(frozen=True)
class InfinibandSpec:
    """Infiniband HCA (exercised by the mpigraph test family)."""

    model: str
    rate_gbps: int  # 20 (DDR), 40 (QDR), 56 (FDR)
    guid: str

    def to_doc(self) -> dict[str, Any]:
        return {"model": self.model, "rate_gbps": self.rate_gbps, "guid": self.guid}

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "InfinibandSpec":
        return cls(**doc)


@dataclass(frozen=True)
class GpuSpec:
    """GPU accelerator (selectable via OAR's ``gpu='YES'`` property)."""

    model: str
    count: int
    memory_gb: int

    def to_doc(self) -> dict[str, Any]:
        return {"model": self.model, "count": self.count, "memory_gb": self.memory_gb}

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "GpuSpec":
        return cls(**doc)


@dataclass(frozen=True)
class PduPort:
    """Which PDU outlet powers the node.

    The kwapi power-monitoring service maps outlet measurements back to
    nodes through this wiring description; a cabling error here is the
    paper's "wrong measurements by testbed monitoring service" bug.
    """

    pdu_uid: str
    port: int

    def to_doc(self) -> dict[str, Any]:
        return {"pdu_uid": self.pdu_uid, "port": self.port}

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "PduPort":
        return cls(**doc)


@dataclass(frozen=True)
class NodeDescription:
    """Full description of one node, as published by the Reference API."""

    uid: str  # e.g. "graphene-12"
    cluster: str
    site: str
    cpu: CpuSpec
    cpu_count: int
    ram_gb: int
    disks: tuple[DiskSpec, ...]
    nics: tuple[NicSpec, ...]
    bios: BiosSettings
    pdu: PduPort
    infiniband: Optional[InfinibandSpec] = None
    gpu: Optional[GpuSpec] = None
    serial: str = ""
    console_enabled: bool = True

    @property
    def total_cores(self) -> int:
        return self.cpu_count * self.cpu.cores

    @property
    def primary_nic(self) -> NicSpec:
        return self.nics[0]

    @property
    def has_10g(self) -> bool:
        return any(n.rate_gbps >= 10 for n in self.nics)

    def with_bios(self, bios: BiosSettings) -> "NodeDescription":
        return replace(self, bios=bios)

    def to_doc(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "uid": self.uid,
            "cluster": self.cluster,
            "site": self.site,
            "cpu": self.cpu.to_doc(),
            "cpu_count": self.cpu_count,
            "ram_gb": self.ram_gb,
            "disks": [d.to_doc() for d in self.disks],
            "nics": [n.to_doc() for n in self.nics],
            "bios": self.bios.to_doc(),
            "pdu": self.pdu.to_doc(),
            "serial": self.serial,
            "console_enabled": self.console_enabled,
            "infiniband": self.infiniband.to_doc() if self.infiniband else None,
            "gpu": self.gpu.to_doc() if self.gpu else None,
        }
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "NodeDescription":
        return cls(
            uid=doc["uid"],
            cluster=doc["cluster"],
            site=doc["site"],
            cpu=CpuSpec.from_doc(doc["cpu"]),
            cpu_count=doc["cpu_count"],
            ram_gb=doc["ram_gb"],
            disks=tuple(DiskSpec.from_doc(d) for d in doc["disks"]),
            nics=tuple(NicSpec.from_doc(n) for n in doc["nics"]),
            bios=BiosSettings.from_doc(doc["bios"]),
            pdu=PduPort.from_doc(doc["pdu"]),
            serial=doc.get("serial", ""),
            console_enabled=doc.get("console_enabled", True),
            infiniband=(
                InfinibandSpec.from_doc(doc["infiniband"]) if doc.get("infiniband") else None
            ),
            gpu=GpuSpec.from_doc(doc["gpu"]) if doc.get("gpu") else None,
        )


@dataclass
class ClusterDescription:
    """A homogeneous set of nodes bought together."""

    uid: str
    site: str
    vendor: str  # "dell", "hp", "bull", ...
    chassis_model: str
    vintage_year: int
    nodes: list[NodeDescription] = field(default_factory=list)
    boot_time_s: float = 180.0  # mean time for a full reboot
    queue: str = "default"

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(n.total_cores for n in self.nodes)

    @property
    def has_infiniband(self) -> bool:
        return bool(self.nodes) and self.nodes[0].infiniband is not None

    @property
    def has_gpu(self) -> bool:
        return bool(self.nodes) and self.nodes[0].gpu is not None

    @property
    def is_dell(self) -> bool:
        return self.vendor == "dell"

    @property
    def disk_testable(self) -> bool:
        """Clusters with at least one spare (non-system) disk per node."""
        return bool(self.nodes) and len(self.nodes[0].disks) >= 2

    def to_doc(self) -> dict[str, Any]:
        return {
            "uid": self.uid,
            "site": self.site,
            "vendor": self.vendor,
            "chassis_model": self.chassis_model,
            "vintage_year": self.vintage_year,
            "boot_time_s": self.boot_time_s,
            "queue": self.queue,
            "nodes": [n.to_doc() for n in self.nodes],
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "ClusterDescription":
        return cls(
            uid=doc["uid"],
            site=doc["site"],
            vendor=doc["vendor"],
            chassis_model=doc["chassis_model"],
            vintage_year=doc["vintage_year"],
            boot_time_s=doc.get("boot_time_s", 180.0),
            queue=doc.get("queue", "default"),
            nodes=[NodeDescription.from_doc(n) for n in doc["nodes"]],
        )


@dataclass
class SiteDescription:
    """One geographic site with its clusters."""

    uid: str
    clusters: list[ClusterDescription] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        return sum(c.node_count for c in self.clusters)

    @property
    def total_cores(self) -> int:
        return sum(c.total_cores for c in self.clusters)

    def to_doc(self) -> dict[str, Any]:
        return {"uid": self.uid, "clusters": [c.to_doc() for c in self.clusters]}

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "SiteDescription":
        return cls(
            uid=doc["uid"],
            clusters=[ClusterDescription.from_doc(c) for c in doc["clusters"]],
        )


@dataclass
class TestbedDescription:
    """The whole testbed: what the Reference API publishes."""

    name: str
    backbone_gbps: float
    sites: list[SiteDescription] = field(default_factory=list)

    # -- aggregates (the slide-6 inventory) -----------------------------------

    @property
    def site_count(self) -> int:
        return len(self.sites)

    @property
    def cluster_count(self) -> int:
        return sum(len(s.clusters) for s in self.sites)

    @property
    def node_count(self) -> int:
        return sum(s.node_count for s in self.sites)

    @property
    def total_cores(self) -> int:
        return sum(s.total_cores for s in self.sites)

    # -- iteration / lookup ----------------------------------------------------

    def iter_clusters(self) -> Iterator[ClusterDescription]:
        for site in self.sites:
            yield from site.clusters

    def iter_nodes(self) -> Iterator[NodeDescription]:
        for cluster in self.iter_clusters():
            yield from cluster.nodes

    def site(self, uid: str) -> SiteDescription:
        for s in self.sites:
            if s.uid == uid:
                return s
        raise KeyError(f"unknown site: {uid}")

    def cluster(self, uid: str) -> ClusterDescription:
        for c in self.iter_clusters():
            if c.uid == uid:
                return c
        raise KeyError(f"unknown cluster: {uid}")

    def node(self, uid: str) -> NodeDescription:
        cluster_uid = uid.rsplit("-", 1)[0]
        try:
            cluster = self.cluster(cluster_uid)
        except KeyError:
            raise KeyError(f"unknown node: {uid}") from None
        for n in cluster.nodes:
            if n.uid == uid:
                return n
        raise KeyError(f"unknown node: {uid}")

    def replace_node(self, node: NodeDescription) -> None:
        """Swap in an updated description for an existing node."""
        cluster = self.cluster(node.cluster)
        for i, n in enumerate(cluster.nodes):
            if n.uid == node.uid:
                cluster.nodes[i] = node
                return
        raise KeyError(f"unknown node: {node.uid}")

    def to_doc(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "backbone_gbps": self.backbone_gbps,
            "sites": [s.to_doc() for s in self.sites],
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "TestbedDescription":
        return cls(
            name=doc["name"],
            backbone_gbps=doc["backbone_gbps"],
            sites=[SiteDescription.from_doc(s) for s in doc["sites"]],
        )
