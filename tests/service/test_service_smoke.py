"""End-to-end service tests: a real socket, the bundled reference client.

The headline assertion is the PR's acceptance criterion: a client that
speaks only the wire protocol completes a ``tiny-smoke`` campaign whose
report is byte-identical (same sha256) to the in-process
:func:`~repro.run_scenario` result at the same seed.
"""

import hashlib
import json

import pytest

from repro import run_scenario, scenarios
from repro.service import ClientError, ReferenceClient, SimulatorService

#: Short horizon keeps the full remote round-trip loop under a second.
MONTHS = 0.1


@pytest.fixture()
def service(tmp_path):
    svc = SimulatorService(port=0, store=str(tmp_path / "store.jsonl"))
    svc.start()
    yield svc
    svc.stop()


def inprocess_hash(name: str, seed: int, months: float) -> str:
    _, report = run_scenario(scenarios.get(name), seed=seed, months=months)
    doc = json.dumps(report.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def test_remote_run_is_byte_identical_to_inprocess(service):
    host, port = service.address
    with ReferenceClient(host, port) as client:
        result = client.run_scenario("tiny-smoke", seed=0, months=MONTHS)
    assert result["ticks"] > 0
    assert result["sha256"] == inprocess_hash("tiny-smoke", 0, MONTHS)


def test_remote_determinism_holds_across_seeds(service):
    host, port = service.address
    for seed in (3, 7):
        with ReferenceClient(host, port) as client:
            result = client.run_scenario("tiny-smoke", seed=seed,
                                         months=MONTHS)
        assert result["sha256"] == inprocess_hash("tiny-smoke", seed, MONTHS)


def test_campaign_submission_dedupes_across_connections(service):
    host, port = service.address
    with ReferenceClient(host, port) as client:
        first = client.submit_campaign(["tiny-smoke"], seeds=[0, 1],
                                       months=0.05)
    assert first == [("tiny-smoke", 0, "ok"), ("tiny-smoke", 1, "ok")]
    # a different connection resubmits a superset: old cells come cached
    with ReferenceClient(host, port) as client:
        second = client.submit_campaign(["tiny-smoke"], seeds=[0, 1, 2],
                                        months=0.05)
    assert second == [("tiny-smoke", 0, "cached"), ("tiny-smoke", 1, "cached"),
                      ("tiny-smoke", 2, "ok")]


def test_store_survives_service_restart(tmp_path):
    path = str(tmp_path / "store.jsonl")
    with SimulatorService(port=0, store=path) as svc:
        with ReferenceClient(*svc.address) as client:
            client.submit_campaign(["tiny-smoke"], seeds=[0], months=0.05)
    with SimulatorService(port=0, store=path) as svc:
        with ReferenceClient(*svc.address) as client:
            cells = client.submit_campaign(["tiny-smoke"], seeds=[0],
                                           months=0.05)
    assert cells == [("tiny-smoke", 0, "cached")]


def test_protocol_error_does_not_take_down_the_run_loop(service):
    host, port = service.address
    with ReferenceClient(host, port) as client:
        # provoke an ERR mid-session, then verify a RUN still works
        client._send("GETS", "servers")
        msg = client._recv()
        assert msg.verb == "ERR" and msg.args[0] == "state"
        result = client.run_scenario("tiny-smoke", seed=0, months=0.05)
    assert result["sha256"] == inprocess_hash("tiny-smoke", 0, 0.05)


def test_client_reports_server_err_as_exception(service):
    host, port = service.address
    with ReferenceClient(host, port) as client:
        with pytest.raises(ClientError):
            client.run_scenario("no-such-preset", seed=0, months=0.05)
